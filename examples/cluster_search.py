"""Multi-node search: partition the database across simulated
GPU-equipped nodes (the deployment the paper's §III motivates) and
compare partitioning strategies.

Run:  python examples/cluster_search.py
"""

import numpy as np

from repro.data import random_dense_dataset, queries_from_database
from repro.distributed import GpuCluster, partition_database
from repro.engines import GpuTemporalEngine
from repro.gpu.costmodel import GpuCostModel


def main():
    db = random_dense_dataset(scale=0.01)
    queries = queries_from_database(db, 6, rng=np.random.default_rng(2))
    d = 0.05
    model = GpuCostModel()
    print(f"|D| = {len(db)}, |Q| = {len(queries)}, d = {d}\n")

    factory = lambda shard: GpuTemporalEngine(shard, num_bins=200)

    # Single node reference.
    single, prof1 = factory(db), None
    ref, prof1 = single.search(queries, d)
    t1 = prof1.modeled_time(model).total
    print(f"single node: {len(ref)} results, modeled {t1:.6f} s\n")

    print(f"{'strategy':>12s} {'nodes':>6s} {'modeled':>12s} "
          f"{'speedup':>8s} {'imbalance':>10s} {'exact':>6s}")
    for strategy in ("round_robin", "temporal", "spatial"):
        for nodes in (2, 4, 8):
            cluster = GpuCluster(db, nodes, factory, strategy=strategy)
            res, prof = cluster.search(queries, d)
            t = prof.modeled_time(model).total
            ok = res.equivalent_to(ref)
            print(f"{strategy:>12s} {nodes:6d} {t:10.6f} s "
                  f"{t1 / t:7.2f}x {prof.imbalance():9.2f} "
                  f"{'yes' if ok else 'NO'}")

    shards = partition_database(db, 4, "round_robin")
    sizes = [len(s) for s in shards]
    print(f"\nround-robin shard sizes: {sizes} "
          f"(balance = {max(sizes) / (sum(sizes) / len(sizes)):.3f})")
    print("temporal partitioning gives great per-node selectivity but "
          "routes each query to few nodes; round_robin balances best.")


if __name__ == "__main__":
    main()
