"""Search the galaxy-merger dataset: who wins, CPU or GPU, as the query
distance grows (the paper's §V-D experiment in miniature).

Also demonstrates the kind of domain question the result set answers:
when during the merger do particles from *different* progenitor disks
first interpenetrate?

Run:  python examples/galaxy_merger_analysis.py
"""

import numpy as np

from repro.data import MergerConfig, merger_dataset, queries_from_database
from repro.engines import (CpuRTreeEngine, GpuSpatioTemporalEngine,
                           GpuTemporalEngine)
from repro.gpu.costmodel import CpuCostModel, GpuCostModel


def main():
    cfg = MergerConfig(particles_per_disk=512)
    db = merger_dataset(cfg=cfg)
    queries = queries_from_database(db, 8,
                                    rng=np.random.default_rng(1))
    print(f"merger dataset: {db.num_trajectories} particles, "
          f"{len(db)} segments; {len(queries)} query segments\n")

    gpu_model, cpu_model = GpuCostModel(), CpuCostModel()
    engines = {
        "cpu_rtree": CpuRTreeEngine(db, segments_per_mbb=4),
        "gpu_temporal": GpuTemporalEngine(db, num_bins=500),
        "gpu_spatiotemporal": GpuSpatioTemporalEngine(
            db, num_bins=500, num_subbins=8, strict_subbins=False),
    }

    print(f"{'d':>6s} " + " ".join(f"{n:>20s}" for n in engines))
    for d in (0.01, 0.5, 1.5, 5.0):
        row = []
        for name, engine in engines.items():
            _, prof = engine.search(queries, d)
            model = cpu_model if name == "cpu_rtree" else gpu_model
            row.append(prof.modeled_time(model).total)
        best = min(row)
        cells = [f"{t:17.5f}s{'*' if t == best else ' '}" for t in row]
        print(f"{d:6.2f} " + " ".join(f"{c:>20s}" for c in cells))
    print("(* = fastest modeled engine; note the CPU->GPU crossover)\n")

    # Domain question: first contact between the two progenitor disks.
    results, _ = engines["gpu_spatiotemporal"].search(
        queries, 1.0, exclude_same_trajectory=True)
    half = db.num_trajectories // 2   # disk A: ids < half; disk B: rest
    tid = {int(s): int(t) for s, t in zip(db.seg_ids, db.traj_ids)}
    qtid = {int(s): int(t) for s, t in zip(queries.seg_ids,
                                           queries.traj_ids)}
    cross = [(lo, q, e) for q, e, lo in zip(results.q_ids,
                                            results.e_ids,
                                            results.t_lo)
             if (qtid[int(q)] < half) != (tid[int(e)] < half)]
    if cross:
        t_first, q, e = min(cross)
        print(f"first inter-disk approach within d=1.0: particles "
              f"{qtid[int(q)]} and {tid[int(e)]} at t = {t_first:.2f}")
        print(f"{len(cross)} inter-disk proximity events in total — "
              "the merger is well underway.")
    else:
        print("no inter-disk approaches at this d (disks still apart)")


if __name__ == "__main__":
    main()
