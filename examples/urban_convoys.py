"""GPS/GIS workload (paper §I): convoy detection in urban traffic.

Find vehicle pairs that stayed within d of each other for at least T
seconds — a classic moving-object-database query built directly on the
distance-threshold search: search, aggregate per pair, merge intervals,
filter by duration.

Run:  python examples/urban_convoys.py
"""

from repro.core.search import DistanceThresholdSearch
from repro.data.gps import CityConfig, gps_dataset


def main():
    cfg = CityConfig(num_vehicles=120, blocks=8, duration=400.0)
    db = gps_dataset(cfg)
    print(f"city: {cfg.blocks}x{cfg.blocks} blocks, "
          f"{cfg.num_vehicles} vehicles, {len(db)} GPS segments")

    d = 25.0        # metres: same street, same direction
    min_dwell = 60.0  # seconds together to count as a convoy

    search = DistanceThresholdSearch(db, method="gpu_spatiotemporal",
                                     num_bins=200, num_subbins=4,
                                     strict_subbins=False)
    outcome = search.run(db, d, exclude_same_trajectory=True)
    print(f"{len(outcome.results)} proximity items, modeled "
          f"{outcome.modeled_seconds:.4f} s on the virtual GPU")

    tid = {int(s): int(t) for s, t in zip(db.seg_ids, db.traj_ids)}
    episodes = outcome.results.by_trajectory(tid, tid)

    convoys = {}
    for (a, b), intervals in episodes.items():
        if a >= b:
            continue  # count each unordered pair once
        dwell = max((hi - lo for lo, hi in intervals), default=0.0)
        if dwell >= min_dwell:
            convoys[(a, b)] = (dwell, intervals)

    print(f"\n{len(convoys)} convoys (pairs within {d} m for >= "
          f"{min_dwell:.0f} s continuously):")
    ranked = sorted(convoys.items(), key=lambda kv: -kv[1][0])
    for (a, b), (dwell, intervals) in ranked[:8]:
        longest = max(intervals, key=lambda iv: iv[1] - iv[0])
        print(f"  vehicles {a:3d} & {b:3d}: {dwell:5.0f} s together "
              f"(longest stretch t = {longest[0]:.0f}..{longest[1]:.0f})")


if __name__ == "__main__":
    main()
