"""The observability layer: span trees, metrics, events, and the
multi-lane trace for a served batch.

One ``submit_batch`` call against a two-device service, then every
view the telemetry hub offers on it:

* the span tree — service → engine → kernel, each span carrying wall
  seconds (what the simulator spent) and modeled seconds (where the
  work sits on the simulated machine's timeline),
* the metrics registry in Prometheus text (request-latency histogram,
  cache hit/miss counters),
* the structured event log as JSON lines,
* the slow-query log (threshold set low enough to catch everything),
* the chrome://tracing export with one track per device lane.

Run:  python examples/telemetry_tour.py
"""

import numpy as np

from repro.data import queries_from_database, random_dense_dataset
from repro.obs import Telemetry, write_service_trace
from repro.service import QueryService, SearchRequest


def show_span(span, depth=0):
    modeled = ("no modeled clock" if span.modeled_dur_s is None
               else f"modeled {span.modeled_dur_s * 1e3:8.3f} ms")
    print(f"  {'  ' * depth}{span.name:<28s} "
          f"wall {span.wall_dur_s * 1e3:8.3f} ms   {modeled}")
    for child in span.children:
        show_span(child, depth + 1)


def main():
    db = random_dense_dataset(scale=0.01)
    rng = np.random.default_rng(7)
    queries = [queries_from_database(db, 4, rng=rng) for _ in range(3)]

    # Catch every request in the slow-query log for the demo.
    telemetry = Telemetry(slow_query_threshold_s=1e-9)
    service = QueryService(db, num_devices=2, telemetry=telemetry)
    responses = service.submit_batch([
        SearchRequest(queries=q, d=0.05, method=m,
                      request_id=f"req-{i}")
        for i, (q, m) in enumerate(zip(
            queries, ("gpu_temporal", "gpu_spatial", "auto")))
    ])

    print("== span tree (one root per submit_batch) ==")
    for root in telemetry.tracer.roots:
        show_span(root)

    print("\n== metrics (Prometheus text, excerpt) ==")
    text = telemetry.metrics.to_prometheus_text()
    for line in text.splitlines():
        if ("repro_cache" in line or "repro_requests_total" in line
                or "latency_seconds_count" in line):
            print(f"  {line}")

    print("\n== structured events (JSON lines) ==")
    for line in telemetry.events.to_jsonl().splitlines():
        print(f"  {line[:76]}{'…' if len(line) > 76 else ''}")

    print(f"\n== {telemetry.slow_log.render()} ==")

    path = write_service_trace(responses, "results/telemetry_tour.json",
                               model=service.gpu_model)
    lanes = {s['lane'] for r in responses
             for s in r.metrics.lane_spans}
    print(f"\nchrome://tracing timeline for {len(responses)} requests "
          f"on lanes {sorted(lanes)} -> {path}")

    # Everything above switches off with one constructor argument.
    quiet = QueryService(db, num_devices=2,
                         telemetry=Telemetry(enabled=False))
    quiet.submit(SearchRequest(queries=queries[0], d=0.05))
    print(f"disabled hub after a request: "
          f"{len(quiet.telemetry.tracer.roots)} spans, "
          f"{len(quiet.telemetry.events)} events")


if __name__ == "__main__":
    main()
