"""Fault drill: kill device lane 1 mid-batch and watch the service
absorb it.

A two-lane service warms one GPU engine per lane, then a
:class:`~repro.faults.FaultInjector` blacks out lane 1 partway through
the second batch — the model of a card falling off the bus.  The drill
walks the full recovery arc:

* the in-flight request on lane 1 fails over down the engine ladder and
  still returns a complete (degraded) result,
* lane 1 is quarantined and its cached engines invalidated,
* after the operator "swaps the card" (``injector.revive``) the lane
  re-enters on probation and is readmitted on its first success,

with the telemetry event log narrating every step.

Run:  python examples/fault_drill.py
"""

import numpy as np

from repro.data import queries_from_database, random_dense_dataset
from repro.faults import FaultInjector, FaultSpec
from repro.obs import Telemetry
from repro.service import QueryService, SearchRequest

DRILL_KINDS = ("failover", "degradation", "lane_quarantined",
               "lane_probation", "lane_readmitted", "breaker_open",
               "breaker_closed")


def show_events(telemetry, start=0):
    shown = 0
    for event in list(telemetry.events)[start:]:
        if event.kind not in DRILL_KINDS:
            continue
        fields = ", ".join(f"{k}={v}" for k, v in event.fields.items())
        print(f"    [{event.kind}] {fields[:66]}")
        shown += 1
    if not shown:
        print("    (no resilience events)")
    return len(telemetry.events)


def batch(service, queries, tag):
    responses = service.submit_batch([
        SearchRequest(queries=q, d=0.05, method=m,
                      request_id=f"{tag}-{m}")
        for q, m in zip(queries, ("gpu_temporal", "gpu_spatial"))
    ])
    for resp in responses:
        m = resp.metrics
        note = (f"degraded after {m.failovers} failover hop(s): "
                f"{m.degradation_reason.split(':')[0]}"
                if m.degraded else
                "cache hit" if m.cache_hit else "cold build")
        print(f"  {resp.request_id:<22s} -> {m.engine:<12s} "
              f"{len(resp.outcome.results):4d} results  ({note})")
    return responses


def lane_states(service):
    return {lane: h["state"]
            for lane, h in service.stats()["lane_health"].items()}


def main():
    db = random_dense_dataset(scale=0.01)
    rng = np.random.default_rng(11)
    queries = [queries_from_database(db, 4, rng=rng) for _ in range(2)]

    # Lane 1 dies on its 12th operation: past the first batch's build
    # and search (10 ops), squarely inside the second batch's search.
    injector = FaultInjector(
        [FaultSpec(kind="lane_blackout", lanes=(1,), after=11, count=1)],
        seed=0)
    telemetry = Telemetry()
    service = QueryService(db, num_devices=2, faults=injector,
                           telemetry=telemetry,
                           lane_failure_threshold=1,
                           lane_quarantine_s=1e-7)

    print("== batch 1: both lanes healthy, one engine homed per lane ==")
    batch(service, queries, "warm")
    print(f"  lanes: {lane_states(service)}")
    seen = show_events(telemetry)

    print("\n== batch 2: lane 1 blacks out mid-batch ==")
    batch(service, queries, "drill")
    print(f"  lanes: {lane_states(service)}  "
          f"dead: {sorted(injector.dead_lanes)}")
    seen = show_events(telemetry, seen)

    print("\n== operator swaps the card: revive lane 1, run a batch ==")
    injector.revive(1)
    batch(service, queries, "probe")
    print(f"  lanes: {lane_states(service)}")
    seen = show_events(telemetry, seen)

    stats = service.stats()
    print(f"\nsurvived: {stats['num_requests']} requests, "
          f"{stats['degradations']} degraded, "
          f"{stats['cache']['invalidations']} cache entries dropped "
          f"with the lane, 0 lost")


if __name__ == "__main__":
    main()
