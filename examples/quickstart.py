"""Quickstart: index a trajectory database and run a distance-threshold
search with every engine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (DistanceThresholdSearch, SegmentArray, Trajectory,
                   brute_force_search)


def make_dataset(num_traj=200, steps=50, seed=0):
    """A small cloud of random-walk trajectories."""
    rng = np.random.default_rng(seed)
    trajs = []
    for k in range(num_traj):
        start = rng.uniform(0, 100, 3)
        walk = start + np.cumsum(rng.normal(0, 1.0, (steps - 1, 3)),
                                 axis=0)
        pos = np.vstack([start, walk])
        times = rng.uniform(0, 10) + np.arange(steps, dtype=float)
        trajs.append(Trajectory(k, times, pos))
    return SegmentArray.from_trajectories(trajs)


def main():
    database = make_dataset()
    queries = make_dataset(num_traj=10, seed=99)
    d = 4.0
    print(f"database: {len(database)} segments "
          f"({database.num_trajectories} trajectories)")
    print(f"queries:  {len(queries)} segments, threshold d = {d}\n")

    configs = {
        "gpu_spatial": {"cells_per_dim": 20},
        "gpu_temporal": {"num_bins": 200},
        "gpu_spatiotemporal": {"num_bins": 200, "num_subbins": 4,
                               "strict_subbins": False},
        "cpu_rtree": {"segments_per_mbb": 4},
    }

    reference = brute_force_search(queries, database, d)
    print(f"{'engine':22s} {'results':>8s} {'modeled time':>14s} "
          f"{'exact':>6s}")
    for method, params in configs.items():
        search = DistanceThresholdSearch(database, method=method,
                                         **params)
        outcome = search.run(queries, d)
        ok = outcome.results.equivalent_to(reference)
        print(f"{method:22s} {len(outcome.results):8d} "
              f"{outcome.modeled_seconds:11.6f} s  {'yes' if ok else 'NO'}")

    # Inspect a few result items: (query seg, entry seg, time interval).
    rs = outcome.results
    print("\nfirst results (query seg -> entry seg during [t_lo, t_hi]):")
    for i in range(min(5, len(rs))):
        print(f"  q{rs.q_ids[i]} -> e{rs.e_ids[i]} "
              f"during [{rs.t_lo[i]:.3f}, {rs.t_hi[i]:.3f}]")


if __name__ == "__main__":
    main()
