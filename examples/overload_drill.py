"""Overload drill: storm the admission-controlled front door and
watch every refusal stay typed.

A small :class:`~repro.service.QueryService` is fronted by a
:class:`~repro.gateway.Gateway` with a deliberately tiny queue and
four tenants of very different means — a well-behaved interactive
tenant, a batch tenant, an abusive one on a tight token bucket, and
one with a three-request daily quota.  The drill walks the whole
overload story:

* a flood past the queue bound: some requests answer, the overflow is
  rejected ``overloaded`` *on arrival* with a ``retry_after_s`` hint,
  and the saturated queue walks the brownout ladder (the batch tier
  is shed, ``auto`` is pinned to the exact ``cpu_scan`` referee
  engine, then writes are refused while reads keep serving);
* the abusive tenant runs its bucket dry (``rate_limited``, hinted
  with the next-token instant) and the capped tenant its quota
  (``quota_exceeded``, hinted with the window reset);
* a keyed ingest is sent **twice** through the client retry helper —
  the second send deduplicates (``deduplicated: True``) instead of
  double-appending;
* the gateway's ``/metrics`` registry narrates all of it with labeled
  counters.

Run:  python examples/overload_drill.py
"""

import asyncio

import numpy as np

from repro.core.types import SegmentArray, Trajectory
from repro.data import queries_from_database, random_dense_dataset
from repro.gateway import Gateway, TenantConfig, retry_with_backoff
from repro.service import QueryService, SearchRequest

TENANTS = [
    TenantConfig("alice", "key-alice", rate=1000.0, burst=1000.0),
    TenantConfig("batchy", "key-batchy", rate=1000.0, burst=1000.0,
                 priority="batch"),
    TenantConfig("greedy", "key-greedy", rate=0.5, burst=2.0),
    TenantConfig("capped", "key-capped", rate=1000.0, burst=1000.0,
                 daily_quota=3),
]


def show(responses):
    for resp in responses:
        hint = (f"  retry after {resp.retry_after_s:.3f}s"
                if resp.retry_after_s is not None else "")
        note = (f"{len(resp.response.outcome.results)} results via "
                f"{resp.response.metrics.engine}"
                if resp.ok else resp.reason.split(";")[0][:52])
        print(f"  {resp.request_id:<12s} {resp.tenant:<7s} "
              f"{resp.priority:<12s} -> {resp.status:<17s} "
              f"{note}{hint}")


async def flood(gateway, queries):
    """One burst well past the queue bound, batch arrivals included."""
    calls = [gateway.search(
        "key-alice", SearchRequest(queries=queries, d=0.05,
                                   method="auto",
                                   request_id=f"alice-{j}"))
        for j in range(7)]
    calls += [gateway.search(
        "key-batchy", SearchRequest(queries=queries, d=0.05,
                                    method="auto",
                                    request_id=f"batchy-{j}"))
        for j in range(2)]
    return await asyncio.gather(*calls)


async def drain_budgets(gateway, queries):
    out = []
    for j in range(4):
        out.append(await gateway.search(
            "key-greedy", SearchRequest(queries=queries, d=0.05,
                                        method="cpu_scan",
                                        request_id=f"greedy-{j}")))
    for j in range(5):
        out.append(await gateway.search(
            "key-capped", SearchRequest(queries=queries, d=0.05,
                                        method="cpu_scan",
                                        request_id=f"capped-{j}")))
    return out


def main():
    database = random_dense_dataset(scale=0.01)
    rng = np.random.default_rng(7)
    queries = queries_from_database(database, 3, rng=rng)
    service = QueryService(database, num_devices=2)
    gateway = Gateway(service, TENANTS, queue_depth=3)

    print("== a burst past the queue bound (depth 3, 9 arrivals) ==")
    show(asyncio.run(flood(gateway, queries)))
    ladder = gateway.brownout
    print(f"  brownout: level {ladder.level} ({ladder.name}), "
          f"{len(ladder.transitions)} transition(s) so far")

    print("\n== tenants running their budgets dry ==")
    show(asyncio.run(drain_budgets(gateway, queries)))

    print("\n== one keyed ingest, sent twice (client-side retries) ==")
    steps = 8
    walk = rng.normal(0.0, 0.01, size=(steps, 3)).cumsum(axis=0) + 0.5
    fresh = SegmentArray.from_trajectories([Trajectory(
        10_000, np.arange(steps, dtype=np.float64), walk)])

    def send():
        return asyncio.run(gateway.ingest("key-alice", fresh,
                                          idempotency_key="put-7"))

    for attempt in (1, 2):
        outcome = retry_with_backoff(send)
        receipt = outcome.response.receipt
        print(f"  send {attempt}: status={outcome.response.status} "
              f"epoch={receipt['epoch']} "
              f"deduplicated={receipt['deduplicated']}")

    print("\n== the front door's own ledger ==")
    stats = gateway.stats()
    print(f"  served {stats['served']}, rejected {stats['rejected']} "
          f"(all typed), expired in queue "
          f"{stats['expired_in_queue']}")
    for line in gateway.metrics_text().splitlines():
        if line.startswith("repro_gateway_rejections_total"):
            print(f"  {line}")
    service.shutdown()


if __name__ == "__main__":
    main()
