"""The kernel launch API: LaunchSpec -> vectorized kernel body ->
BatchResult.

Every engine invocation goes through ``KernelLauncher.run``: a typed
``LaunchSpec`` describes the grid (name, logical thread count, h2d
inputs to charge, fault-hook point), the kernel body executes the whole
grid's work as vectorized NumPy passes while recording per-thread op
counts, and the returned ``BatchResult`` carries both the body's value
and the invocation's ``KernelStats``.

This script drives the API directly with a toy kernel, then shows the
same stats flowing out of a real engine search — and that the batch
path's counts match the legacy per-thread reference exactly.

Run:  python examples/kernel_launch_api.py
"""

import numpy as np

from repro.core.execmode import execution_mode
from repro.engines import GpuTemporalEngine
from repro.gpu.device import VirtualGPU
from repro.gpu.kernel import KernelLauncher, LaunchSpec

from quickstart import make_dataset


def toy_launch():
    print("=" * 64)
    print("1. A toy kernel through the launch API")
    print("=" * 64)
    gpu = VirtualGPU()
    launcher = KernelLauncher(gpu)

    work = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
    spec = LaunchSpec(name="toy", num_threads=work.size,
                      inputs=(("toy_schedule", work.size * 16),))

    def kernel(k):
        # The whole grid in one pass: each logical thread "performs"
        # its scheduled work; two threads issue an atomic append.
        k.thread_work[:] = work
        k.add_atomics(2)
        return int(work.sum())

    out = launcher.run(spec, kernel)
    stats = out.stats
    print(f"kernel body returned      {out.value}")
    print(f"stats.num_threads         {stats.num_threads}")
    print(f"stats.thread_work         {stats.thread_work}")
    print(f"stats.atomic_ops          {stats.atomic_ops}")
    print(f"divergence (warp of 4)    "
          f"{stats.divergence_factor(4):.2f}")
    print(f"h2d transfers charged     "
          f"{[(t.label, t.nbytes) for t in gpu.transfers.records]}\n")


def engine_stats():
    print("=" * 64)
    print("2. The same stats out of a real engine search")
    print("=" * 64)
    db = make_dataset(num_traj=120, steps=30, seed=1)
    queries = make_dataset(num_traj=8, steps=30, seed=42)

    engine = GpuTemporalEngine(db, num_bins=64)
    _, profile = engine.search(queries, d=3.0)
    for i, stats in enumerate(engine.gpu.kernel_stats):
        print(f"invocation {i}: {stats.num_threads} threads, "
              f"{stats.total_comparisons} comparisons, "
              f"{stats.atomic_ops} atomics")
    print(f"modeled profile: {profile.num_kernel_invocations} "
          f"invocation(s), {profile.result_items} results\n")

    # The vectorized batch path and the legacy per-thread reference
    # record identical per-thread counts (the equivalence suite pins
    # this; here is the contract in miniature).
    with execution_mode("perthread"):
        ref = GpuTemporalEngine(db, num_bins=64)
        ref.search(queries, d=3.0)
    for sb, sp in zip(engine.gpu.kernel_stats, ref.gpu.kernel_stats):
        assert np.array_equal(sb.thread_work, sp.thread_work)
        assert sb.atomic_ops == sp.atomic_ops
    print("batch == perthread: per-thread op counts identical")


def main():
    toy_launch()
    engine_stats()


if __name__ == "__main__":
    main()
