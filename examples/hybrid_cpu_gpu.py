"""Hybrid CPU+GPU search — the paper's stated future direction (§VI):
"hybrid implementations of the distance threshold search that use the CPU
and the GPU concurrently."

The query set is split between a GPU engine and the CPU R-tree; the
balanced split (estimated from a pilot run) should beat either device
alone whenever their standalone times are comparable.

Run:  python examples/hybrid_cpu_gpu.py
"""

import numpy as np

from repro.data import MergerConfig, merger_dataset, queries_from_database
from repro.engines import (CpuRTreeEngine, GpuSpatioTemporalEngine,
                           HybridEngine)
from repro.gpu.costmodel import CpuCostModel, GpuCostModel


def main():
    db = merger_dataset(cfg=MergerConfig(particles_per_disk=512))
    queries = queries_from_database(db, 6,
                                    rng=np.random.default_rng(3))
    d = 1.5   # near the paper's CPU/GPU crossover on Merger
    gm, cm = GpuCostModel(), CpuCostModel()

    gpu = GpuSpatioTemporalEngine(db, num_bins=500, num_subbins=8,
                                  strict_subbins=False)
    cpu = CpuRTreeEngine(db, segments_per_mbb=4)

    _, gp = gpu.search(queries, d)
    _, cp = cpu.search(queries, d)
    t_gpu = gp.modeled_time(gm).total
    t_cpu = cp.modeled_time(cm).total
    print(f"standalone GPU: {t_gpu:.6f} s   standalone CPU: "
          f"{t_cpu:.6f} s")

    f = HybridEngine.balanced_split(gpu, cpu, queries, d,
                                    gpu_model=gm, cpu_model=cm)
    print(f"balanced split: {100 * f:.0f}% of queries to the GPU\n")

    print(f"{'gpu share':>10s} {'modeled':>12s}")
    for frac in (0.0, 0.25, round(f, 2), 0.75, 1.0):
        hybrid = HybridEngine(gpu, cpu, gpu_fraction=frac)
        res, prof = hybrid.search(queries, d)
        t = prof.modeled_time(gm, cm).total
        marker = "  <- balanced" if frac == round(f, 2) else ""
        print(f"{frac:10.2f} {t:10.6f} s{marker}")

    print("\nconcurrent execution: response time = max(side times); the")
    print("balanced split equalizes the two sides.")


if __name__ == "__main__":
    main()
