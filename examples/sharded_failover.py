"""Sharded serving: scatter-gather, replica failover, and exact
recovery.

:class:`~repro.sharding.ShardedService` runs the paper's §III cluster
deployment as a serving layer: the database is partitioned across
three shards, each shard runs two independent
:class:`~repro.service.QueryService` replicas (own engine cache, own
WAL + checkpoints under ``shard-<i>/replica-<r>``), and a router
scatter-gathers every request and merges the per-shard answers with a
*checked* disjoint+covering invariant (``docs/ARCHITECTURE.md`` →
*Sharded serving & failover*).  This walkthrough:

1. serves a batch and proves the merged answer is **byte-identical**
   to a whole-database ``cpu_scan`` referee,
2. ingests a fresh trajectory (the router stamps globally unique
   seg_ids before routing, so exactness survives mutation),
3. kills one replica — the shard fails over and answers stay exact,
4. blacks out the whole shard — the router answers ``partial``,
   exact over the survivors and honest about ``missing_shards``,
5. keeps mutating while the shard is dark (op-log only),
6. crash-recovers both replicas via :meth:`QueryService.recover` plus
   an op-log catch-up, and proves full exactness returns.

Run:  python examples/sharded_failover.py
"""

import tempfile

import numpy as np

from repro.core.types import SegmentArray, Trajectory
from repro.engines.cpu_scan import CpuScanEngine
from repro.ingest import VersionedDatabase
from repro.service import SearchRequest
from repro.sharding import ShardedService

D = 4.0


def make_db(num, steps, *, seed, id_offset=0):
    rng = np.random.default_rng(seed)
    trajs = []
    for k in range(num):
        start = rng.uniform(0.0, 20.0, size=3)
        pos = np.vstack([start, start + np.cumsum(
            rng.normal(0.0, 1.0, size=(steps - 1, 3)), axis=0)])
        times = rng.uniform(0.0, 5.0) + np.arange(steps, dtype=float)
        trajs.append(Trajectory(id_offset + k, times, pos))
    return SegmentArray.from_trajectories(trajs)


def result_bytes(results):
    c = results.canonical()
    return (c.q_ids.tobytes(), c.e_ids.tobytes(),
            c.t_lo.tobytes(), c.t_hi.tobytes())


def main() -> None:
    database = make_db(12, 8, seed=3)
    queries = make_db(5, 8, seed=80, id_offset=9000)
    # The whole-database referee mirrors every mutation the router
    # applies; a plain VersionedDatabase stamps appended seg_ids the
    # same way the router does, so answers compare at the byte level.
    referee = VersionedDatabase(database)

    def truth():
        logical = referee.snapshot().logical()
        return result_bytes(CpuScanEngine(logical).search(
            queries, D)[0])

    with tempfile.TemporaryDirectory() as root, \
            ShardedService(database, num_shards=3,
                           replicas_per_shard=2,
                           durability_root=root) as svc:
        print("layout:", svc.plan.describe())

        # 1. exact scatter-gather ------------------------------------
        resp = svc.submit(SearchRequest(queries=queries, d=D,
                                        method="cpu_scan",
                                        request_id="r0"))
        assert result_bytes(resp.outcome.results) == truth()
        print(f"[1] merged answer byte-identical to the referee "
              f"({len(resp.outcome.results)} items across "
              f"{len([s for s in svc.shards if s.replicas])} shards)")

        # 2. ingest routes and stays exact ---------------------------
        fresh = make_db(1, 6, seed=51, id_offset=500)
        receipt = svc.ingest(fresh)
        referee.append(fresh)
        resp = svc.submit(SearchRequest(queries=queries, d=D,
                                        method="cpu_scan",
                                        request_id="r1"))
        assert result_bytes(resp.outcome.results) == truth()
        print(f"[2] ingested {receipt['segments']} segments "
              f"-> shards {sorted(receipt['routed'])}, still exact")

        # 3. one replica dies: failover ------------------------------
        shard = next(s.index for s in svc.shards if s.replicas)
        svc.kill_replica(shard)
        resp = svc.submit(SearchRequest(queries=queries, d=D,
                                        method="cpu_scan",
                                        request_id="r2"))
        assert resp.status == "ok"
        assert result_bytes(resp.outcome.results) == truth()
        print(f"[3] killed one replica of shard {shard}: "
              f"failover, answer still exact")

        # 4. whole shard dark: honest partial answers ----------------
        svc.blackout_shard(shard)
        resp = svc.submit(SearchRequest(queries=queries, d=D,
                                        method="cpu_scan",
                                        request_id="r3"))
        assert resp.status == "partial"
        assert resp.missing_shards == (shard,)
        surviving = np.concatenate(
            [svc.plan.seg_ids_of(s.index) for s in svc.shards
             if s.replicas and s.index != shard])
        logical = referee.snapshot().logical()
        restricted = logical.take(np.flatnonzero(
            np.isin(logical.seg_ids, surviving)))
        expected = result_bytes(CpuScanEngine(restricted).search(
            queries, D)[0])
        assert result_bytes(resp.outcome.results) == expected
        print(f"[4] shard {shard} dark: status=partial, "
              f"missing_shards={resp.missing_shards}, exact over "
              f"the survivors")

        # 5. mutations keep routing while the shard is dark ----------
        # Extend a trajectory the dark shard owns: the op is accepted,
        # op-logged at the shard, and applied to no replica (none is
        # alive) — recovery must replay it.
        dark = svc.shards[shard]
        tid = next(int(t) for t in np.unique(database.traj_ids)
                   if svc.plan.shards_of(int(t)) == (shard,))
        more = make_db(1, 6, seed=52, id_offset=tid)
        epoch_before = dark.epoch
        svc.ingest(more)
        referee.append(more)
        assert dark.epoch == epoch_before + 1
        print(f"[5] ingested to the dark shard: op-log holds "
              f"{len(dark.oplog)} ops at epoch {dark.epoch}, zero "
              f"live replicas applied it")

        # 6. crash-recover both replicas, catch up, exact again ------
        for replica in dark.replicas:
            svc.recover_replica(shard, replica.index)
            assert replica.service.versioned.epoch == dark.epoch
        resp = svc.submit(SearchRequest(queries=queries, d=D,
                                        method="cpu_scan",
                                        request_id="r4"))
        assert resp.status == "ok"
        assert result_bytes(resp.outcome.results) == truth()
        print(f"[6] both replicas recovered (WAL + op-log catch-up "
              f"to epoch {dark.epoch}): full answers exact again")

        stats = svc.stats()
        print("router served", stats["requests"], "requests,",
              stats["partial_answers"], "partial")


if __name__ == "__main__":
    main()
