"""Crash recovery: kill a durable service mid-write, restart, lose
nothing.

A durable :class:`~repro.service.QueryService` write-ahead logs every
mutation (CRC-framed, fsync'd) before applying it and checkpoints the
database atomically (``docs/ARCHITECTURE.md`` → *Durability &
recovery*).  This walkthrough:

1. serves and mutates a durable database, warming a GPU engine,
2. "crashes" the process **halfway through writing a WAL record** —
   a seeded :class:`~repro.durability.KillSwitch` leaves physically
   torn bytes on disk, exactly like a power cut mid-``write``,
3. recovers with :meth:`QueryService.recover`: the torn tail is
   detected by its CRC frame and dropped (that mutation was never
   acknowledged), every durable record is replayed, and the warm
   engine is prewarmed from the checkpoint artifact — the first
   request after restart is a **cache hit**,
4. proves the recovered service answers byte-identically to an
   uninterrupted twin.

Run:  python examples/crash_recovery.py
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core.types import SegmentArray, Trajectory
from repro.durability import KillSwitch, SimulatedCrash
from repro.service import QueryService, SearchRequest


def make_trajectories(num, steps, *, seed, id_offset=0):
    rng = np.random.default_rng(seed)
    trajs = []
    for k in range(num):
        start = rng.uniform(0.0, 20.0, size=3)
        pos = np.vstack([start,
                         start + np.cumsum(
                             rng.normal(0, 1.0, (steps - 1, 3)), axis=0)])
        times = rng.uniform(0.0, 4.0) + np.arange(steps, dtype=float)
        trajs.append(Trajectory(id_offset + k, times, pos))
    return trajs


def main():
    state = Path(tempfile.mkdtemp(prefix="crash-recovery-")) / "state"
    base = SegmentArray.from_trajectories(
        make_trajectories(20, 12, seed=42))
    queries = SegmentArray.from_trajectories(
        make_trajectories(3, 12, seed=7, id_offset=9000))
    request = SearchRequest(queries=queries, d=2.5,
                            method="gpu_temporal")

    # An uninterrupted twin: same mutations, no crash, no durability.
    twin = QueryService(base, auto_compact=False)

    print(f"-- durable service at {state}")
    svc = QueryService(base, durability_dir=state, auto_compact=False)
    resp = svc.submit(request)
    twin.submit(request)
    print(f"   warm build: {len(resp.outcome.results)} results "
          f"(cache_hit={resp.metrics.cache_hit})")

    for batch_seed in (1, 2):
        batch = make_trajectories(2, 12, seed=batch_seed,
                                  id_offset=100 * batch_seed)
        svc.ingest(batch)
        twin.ingest(batch)
    svc.delete_trajectory(5)
    twin.delete_trajectory(5)
    svc.checkpoint()   # persists the warm engine artifact too
    print(f"   epoch {svc.versioned.epoch}: 2 ingests + 1 delete, "
          f"checkpointed ({svc.stats()['durability']['wal_appends']} "
          f"WAL records)")

    # Arm a kill-switch on the WAL write path and die mid-record.
    svc.durability.wal.kill = KillSwitch("wal_mid_append")
    doomed = make_trajectories(2, 12, seed=3, id_offset=300)
    try:
        svc.ingest(doomed)
    except SimulatedCrash as crash:
        print(f"   CRASH: {crash} — half a WAL record is on disk")
    # The service instance is abandoned, like a dead process.

    print("-- recovering")
    svc2 = QueryService.recover(state)
    rec = svc2.last_recovery
    print(f"   checkpoint epoch {rec.checkpoint_epoch}, "
          f"replayed {rec.replayed} WAL records, "
          f"dropped {rec.torn_dropped} torn record "
          f"-> epoch {svc2.versioned.epoch}")
    assert svc2.versioned.epoch == twin.versioned.epoch
    assert svc2.fingerprint == twin.fingerprint

    resp2 = svc2.submit(request)
    print(f"   first request after restart: cache_hit="
          f"{resp2.metrics.cache_hit} (prewarmed from the checkpoint)")

    # The doomed ingest was never acknowledged, so the twin never ran
    # it either — answers must agree byte-for-byte.
    a = resp2.outcome.results.canonical()
    b = twin.submit(request).outcome.results.canonical()
    assert a.q_ids.tobytes() == b.q_ids.tobytes()
    assert a.e_ids.tobytes() == b.e_ids.tobytes()
    assert a.t_lo.tobytes() == b.t_lo.tobytes()
    assert a.t_hi.tobytes() == b.t_hi.tobytes()
    print(f"   {len(a)} results, byte-identical to the uninterrupted "
          f"twin")

    # Re-running the doomed ingest now lands it durably.
    svc2.ingest(doomed)
    svc2.shutdown()
    print(f"-- re-ingested and shut down at epoch "
          f"{QueryService.recover(state).versioned.epoch}")
    shutil.rmtree(state.parent, ignore_errors=True)
    print("OK")


if __name__ == "__main__":
    main()
