"""Live ingestion: trajectories stream into a serving database.

A :class:`~repro.service.QueryService` warms a GPUTemporal index over a
base database, then trajectory batches arrive while queries keep
flowing.  The walkthrough narrates the LSM mechanics from
``docs/ARCHITECTURE.md`` (*Ingestion & snapshots*):

* each append lands in the **delta**; the warm base engine keeps
  cache-hitting (its key roots at the base fingerprint, which appends
  do not change) and the delta is unioned exactly at refinement,
* a delete **tombstones** a trajectory — filtered from answers at once,
  physically dropped at the next compaction,
* compaction — automatic once the delta outgrows the
  :class:`~repro.ingest.CompactionPolicy`, or on demand — folds the
  delta into a fresh base and prewarms the engines that were warm
  under the old fingerprint.

Every answer is checked exactly against a from-scratch ``cpu_scan``
over the snapshot's logical database.

Run:  python examples/live_ingest.py
"""

import numpy as np

from repro.core.types import SegmentArray, Trajectory
from repro.engines import CpuScanEngine
from repro.ingest import CompactionPolicy
from repro.service import QueryService, SearchRequest


def make_trajectories(num, steps, *, seed, id_offset=0):
    rng = np.random.default_rng(seed)
    trajs = []
    for k in range(num):
        start = rng.uniform(0.0, 20.0, size=3)
        pos = np.vstack([start,
                         start + np.cumsum(
                             rng.normal(0, 1.0, (steps - 1, 3)), axis=0)])
        times = rng.uniform(0.0, 4.0) + np.arange(steps, dtype=float)
        trajs.append(Trajectory(id_offset + k, times, pos))
    return trajs


def query(service, queries, request):
    snap = service.current_snapshot()
    resp = service.submit(request)
    m = resp.metrics
    note = "cache hit" if m.cache_hit else "cold build"
    print(f"  epoch {m.snapshot_epoch:2d}  delta {m.delta_segments:3d} "
          f"rows  -> {len(resp.outcome.results):4d} results  "
          f"({note}, overlay {m.delta_scan_s * 1e6:5.1f} us modeled)")
    truth, _ = CpuScanEngine(snap.logical()).search(
        request.queries, request.d)
    assert resp.outcome.results.equivalent_to(truth)
    return resp


def main():
    base = SegmentArray.from_trajectories(
        make_trajectories(40, 30, seed=1))
    queries = SegmentArray.from_trajectories(
        make_trajectories(3, 15, seed=9, id_offset=900))
    svc = QueryService(
        base,
        compaction=CompactionPolicy(max_delta_segments=500))
    req = SearchRequest(queries=queries, d=2.0, method="gpu_temporal",
                        params={"num_bins": 64})

    print("== cold start: build + cache the base index ==")
    query(svc, queries, req)

    print("\n== trajectories stream in; the warm index keeps serving ==")
    for i in range(4):
        receipt = svc.ingest(make_trajectories(
            3, 25, seed=50 + i, id_offset=1000 + 10 * i))
        print(f"  ingest #{i}: +{receipt.num_segments} segments "
              f"(epoch {receipt.epoch}, compaction due: "
              f"{receipt.compaction_due})")
        query(svc, queries, req)

    print("\n== a trajectory is recalled: tombstoned, not rebuilt ==")
    svc.delete_trajectory(1000)
    query(svc, queries, req)

    print("\n== compaction folds the delta into a fresh base ==")
    result = svc.compact()
    print(f"  compacted {result.merged_segments} delta rows, dropped "
          f"{result.dropped_segments} tombstoned; base "
          f"v{result.base_version}")
    query(svc, queries, req)

    ingest = svc.stats()["ingest"]
    cache = svc.stats()["cache"]
    print(f"\nlifetime: {ingest['appends']} appends, "
          f"{ingest['compactions']} compactions, cache "
          f"{cache['hits']} hits / {cache['misses']} misses")


if __name__ == "__main__":
    main()
