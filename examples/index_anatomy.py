"""Anatomy of the three GPU indexes — the paper's Figures 1-3 rendered as
text on a toy database.

Run:  python examples/index_anatomy.py
"""

import numpy as np

from repro.core.types import SegmentArray, Trajectory
from repro.indexes import FlatGrid, SpatioTemporalIndex, TemporalIndex


def toy_database():
    rng = np.random.default_rng(0)
    trajs = []
    for k in range(6):
        times = float(k) + np.arange(4, dtype=float)
        pos = rng.uniform(0, 10, 3) + np.cumsum(
            rng.normal(0, 0.8, (4, 3)), axis=0)
        trajs.append(Trajectory(k, times, pos))
    return SegmentArray.from_trajectories(trajs)


def show_fsg(db):
    print("=" * 64)
    print("FSG (GPUSpatial, paper Figs. 1-2): non-empty cells G with")
    print("index ranges into the lookup array A")
    print("=" * 64)
    g = FlatGrid.build(db, 3)
    print(f"grid dims {g.dims}, {g.num_nonempty_cells} non-empty of "
          f"{np.prod(g.dims)} cells, |A| = {len(g.lookup)}")
    for i in range(min(6, g.num_nonempty_cells)):
        h = int(g.cell_ids[i])
        ix, iy, iz = (int(v[0]) for v in
                      g.delinearize(np.array([h])))
        ids = g.lookup[g.cell_start[i]:g.cell_end[i]]
        print(f"  cell h={h:3d} (={ix},{iy},{iz})  A[{g.cell_start[i]}:"
              f"{g.cell_end[i]}] -> entries {list(ids)}")
    print("(an entry id appears once per overlapped cell; cell")
    print(" coordinates are recomputed from h, never stored)\n")


def show_temporal(db):
    print("=" * 64)
    print("Temporal bins (GPUTemporal, §IV-B): (B_start, B_end, B_first,")
    print("B_last) per bin over the t_start-sorted database")
    print("=" * 64)
    idx = TemporalIndex.build(db, 5)
    for j in range(idx.num_bins):
        f, l = idx.bin_first[j], idx.bin_last[j]
        rows = f"rows [{f}, {l}]" if l >= 0 else "empty"
        print(f"  B_{j}: extent [{idx.bin_start[j]:5.2f}, "
              f"{idx.bin_end[j]:5.2f}]  {rows}")
    lo, hi = idx.candidate_rows(np.array([3.0]), np.array([4.5]))
    print(f"query [3.0, 4.5] -> candidate row range E_k = "
          f"[{lo[0]}, {hi[0]}] (contiguous!)\n")


def show_spatiotemporal(db):
    print("=" * 64)
    print("Spatial subbins (GPUSpatioTemporal, paper Fig. 3): X/Y/Z")
    print("arrays grouped by (subbin j, temporal bin i)")
    print("=" * 64)
    idx = SpatioTemporalIndex.build(db, num_bins=3, num_subbins=2,
                                    strict=False)
    m, v = idx.temporal.num_bins, idx.num_subbins
    for dim, name in enumerate("XYZ"):
        chunks = []
        for j in range(v):
            for i in range(m):
                ids = idx.subbin_entries(dim, j, i)
                if ids.size:
                    chunks.append(f"B({i},{j})={list(ids)}")
        print(f"  {name} = " + " ".join(chunks))
    sched = idx.make_schedule(db.sorted_by_start_time(), 0.5)
    names = {0: "X", 1: "Y", 2: "Z", -1: "temporal (default)"}
    print("\nschedule S (4 ints per query; sorted by array selector):")
    for k in range(min(6, len(sched))):
        print(f"  query row {sched.q_rows[k]}: array="
              f"{names[int(sched.array_sel[k])]:20s} range "
              f"[{sched.ent_min[k]}, {sched.ent_max[k]}]")
    print(f"defaulted queries: {sched.num_defaulted}/{len(sched)}")


def main():
    db = toy_database()
    print(f"toy database: {len(db)} segments from "
          f"{db.num_trajectories} trajectories\n")
    show_fsg(db)
    show_temporal(db)
    show_spatiotemporal(db)


if __name__ == "__main__":
    main()
