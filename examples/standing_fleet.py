"""Standing queries: subscribe once, get pushed deltas forever.

A fleet of vehicles streams through a durable
:class:`~repro.service.QueryService` (``docs/ARCHITECTURE.md`` →
*Standing queries*).  Two clients register continuous
distance-threshold :class:`~repro.standing.Subscription`\\ s:

* ``tail-early`` and ``tail-late`` each shadow a real vehicle at a
  small offset during a chosen stretch of the stream — they accumulate
  ``match_added`` / ``match_removed`` events as the fleet moves (and
  as their vehicle departs),
* ``perimeter`` watches a fixed corridor far from all traffic — on
  epochs whose rows miss its candidate envelope it is **skipped**, not
  re-evaluated.

Each ingest/delete epoch re-evaluates only the *affected*
subscriptions against the pinned MVCC snapshot; clients poll typed
events stamped with the epoch that caused them.  Midway through the
stream the process "dies" (the service object is abandoned without
shutdown, exactly what a crashed process leaves on disk) and
:meth:`QueryService.recover` restores the standing state from its
sidecar — no event lost, none duplicated.  Every answer along the way
is checked byte-exact against a from-scratch ``cpu_scan``.

Run:  python examples/standing_fleet.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.types import SegmentArray
from repro.data.moving import FleetConfig, MovingObjectsWorkload
from repro.engines import CpuScanEngine
from repro.service import QueryService
from repro.standing import Subscription

D = 3.0
EPOCHS = 10


def tracking_queries(delta, vid, *, traj_id):
    """A query trajectory shadowing vehicle ``vid`` at a small offset
    (well inside ``D``), built from its segments in ``delta``."""
    rows = delta.segments.take(
        np.flatnonzero(delta.segments.traj_ids == vid))
    return SegmentArray(
        rows.xs + 0.6, rows.ys, rows.zs, rows.ts,
        rows.xe + 0.6, rows.ye, rows.ze, rows.te,
        np.full_like(rows.traj_ids, traj_id), rows.seg_ids)


def corridor_queries(*, traj_id):
    """A static corridor far outside the fleet's box (the skip case)."""
    n = 6
    xs = np.full(n, 500.0)
    ys = 500.0 + np.arange(n, dtype=float)
    zs = np.zeros(n)
    ts = np.arange(n, dtype=float)
    return SegmentArray(xs, ys, zs, ts, xs, ys + 1.0, zs, ts + 1.0,
                        np.full(n, traj_id, dtype=np.int64),
                        np.arange(n, dtype=np.int64))


def check_exact(service, sub):
    results, _ = CpuScanEngine(
        service.current_snapshot().logical()).search(sub.queries, sub.d)
    want = sub.apply_window(results).canonical()
    got = service.standing.results(sub.sub_id).canonical()
    assert want.equivalent_to(got), sub.sub_id


def apply_epoch(service, delta, ingested):
    for vid in delta.departures:
        if vid in ingested:
            service.delete_trajectory(vid)
    service.ingest(delta.segments)
    ingested.update(int(t) for t in np.unique(delta.segments.traj_ids))


def drain(service, subs, cursor):
    for sub in subs:
        poll = service.poll_subscription(sub.sub_id,
                                         since_seq=cursor[sub.sub_id])
        for ev in poll["events"]:
            print(f"    {ev['kind']:<13s} epoch {ev['epoch']:2d}  "
                  f"{sub.sub_id}: pair ({ev['q_id']}, {ev['e_id']})")
        cursor[sub.sub_id] = poll["last_seq"]
        check_exact(service, sub)


def main():
    state = Path(tempfile.mkdtemp(prefix="standing-fleet-")) / "state"
    stream = MovingObjectsWorkload(
        config=FleetConfig(num_fleets=2, vehicles_per_fleet=3), seed=3)
    deltas = stream.epochs(EPOCHS)
    half = EPOCHS // 2
    early, late = deltas[1].active[0], deltas[half + 2].active[0]

    print(f"-- durable service at {state}")
    svc = QueryService(deltas[0].segments, durability_dir=state,
                       auto_compact=False)
    ingested = {int(t) for t in np.unique(deltas[0].segments.traj_ids)}

    subs = [
        Subscription(sub_id="tail-early",
                     queries=tracking_queries(deltas[1], early,
                                              traj_id=9000),
                     d=D),
        Subscription(sub_id="tail-late",
                     queries=tracking_queries(deltas[half + 2], late,
                                              traj_id=9002),
                     d=D),
        Subscription(sub_id="perimeter",
                     queries=corridor_queries(traj_id=9001), d=D),
    ]
    cursor = {}
    for sub in subs:
        receipt = svc.register_subscription(sub)
        cursor[sub.sub_id] = svc.standing.last_seq
        print(f"   registered {sub.sub_id}: "
              f"{receipt['matches']} initial matches")

    print(f"\n-- streaming epochs 1..{half - 1} "
          f"(vehicle {early} is being tailed)")
    for delta in deltas[1:half]:
        apply_epoch(svc, delta, ingested)
        drain(svc, subs, cursor)

    pre_crash = dict(svc.standing.totals)
    print(f"   delta-aware: {pre_crash['affected']} re-evaluations, "
          f"{pre_crash['skipped']} skips across "
          f"{pre_crash['delta_epochs']} delta epochs")

    print("\n-- the process dies mid-stream (no shutdown) ...")
    del svc  # a crashed process flushes nothing further

    svc = QueryService.recover(state)
    rec = svc.standing.totals
    print(f"   recovered: {rec['recoveries']} recovery, "
          f"{rec['replayed_events']} events replayed from the sidecar")
    for sub in subs:
        check_exact(svc, sub)
    print("   all subscriptions byte-exact after restart")

    print(f"\n-- resuming epochs {half}..{EPOCHS - 1} "
          f"(vehicle {late} arrives), then compacting")
    for delta in deltas[half:]:
        apply_epoch(svc, delta, ingested)
        drain(svc, subs, cursor)
    svc.compact()  # answer-invariant: affects no subscription
    for sub in subs:
        check_exact(svc, sub)

    totals = {k: pre_crash.get(k, 0) + v
              for k, v in svc.standing.totals.items()}
    print(f"\nlifetime: {totals['events_added']} match_added / "
          f"{totals['events_removed']} match_removed, "
          f"{totals['affected']} re-evaluations, "
          f"{totals['skipped']} skips, every answer exact")
    svc.shutdown()


if __name__ == "__main__":
    main()
