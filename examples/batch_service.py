"""The batched query service: index caching, auto engine selection,
graceful degradation.

A stream of query batches against one database is the workload a real
deployment of the paper's system would serve.  This example runs one:

* the first batch pays the index build (offline phase, §V-B); repeated
  batches hit the engine cache and pay only the search,
* ``method="auto"`` lets the cost-based planner pick the engine per
  batch,
* a deliberately undersized device shows degradation to the index-free
  ``cpu_scan`` baseline,
* a multi-device pool runs database shards concurrently.

Run:  python examples/batch_service.py
"""

import numpy as np

from repro.data import queries_from_database, random_dense_dataset
from repro.gpu.device import DeviceSpec, TESLA_C2075
from repro.service import QueryService, SearchRequest


def main():
    db = random_dense_dataset(scale=0.01)
    rng = np.random.default_rng(7)
    print(f"|D| = {len(db)} segments, "
          f"{db.num_trajectories} trajectories\n")

    # -- warm-cache serving --------------------------------------------------
    service = QueryService(db, num_devices=2)
    print(f"{'batch':>8s} {'engine':>20s} {'results':>8s} "
          f"{'modeled':>11s} {'build(s)':>9s} {'cache':>6s}")
    for i in range(6):
        queries = queries_from_database(db, 4, rng=rng)
        resp = service.submit(SearchRequest(
            queries=queries, d=0.05, method="auto",
            request_id=f"batch-{i}"))
        m = resp.metrics
        print(f"{resp.request_id:>8s} {m.engine:>20s} "
              f"{len(resp.outcome.results):8d} "
              f"{m.modeled_seconds:10.6f}s {m.engine_build_s:8.3f}s "
              f"{'hit' if m.cache_hit else 'miss':>6s}")
    stats = service.stats()
    print(f"\ncache: {stats['cache']['hits']} hits, "
          f"{stats['cache']['misses']} misses; "
          f"{stats['cached_engines']} engine(s) resident "
          f"({stats['cache_resident_bytes'] / (1 << 20):.1f} MiB)\n")

    # -- sharded execution across the pool -----------------------------------
    queries = queries_from_database(db, 4, rng=rng)
    whole = service.submit(SearchRequest(
        queries=queries, d=0.05, method="gpu_temporal",
        params={"num_bins": 200}, request_id="whole"))
    sharded = service.submit(SearchRequest(
        queries=queries, d=0.05, method="gpu_temporal",
        params={"num_bins": 200}, shards=2, request_id="sharded"))
    same = sharded.outcome.results.equivalent_to(whole.outcome.results)
    print(f"2-way sharded search: {len(sharded.outcome.results)} "
          f"results, identical to whole-database search: {same}")
    print(f"  whole-db modeled {whole.metrics.modeled_seconds:.6f} s, "
          f"sharded (slowest shard) "
          f"{sharded.metrics.modeled_seconds:.6f} s\n")

    # -- degradation: the index does not fit ---------------------------------
    tiny = DeviceSpec(name="tiny-gpu", num_cores=64, num_sms=2,
                      warp_size=32, clock_hz=TESLA_C2075.clock_hz,
                      global_mem_bytes=1 << 16,
                      pcie_bandwidth=TESLA_C2075.pcie_bandwidth,
                      pcie_latency_s=TESLA_C2075.pcie_latency_s,
                      kernel_launch_s=TESLA_C2075.kernel_launch_s)
    cramped = QueryService(db, num_devices=1, spec=tiny)
    resp = cramped.submit(SearchRequest(
        queries=queries, d=0.05, method="gpu_temporal",
        params={"num_bins": 200}, request_id="cramped"))
    m = resp.metrics
    print(f"64 KiB device: degraded={m.degraded}, served by "
          f"{m.engine} ({len(resp.outcome.results)} results)")
    print(f"  reason: {m.degradation_reason}")
    agreed = resp.outcome.results.equivalent_to(whole.outcome.results)
    print(f"  fallback results match the GPU search: {agreed}")


if __name__ == "__main__":
    main()
