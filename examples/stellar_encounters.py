"""Astrobiology search (ii): close stellar flybys that could perturb
planetary systems (paper §I).

Every habitable star is searched against the whole stellar database for
approaches within the perturbation distance; trajectory-level episodes
report when each encounter starts and how long it lasts.

Run:  python examples/stellar_encounters.py
"""

import numpy as np

from repro.astro import close_encounters
from repro.data import random_dense_dataset


def main():
    rng = np.random.default_rng(7)
    stars = random_dense_dataset(scale=0.01)
    star_ids = np.unique(stars.traj_ids)
    habitable = rng.choice(star_ids, size=star_ids.size // 4,
                           replace=False)
    d_perturb = 0.03   # Oort-cloud-scale perturbation distance

    episodes = close_encounters(
        stars, d_perturb,
        habitable_star_ids=habitable,
        method="gpu_spatiotemporal", num_bins=200, num_subbins=4,
        strict_subbins=False)

    print(f"database: {star_ids.size} stars; "
          f"{habitable.size} habitable (queried)")
    print(f"{len(episodes)} close encounters within d = {d_perturb}\n")

    by_star: dict[int, int] = {}
    for ep in episodes:
        by_star[ep.star_id] = by_star.get(ep.star_id, 0) + 1

    print("most perturbed habitable stars:")
    for star, count in sorted(by_star.items(), key=lambda kv: -kv[1])[:8]:
        worst = min((ep for ep in episodes if ep.star_id == star),
                    key=lambda e: e.first_contact)
        print(f"  star {star:5d}: {count} encounters "
              f"(first at t = {worst.first_contact:.1f} "
              f"with star {worst.source_id})")

    quiet = set(int(s) for s in habitable) - set(by_star)
    print(f"\n{len(quiet)} habitable stars had no encounter at all — "
          "the dynamically quiet candidates for long-lived biospheres.")


if __name__ == "__main__":
    main()
