"""Astrobiology search (i): which habitable stars pass within the lethal
radius of a supernova, and when (paper §I).

A stellar neighbourhood at the solar density hosts a handful of supernova
events; we report every habitable star whose trajectory enters the hazard
radius during an event window, with its cumulative exposure.

Run:  python examples/supernova_sterilization.py
"""

import numpy as np

from repro.astro import Supernova, supernova_exposure
from repro.data import random_dense_dataset


def main():
    rng = np.random.default_rng(42)
    stars = random_dense_dataset(scale=0.01)   # ~655 stars, 193 steps
    n_stars = stars.num_trajectories
    print(f"stellar database: {n_stars} stars, {len(stars)} segments")

    # A third of the stars host potentially habitable planets.
    habitable = rng.choice(np.unique(stars.traj_ids),
                           size=n_stars // 3, replace=False)

    # Five supernovae at random epochs and positions; the hazard radius
    # (ozone-depletion distance) is a sizeable fraction of the box.
    t_lo, t_hi = stars.temporal_extent
    supernovae = [
        Supernova(event_id=10_000 + k,
                  position=rng.uniform(0.2, 0.8, 3),
                  t_start=rng.uniform(t_lo, t_hi - 20.0),
                  duration=15.0)
        for k in range(5)
    ]
    hazard_radius = 0.08

    episodes = supernova_exposure(
        stars, supernovae, hazard_radius,
        habitable_star_ids=habitable,
        method="gpu_spatiotemporal", num_bins=200, num_subbins=4,
        strict_subbins=False)

    print(f"\n{len(episodes)} habitable-star exposures within "
          f"d = {hazard_radius} of a supernova:")
    for ep in sorted(episodes, key=lambda e: -e.total_exposure)[:10]:
        windows = ", ".join(f"[{lo:.1f}, {hi:.1f}]"
                            for lo, hi in ep.intervals)
        print(f"  star {ep.star_id:5d} near SN {ep.source_id}: "
              f"exposure {ep.total_exposure:6.2f} time units "
              f"during {windows}")

    sterilized = {ep.star_id for ep in episodes}
    print(f"\n{len(sterilized)} of {habitable.size} habitable stars "
          f"were exposed at least once.")


if __name__ == "__main__":
    main()
