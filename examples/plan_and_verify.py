"""Plan, search, verify: the full production workflow.

1. The cost-based planner ranks the engines for the workload *before*
   building any index (sampling-based selectivity estimates priced with
   the calibrated machine models).
2. The chosen engine runs the search.
3. The independent verifier checks the result set (soundness at sampled
   instants + completeness spot checks) without trusting the engine.

Run:  python examples/plan_and_verify.py
"""

import numpy as np

from repro.core.planner import plan_search
from repro.core.search import DistanceThresholdSearch
from repro.core.verify import verify_results
from repro.data import merger_dataset, MergerConfig, queries_from_database


def main():
    db = merger_dataset(cfg=MergerConfig(particles_per_disk=400))
    queries = queries_from_database(db, 5, rng=np.random.default_rng(4))
    d = 2.0
    print(f"workload: |D| = {len(db)}, |Q| = {len(queries)}, d = {d}\n")

    print("1) planner ranking (no index built yet):")
    plans = plan_search(db, queries, d, num_bins=500, num_subbins=8)
    for rank, p in enumerate(plans, 1):
        print(f"   {rank}. {p.engine:20s} ~{p.est_seconds:.6f} s "
              f"(~{p.est_candidates_per_query:.0f} candidates/query)")
    choice = plans[0]

    print(f"\n2) running {choice.engine} ...")
    params = dict(choice.params)
    if choice.engine == "gpu_spatiotemporal":
        params["strict_subbins"] = False
    search = DistanceThresholdSearch(db, method=choice.engine, **params)
    outcome = search.run(queries, d)
    print(f"   {len(outcome.results)} results, modeled "
          f"{outcome.modeled_seconds:.6f} s")

    print("\n3) independent verification:")
    report = verify_results(outcome.results, queries, db, d)
    print(f"   {report.items_checked} items sound-checked, "
          f"{report.pairs_spot_checked} random pairs completeness-"
          f"checked")
    print(f"   verdict: {'PASS' if report.ok else 'FAIL'}")
    report.raise_on_failure()


if __name__ == "__main__":
    main()
