"""Index-parameter tuning walkthrough: the knobs §V sweeps, on one small
dataset — temporal bin count, spatial subbin count, FSG resolution and
the R-tree's r.

Run:  python examples/tuning_parameters.py
"""

import numpy as np

from repro.data import random_dataset
from repro.data.random_walk import make_random_walks
from repro.core.types import SegmentArray
from repro.engines import (GpuSpatialEngine, GpuSpatioTemporalEngine,
                           GpuTemporalEngine)
from repro.engines.cpu_rtree import tune_segments_per_mbb
from repro.gpu.costmodel import GpuCostModel
from repro.indexes import SpatioTemporalIndex


def main():
    db = random_dataset(scale=0.01)
    queries = SegmentArray.from_trajectories(make_random_walks(
        num_trajectories=3, num_timesteps=400,
        box_side=215.0, step_sigma=1.0, start_time_range=(0, 100),
        rng=np.random.default_rng(5), first_traj_id=10_000))
    d = 20.0
    model = GpuCostModel()
    print(f"|D| = {len(db)}, |Q| = {len(queries)}, d = {d}\n")

    print("GPUTemporal: temporal bin count m (more bins -> better")
    print("selectivity, saturating):")
    for m in (10, 100, 1000, 10000):
        engine = GpuTemporalEngine(db, num_bins=m)
        _, prof = engine.search(queries, d)
        print(f"  m={m:>6d}: {prof.total_comparisons:>9d} comparisons, "
              f"{prof.modeled_time(model).total:9.6f} s")

    vmax = SpatioTemporalIndex.max_admissible_subbins(db)
    print(f"\nGPUSpatioTemporal: subbin count v (admissible v <= {vmax}"
          " by the segment-extent constraint):")
    for v in (1, 2, 4, 8):
        engine = GpuSpatioTemporalEngine(db, num_bins=1000,
                                         num_subbins=v,
                                         strict_subbins=False)
        _, prof = engine.search(queries, d)
        nq = len(queries)
        print(f"  v={v}: {prof.total_comparisons:>9d} comparisons, "
              f"{prof.modeled_time(model).total:9.6f} s, "
              f"{100 * prof.defaulted_queries / nq:5.1f}% defaulted")

    print("\nGPUSpatial: FSG resolution (coarse -> poor selectivity,")
    print("fine -> duplicates and probes):")
    for cells in (10, 25, 50, 100):
        engine = GpuSpatialEngine(db, cells_per_dim=cells)
        _, prof = engine.search(queries, d)
        print(f"  {cells:>3d} cells/dim: {prof.total_comparisons:>9d} "
              f"comparisons, {prof.num_kernel_invocations} invocations, "
              f"{prof.modeled_time(model).total:9.6f} s")

    print("\nCPU-RTree: segments per MBB r (the paper reports only the")
    print("best r per experiment):")
    best, times = tune_segments_per_mbb(db, queries, d,
                                        r_values=(1, 2, 4, 8, 16))
    for r, t in sorted(times.items()):
        marker = "  <- best" if r == best else ""
        print(f"  r={r:>2d}: {t:9.6f} s{marker}")


if __name__ == "__main__":
    main()
