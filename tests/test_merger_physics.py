"""Physical validation of the restricted N-body merger simulator.

The substitution argument (DESIGN.md §2) rests on the simulator being a
*credible* dynamical system, not arbitrary noise; these tests pin the
physics down: symplectic energy behaviour, momentum conservation,
convergence with timestep, and the qualitative merger sequence.
"""

import numpy as np
import pytest

from repro.data.merger import MergerConfig, _plummer_accel, simulate_merger


def halo_energy(cfg, pos, vel):
    """Total two-body energy of the halo pair (the only self-consistent
    subsystem in a restricted N-body model)."""
    m, eps = cfg.halo_mass, cfg.softening
    kinetic = 0.5 * m * float(np.sum(vel ** 2))
    r = float(np.linalg.norm(pos[1] - pos[0]))
    potential = -m * m / np.sqrt(r * r + eps * eps)
    return kinetic + potential


def simulate_halos(cfg):
    """Integrate only the halo pair with the module's own scheme."""
    m, eps = cfg.halo_mass, cfg.softening
    half = cfg.initial_separation / 2.0
    v = cfg.orbit_energy * np.sqrt(4.0 * m / cfg.initial_separation)
    pos = np.array([[-half, -cfg.impact_parameter / 2, 0.0],
                    [half, cfg.impact_parameter / 2, 0.0]])
    vel = np.array([[v / 2, 0.0, 0.0], [-v / 2, 0.0, 0.0]])
    dt = cfg.t_end / ((cfg.num_snapshots - 1) * cfg.substeps)
    energies = [halo_energy(cfg, pos, vel)]

    def acc():
        delta = pos[1] - pos[0]
        r2 = delta @ delta + eps * eps
        a = m * delta / r2 ** 1.5
        return np.stack([a, -a])

    a = acc()
    for _ in range((cfg.num_snapshots - 1) * cfg.substeps):
        vel += 0.5 * dt * a
        pos += dt * vel
        a = acc()
        vel += 0.5 * dt * a
        energies.append(halo_energy(cfg, pos, vel))
    return np.array(energies)


class TestIntegratorPhysics:
    def test_energy_bounded_no_drift(self):
        """Leapfrog is symplectic: halo-pair energy stays bounded at a
        dt finer than production's (the pericenter passage grazes the
        softening length, the hardest part of the orbit)."""
        cfg = MergerConfig(particles_per_disk=1, num_snapshots=97,
                           substeps=32)
        energies = simulate_halos(cfg)
        rel = np.abs(energies - energies[0]) / abs(energies[0])
        assert rel.max() < 0.05

    def test_second_order_convergence(self):
        """Halving dt cuts the max energy error by ~4x (2nd order)."""
        errs = []
        for substeps in (8, 16):
            cfg = MergerConfig(particles_per_disk=1, num_snapshots=97,
                               substeps=substeps)
            e = simulate_halos(cfg)
            errs.append(np.abs(e - e[0]).max() / abs(e[0]))
        ratio = errs[0] / errs[1]
        assert 2.5 < ratio < 6.0

    def test_plummer_accel_points_inward(self):
        pos = np.array([[3.0, 0.0, 0.0], [0.0, -2.0, 0.0]])
        a = _plummer_accel(pos, np.zeros(3), 10.0, 1.0)
        # Acceleration toward the origin: negative dot with position.
        assert np.all(np.einsum("ij,ij->i", a, pos) < 0)

    def test_plummer_softening_regularizes_center(self):
        """At r -> 0 the softened force vanishes instead of diverging."""
        near = _plummer_accel(np.array([[1e-9, 0, 0]]), np.zeros(3),
                              10.0, 1.0)
        assert np.linalg.norm(near) < 1e-6


class TestMergerSequence:
    @pytest.fixture(scope="class")
    def run(self):
        cfg = MergerConfig(particles_per_disk=96, num_snapshots=49,
                           substeps=16)
        return cfg, *simulate_merger(cfg)

    def test_com_momentum_conserved(self, run):
        """The symmetric initial conditions leave the halo-pair COM at
        rest: the particle cloud's centroid stays near the origin."""
        cfg, times, pos = run
        com = pos.mean(axis=1)
        assert np.linalg.norm(com[-1]) < 0.25 * cfg.initial_separation

    def test_disks_start_separated_then_mix(self, run):
        cfg, times, pos = run
        n = cfg.particles_per_disk
        sep = np.linalg.norm(pos[:, :n].mean(axis=1)
                             - pos[:, n:].mean(axis=1), axis=1)
        assert sep[0] > 0.8 * cfg.initial_separation
        assert sep.min() < 0.4 * sep[0]

    def test_rotation_curves_realized(self, run):
        """Early on, disk particles actually orbit their halo: the mean
        speed is near the circular speed at the mean radius."""
        cfg, times, pos = run
        n = cfg.particles_per_disk
        first = pos[0, :n] - pos[0, :n].mean(axis=0)
        second = pos[1, :n] - pos[1, :n].mean(axis=0)
        dt = times[1] - times[0]
        speed = np.linalg.norm(second - first, axis=1) / dt
        r = np.linalg.norm(first, axis=1)
        vc = np.sqrt(cfg.halo_mass * r * r
                     / (r * r + cfg.softening ** 2) ** 1.5)
        assert np.median(np.abs(speed - vc) / vc) < 0.5

    def test_density_contrast_grows(self, run):
        """Tidal interaction skews the density distribution: late-time
        pairwise-distance spread exceeds the initial disk's."""
        cfg, times, pos = run
        spread0 = pos[0].std(axis=0).max()
        spread1 = pos[-1].std(axis=0).max()
        assert spread1 > spread0 * 0.8  # system neither collapses ...
        r_last = np.linalg.norm(pos[-1] - pos[-1].mean(axis=0), axis=1)
        assert np.median(r_last) < np.percentile(r_last, 95) / 2  # ... nor
        # stays homogeneous: a dense core with an extended envelope.
