"""Tests for the independent result verifier."""

import numpy as np
import pytest

from repro.core.result import ResultSet
from repro.core.verify import verify_results
from repro.engines import GpuSpatioTemporalEngine, GpuTemporalEngine


class TestVerifyPasses:
    def test_correct_results_pass(self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        report = verify_results(truth, queries, db, d)
        assert report.ok
        assert report.items_checked == len(truth)
        assert report.pairs_spot_checked > 0
        report.raise_on_failure()  # no-op when ok

    @pytest.mark.parametrize("factory", [
        lambda db: GpuTemporalEngine(db, num_bins=40),
        lambda db: GpuSpatioTemporalEngine(db, num_bins=40,
                                           num_subbins=2,
                                           strict_subbins=False),
    ])
    def test_engine_output_passes(self, factory, db_queries_truth):
        db, queries, d, _ = db_queries_truth
        res, _ = factory(db).search(queries, d)
        assert verify_results(res, queries, db, d).ok

    def test_self_join_exclusion_respected(self, small_db):
        from repro.core.bruteforce import brute_force_search
        res = brute_force_search(small_db, small_db, 1.0,
                                 exclude_same_trajectory=True)
        report = verify_results(res, small_db, small_db, 1.0,
                                exclude_same_trajectory=True)
        assert report.ok


class TestVerifyCatchesCorruption:
    def test_catches_fabricated_item(self, db_queries_truth):
        """A result pair that is never within d fails soundness."""
        db, queries, d, truth = db_queries_truth
        # Find a pair with temporal overlap but distance > d.
        from repro.core.knn import pair_min_distance
        for qi in range(len(queries)):
            for ei in range(len(db)):
                ov, dm = pair_min_distance(queries, db,
                                           np.array([qi]),
                                           np.array([ei]))
                if ov[0] and dm[0] > d * 2:
                    fake = ResultSet(
                        np.concatenate([truth.q_ids,
                                        [queries.seg_ids[qi]]]),
                        np.concatenate([truth.e_ids, [db.seg_ids[ei]]]),
                        np.concatenate([truth.t_lo,
                                        [max(queries.ts[qi],
                                             db.ts[ei])]]),
                        np.concatenate([truth.t_hi,
                                        [min(queries.te[qi],
                                             db.te[ei])]]))
                    report = verify_results(fake, queries, db, d)
                    assert not report.ok
                    assert report.soundness_violations
                    with pytest.raises(AssertionError):
                        report.raise_on_failure()
                    return
        pytest.skip("no far pair found")

    def test_catches_missing_results(self, db_queries_truth):
        """Dropping half the result set fails the completeness check."""
        db, queries, d, truth = db_queries_truth
        half = ResultSet(truth.q_ids[::2], truth.e_ids[::2],
                         truth.t_lo[::2], truth.t_hi[::2])
        report = verify_results(half, queries, db, d,
                                spot_pairs=len(queries) * len(db))
        assert not report.ok
        assert report.completeness_violations

    def test_catches_bad_interval(self, db_queries_truth):
        """An interval outside the segments' temporal overlap fails."""
        db, queries, d, truth = db_queries_truth
        bad_lo = truth.t_lo.copy()
        bad_hi = truth.t_hi.copy()
        bad_lo[0] = -1e9
        bad = ResultSet(truth.q_ids, truth.e_ids, bad_lo, bad_hi)
        report = verify_results(bad, queries, db, d, spot_pairs=10)
        assert report.interval_violations
