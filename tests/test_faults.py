"""The fault-injection framework: specs, the injector, the gpu-layer
hooks, and the seeded chaos campaign."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (CampaignConfig, FAULT_KINDS, FaultInjector,
                          FaultSpec, KernelAbortError, LaneBlackoutError,
                          TransferFault, run_campaign)
from repro.gpu.device import TESLA_C2075, VirtualGPU
from repro.gpu.kernel import KernelLauncher
from repro.gpu.memory import DeviceOutOfMemoryError


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gamma_ray")

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rate_bounds(self, bad):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(kind="oom", rate=bad)

    def test_after_and_count_validation(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec(kind="h2d", after=-1)
        with pytest.raises(ValueError, match="count"):
            FaultSpec(kind="h2d", count=0)

    def test_stall_factor_must_slow_down(self):
        with pytest.raises(ValueError, match="stall_factor"):
            FaultSpec(kind="kernel_stall", stall_factor=1.0)

    def test_matches_site_and_lane(self):
        oom = FaultSpec(kind="oom")
        assert oom.matches("alloc", lane=0)
        assert not oom.matches("h2d", lane=0)
        pinned = FaultSpec(kind="d2h", lanes=(1, 2))
        assert pinned.matches("d2h", lane=2)
        assert not pinned.matches("d2h", lane=0)
        # An un-homed device never matches a lane-restricted spec.
        assert not pinned.matches("d2h", lane=None)
        # Blackouts are eligible at every site.
        blk = FaultSpec(kind="lane_blackout")
        for site in ("alloc", "h2d", "d2h", "kernel"):
            assert blk.matches(site, lane=None)


def _fired_ordinals(seed: int, rate: float, ops: int = 300) -> list[int]:
    inj = FaultInjector([FaultSpec(kind="h2d", rate=rate)], seed=seed)
    fired = []
    for i in range(ops):
        try:
            inj.check("h2d", lane=0, label=f"op{i}")
        except TransferFault:
            fired.append(i)
    return fired


class TestInjectorDeterminism:
    def test_same_seed_same_activations(self):
        assert _fired_ordinals(7, 0.2) == _fired_ordinals(7, 0.2)

    def test_different_seed_different_activations(self):
        assert _fired_ordinals(1, 0.2) != _fired_ordinals(2, 0.2)

    def test_rate_is_approximately_honored(self):
        fired = _fired_ordinals(0, 0.2, ops=1000)
        assert 120 <= len(fired) <= 280

    def test_rate_one_fires_every_eligible_op(self):
        assert _fired_ordinals(0, 1.0, ops=20) == list(range(20))

    def test_after_and_count_gate_activations(self):
        inj = FaultInjector(
            [FaultSpec(kind="h2d", rate=1.0, after=2, count=2)], seed=0)
        outcomes = []
        for i in range(6):
            try:
                inj.check("h2d", lane=0, label=f"op{i}")
                outcomes.append("ok")
            except TransferFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "ok", "fault", "fault", "ok", "ok"]

    def test_disabled_injector_is_inert(self):
        inj = FaultInjector([FaultSpec(kind="h2d", rate=1.0)], seed=0)
        inj.enabled = False
        inj.check("h2d", lane=0, label="quiet")
        assert inj.total_ops == 0 and inj.total_fired == 0


class TestFaultKindsOnDevice:
    """Each fault kind, raised through the real gpu-layer hooks."""

    def test_oom_names_lane_and_resident_allocations(self):
        inj = FaultInjector([FaultSpec(kind="oom", after=1)], seed=0)
        gpu = VirtualGPU(TESLA_C2075, faults=inj, lane=3)
        gpu.memory.put("db.coords", np.zeros((8, 4)))
        with pytest.raises(DeviceOutOfMemoryError) as ei:
            gpu.memory.alloc("result_buffer", (16, 4))
        assert "lane 3" in str(ei.value)
        assert "db.coords" in str(ei.value)
        assert ei.value.lane == 3
        assert ei.value.allocations == {"db.coords": 8 * 4 * 8}
        # The failed allocation was never registered.
        assert "result_buffer" not in gpu.memory

    @pytest.mark.parametrize("direction", ["h2d", "d2h"])
    def test_transfer_faults_keep_the_ledger_clean(self, direction):
        inj = FaultInjector([FaultSpec(kind=direction)], seed=0)
        gpu = VirtualGPU(TESLA_C2075, faults=inj, lane=1)
        op = getattr(gpu.transfers, direction)
        with pytest.raises(TransferFault) as ei:
            op("payload", 4096)
        assert ei.value.direction == direction
        assert ei.value.lane == 1
        assert gpu.transfers.num_transfers == 0

    def test_kernel_abort_records_nothing(self):
        inj = FaultInjector([FaultSpec(kind="kernel_abort")], seed=0)
        gpu = VirtualGPU(TESLA_C2075, faults=inj, lane=0)
        launcher = KernelLauncher(gpu)
        with pytest.raises(KernelAbortError):
            with launcher.launch("gpu_temporal", num_threads=4) as k:
                k.thread_work[:] = 5
        assert gpu.kernel_stats == []

    def test_kernel_stall_inflates_thread_work(self):
        inj = FaultInjector(
            [FaultSpec(kind="kernel_stall", stall_factor=4.0)], seed=0)
        gpu = VirtualGPU(TESLA_C2075, faults=inj, lane=0)
        with KernelLauncher(gpu).launch("gpu_temporal",
                                        num_threads=4) as k:
            k.thread_work[:] = 10
        [stats] = gpu.kernel_stats
        assert stats.thread_work.tolist() == [40, 40, 40, 40]

    def test_lane_blackout_kills_lane_until_revived(self):
        inj = FaultInjector(
            [FaultSpec(kind="lane_blackout", count=1)], seed=0)
        gpu = VirtualGPU(TESLA_C2075, faults=inj, lane=2)
        with pytest.raises(LaneBlackoutError):
            gpu.transfers.h2d("queries", 100)
        assert inj.dead_lanes == {2}
        # Every subsequent operation on the dead lane fails, at any
        # site, regardless of the spec's count being spent.
        with pytest.raises(LaneBlackoutError):
            gpu.memory.alloc("buf", (4,))
        inj.revive(2)
        gpu.transfers.h2d("queries", 100)
        assert gpu.transfers.num_transfers == 1
        assert inj.fired_by_kind == {"lane_blackout": 1}

    def test_lane_restriction_spares_other_lanes(self):
        inj = FaultInjector(
            [FaultSpec(kind="h2d", lanes=(1,))], seed=0)
        healthy = VirtualGPU(TESLA_C2075, faults=inj, lane=0)
        healthy.transfers.h2d("queries", 64)
        doomed = VirtualGPU(TESLA_C2075, faults=inj, lane=1)
        with pytest.raises(TransferFault):
            doomed.transfers.h2d("queries", 64)

    def test_report_shape(self):
        inj = FaultInjector([FaultSpec(kind="h2d", rate=1.0)], seed=5)
        with pytest.raises(TransferFault):
            inj.check("h2d", lane=0, label="x")
        rep = inj.report()
        assert rep["seed"] == 5
        assert rep["ops_by_site"] == {"h2d": 1}
        assert rep["fired_by_kind"] == {"h2d": 1}
        assert rep["total_ops"] == rep["total_fired"] == 1
        assert rep["specs"][0]["kind"] == "h2d"


class TestCampaign:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="num_requests"):
            CampaignConfig(num_requests=0)
        with pytest.raises(ValueError, match="injection_rate"):
            CampaignConfig(injection_rate=1.5)

    def test_campaign_survives_with_every_fault_kind(self):
        report = run_campaign(CampaignConfig(seed=0))
        assert report.ok, report.render()
        assert report.total == 200
        # Everything answered was verified exact against cpu_scan
        # ground truth; nothing was lost or duplicated.
        assert report.verified == report.answered
        assert not report.mismatches
        # The storm actually exercised the whole taxonomy.
        assert set(report.injector["fired_by_kind"]) == set(FAULT_KINDS)
        assert report.injector["total_fired"] > 0
        # Non-answers are typed rejections, never silent drops.
        assert set(report.outcomes) <= {"ok", "degraded", "overloaded",
                                        "deadline_exceeded"}
        assert report.outcomes["degraded"] > 0

    def test_campaign_is_deterministic(self):
        cfg = CampaignConfig(seed=11, num_requests=60)
        a = run_campaign(cfg)
        b = run_campaign(cfg)
        assert a.outcomes == b.outcomes
        assert a.injector == b.injector
        assert a.verified == b.verified
        assert a.failover_hops == b.failover_hops

    def test_seed_changes_the_campaign(self):
        a = run_campaign(CampaignConfig(seed=0, num_requests=60))
        b = run_campaign(CampaignConfig(seed=1, num_requests=60))
        assert (a.injector["fired_by_kind"]
                != b.injector["fired_by_kind"])

    def test_report_roundtrips_to_dict(self):
        import json
        report = run_campaign(CampaignConfig(seed=3, num_requests=24))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] == report.ok
        assert payload["outcomes"] == report.outcomes
        assert "survived" in report.render()
