"""Tests for the cost-based query planner."""

import numpy as np
import pytest

from repro.core.planner import PlanEstimate, WorkloadStats, plan_search
from repro.experiments import (ExperimentRunner, scenario_s2_merger,
                               scenario_s3_random_dense)


class TestWorkloadStats:
    def test_measure(self, small_db, small_queries):
        s = WorkloadStats.measure(small_db, small_queries)
        assert s.num_entries == len(small_db)
        assert s.num_queries == len(small_queries)
        assert s.volume > 0 and s.total_time > 0
        assert s.coexisting_entries <= s.num_entries
        assert np.all(s.mean_entry_extent_s <= s.max_entry_extent_s)

    def test_coexistence(self, small_db):
        s = WorkloadStats.measure(small_db, small_db)
        # Walk segments last 1 of ~24 total time units: a small slice of
        # the database coexists at any instant.
        assert s.coexisting_entries < 0.2 * s.num_entries


class TestPlanSearch:
    def test_returns_ranked_estimates(self, small_db, small_queries):
        plans = plan_search(small_db, small_queries, 2.0, num_bins=40)
        assert len(plans) == 4
        assert all(isinstance(p, PlanEstimate) for p in plans)
        times = [p.est_seconds for p in plans]
        assert times == sorted(times)
        assert all(p.est_candidates_per_query >= 0 for p in plans)

    def test_candidates_monotone_in_d(self, small_db, small_queries):
        by_engine = {}
        for d in (0.5, 5.0, 20.0):
            for p in plan_search(small_db, small_queries, d,
                                 num_bins=40):
                by_engine.setdefault(p.engine, []).append(
                    p.est_candidates_per_query)
        # Temporal is d-independent; the others grow.
        t = by_engine["gpu_temporal"]
        assert t[0] == t[1] == t[2]
        for eng in ("gpu_spatial", "cpu_rtree"):
            assert by_engine[eng] == sorted(by_engine[eng])

    @pytest.mark.parametrize("scenario_fn,d,config", [
        (scenario_s2_merger, 0.01,
         dict(num_bins=1000, num_subbins=16)),
        (scenario_s2_merger, 5.0,
         dict(num_bins=1000, num_subbins=16)),
        (scenario_s3_random_dense, 0.09,
         dict(num_bins=1000, num_subbins=4)),
    ])
    def test_bounded_regret(self, scenario_fn, d, config):
        """Choosing the planner's pick never costs more than 4x the
        true best (first-order estimates; the point is avoiding the
        many-times-worse engines, which it does)."""
        runner = ExperimentRunner(scenario_fn(0.005))
        plans = plan_search(runner.database, runner.queries, d, **config)
        measured = {}
        for eng in ("gpu_temporal", "gpu_spatiotemporal", "cpu_rtree"):
            rec, _ = runner.run_one(eng, d)
            measured[eng] = rec.modeled_seconds
        best_measured = min(measured.values())
        worst_measured = max(measured.values())
        predicted_best = next(p.engine for p in plans
                              if p.engine in measured)
        assert measured[predicted_best] <= 4.0 * best_measured
        # And strictly avoids the worst engine when spreads are wide.
        if worst_measured > 3.0 * best_measured:
            assert measured[predicted_best] < worst_measured

    def test_candidate_estimates_track_measured_counts(self):
        """Sampled candidate counts land within 2x of the engines'
        actual per-query comparison counts."""
        runner = ExperimentRunner(scenario_s2_merger(0.005))
        plans = {p.engine: p for p in plan_search(
            runner.database, runner.queries, 0.1,
            num_bins=1000, num_subbins=16)}
        rec, _ = runner.run_one("gpu_temporal", 0.1)
        measured = rec.comparisons / len(runner.queries)
        est = plans["gpu_temporal"].est_candidates_per_query
        assert est == pytest.approx(measured, rel=1.0)

    def test_sparse_small_prefers_cpu_over_blind_gpu(self, small_db,
                                                     small_queries):
        """The paper's decision rule: on sparse/small data the CPU beats
        the spatially- or temporally-blind GPU schemes."""
        plans = plan_search(small_db, small_queries, 0.5, num_bins=40)
        order = [p.engine for p in plans]
        assert order.index("cpu_rtree") < order.index("gpu_temporal")
