"""Tests for the cost-model calibration machinery."""

import pytest

from repro.experiments.calibration import (Anchor, PAPER_ANCHORS,
                                           fit_cpu_cycles,
                                           fit_gpu_cycles,
                                           verify_calibration)
from repro.gpu.costmodel import CpuCostModel, GpuCostModel


class TestFits:
    def test_gpu_fit_recovers_shipped_constants(self):
        res = fit_gpu_cycles(
            [PAPER_ANCHORS["gpu_temporal_merger_d0.001"],
             PAPER_ANCHORS["gpu_st_v1_merger_equiv"]])
        shipped = GpuCostModel()
        assert res.cycles["cycles_per_comparison"] == pytest.approx(
            shipped.cycles_per_comparison, rel=0.05)
        assert res.cycles["cycles_per_gather"] == pytest.approx(
            shipped.cycles_per_gather, rel=0.35)
        assert res.max_abs_residual < 1e-9  # exact fit: 2 eqs, 2 unknowns

    def test_cpu_fit_recovers_shipped_constants(self):
        res = fit_cpu_cycles([PAPER_ANCHORS["cpu_rtree_merger_d0.001"]])
        shipped = CpuCostModel()
        assert res.cycles["cycles_per_comparison"] == pytest.approx(
            shipped.cycles_per_comparison, rel=0.05)
        assert res.max_abs_residual < 1e-9

    def test_gpu_fit_overdetermined_residuals(self):
        """With an inconsistent third anchor the fit reports residuals."""
        bogus = Anchor("bogus", seconds=100.0, comparisons=1e9)
        res = fit_gpu_cycles(
            [PAPER_ANCHORS["gpu_temporal_merger_d0.001"],
             PAPER_ANCHORS["gpu_st_v1_merger_equiv"], bogus])
        assert res.max_abs_residual > 0.0


class TestVerification:
    def test_shipped_constants_pass(self):
        errors = verify_calibration()
        assert set(errors) == set(PAPER_ANCHORS)
        assert all(abs(e) < 0.25 for e in errors.values())

    def test_drifted_constants_fail(self):
        drifted = GpuCostModel(cycles_per_comparison=10_000.0)
        with pytest.raises(AssertionError, match="calibration drift"):
            verify_calibration(gpu_model=drifted)

    def test_tolerance_adjustable(self):
        drifted = GpuCostModel(cycles_per_comparison=3300.0)  # +10 %
        errors = verify_calibration(gpu_model=drifted, tolerance=0.2)
        assert max(abs(e) for e in errors.values()) > 0.05
