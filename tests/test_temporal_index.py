"""Tests for the temporal-bin index (GPUTemporal's index, §IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.types import SegmentArray
from repro.indexes.temporal import TemporalIndex
from tests.conftest import make_walk_trajectories


@pytest.fixture(scope="module")
def index():
    db = SegmentArray.from_trajectories(
        make_walk_trajectories(30, 20, seed=42, start_spread=8.0))
    return TemporalIndex.build(db, 16)


class TestBuild:
    def test_rejects_bad_inputs(self, small_db):
        with pytest.raises(ValueError):
            TemporalIndex.build(small_db, 0)
        with pytest.raises(ValueError):
            TemporalIndex.build(SegmentArray.empty(), 4)

    def test_segments_sorted_by_start(self, index):
        assert np.all(np.diff(index.segments.ts) >= 0)

    def test_bin_assignment(self, index):
        """Entry i is in bin floor((ts - tmin)/b) — §IV-B.1."""
        seg = index.segments
        bins = index.bin_of_rows()
        expect = np.clip(np.floor((seg.ts - index.t_min)
                                  / index.bin_width), 0,
                         index.num_bins - 1)
        np.testing.assert_array_equal(bins, expect.astype(np.int64))

    def test_bins_are_contiguous_row_ranges(self, index):
        """[B_first, B_last] index ranges tile the sorted database."""
        rows_seen = []
        for j in range(index.num_bins):
            f, l = index.bin_first[j], index.bin_last[j]
            if l >= 0:
                rows_seen.append(np.arange(f, l + 1))
        rows = np.concatenate(rows_seen)
        np.testing.assert_array_equal(rows,
                                      np.arange(len(index.segments)))

    def test_bin_extents_cover_member_segments(self, index):
        """B_end >= max t_end of the bin's segments (spill-over, and
        B_end >= nominal right edge)."""
        seg = index.segments
        bins = index.bin_of_rows()
        for j in range(index.num_bins):
            members = bins == j
            nominal = index.bin_start[j] + index.bin_width
            assert index.bin_end[j] >= nominal - 1e-12
            if np.any(members):
                assert index.bin_end[j] >= seg.te[members].max() - 1e-12

    def test_empty_bin_sentinels(self):
        # A dataset with a big temporal gap produces empty bins.
        import numpy as np
        from repro.core.types import Trajectory
        t1 = Trajectory(0, np.array([0.0, 1.0]), np.zeros((2, 3)))
        t2 = Trajectory(1, np.array([99.0, 100.0]), np.zeros((2, 3)))
        idx = TemporalIndex.build(
            SegmentArray.from_trajectories([t1, t2]), 50)
        empties = np.flatnonzero(idx.bin_last == -1)
        assert empties.size > 0
        assert np.all(idx.bin_first[empties] == len(idx.segments))


class TestQuery:
    def test_candidate_rows_complete(self, index):
        """E_k contains every row that temporally overlaps the query —
        the index may over-approximate but never miss (completeness is
        what makes the search exact after refinement)."""
        seg = index.segments
        rng = np.random.default_rng(3)
        qs = rng.uniform(index.t_min - 2, seg.te.max() + 2, 64)
        qe = qs + rng.uniform(0, 5, 64)
        lo, hi = index.candidate_rows(qs, qe)
        for k in range(64):
            overlapping = np.flatnonzero((seg.ts <= qe[k])
                                         & (seg.te >= qs[k]))
            if overlapping.size:
                assert lo[k] <= overlapping.min()
                assert hi[k] >= overlapping.max()

    def test_contiguity(self, index):
        """E_k is a single contiguous range (lo <= hi or empty)."""
        qs = np.linspace(index.t_min, index.segments.te.max(), 40)
        lo, hi = index.candidate_rows(qs, qs + 1.0)
        assert np.all((lo <= hi) | (hi == -1))

    def test_query_outside_extent(self, index):
        t_max = index.segments.te.max()
        lo, hi = index.candidate_rows(np.array([t_max + 100.0]),
                                      np.array([t_max + 101.0]))
        assert lo[0] > hi[0]
        lo, hi = index.candidate_rows(np.array([index.t_min - 100.0]),
                                      np.array([index.t_min - 99.0]))
        assert lo[0] > hi[0]

    def test_query_covering_everything(self, index):
        lo, hi = index.candidate_rows(np.array([-1e9]), np.array([1e9]))
        assert lo[0] == 0
        assert hi[0] == len(index.segments) - 1

    def test_more_bins_tighter_or_equal(self):
        """Selectivity improves (weakly) with bin count — the mechanism
        behind the §V-C bin sweep."""
        db = SegmentArray.from_trajectories(
            make_walk_trajectories(20, 15, seed=8, start_spread=10.0))
        q_start = np.array([5.0])
        q_end = np.array([6.0])
        widths = []
        for m in (2, 8, 32, 128):
            idx = TemporalIndex.build(db, m)
            lo, hi = idx.candidate_rows(q_start, q_end)
            widths.append(int(hi[0] - lo[0] + 1))
        assert widths == sorted(widths, reverse=True)

    def test_nbytes(self, index):
        assert index.nbytes() == 4 * 8 * index.num_bins


@given(num_bins=st.integers(1, 200), seed=st.integers(0, 20))
@settings(max_examples=30, deadline=None)
def test_completeness_property(num_bins, seed):
    """Index completeness holds for arbitrary bin counts and datasets."""
    db = SegmentArray.from_trajectories(
        make_walk_trajectories(6, 5, seed=seed, start_spread=12.0))
    idx = TemporalIndex.build(db, num_bins)
    seg = idx.segments
    rng = np.random.default_rng(seed)
    qs = rng.uniform(-1, 20, 8)
    qe = qs + rng.uniform(0, 8, 8)
    lo, hi = idx.candidate_rows(qs, qe)
    for k in range(8):
        overlapping = np.flatnonzero((seg.ts <= qe[k]) & (seg.te >= qs[k]))
        if overlapping.size:
            assert lo[k] <= overlapping.min() <= overlapping.max() <= hi[k]


class TestRegressions:
    """Edge shapes that broke (or nearly broke) earlier index builds,
    pinned here so the ingestion/compaction path can't reintroduce
    them."""

    def test_single_bin_index(self):
        """m = 1: one bin holds everything; every overlapping query
        must see the full row range and none beyond."""
        db = SegmentArray.from_trajectories(
            make_walk_trajectories(8, 10, seed=3, start_spread=6.0))
        idx = TemporalIndex.build(db, 1)
        assert idx.bin_first[0] == 0
        assert idx.bin_last[0] == len(db) - 1
        lo, hi = idx.candidate_rows(np.array([idx.t_min]),
                                    np.array([idx.t_min + 1.0]))
        assert lo[0] == 0 and hi[0] == len(db) - 1
        # Outside the extent: still empty even with a single bin.
        t_max = idx.segments.te.max()
        lo, hi = idx.candidate_rows(np.array([t_max + 10.0]),
                                    np.array([t_max + 11.0]))
        assert lo[0] > hi[0]

    def test_every_segment_in_last_bin(self):
        """All t_start values cluster at the very end of the temporal
        extent except one long-lived spiller: B_end of the last bin
        must absorb the spill and queries at the far end must still
        find the early segment via the prefix-max schedule."""
        n = 12
        # Extent is [0, 50] (te.max() counts): the cluster at
        # t_start = 49.9 falls in the last of 8 bins; row 0 starts at
        # t_min but lives until t = 50.
        ts = np.full(n, 49.9)
        ts[0] = 0.0          # defines t_min; lands in bin 0
        te = np.full(n, 50.0)
        z = np.zeros(n)
        db = SegmentArray(z, z, z, ts, z + 1.0, z, z, te,
                          np.arange(n, dtype=np.int64))
        idx = TemporalIndex.build(db, 8)
        # Rows 1.. all land in the last bin.
        assert idx.bin_first[-1] == 1
        assert idx.bin_last[-1] == n - 1
        # The spiller stretches its bin's extent.
        assert idx.bin_end[0] >= 50.0
        # A query far past the nominal extent still reaches row 0.
        lo, hi = idx.candidate_rows(np.array([40.0]),
                                    np.array([45.0]))
        assert lo[0] == 0 and hi[0] >= 0

    def test_same_instant_burst_single_bin(self):
        """Zero-width temporal extent (every t_start equal): the build
        must not divide by zero, and all rows share one bin."""
        n = 6
        t = np.full(n, 5.0)
        z = np.zeros(n)
        db = SegmentArray(z + 1, z, z, t, z + 2, z, z, t,
                          np.arange(n, dtype=np.int64))
        idx = TemporalIndex.build(db, 10)
        occupied = np.flatnonzero(idx.bin_last >= 0)
        assert len(occupied) == 1
        lo, hi = idx.candidate_rows(np.array([5.0]), np.array([5.0]))
        assert lo[0] == 0 and hi[0] == n - 1

    def test_bin_ranges_contiguous_after_compaction(self):
        """An index built over a compacted database (live base rows
        followed by merged delta rows, seg_ids non-contiguous) still
        yields contiguous, disjoint, covering bin row ranges."""
        from repro.ingest import VersionedDatabase
        base = SegmentArray.from_trajectories(
            make_walk_trajectories(10, 8, seed=11, start_spread=5.0))
        vdb = VersionedDatabase(base)
        # Distinct trajectory ids for the arrivals.
        from repro.core.types import Trajectory
        extra = SegmentArray.from_trajectories([
            Trajectory(t.traj_id + 50, t.times, t.positions)
            for t in make_walk_trajectories(4, 8, seed=12,
                                            start_spread=5.0)])
        vdb.append(extra)
        vdb.delete_trajectory(2)
        vdb.compact()
        db = vdb.base
        idx = TemporalIndex.build(db, 12)
        covered = 0
        prev_last = -1
        for j in range(idx.num_bins):
            first, last = idx.bin_first[j], idx.bin_last[j]
            if last < 0:        # empty bin
                continue
            assert first == prev_last + 1   # contiguous, disjoint
            prev_last = last
            covered += last - first + 1
        assert covered == len(db)           # covering
