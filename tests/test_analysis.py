"""Tests for proximity-graph analysis and the CPU scan baseline."""

import numpy as np
import pytest

from repro.core.analysis import (co_travel_time, interaction_groups,
                                 most_exposed, proximity_graph)
from repro.core.bruteforce import brute_force_search
from repro.core.types import SegmentArray, Trajectory
from repro.engines import CpuScanEngine


@pytest.fixture(scope="module")
def trio():
    """Three objects: 0 and 1 travel together; 2 is far away."""
    line = np.arange(6, dtype=float)
    mk = lambda tid, off: Trajectory(
        tid, line, np.column_stack([line, np.full(6, off),
                                    np.zeros(6)]))
    db = SegmentArray.from_trajectories(
        [mk(0, 0.0), mk(1, 0.5), mk(2, 100.0)])
    results = brute_force_search(db, db, 1.0,
                                 exclude_same_trajectory=True)
    return db, results


class TestProximityGraph:
    def test_edges_and_weights(self, trio):
        db, results = trio
        g = proximity_graph(results, db, db)
        assert set(g.nodes) == {0, 1, 2}
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        # Together the whole common extent: weight = 5 time units.
        assert g[0][1]["weight"] == pytest.approx(5.0)
        assert g[0][1]["first_contact"] == pytest.approx(0.0)
        assert g[0][1]["episodes"] == 1

    def test_min_dwell_filters(self, trio):
        db, results = trio
        g = proximity_graph(results, db, db, min_dwell=10.0)
        assert g.number_of_edges() == 0

    def test_self_pairs_ignored(self, trio):
        db, _ = trio
        with_self = brute_force_search(db, db, 1.0)
        g = proximity_graph(with_self, db, db)
        assert not any(a == b for a, b in g.edges)

    def test_interaction_groups(self, trio):
        db, results = trio
        g = proximity_graph(results, db, db)
        groups = interaction_groups(g)
        assert groups == [{0, 1}]

    def test_most_exposed(self, trio):
        db, results = trio
        g = proximity_graph(results, db, db)
        top = most_exposed(g, n=3)
        assert {t for t, _ in top} == {0, 1}
        assert all(w == pytest.approx(5.0) for _, w in top)

    def test_co_travel_time(self, trio):
        db, results = trio
        g = proximity_graph(results, db, db)
        assert co_travel_time(g, 0, 1) == pytest.approx(5.0)
        assert co_travel_time(g, 0, 2) == 0.0

    def test_larger_graph_structure(self, small_db):
        results = brute_force_search(small_db, small_db, 2.0,
                                     exclude_same_trajectory=True)
        g = proximity_graph(results, small_db, small_db)
        assert g.number_of_nodes() == small_db.num_trajectories
        # Weighted degrees are non-negative and edges symmetric by
        # construction (undirected graph).
        assert all(w >= 0 for _, w in g.degree(weight="weight"))


class TestCpuScan:
    def test_matches_brute_force(self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        res, prof = CpuScanEngine(db).search(queries, d)
        assert res.equivalent_to(truth)
        assert prof.comparisons >= len(truth)
        assert prof.index_bytes == 0 and prof.node_visits == 0

    def test_scan_window_is_superset_not_cross_product(self, small_db,
                                                       small_queries):
        _, prof = CpuScanEngine(small_db).search(small_queries, 1.0)
        assert prof.comparisons < len(small_db) * len(small_queries)

    def test_exclude_same_trajectory(self, small_db):
        res, _ = CpuScanEngine(small_db).search(
            small_db, 0.5, exclude_same_trajectory=True)
        truth = brute_force_search(small_db, small_db, 0.5,
                                   exclude_same_trajectory=True)
        assert res.equivalent_to(truth)

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            CpuScanEngine(SegmentArray.empty())

    def test_facade_integration(self, db_queries_truth):
        from repro.core.search import DistanceThresholdSearch
        db, queries, d, truth = db_queries_truth
        outcome = DistanceThresholdSearch(db, method="cpu_scan").run(
            queries, d)
        assert outcome.results.equivalent_to(truth)
        assert outcome.modeled_seconds > 0
