"""Unit tests for repro.core.geometry (MBBs and spatial predicates)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometry import (MBB, expand, mbb_min_distance, overlaps,
                                 overlaps_one_to_many,
                                 point_segment_distance, segment_mbbs)


def box(lo, hi):
    return MBB(np.array([lo], dtype=float), np.array([hi], dtype=float))


class TestMBB:
    def test_construction_and_shape(self):
        b = MBB(np.zeros((4, 3)), np.ones((4, 3)))
        assert len(b) == 4 and b.ndim == 3

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="hi >= lo"):
            box([0, 0, 1], [1, 1, 0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            MBB(np.zeros((2, 3)), np.zeros((3, 3)))

    def test_union_covers(self):
        b = MBB(np.array([[0, 0, 0], [2, -1, 5]], dtype=float),
                np.array([[1, 1, 1], [3, 0, 6]], dtype=float))
        u = b.union()
        np.testing.assert_array_equal(u.lo[0], [0, -1, 0])
        np.testing.assert_array_equal(u.hi[0], [3, 1, 6])

    def test_volume_and_centers(self):
        b = box([0, 0, 0], [2, 3, 4])
        np.testing.assert_allclose(b.volume(), [24.0])
        np.testing.assert_allclose(b.centers(), [[1, 1.5, 2]])

    def test_take(self):
        b = MBB(np.zeros((3, 3)), np.arange(9, dtype=float).reshape(3, 3)
                + 1)
        t = b.take(np.array([2, 0]))
        assert len(t) == 2
        np.testing.assert_array_equal(t.hi[0], b.hi[2])


class TestSegmentMbbs:
    def test_spatial_boxes_cover_endpoints(self, small_db):
        b = segment_mbbs(small_db)
        assert b.ndim == 3
        assert np.all(b.lo <= small_db.starts)
        assert np.all(b.lo <= small_db.ends)
        assert np.all(b.hi >= small_db.starts)
        assert np.all(b.hi >= small_db.ends)

    def test_temporal_boxes_have_time_axis(self, small_db):
        b = segment_mbbs(small_db, temporal=True)
        assert b.ndim == 4
        np.testing.assert_array_equal(b.lo[:, 3], small_db.ts)
        np.testing.assert_array_equal(b.hi[:, 3], small_db.te)

    def test_moving_point_never_leaves_mbb(self, small_db):
        """Linear motion stays inside the endpoint box at all times."""
        b = segment_mbbs(small_db)
        for w in (0.25, 0.5, 0.75):
            p = (1 - w) * small_db.starts + w * small_db.ends
            assert np.all(p >= b.lo - 1e-12) and np.all(p <= b.hi + 1e-12)


class TestExpand:
    def test_expand_spatial(self):
        b = expand(box([0, 0, 0], [1, 1, 1]), 2.0)
        np.testing.assert_array_equal(b.lo[0], [-2, -2, -2])
        np.testing.assert_array_equal(b.hi[0], [3, 3, 3])

    def test_expand_4d_keeps_time(self):
        b4 = MBB(np.array([[0, 0, 0, 5]], dtype=float),
                 np.array([[1, 1, 1, 6]], dtype=float))
        e = expand(b4, 1.0)
        assert e.lo[0, 3] == 5 and e.hi[0, 3] == 6
        assert e.lo[0, 0] == -1

    def test_expand_4d_all_axes_when_requested(self):
        b4 = MBB(np.array([[0, 0, 0, 5]], dtype=float),
                 np.array([[1, 1, 1, 6]], dtype=float))
        e = expand(b4, 1.0, spatial_only=False)
        assert e.lo[0, 3] == 4 and e.hi[0, 3] == 7

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            expand(box([0, 0, 0], [1, 1, 1]), -0.1)


class TestOverlap:
    def test_overlapping_and_disjoint(self):
        a = MBB(np.array([[0, 0, 0], [0, 0, 0]], dtype=float),
                np.array([[1, 1, 1], [1, 1, 1]], dtype=float))
        b = MBB(np.array([[0.5, 0.5, 0.5], [2, 2, 2]], dtype=float),
                np.array([[2, 2, 2], [3, 3, 3]], dtype=float))
        np.testing.assert_array_equal(overlaps(a, b), [True, False])

    def test_touching_faces_count(self):
        a = box([0, 0, 0], [1, 1, 1])
        b = box([1, 0, 0], [2, 1, 1])
        assert overlaps(a, b)[0]

    def test_one_to_many(self):
        one = box([0, 0, 0], [1, 1, 1])
        many = MBB(np.array([[0.5, 0, 0], [5, 5, 5]], dtype=float),
                   np.array([[2, 1, 1], [6, 6, 6]], dtype=float))
        np.testing.assert_array_equal(overlaps_one_to_many(one, many),
                                      [True, False])
        with pytest.raises(ValueError):
            overlaps_one_to_many(many, many)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            overlaps(box([0, 0, 0], [1, 1, 1]),
                     MBB(np.zeros((2, 3)), np.ones((2, 3))))


class TestDistances:
    def test_point_segment_distance(self):
        p = np.array([[0.0, 1.0, 0.0], [5.0, 0.0, 0.0],
                      [-3.0, 4.0, 0.0]])
        a = np.zeros((3, 3))
        b = np.tile(np.array([2.0, 0.0, 0.0]), (3, 1))
        np.testing.assert_allclose(point_segment_distance(p, a, b),
                                   [1.0, 3.0, 5.0])

    def test_point_on_degenerate_segment(self):
        p = np.array([[3.0, 4.0, 0.0]])
        a = b = np.zeros((1, 3))
        np.testing.assert_allclose(point_segment_distance(p, a, b), [5.0])

    def test_mbb_min_distance(self):
        a = box([0, 0, 0], [1, 1, 1])
        b = box([4, 0, 0], [5, 1, 1])
        np.testing.assert_allclose(mbb_min_distance(a, b), [3.0])
        np.testing.assert_allclose(mbb_min_distance(a, a), [0.0])


@given(st.lists(st.floats(-100, 100), min_size=6, max_size=6),
       st.floats(0, 10))
@settings(max_examples=100, deadline=None)
def test_expand_then_overlap_is_distance_test(vals, margin):
    """A point within `margin` of a box overlaps the expanded box."""
    lo3 = np.minimum(vals[:3], vals[3:])
    hi3 = np.maximum(vals[:3], vals[3:])
    b = MBB(lo3[None, :], hi3[None, :])
    # Point at exactly `margin` beyond the hi corner along x.
    p = hi3 + np.array([margin, 0.0, 0.0])
    point_box = MBB(p[None, :], p[None, :])
    assert overlaps(expand(b, margin + 1e-9), point_box)[0]
    if margin > 1e-9:
        assert not overlaps(expand(b, margin * 0.5), point_box)[0]
