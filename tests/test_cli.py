"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.io import load_segments, save_segments


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    """A tiny generated dataset on disk."""
    path = tmp_path_factory.mktemp("cli") / "db.npz"
    assert main(["generate", "random", "--scale", "0.004",
                 "--out", str(path)]) == 0
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])

    def test_search_requires_d(self, db_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", db_path])


class TestGenerate:
    def test_generates_loadable_npz(self, db_path):
        db = load_segments(db_path)
        assert len(db) > 0
        assert db.num_trajectories == 10  # 2500 * 0.004

    @pytest.mark.parametrize("dataset", ["random-dense", "merger"])
    def test_other_datasets(self, dataset, tmp_path, capsys):
        out = tmp_path / "d.npz"
        assert main(["generate", dataset, "--scale", "0.002",
                     "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert len(load_segments(out)) > 0


class TestInfo:
    def test_info_output(self, db_path, capsys):
        assert main(["info", db_path]) == 0
        out = capsys.readouterr().out
        assert "segments:" in out
        assert "temporal extent:" in out


class TestSearch:
    @pytest.mark.parametrize("method", ["gpu_temporal", "cpu_rtree"])
    def test_search_runs(self, db_path, method, capsys):
        assert main(["search", db_path, "--d", "5.0",
                     "--method", method, "--num-bins", "50",
                     "--query-trajectories", "2"]) == 0
        out = capsys.readouterr().out
        assert "results for" in out
        assert "modeled response time" in out

    def test_search_with_query_file(self, db_path, tmp_path, capsys):
        db = load_segments(db_path)
        qpath = tmp_path / "q.npz"
        save_segments(qpath, db.take(np.arange(50)))
        assert main(["search", db_path, "--d", "3.0",
                     "--method", "gpu_temporal", "--num-bins", "50",
                     "--queries", str(qpath)]) == 0
        assert "50 query segments" in capsys.readouterr().out

    def test_exclude_same_trajectory_flag(self, db_path, capsys):
        args = ["search", db_path, "--d", "1.0", "--method",
                "cpu_rtree", "--query-trajectories", "2"]
        main(args)
        with_self = capsys.readouterr().out
        main(args + ["--exclude-same-trajectory"])
        without = capsys.readouterr().out
        n_with = int(with_self.split(" results")[0].split()[-1])
        n_without = int(without.split(" results")[0].split()[-1])
        assert n_without < n_with


class TestKnn:
    def test_knn_runs(self, db_path, capsys):
        assert main(["knn", db_path, "--k", "2",
                     "--method", "gpu_temporal", "--num-bins", "50",
                     "--query-trajectories", "2"]) == 0
        out = capsys.readouterr().out
        assert "kNN (k=2)" in out
        assert "neighbours" in out


class TestCalibrate:
    def test_calibrate_runs(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "fitted GPU cycle costs" in out
        assert "residuals" in out


class TestFigures:
    def test_fig4_tiny(self, capsys):
        assert main(["figures", "fig4", "--scale", "0.004"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "cpu_rtree" in out


class TestShardCommand:
    def test_shard_serves_batches(self, db_path, capsys):
        assert main(["shard", db_path, "--d", "2.0", "--shards", "3",
                     "--batches", "2", "--method", "cpu_scan"]) == 0
        out = capsys.readouterr().out
        assert "sharded service: 3 shards" in out
        assert "exact full answers  2" in out

    def test_shard_kill_and_recover(self, db_path, tmp_path, capsys):
        assert main(["shard", db_path, "--d", "2.0", "--shards", "3",
                     "--batches", "4", "--method", "cpu_scan",
                     "--kill-shard", "1", "--recover",
                     "--durable-dir", str(tmp_path / "dur")]) == 0
        out = capsys.readouterr().out
        assert "shard 1 blacked out" in out
        assert "post-recovery answer exact" in out

    def test_shard_json_summary(self, db_path, capsys):
        import json
        assert main(["shard", db_path, "--d", "2.0", "--batches", "2",
                     "--method", "cpu_scan", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exact"] == 2
        assert payload["layout"]["num_shards"] == 3
        assert payload["stats"]["requests"] == 2

    def test_chaos_shard_mode(self, capsys):
        import json
        assert main(["chaos", "--seed", "3", "--requests", "30",
                     "--shards", "3", "--kill-shard-every", "7",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["fired_by_kind"].get("shard_kill", 0) > 0
        assert payload["fired_by_kind"].get("shard_blackout", 0) > 0
        assert payload["recoveries"] >= 1
        assert payload["mismatches"] == []

    def test_chaos_shard_mode_renders(self, capsys):
        assert main(["chaos", "--seed", "5", "--requests", "24",
                     "--shards", "3", "--kill-shard-every", "5"]) == 0
        out = capsys.readouterr().out
        assert "shard-chaos campaign report" in out
        assert "survived            yes" in out
