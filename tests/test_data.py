"""Tests for the dataset generators and IO."""

import numpy as np
import pytest

from repro.data.io import cached_dataset, load_segments, save_segments
from repro.data.merger import MergerConfig, merger_dataset, simulate_merger
from repro.data.queries import queries_from_database, query_trajectory_ids
from repro.data.random_walk import (REID_STELLAR_DENSITY,
                                    make_random_walks, random_dataset,
                                    random_dense_dataset)


class TestRandomWalks:
    def test_shapes_and_counts(self):
        trajs = make_random_walks(num_trajectories=5, num_timesteps=10,
                                  box_side=10.0, step_sigma=1.0)
        assert len(trajs) == 5
        assert all(t.num_points == 10 for t in trajs)

    def test_start_time_range(self):
        trajs = make_random_walks(num_trajectories=50, num_timesteps=3,
                                  box_side=1.0, step_sigma=0.1,
                                  start_time_range=(5.0, 9.0),
                                  rng=np.random.default_rng(0))
        starts = np.array([t.times[0] for t in trajs])
        assert starts.min() >= 5.0 and starts.max() <= 9.0
        assert starts.std() > 0  # actually random

    def test_deterministic_given_rng(self):
        a = make_random_walks(num_trajectories=3, num_timesteps=4,
                              box_side=1.0, step_sigma=0.1,
                              rng=np.random.default_rng(7))
        b = make_random_walks(num_trajectories=3, num_timesteps=4,
                              box_side=1.0, step_sigma=0.1,
                              rng=np.random.default_rng(7))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.positions, y.positions)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_random_walks(num_trajectories=0, num_timesteps=5,
                              box_side=1.0, step_sigma=0.1)
        with pytest.raises(ValueError):
            make_random_walks(num_trajectories=2, num_timesteps=1,
                              box_side=1.0, step_sigma=0.1)

    def test_random_dataset_paper_shape(self):
        """At scale s: ~2500*s walks of 400 steps, starts in [0, 100]."""
        db = random_dataset(scale=0.01)
        assert db.num_trajectories == 25
        assert len(db) == 25 * 399
        assert db.ts.min() >= 0.0
        # starts within [0,100], extents 399 long
        assert db.te.max() <= 100.0 + 399.0 + 1e-9

    def test_random_dense_density(self):
        """Unit cube at the Reid-et-al-derived normalization: N walkers
        temporally co-extensive over 193 steps."""
        db = random_dense_dataset(scale=0.005)
        n = max(2, round(65536 * 0.005))
        assert db.num_trajectories == n
        assert len(db) == n * 192
        # Temporally co-extensive snapshots.
        assert np.unique(db.ts).size == 192
        assert REID_STELLAR_DENSITY == pytest.approx(0.112)


class TestMerger:
    @pytest.fixture(scope="class")
    def cfg(self):
        # Few snapshots but enough substeps to keep the leapfrog dt at
        # production resolution (the integrator needs dt ~ 0.08 near the
        # softened cores regardless of how often we *record*).
        return MergerConfig(particles_per_disk=64, num_snapshots=25,
                            substeps=32)

    def test_shapes(self, cfg):
        times, pos = simulate_merger(cfg)
        assert times.shape == (25,)
        assert pos.shape == (25, 128, 3)
        assert np.all(np.isfinite(pos))

    def test_dataset_conversion(self, cfg):
        db = merger_dataset(cfg=cfg)
        assert db.num_trajectories == 128
        assert len(db) == 128 * 24

    def test_disks_approach_then_interact(self, cfg):
        """Halo separation shrinks to a pericenter passage — the merger
        actually happens."""
        times, pos = simulate_merger(cfg)
        com1 = pos[:, :64].mean(axis=1)
        com2 = pos[:, 64:].mean(axis=1)
        sep = np.linalg.norm(com1 - com2, axis=1)
        assert sep.min() < 0.5 * sep[0]

    def test_deterministic(self, cfg):
        _, a = simulate_merger(cfg)
        _, b = simulate_merger(cfg)
        np.testing.assert_array_equal(a, b)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MergerConfig(particles_per_disk=0)
        with pytest.raises(ValueError):
            MergerConfig(substeps=0)

    def test_bounded_system(self, cfg):
        """The bound orbit keeps the system compact (no mass ejection
        blow-up) — required for the paper's d = 0.001..5 sweep to be
        meaningful."""
        db = merger_dataset(cfg=cfg)
        r = np.sqrt(db.xe ** 2 + db.ye ** 2 + db.ze ** 2)
        assert np.median(r) < 30.0


class TestQueries:
    def test_from_database(self, small_db):
        q = queries_from_database(small_db, 4,
                                  rng=np.random.default_rng(0))
        assert q.num_trajectories == 4
        # Query segments are verbatim database rows (ids preserved).
        assert set(q.seg_ids).issubset(set(small_db.seg_ids))

    def test_too_many_requested(self, small_db):
        with pytest.raises(ValueError, match="only"):
            queries_from_database(small_db, 10_000)

    def test_trajectory_ids_sorted_unique(self, small_db):
        ids = query_trajectory_ids(small_db, 5,
                                   rng=np.random.default_rng(0))
        assert np.all(np.diff(ids) > 0)


class TestIO:
    def test_roundtrip(self, small_db, tmp_path):
        path = tmp_path / "db.npz"
        save_segments(path, small_db)
        loaded = load_segments(path)
        assert loaded == small_db

    def test_roundtrip_pathlike(self, small_db, tmp_path):
        """Both directions accept os.PathLike, not just str — a
        save_segments return value (a Path) loads directly."""
        import os

        class _PathLike:
            def __init__(self, p):
                self._p = p

            def __fspath__(self):
                return str(self._p)

        final = save_segments(_PathLike(tmp_path / "db"), small_db)
        assert isinstance(final, os.PathLike)
        assert final.name == "db.npz"
        assert load_segments(final) == small_db
        assert load_segments(_PathLike(final)) == small_db
        assert load_segments(str(final)) == small_db

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a segment database"):
            load_segments(path)

    def test_cached_dataset_generates_once(self, small_db, tmp_path):
        path = tmp_path / "cache.npz"
        calls = []

        def gen():
            calls.append(1)
            return small_db

        a = cached_dataset(path, gen)
        b = cached_dataset(path, gen)
        assert len(calls) == 1
        assert a == b == small_db
