"""Tests for the spatiotemporal (bins + subbins) index, §IV-C."""

import numpy as np
import pytest

from repro.core.types import SegmentArray
from repro.indexes.spatiotemporal import SpatioTemporalIndex
from tests.conftest import make_walk_trajectories


@pytest.fixture(scope="module")
def db():
    return SegmentArray.from_trajectories(
        make_walk_trajectories(30, 20, seed=42, start_spread=8.0))


@pytest.fixture(scope="module")
def index(db):
    return SpatioTemporalIndex.build(db, num_bins=12, num_subbins=3,
                                     strict=False)


class TestBuild:
    def test_subbin_constraint_enforced(self, db):
        vmax = SpatioTemporalIndex.max_admissible_subbins(db)
        with pytest.raises(ValueError, match="constraint"):
            SpatioTemporalIndex.build(db, 8, vmax + 1)
        # strict=False allows experimentation beyond the constraint.
        SpatioTemporalIndex.build(db, 8, vmax + 1, strict=False)

    def test_max_admissible_matches_definition(self, db):
        mins, maxs = db.spatial_bounds()
        ext = db.max_spatial_extent()
        expect = int(np.floor(min((maxs[d] - mins[d]) / ext[d]
                                  for d in range(3))))
        assert SpatioTemporalIndex.max_admissible_subbins(db) \
            == max(1, expect)

    def test_rejects_bad_subbins(self, db):
        with pytest.raises(ValueError):
            SpatioTemporalIndex.build(db, 8, 0)

    def test_dim_arrays_cover_all_segments(self, index, db):
        """Every segment id appears in each dimension array at least
        once (it overlaps at least the subbin containing it)."""
        for dim in range(3):
            counts = np.bincount(index.dim_arrays[dim],
                                 minlength=len(db))
            assert counts.min() >= 1

    def test_chunk_layout_is_subbin_major(self, index):
        """Fig. 3's layout: chunk j holds subbin j of temporal bins
        0..m-1 contiguously; offsets are monotone."""
        m, v = index.temporal.num_bins, index.num_subbins
        for dim in range(3):
            offs = index.dim_offsets[dim]
            assert offs.shape == (v * m + 1,)
            assert offs[0] == 0
            assert offs[-1] == index.dim_arrays[dim].shape[0]
            assert np.all(np.diff(offs) >= 0)

    def test_subbin_entries_actually_overlap(self, index):
        """Soundness: an id listed in subbin (j, i) for dim x really
        overlaps that subbin's x-range and belongs to temporal bin i."""
        seg = index.segments
        row_bins = index.temporal.bin_of_rows()
        m, v = index.temporal.num_bins, index.num_subbins
        lo3 = np.minimum(seg.starts, seg.ends)
        hi3 = np.maximum(seg.starts, seg.ends)
        for dim in range(3):
            w = index.subbin_width[dim]
            base = index.space_min[dim]
            for j in range(v):
                for i in range(0, m, 5):
                    rows = index.subbin_entries(dim, j, i)
                    if rows.size == 0:
                        continue
                    np.testing.assert_array_equal(row_bins[rows], i)
                    sb_lo, sb_hi = base + j * w, base + (j + 1) * w
                    assert np.all(lo3[rows, dim] <= sb_hi + 1e-9)
                    assert np.all(hi3[rows, dim] >= sb_lo - 1e-9)

    def test_extra_memory_is_the_xyz_arrays(self, index):
        """GPUSpatioTemporal's footprint = temporal index + >= 3|D| ids
        (§IV-C.1)."""
        extra = index.nbytes() - index.temporal.nbytes()
        assert extra >= 3 * len(index.segments) * 4


class TestSchedule:
    def test_schedule_covers_all_queries(self, index, db, small_queries):
        sched = index.make_schedule(small_queries.sorted_by_start_time(),
                                    1.0)
        assert len(sched) == len(small_queries)
        assert set(sched.q_rows.tolist()) \
            == set(range(len(small_queries)))

    def test_schedule_sorted_by_array_selector(self, index,
                                               small_queries):
        sched = index.make_schedule(small_queries.sorted_by_start_time(),
                                    1.0)
        assert np.all(np.diff(sched.array_sel) >= 0)

    def test_schedule_completeness(self, index, small_queries):
        """For a subbin-scheduled query, the candidate range contains
        every entry row within d — the engine's exactness rests on this."""
        d = 1.5
        q = small_queries.sorted_by_start_time()
        sched = index.make_schedule(q, d)
        seg = index.segments
        from repro.core.bruteforce import brute_force_search
        truth = brute_force_search(q, seg, d)
        true_pairs = truth.pairs()
        seg_row_of_id = {int(s): r for r, s in enumerate(seg.seg_ids)}
        q_row_of_id = {int(s): r for r, s in enumerate(q.seg_ids)}
        # Map: schedule slot per query row.
        slot_of_row = {int(r): k for k, r in enumerate(sched.q_rows)}
        for (qid, eid) in true_pairs:
            k = slot_of_row[q_row_of_id[qid]]
            sel = sched.array_sel[k]
            lo, hi = sched.ent_min[k], sched.ent_max[k]
            erow = seg_row_of_id[eid]
            if sel == -1:
                assert lo <= erow <= hi
            else:
                rows = index.dim_arrays[sel][lo:hi + 1]
                assert erow in rows

    def test_no_duplicates_in_subbin_range(self, index, small_queries):
        """The chosen contiguous range never lists an entry twice — the
        duplicate-avoidance guarantee that justifies defaulting."""
        sched = index.make_schedule(
            small_queries.sorted_by_start_time(), 1.0)
        for k in range(len(sched)):
            sel = sched.array_sel[k]
            if sel < 0:
                continue
            rows = index.dim_arrays[sel][sched.ent_min[k]:
                                         sched.ent_max[k] + 1]
            assert rows.size == np.unique(rows).size

    def test_defaulting_increases_with_d(self, index, small_queries):
        q = small_queries.sorted_by_start_time()
        defaults = [index.make_schedule(q, d).num_defaulted
                    for d in (0.1, 3.0, 10.0)]
        assert defaults[0] <= defaults[-1]

    def test_spatially_disjoint_query_has_empty_range(self, index):
        from tests.conftest import make_walk_trajectories
        far = SegmentArray.from_trajectories(
            [t for t in make_walk_trajectories(1, 3, box=5.0, seed=1)])
        # Shift far outside the database bounds.
        shifted = SegmentArray(
            far.xs + 1e6, far.ys, far.zs, far.ts,
            far.xe + 1e6, far.ye, far.ze, far.te, far.traj_ids)
        sched = index.make_schedule(shifted, 1.0)
        assert np.all(sched.ent_min > sched.ent_max)
        assert sched.num_defaulted == 0

    def test_schedule_nbytes_fixed_encoding(self, index, small_queries):
        sched = index.make_schedule(
            small_queries.sorted_by_start_time(), 1.0)
        assert sched.nbytes == 16 * len(sched)  # 4 ints per query (§IV-C)
