"""The batched query service: caching, auto selection, degradation,
pool scheduling, sharding, serialization."""

import json

import numpy as np
import pytest

from repro.engines.config import ConfigError
from repro.gpu.device import DeviceSpec
from repro.service import (EngineCache, QueryService, SearchRequest,
                           SearchResponse, canonical_params,
                           database_fingerprint)


@pytest.fixture
def service(small_db):
    return QueryService(small_db, num_devices=2)


def _request(queries, d=2.5, **kw):
    return SearchRequest(queries=queries, d=d, **kw)


class TestRequestValidation:
    def test_empty_queries_rejected(self, small_db):
        from repro.core.types import SegmentArray
        with pytest.raises(ValueError):
            SearchRequest(queries=SegmentArray.empty(), d=1.0)

    def test_negative_d_rejected(self, small_queries):
        with pytest.raises(ValueError):
            SearchRequest(queries=small_queries, d=-1.0)

    def test_zero_shards_rejected(self, small_queries):
        with pytest.raises(ValueError):
            SearchRequest(queries=small_queries, d=1.0, shards=0)

    def test_unknown_method_rejected(self, service, small_queries):
        with pytest.raises(ValueError, match="unknown method"):
            service.submit(_request(small_queries, method="warp_drive"))

    def test_bad_params_raise_config_error(self, service, small_queries):
        """Misspelled parameters are a caller error, not a degradation."""
        with pytest.raises(ConfigError, match="did you mean"):
            service.submit(_request(small_queries, method="gpu_temporal",
                                    params={"num_bin": 40}))
        assert service.events == []


class TestCorrectness:
    @pytest.mark.parametrize("method", ["auto", "gpu_temporal",
                                        "gpu_spatiotemporal",
                                        "gpu_spatial", "cpu_rtree",
                                        "cpu_scan"])
    def test_matches_brute_force(self, service, db_queries_truth, method):
        db, queries, d, truth = db_queries_truth
        resp = service.submit(_request(queries, d, method=method))
        assert resp.outcome.results.equivalent_to(truth), method
        assert resp.metrics.engine in ("cpu_scan", "cpu_rtree",
                                       "gpu_temporal", "gpu_spatial",
                                       "gpu_spatiotemporal")
        assert resp.metrics.modeled_seconds > 0

    def test_sharded_matches_whole(self, service, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        for strategy in ("round_robin", "temporal", "spatial"):
            resp = service.submit(_request(
                queries, d, method="gpu_temporal",
                params={"num_bins": 40}, shards=2,
                partition_strategy=strategy))
            assert resp.outcome.results.equivalent_to(truth), strategy


class TestCaching:
    def test_repeat_hits_cache(self, service, small_queries):
        r1 = service.submit(_request(small_queries,
                                     method="gpu_temporal",
                                     params={"num_bins": 40}))
        r2 = service.submit(_request(small_queries,
                                     method="gpu_temporal",
                                     params={"num_bins": 40}))
        assert not r1.metrics.cache_hit and r2.metrics.cache_hit
        assert r1.metrics.engine_build_s > 0
        assert r2.metrics.engine_build_s == 0
        assert service.cache.stats.hits == 1
        assert service.cache.stats.misses == 1
        assert service.cache.stats.hit_ratio == pytest.approx(0.5)
        assert service.stats()["cache"]["hit_ratio"] \
            == pytest.approx(0.5)

    def test_default_filling_makes_keys_stable(self, service,
                                               small_queries):
        """Explicit defaults and omitted defaults share one cache
        entry."""
        service.submit(_request(small_queries, method="cpu_rtree"))
        r2 = service.submit(_request(small_queries, method="cpu_rtree",
                                     params={"segments_per_mbb": 4}))
        assert r2.metrics.cache_hit

    def test_different_params_are_distinct_entries(self, service,
                                                   small_queries):
        service.submit(_request(small_queries, method="gpu_temporal",
                                params={"num_bins": 40}))
        r2 = service.submit(_request(small_queries, method="gpu_temporal",
                                     params={"num_bins": 80}))
        assert not r2.metrics.cache_hit
        assert len(service.cache) == 2

    def test_lru_eviction_under_byte_budget(self, small_db,
                                            small_queries):
        svc = QueryService(small_db, num_devices=1)
        one = svc.submit(_request(small_queries, method="gpu_temporal",
                                  params={"num_bins": 40}))
        entry_bytes = svc.cache.entries()[0].nbytes
        # Budget fits exactly one engine of this size.
        svc2 = QueryService(small_db, num_devices=1,
                            cache_bytes=int(entry_bytes * 1.5))
        svc2.submit(_request(small_queries, method="gpu_temporal",
                             params={"num_bins": 40}))
        svc2.submit(_request(small_queries, method="gpu_temporal",
                             params={"num_bins": 80}))
        assert svc2.cache.stats.evictions == 1
        assert len(svc2.cache) == 1
        # The evicted engine's bytes were released from its lane.
        lane_bytes = sum(l.resident_bytes for l in svc2.pool.lanes)
        assert lane_bytes == svc2.cache.resident_bytes
        assert any(e["type"] == "eviction" for e in svc2.events)
        assert one.outcome.results is not None

    def test_hit_ratio_defined_before_first_lookup(self):
        cache = EngineCache(budget_bytes=10)
        assert cache.stats.hit_ratio == 0.0
        assert cache.stats.to_dict()["hit_ratio"] == 0.0

    def test_oversized_engine_rejected_by_cache(self):
        cache = EngineCache(budget_bytes=10)
        from repro.service.cache import CacheEntry
        with pytest.raises(ValueError):
            cache.put(CacheEntry(key=("k",), engine=None, gpu=None,
                                 lane=0, nbytes=100, build_wall_s=0.0))

    def test_fingerprint_tracks_content(self, small_db, small_queries):
        assert (database_fingerprint(small_db)
                == database_fingerprint(small_db))
        assert (database_fingerprint(small_db)
                != database_fingerprint(small_queries))

    def test_canonical_params_order_independent(self):
        assert canonical_params({"a": 1, "b": [2, 3]}) \
            == canonical_params({"b": (2, 3), "a": 1})

    def test_canonical_params_numpy_scalars_collapse(self):
        """np.int64(40) and 40 must produce the same key, or a config
        that round-trips through NumPy silently rebuilds the engine."""
        assert canonical_params({"num_bins": np.int64(40),
                                 "d": np.float64(2.5)}) \
            == canonical_params({"num_bins": 40, "d": 2.5})
        key = canonical_params({"num_bins": np.int64(40)})
        assert all(type(v) is not np.int64 for _, v in key)

    def test_canonical_params_nested_dicts_canonicalize(self):
        """Nested dicts flatten to sorted item tuples — logically equal
        nests hash and compare equal regardless of insertion order."""
        a = canonical_params(
            {"opts": {"x": 1, "y": np.int32(2)}, "m": "t"})
        b = canonical_params(
            {"m": "t", "opts": {"y": 2, "x": np.int64(1)}})
        assert a == b
        assert hash(a) == hash(b)
        assert canonical_params({"opts": {"x": 1}}) \
            != canonical_params({"opts": {"x": 2}})

    def test_canonical_params_same_cache_entry(self, small_db,
                                               small_queries):
        """The end-to-end consequence: requests whose params differ
        only in NumPy-ness hit one cache entry."""
        svc = QueryService(small_db)
        r1 = svc.submit(_request(small_queries, method="gpu_temporal",
                                 params={"num_bins": 16}))
        r2 = svc.submit(_request(small_queries, method="gpu_temporal",
                                 params={"num_bins": np.int64(16)}))
        assert not r1.metrics.cache_hit
        assert r2.metrics.cache_hit
        assert len(svc.cache) == 1


class TestAutoSelection:
    def test_auto_picks_planner_winner(self, service, db_queries_truth):
        from repro.core.planner import plan_search
        db, queries, d, truth = db_queries_truth
        plans = plan_search(db, queries, d,
                            sample=service.planner_sample,
                            gpu_model=service.gpu_model,
                            cpu_model=service.cpu_model)
        resp = service.submit(_request(queries, d, method="auto"))
        assert resp.metrics.engine == plans[0].engine
        assert not resp.metrics.degraded

    def test_auto_applies_hint_params(self, service, small_queries):
        resp = service.submit(_request(
            small_queries, method="auto",
            params={"num_bins": 13, "segments_per_mbb": 3,
                    "cells_per_dim": 9}))
        # Whatever engine won, the matching hint must appear in its
        # cache key (which is built from the filled config).
        entry = service.cache.entries()[-1]
        key_params = dict(entry.key[2])
        hints = {"num_bins": 13, "segments_per_mbb": 3,
                 "cells_per_dim": 9}
        overlap = {k: v for k, v in hints.items() if k in key_params}
        assert overlap  # the winner understands at least one hint
        for k, v in overlap.items():
            assert key_params[k] == v


class TestDegradation:
    def test_index_too_big_fails_over_down_the_ladder(self,
                                                      db_queries_truth):
        """Build OOM walks the failover ladder: the other GPU engines
        also OOM on the tiny device, so the first CPU rung serves."""
        db, queries, d, truth = db_queries_truth
        tiny = DeviceSpec(name="tiny", num_cores=64, num_sms=2,
                          warp_size=32, clock_hz=1e9,
                          global_mem_bytes=2048,
                          pcie_bandwidth=6e9, pcie_latency_s=1e-5,
                          kernel_launch_s=1e-5)
        svc = QueryService(db, num_devices=1, spec=tiny)
        resp = svc.submit(_request(queries, d, method="gpu_temporal",
                                   params={"num_bins": 40},
                                   request_id="r1"))
        assert resp.metrics.degraded
        assert resp.metrics.engine == "cpu_rtree"
        assert resp.metrics.failovers == 3
        assert "DeviceOutOfMemoryError" in resp.metrics.degradation_reason
        assert resp.outcome.results.equivalent_to(truth)
        events = [e for e in svc.events if e["type"] == "degradation"]
        assert len(events) == 1
        assert events[0]["request_id"] == "r1"
        assert events[0]["fallback"] == "cpu_rtree"
        assert svc.stats()["degradations"] == 1
        assert svc.cache.stats.failed_builds == 3

    def test_degraded_engine_cached_for_next_batch(self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        tiny = DeviceSpec(name="tiny", num_cores=64, num_sms=2,
                          warp_size=32, clock_hz=1e9,
                          global_mem_bytes=2048,
                          pcie_bandwidth=6e9, pcie_latency_s=1e-5,
                          kernel_launch_s=1e-5)
        svc = QueryService(db, num_devices=1, spec=tiny)
        svc.submit(_request(queries, d))
        r2 = svc.submit(_request(queries, d))
        assert r2.metrics.cache_hit  # the cpu_scan fallback is cached


class TestScheduling:
    def test_same_engine_contends_same_lane(self, service,
                                            small_queries):
        """Two batches in one submission against one cached engine
        serialize on its lane: the second waits."""
        reqs = [_request(small_queries, method="gpu_temporal",
                         params={"num_bins": 40}, request_id=f"r{i}")
                for i in range(3)]
        # Warm the cache so all three contend for one resident engine.
        service.submit(reqs[0])
        responses = service.submit_batch(reqs[1:])
        waits = [r.metrics.queue_wait_s for r in responses]
        assert waits[0] == 0.0
        assert waits[1] > 0.0
        assert waits[1] == pytest.approx(
            responses[0].metrics.modeled_seconds)

    def test_different_engines_overlap_on_pool(self, service,
                                               small_queries):
        """Engines homed on different lanes do not queue behind each
        other."""
        a = _request(small_queries, method="gpu_temporal",
                     params={"num_bins": 40})
        b = _request(small_queries, method="gpu_spatial",
                     params={"cells_per_dim": 8})
        service.submit(a)
        service.submit(b)
        lanes = {e.lane for e in service.cache.entries()}
        assert lanes == {0, 1}
        responses = service.submit_batch([
            _request(small_queries, method="gpu_temporal",
                     params={"num_bins": 40}),
            _request(small_queries, method="gpu_spatial",
                     params={"cells_per_dim": 8})])
        assert all(r.metrics.queue_wait_s == 0.0 for r in responses)

    def test_clock_advances_monotonically(self, service, small_queries):
        t0 = service.stats()["clock_s"]
        service.submit(_request(small_queries))
        t1 = service.stats()["clock_s"]
        service.submit(_request(small_queries))
        t2 = service.stats()["clock_s"]
        assert t0 <= t1 <= t2
        assert t2 > 0

    def test_build_time_not_charged_to_modeled_clock(self, service,
                                                     small_queries):
        """The index build is offline (§V-B): wall seconds of the build
        appear in metrics, never in the modeled clock."""
        resp = service.submit(_request(small_queries,
                                       method="gpu_temporal",
                                       params={"num_bins": 40}))
        assert resp.metrics.engine_build_s > 0
        assert service.stats()["clock_s"] == pytest.approx(
            resp.metrics.queue_wait_s + resp.metrics.modeled_seconds)


class TestSerialization:
    def test_request_round_trip(self, small_queries):
        req = _request(small_queries, d=1.5, method="gpu_temporal",
                       params={"num_bins": 40}, shards=2,
                       request_id="rt-1")
        back = SearchRequest.from_dict(json.loads(json.dumps(
            req.to_dict())))
        assert back.queries == small_queries
        assert back.d == 1.5 and back.method == "gpu_temporal"
        assert back.params == {"num_bins": 40}
        assert back.shards == 2 and back.request_id == "rt-1"

    @pytest.mark.parametrize("method", ["gpu_spatiotemporal", "cpu_rtree"])
    def test_response_round_trip(self, service, db_queries_truth, method):
        """GPU and CPU profiles both survive the JSON round-trip via the
        'kind' discriminator."""
        db, queries, d, truth = db_queries_truth
        resp = service.submit(_request(queries, d, method=method))
        back = SearchResponse.from_dict(json.loads(json.dumps(
            resp.to_dict())))
        assert back.request_id == resp.request_id
        assert back.outcome.results.equivalent_to(resp.outcome.results)
        assert back.metrics.to_dict() == resp.metrics.to_dict()
        assert back.outcome.modeled_seconds == pytest.approx(
            resp.outcome.modeled_seconds)
        assert type(back.outcome.profile) is type(resp.outcome.profile)

    def test_outcome_kernel_stats_survive(self, service,
                                          db_queries_truth):
        db, queries, d, _ = db_queries_truth
        resp = service.submit(_request(queries, d, method="gpu_temporal",
                                       params={"num_bins": 40}))
        back = SearchResponse.from_dict(json.loads(json.dumps(
            resp.to_dict())))
        prof, orig = back.outcome.profile, resp.outcome.profile
        assert prof.num_kernel_invocations == orig.num_kernel_invocations
        assert prof.total_comparisons == orig.total_comparisons
        assert prof.kernel_stats[0].thread_work.dtype == np.int64


class TestIdempotentMutations:
    def _fresh(self, seed, offset=4000):
        from repro.core.types import Trajectory
        from tests.conftest import make_walk_trajectories
        from repro.core.types import SegmentArray
        trajs = [Trajectory(t.traj_id + offset, t.times, t.positions)
                 for t in make_walk_trajectories(1, 5, seed=seed)]
        return SegmentArray.from_trajectories(trajs)

    def test_keyed_ingest_applies_exactly_once(self, small_db):
        svc = QueryService(small_db, num_devices=1)
        fresh = self._fresh(21)
        first = svc.ingest(fresh, idempotency_key="put-1")
        assert not first.deduplicated
        again = svc.ingest(fresh, idempotency_key="put-1")
        assert again.deduplicated
        assert again.epoch == first.epoch
        assert again.seg_ids == first.seg_ids
        assert svc.versioned.epoch == first.epoch  # nothing re-applied
        assert svc.telemetry.metrics.counter(
            "repro_idempotent_dedups_total").value(op="append") == 1
        svc.shutdown()

    def test_keyed_delete_replays_the_receipt(self, small_db):
        svc = QueryService(small_db, num_devices=1)
        first = svc.delete_trajectory(0, idempotency_key="del-0")
        assert first > 0
        # An unkeyed retry sees an already-hidden trajectory (0); the
        # keyed retry replays the original receipt instead.
        assert svc.delete_trajectory(0, idempotency_key="del-0") == \
            first
        assert svc.telemetry.metrics.counter(
            "repro_idempotent_dedups_total").value(op="delete") == 1
        svc.shutdown()

    def test_key_cannot_cross_operation_kinds(self, small_db):
        from repro.ingest import IngestError
        svc = QueryService(small_db, num_devices=1)
        svc.ingest(self._fresh(22, offset=4100),
                   idempotency_key="mut-1")
        with pytest.raises(IngestError, match="named a"):
            svc.delete_trajectory(1, idempotency_key="mut-1")
        svc.shutdown()


class TestTransitionMetrics:
    def test_breaker_transitions_are_labeled_counters(self, small_db,
                                                      small_queries):
        from repro.faults import FaultInjector, FaultSpec
        inj = FaultInjector(
            [FaultSpec(kind="kernel_abort", count=1)], seed=0)
        svc = QueryService(small_db, faults=inj, breaker_threshold=1,
                           breaker_reset_s=1e-12)
        req = _request(small_queries, method="gpu_temporal")
        svc.submit(req)  # abort: closed -> open
        req.request_id = "r1"
        # The reopened probe succeeds; the next gauge sample sees the
        # breaker back at closed (half_open is transient within the
        # submit, so the observed transition is open -> closed).
        svc.submit(req)
        counter = svc.telemetry.metrics.counter(
            "repro_breaker_transitions_total")
        assert counter.value(engine="gpu_temporal",
                             from_state="closed",
                             to_state="open") == 1
        assert counter.value(engine="gpu_temporal",
                             from_state="open",
                             to_state="closed") == 1
        kinds = [e.fields for e in
                 svc.telemetry.events.of_kind("breaker_transition")]
        assert {"engine": "gpu_temporal", "from_state": "closed",
                "to_state": "open"} in kinds
        svc.shutdown()

    def test_lane_transitions_are_labeled_counters(self, small_db,
                                                   small_queries):
        from repro.faults import FaultInjector, FaultSpec
        inj = FaultInjector([FaultSpec(kind="oom", count=1)], seed=0)
        svc = QueryService(small_db, faults=inj,
                           lane_failure_threshold=1,
                           lane_quarantine_s=1e9)
        svc.submit(_request(small_queries, method="gpu_temporal"))
        counter = svc.telemetry.metrics.counter(
            "repro_lane_transitions_total")
        assert counter.value(lane="0", from_state="healthy",
                             to_state="quarantined") == 1
        assert svc.telemetry.events.of_kind("lane_transition")
        svc.shutdown()
