"""Tests for the SIMT kernel model, atomics and transfer ledger."""

import numpy as np
import pytest

from repro.gpu.atomics import AtomicIntList, AtomicResultBuffer
from repro.gpu.device import DeviceSpec, TESLA_C2075, VirtualGPU
from repro.gpu.kernel import KernelLauncher, KernelStats, warp_work
from repro.gpu.transfers import TransferLedger


class TestDeviceSpec:
    def test_c2075_architecture(self):
        assert TESLA_C2075.num_cores == 448
        assert TESLA_C2075.num_sms == 14
        assert TESLA_C2075.concurrent_warps == 14
        assert TESLA_C2075.global_mem_bytes == 6 * 2 ** 30

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", 100, 4, 32, 1e9, 1, 1, 1, 1)  # 100 % 32 != 0
        with pytest.raises(ValueError):
            DeviceSpec("x", 0, 4, 32, 1e9, 1, 1, 1, 1)


class TestWarpWork:
    def test_empty(self):
        assert warp_work(np.zeros(0, dtype=np.int64), 32) == 0

    def test_uniform_no_divergence(self):
        w = np.full(64, 7, dtype=np.int64)
        assert warp_work(w, 32) == 14  # 2 warps x max 7

    def test_single_hot_lane(self):
        """One busy lane stalls its whole warp — the SIMT cost GPUSpatial
        suffers from and the schedule sort mitigates."""
        w = np.zeros(32, dtype=np.int64)
        w[5] = 100
        assert warp_work(w, 32) == 100

    def test_partial_warp_padded(self):
        w = np.array([3, 9], dtype=np.int64)
        assert warp_work(w, 32) == 9

    def test_sorting_reduces_divergence(self):
        """Grouping similar work into warps lowers warp-work — why the
        spatiotemporal schedule is sorted by array selector."""
        rng = np.random.default_rng(0)
        w = rng.integers(0, 100, 256)
        assert warp_work(np.sort(w), 32) <= warp_work(w, 32)

    def test_divergence_factor(self):
        stats = KernelStats("k", 32,
                            thread_work=np.r_[np.full(16, 10),
                                              np.zeros(16)].astype(int),
                            gather_work=np.zeros(32, dtype=np.int64))
        # warp max 10 * 32 lanes / 160 actual = 2.0
        assert stats.divergence_factor(32) == pytest.approx(2.0)


class TestKernelLauncher:
    def test_launch_records_stats(self):
        gpu = VirtualGPU()
        launcher = KernelLauncher(gpu)
        with launcher.launch("k1", num_threads=10) as k:
            k.thread_work[:] = 5
            k.add_atomics(3)
        assert gpu.num_kernel_invocations == 1
        s = gpu.kernel_stats[0]
        assert s.name == "k1"
        assert s.total_comparisons == 50
        assert s.atomic_ops == 3

    def test_failed_launch_not_recorded(self):
        gpu = VirtualGPU()
        launcher = KernelLauncher(gpu)
        with pytest.raises(RuntimeError):
            with launcher.launch("bad", num_threads=4):
                raise RuntimeError("kernel crashed")
        assert gpu.num_kernel_invocations == 0

    def test_negative_counts_rejected(self):
        gpu = VirtualGPU()
        launcher = KernelLauncher(gpu)
        with pytest.raises(ValueError):
            launcher.launch("k", num_threads=-1)
        with launcher.launch("k", num_threads=1) as k:
            with pytest.raises(ValueError):
                k.add_atomics(-2)
            k.add_atomics(0)

    def test_reset_counters_keeps_memory(self):
        gpu = VirtualGPU()
        gpu.memory.alloc("db", 10)
        with KernelLauncher(gpu).launch("k", 1):
            pass
        gpu.transfers.h2d("q", 100)
        gpu.reset_counters()
        assert gpu.num_kernel_invocations == 0
        assert gpu.transfers.total_bytes == 0
        assert "db" in gpu.memory


class TestAtomicResultBuffer:
    def test_append_and_drain(self):
        buf = AtomicResultBuffer(10)
        ok = buf.try_append(np.array([1, 2]), np.array([3, 4]),
                            np.array([0.0, 0.5]), np.array([1.0, 1.5]))
        assert ok and buf.size == 2 and buf.atomic_ops == 2
        q, e, lo, hi = buf.drain()
        assert list(q) == [1, 2] and list(e) == [3, 4]
        assert buf.size == 0

    def test_all_or_nothing_overflow(self):
        buf = AtomicResultBuffer(3)
        assert buf.try_append(np.arange(2), np.arange(2), np.zeros(2),
                              np.ones(2))
        assert not buf.try_append(np.arange(2), np.arange(2),
                                  np.zeros(2), np.ones(2))
        assert buf.size == 2           # nothing partially written
        assert buf.overflowed
        q, *_ = buf.drain()
        assert q.size == 2
        assert not buf.overflowed      # drain resets the flag

    def test_empty_append_always_succeeds(self):
        buf = AtomicResultBuffer(1)
        assert buf.try_append(np.zeros(0, dtype=int),
                              np.zeros(0, dtype=int), np.zeros(0),
                              np.zeros(0))

    def test_item_bytes(self):
        buf = AtomicResultBuffer(100)
        assert buf.nbytes == 3200
        with pytest.raises(ValueError):
            AtomicResultBuffer(0)


class TestAtomicIntList:
    def test_append_extend_drain(self):
        lst = AtomicIntList(5)
        lst.append(7)
        lst.extend(np.array([1, 2]))
        assert lst.atomic_ops == 3
        assert list(lst.drain()) == [7, 1, 2]
        assert lst.size == 0

    def test_overflow(self):
        lst = AtomicIntList(2)
        lst.extend(np.array([1, 2]))
        with pytest.raises(OverflowError):
            lst.append(3)
        with pytest.raises(ValueError):
            AtomicIntList(0)


class TestTransferLedger:
    def test_direction_totals(self):
        t = TransferLedger()
        t.h2d("queries", np.zeros(10))        # 80 bytes
        t.h2d("schedule", 16)
        t.d2h("results", 320)
        assert t.h2d_bytes == 96
        assert t.d2h_bytes == 320
        assert t.total_bytes == 416
        assert t.num_transfers == 3

    def test_by_label_aggregates(self):
        t = TransferLedger()
        t.d2h("results", 100)
        t.d2h("results", 50)
        t.h2d("redo", 8)
        assert t.by_label() == {"results": 150, "redo": 8}

    def test_negative_rejected(self):
        t = TransferLedger()
        with pytest.raises(ValueError):
            t.h2d("x", -1)
