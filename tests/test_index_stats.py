"""Tests for index introspection statistics."""

import pytest

from repro.indexes import (FlatGrid, RTree, SpatioTemporalIndex,
                           TemporalIndex)
from repro.indexes.stats import (FsgStats, RTreeStats,
                                 SpatioTemporalStats, TemporalStats,
                                 describe)


class TestFsgStats:
    def test_basic(self, small_db):
        grid = FlatGrid.build(small_db, 8)
        s = describe(grid, small_db)
        assert isinstance(s, FsgStats)
        assert s.total_cells == 512
        assert 0 < s.nonempty_cells <= 512
        assert 0 < s.occupancy <= 1.0
        assert s.duplication_factor >= 1.0
        assert s.max_ids_per_cell >= s.mean_ids_per_nonempty_cell

    def test_requires_segments(self, small_db):
        grid = FlatGrid.build(small_db, 4)
        with pytest.raises(ValueError):
            describe(grid)

    def test_finer_grid_more_duplication(self, small_db):
        coarse = describe(FlatGrid.build(small_db, 4), small_db)
        fine = describe(FlatGrid.build(small_db, 32), small_db)
        assert fine.duplication_factor >= coarse.duplication_factor


class TestTemporalStats:
    def test_basic(self, small_db):
        idx = TemporalIndex.build(small_db, 16)
        s = describe(idx)
        assert isinstance(s, TemporalStats)
        assert s.num_bins == 16
        assert s.mean_bin_size > 0
        assert s.mean_spill_bins >= 0.0
        assert 0 < s.expected_selectivity <= 1.0

    def test_more_bins_better_selectivity(self, small_db):
        few = describe(TemporalIndex.build(small_db, 4))
        many = describe(TemporalIndex.build(small_db, 64))
        assert many.expected_selectivity < few.expected_selectivity


class TestSpatioTemporalStats:
    def test_basic(self, small_db):
        idx = SpatioTemporalIndex.build(small_db, 8, 2, strict=False)
        s = describe(idx)
        assert isinstance(s, SpatioTemporalStats)
        assert s.num_subbins == 2
        assert all(d >= 1.0 for d in s.duplication_per_dim)
        assert all(0.0 <= f <= 1.0 for f in s.empty_group_fraction)
        assert 0 < s.expected_best_dim_selectivity <= 1.0
        assert s.extra_bytes_over_temporal >= 3 * len(small_db) * 4

    def test_more_subbins_more_selective(self, small_db):
        lo = describe(SpatioTemporalIndex.build(small_db, 8, 1,
                                                strict=False))
        hi = describe(SpatioTemporalIndex.build(small_db, 8, 4,
                                                strict=False))
        assert hi.expected_best_dim_selectivity \
            < lo.expected_best_dim_selectivity


class TestRTreeStats:
    def test_basic(self, small_db):
        tree = RTree.build(small_db, segments_per_mbb=4, fanout=8)
        s = describe(tree)
        assert isinstance(s, RTreeStats)
        assert s.num_nodes == tree.num_nodes
        assert s.depth == tree.depth()
        assert 1.0 <= s.mean_fanout <= 8.0
        assert s.sibling_overlap_volume >= 0.0

    def test_str_packs_tighter_than_insertion(self, small_db):
        guttman = describe(RTree.build(small_db, method="guttman",
                                       fanout=8, temporal_axis=True))
        packed = describe(RTree.build(small_db, method="str",
                                      fanout=8, temporal_axis=True))
        assert packed.num_nodes <= guttman.num_nodes


class TestDescribeDispatch:
    def test_unknown_type(self):
        with pytest.raises(TypeError):
            describe(object())
