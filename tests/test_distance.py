"""Tests for the continuous moving-point interval solver.

The solver is the ground truth everything else builds on, so it is tested
three ways: hand-computed cases, adversarial degenerate cases, and a
hypothesis property comparing against dense numerical sampling of the true
distance function.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distance import compare_pairs, distance_at
from repro.core.types import SegmentArray, Trajectory


def seg(traj_id, t0, t1, p0, p1):
    return Trajectory(traj_id, np.array([t0, t1], dtype=float),
                      np.array([p0, p1], dtype=float))


def single_pair(q_traj, e_traj, d, **kw):
    q = SegmentArray.from_trajectories([q_traj])
    e = SegmentArray.from_trajectories([e_traj])
    return compare_pairs(q, e, np.array([0]), np.array([0]), d, **kw)


class TestHandComputed:
    def test_head_on_crossing(self):
        # Two points moving toward each other along x, meeting at t=0.5.
        q = seg(0, 0.0, 1.0, [0, 0, 0], [10, 0, 0])
        e = seg(1, 0.0, 1.0, [10, 0, 0], [0, 0, 0])
        res = single_pair(q, e, 2.0)
        assert res.num_hits == 1
        # |delta(t)| = |10 - 20t|; <= 2 for t in [0.4, 0.6].
        np.testing.assert_allclose(res.t_lo[0], 0.4, atol=1e-12)
        np.testing.assert_allclose(res.t_hi[0], 0.6, atol=1e-12)

    def test_parallel_within_threshold(self):
        q = seg(0, 0.0, 1.0, [0, 0, 0], [5, 0, 0])
        e = seg(1, 0.2, 0.8, [0, 1, 0], [3, 1, 0])
        # Velocities differ; compute overlap is [0.2, 0.8].
        res = single_pair(q, e, 10.0)
        assert res.num_hits == 1
        assert res.t_lo[0] >= 0.2 - 1e-12
        assert res.t_hi[0] <= 0.8 + 1e-12

    def test_identical_velocity_constant_distance(self):
        q = seg(0, 0.0, 1.0, [0, 0, 0], [1, 1, 1])
        e = seg(1, 0.0, 1.0, [0, 0, 3], [1, 1, 4])  # always 3 away
        hit = single_pair(q, e, 3.0)
        assert hit.num_hits == 1            # closed threshold: == d counts
        np.testing.assert_allclose(hit.t_lo[0], 0.0)
        np.testing.assert_allclose(hit.t_hi[0], 1.0)
        miss = single_pair(q, e, 2.999)
        assert miss.num_hits == 0

    def test_no_temporal_overlap(self):
        q = seg(0, 0.0, 1.0, [0, 0, 0], [0, 0, 0])
        e = seg(1, 2.0, 3.0, [0, 0, 0], [0, 0, 0])
        assert single_pair(q, e, 100.0).num_hits == 0

    def test_touching_extents_count(self):
        # Overlap is exactly the instant t=1 (closed intervals).
        q = seg(0, 0.0, 1.0, [0, 0, 0], [1, 0, 0])
        e = seg(1, 1.0, 2.0, [1, 0, 0], [5, 0, 0])
        res = single_pair(q, e, 0.5)
        assert res.num_hits == 1
        np.testing.assert_allclose(res.t_lo[0], 1.0)
        np.testing.assert_allclose(res.t_hi[0], 1.0)

    def test_grazing_tangent(self):
        # Closest approach exactly equals d: single-instant interval.
        q = seg(0, 0.0, 1.0, [0, 0, 0], [0, 0, 0])       # stationary
        e = seg(1, 0.0, 1.0, [-5, 3, 0], [5, 3, 0])      # passes at y=3
        res = single_pair(q, e, 3.0)
        assert res.num_hits == 1
        np.testing.assert_allclose(res.t_lo[0], 0.5, atol=1e-9)
        np.testing.assert_allclose(res.t_hi[0], 0.5, atol=1e-9)

    def test_approach_outside_overlap_window(self):
        # Closest approach at t=0.5 but entry only exists for t >= 0.9,
        # by which time they are far apart again.
        q = seg(0, 0.0, 1.0, [0, 0, 0], [0, 0, 0])
        e = seg(1, 0.9, 1.0, [8, 0, 0], [10, 0, 0])
        assert single_pair(q, e, 1.0).num_hits == 0

    def test_zero_extent_event_segment(self):
        # A supernova-style instantaneous event: ts == te (built directly,
        # Trajectory requires strictly increasing times).
        one = np.ones(1)
        q = SegmentArray(one, one, one, 0.5 * one,
                         one, one, one, 0.5 * one,
                         np.zeros(1, dtype=np.int64))
        e_traj = seg(1, 0.0, 1.0, [0, 1, 1], [2, 1, 1])  # at [1,1,1] @ 0.5
        e = SegmentArray.from_trajectories([e_traj])
        res = compare_pairs(q, e, np.array([0]), np.array([0]), 0.1)
        assert res.num_hits == 1
        np.testing.assert_allclose(res.t_lo[0], res.t_hi[0])

    def test_exclude_same_trajectory(self):
        a = seg(5, 0.0, 1.0, [0, 0, 0], [1, 0, 0])
        b = seg(5, 1.0, 2.0, [1, 0, 0], [2, 0, 0])
        assert single_pair(a, b, 10.0).num_hits == 1
        assert single_pair(a, b, 10.0,
                           exclude_same_trajectory=True).num_hits == 0

    def test_d_zero_exact_collision(self):
        q = seg(0, 0.0, 1.0, [0, 0, 0], [2, 0, 0])
        e = seg(1, 0.0, 1.0, [2, 0, 0], [0, 0, 0])
        res = single_pair(q, e, 0.0)
        assert res.num_hits == 1
        np.testing.assert_allclose(res.t_lo[0], 0.5, atol=1e-9)

    def test_negative_d_rejected(self):
        q = seg(0, 0.0, 1.0, [0, 0, 0], [1, 0, 0])
        with pytest.raises(ValueError, match="non-negative"):
            single_pair(q, q, -1.0)

    def test_mismatched_index_arrays_rejected(self):
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, [0, 0, 0], [1, 0, 0])])
        with pytest.raises(ValueError, match="equal-length"):
            compare_pairs(q, q, np.array([0, 0]), np.array([0]), 1.0)

    def test_empty_batch(self):
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, [0, 0, 0], [1, 0, 0])])
        res = compare_pairs(q, q, np.zeros(0, dtype=int),
                            np.zeros(0, dtype=int), 1.0)
        assert len(res) == 0 and res.num_hits == 0


# -- property: solver vs dense sampling of the true distance ---------------

coords = st.floats(min_value=-50, max_value=50, allow_nan=False)
times = st.floats(min_value=0, max_value=10, allow_nan=False)


@st.composite
def random_pair(draw):
    t0q = draw(times)
    t1q = t0q + draw(st.floats(min_value=0.1, max_value=10))
    t0e = draw(times)
    t1e = t0e + draw(st.floats(min_value=0.1, max_value=10))
    pts = [draw(coords) for _ in range(12)]
    q = seg(0, t0q, t1q, pts[0:3], pts[3:6])
    e = seg(1, t0e, t1e, pts[6:9], pts[9:12])
    d = draw(st.floats(min_value=0.01, max_value=30))
    return q, e, d


@given(random_pair())
@settings(max_examples=200, deadline=None)
def test_solver_agrees_with_dense_sampling(pair):
    q_traj, e_traj, d = pair
    q = SegmentArray.from_trajectories([q_traj])
    e = SegmentArray.from_trajectories([e_traj])
    res = compare_pairs(q, e, np.array([0]), np.array([0]), d)

    t0 = max(q_traj.times[0], e_traj.times[0])
    t1 = min(q_traj.times[-1], e_traj.times[-1])
    if t0 > t1:
        assert res.num_hits == 0
        return
    ts = np.linspace(t0, t1, 2001)
    dist = distance_at(q, e, 0, 0, ts)
    inside = dist <= d

    if res.num_hits == 0:
        # No reported interval: sampling must not find a clearly-inside
        # point (tolerance for grazing contact at the sampling grid).
        assert not np.any(dist < d - 1e-6)
    else:
        lo, hi = res.t_lo[0], res.t_hi[0]
        assert t0 - 1e-9 <= lo <= hi <= t1 + 1e-9
        # Every sampled point strictly inside the reported interval is
        # within d; every point clearly inside d is within the interval.
        strict = (ts > lo + 1e-9) & (ts < hi - 1e-9)
        assert np.all(dist[strict] <= d + 1e-6)
        clearly_in = dist < d - 1e-6
        assert np.all((ts[clearly_in] >= lo - 1e-6)
                      & (ts[clearly_in] <= hi + 1e-6))


@given(random_pair())
@settings(max_examples=100, deadline=None)
def test_solver_symmetry(pair):
    """compare(q, e) and compare(e, q) report the same interval."""
    q_traj, e_traj, d = pair
    q = SegmentArray.from_trajectories([q_traj])
    e = SegmentArray.from_trajectories([e_traj])
    ab = compare_pairs(q, e, np.array([0]), np.array([0]), d)
    ba = compare_pairs(e, q, np.array([0]), np.array([0]), d)
    assert ab.num_hits == ba.num_hits
    if ab.num_hits:
        np.testing.assert_allclose(ab.t_lo, ba.t_lo, atol=1e-9)
        np.testing.assert_allclose(ab.t_hi, ba.t_hi, atol=1e-9)
