"""Tests for the communicator abstraction and SPMD search driver."""

import pytest

from repro.core.bruteforce import brute_force_search
from repro.distributed import partition_database
from repro.distributed.comm import (Communicator, LoopbackComm,
                                    Mpi4pyComm, world)
from repro.distributed.driver import SpmdSearchDriver, run_spmd_search
from repro.engines import GpuTemporalEngine


class TestLoopbackComm:
    def test_world_construction(self):
        comms = LoopbackComm.make_world(3)
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)
        assert all(isinstance(c, Communicator) for c in comms)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            LoopbackComm(rank=2, size=2)

    def test_bcast(self):
        comms = LoopbackComm.make_world(3)
        assert comms[0].bcast({"x": 1}) == {"x": 1}
        assert comms[1].bcast(None) == {"x": 1}
        assert comms[2].bcast(None) == {"x": 1}

    def test_bcast_before_seed_raises(self):
        comms = LoopbackComm.make_world(2)
        with pytest.raises(RuntimeError, match="before the root"):
            comms[1].bcast(None)

    def test_gather(self):
        comms = LoopbackComm.make_world(3)
        assert comms[1].gather("b") is None
        assert comms[2].gather("c") is None
        assert comms[0].gather("a") == ["a", "b", "c"]

    def test_gather_incomplete_raises(self):
        comms = LoopbackComm.make_world(2)
        with pytest.raises(RuntimeError, match="before all ranks"):
            comms[0].gather("a")

    def test_world_falls_back_to_loopback(self):
        w = world()  # no mpi4py in this environment
        assert w.size == 1 and w.rank == 0


class TestMpi4pyComm:
    def test_duck_typed_comm(self):
        """The adapter works with anything exposing the mpi4py surface."""

        class FakeMpi:
            def Get_rank(self):
                return 3

            def Get_size(self):
                return 8

            def bcast(self, obj, root=0):
                return ("bcast", obj, root)

            def gather(self, obj, root=0):
                return [obj]

        comm = Mpi4pyComm(FakeMpi())
        assert comm.rank == 3 and comm.size == 8
        assert comm.bcast("x", root=2) == ("bcast", "x", 2)
        assert comm.gather("y") == ["y"]


class TestSpmdDriver:
    def test_matches_single_node(self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        shards = partition_database(db, 3, "round_robin")
        comms = LoopbackComm.make_world(3)
        engines = [GpuTemporalEngine(s, num_bins=20) for s in shards]
        merged = run_spmd_search(comms, engines, queries, d)
        assert merged.equivalent_to(truth)

    def test_single_rank_world(self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        driver = SpmdSearchDriver(LoopbackComm(),
                                  GpuTemporalEngine(db, num_bins=20))
        out = driver.search(queries, d)
        assert out is not None and out.equivalent_to(truth)

    def test_root_requires_queries(self):
        driver = SpmdSearchDriver(LoopbackComm(), engine=None)
        with pytest.raises(ValueError, match="root rank"):
            driver.search(None, 1.0)

    def test_exclude_same_trajectory(self, small_db):
        shards = partition_database(small_db, 2)
        comms = LoopbackComm.make_world(2)
        engines = [GpuTemporalEngine(s, num_bins=20) for s in shards]
        merged = run_spmd_search(comms, engines, small_db, 0.5,
                                 exclude_same_trajectory=True)
        truth = brute_force_search(small_db, small_db, 0.5,
                                   exclude_same_trajectory=True)
        assert merged.equivalent_to(truth)

    def test_mismatched_world_rejected(self, small_db):
        comms = LoopbackComm.make_world(2)
        with pytest.raises(ValueError, match="one engine per rank"):
            run_spmd_search(comms, [None], small_db, 1.0)
