"""Standing queries: incremental answers == from-scratch, every epoch.

The contract under test (see ``src/repro/standing/``): a registered
subscription's maintained match set is **byte-identical** to a
from-scratch ``cpu_scan`` over ``Snapshot.logical()`` after *every*
mutation — the delta-aware skip decision (candidate envelopes on
appends, held-match membership on deletes, nobody on compactions) is
load-bearing correctness, not best-effort caching.  The campaign tests
additionally pin that the skipping genuinely happens (affected strictly
fewer than registered on delta epochs) and that exactness survives
compaction, a mid-stream crash + recovery, and injected device faults.
"""

import numpy as np
import pytest

from repro.core.types import SegmentArray, Trajectory
from repro.engines.cpu_scan import CpuScanEngine
from repro.faults.crashes import _result_bytes
from repro.ingest import VersionedDatabase
from repro.service import QueryService
from repro.standing import (StandingCampaignConfig, StandingPolicy,
                            StandingQueryManager, Subscription,
                            run_standing_campaign)
from tests.conftest import make_walk_trajectories

D = 2.5


def _db(num_traj=10, steps=8, seed=0, id_offset=0):
    trajs = make_walk_trajectories(num_traj, steps, seed=seed)
    if id_offset:
        trajs = [Trajectory(t.traj_id + id_offset, t.times,
                            t.positions) for t in trajs]
    return SegmentArray.from_trajectories(trajs)


def _sub(sub_id="sub-a", *, seed=77, d=D, window=None,
         exclude_same_trajectory=False, num_traj=2):
    return Subscription(
        sub_id=sub_id,
        queries=_db(num_traj=num_traj, steps=6, seed=seed,
                    id_offset=9000),
        d=d, window=window,
        exclude_same_trajectory=exclude_same_trajectory)


def referee_bytes(sub, snapshot):
    """From-scratch cpu_scan over the logical database, window-clipped
    the same way the incremental path clips."""
    results, _ = CpuScanEngine(snapshot.logical()).search(
        sub.queries, sub.d,
        exclude_same_trajectory=sub.exclude_same_trajectory)
    return _result_bytes(sub.apply_window(results))


def assert_exact(mgr, subs, snapshot):
    for sub in subs:
        assert (_result_bytes(mgr.results(sub.sub_id))
                == referee_bytes(sub, snapshot)), sub.sub_id


def _entry_trajs(svc, sub_id):
    """Trajectory ids of a subscription's current entry matches."""
    logical = svc.current_snapshot().logical()
    by_seg = dict(zip(logical.seg_ids.tolist(),
                      logical.traj_ids.tolist()))
    return [by_seg[e] for (_q, e) in svc.standing.matches(sub_id)
            if e in by_seg]


class TestManagerExactness:
    """Direct manager drive: every mutation kind, every epoch checked."""

    def drive(self, subs, *, seed=1):
        vdb = VersionedDatabase(_db(seed=seed))
        mgr = StandingQueryManager()
        for sub in subs:
            mgr.register(sub, vdb.snapshot())
        assert_exact(mgr, subs, vdb.snapshot())
        rng = np.random.default_rng(seed)
        offset = 500
        for i in range(10):
            kind = ("append", "append", "delete", "append",
                    "compact")[i % 5]
            if kind == "append":
                segs = _db(num_traj=2, steps=6,
                           seed=seed + 31 * i, id_offset=offset)
                offset += 100
                vdb.append(segs)
                mgr.process_epoch(vdb.snapshot(), "append",
                                  appended=segs)
            elif kind == "delete":
                snap = vdb.snapshot()
                live = sorted(
                    set(np.unique(snap.logical().traj_ids).tolist()))
                victim = int(live[int(rng.integers(len(live) - 1))])
                vdb.delete_trajectory(victim)
                mgr.process_epoch(vdb.snapshot(), "delete",
                                  deleted_traj=victim)
            else:
                vdb.compact()
                mgr.process_epoch(vdb.snapshot(), "compact")
            assert_exact(mgr, subs, vdb.snapshot())
        return mgr, vdb

    def test_exact_across_mixed_mutations(self):
        subs = [_sub("sub-a", seed=77), _sub("sub-b", seed=78)]
        self.drive(subs)

    def test_windowed_subscription_stays_clipped(self):
        window = (2.0, 6.5)
        sub = _sub("sub-w", window=window)
        mgr, _vdb = self.drive([sub], seed=2)
        for (_q, _e), (lo, hi) in mgr.matches("sub-w").items():
            assert lo >= window[0] - 1e-12
            assert hi <= window[1] + 1e-12

    def test_exclude_same_trajectory_flag_respected(self):
        # Query ids overlapping database ids: the flag changes answers.
        vdb = VersionedDatabase(_db(seed=3))
        queries = vdb.snapshot().base.take(np.arange(6))
        sub = Subscription(sub_id="sub-x", queries=queries, d=D,
                           exclude_same_trajectory=True)
        mgr = StandingQueryManager()
        mgr.register(sub, vdb.snapshot())
        assert_exact(mgr, [sub], vdb.snapshot())
        res = mgr.results("sub-x")
        logical = vdb.snapshot().logical()
        by_seg = dict(zip(logical.seg_ids.tolist(),
                          logical.traj_ids.tolist()))
        q_by_seg = dict(zip(queries.seg_ids.tolist(),
                            queries.traj_ids.tolist()))
        for q, e in zip(res.q_ids.tolist(), res.e_ids.tolist()):
            assert q_by_seg[q] != by_seg[e]

    def test_delete_compact_reinsert_same_id_stays_exact(self):
        """The tombstone edge end-to-end: a matched trajectory is
        deleted (match_removed events), the id is reborn with new
        geometry after compaction, and the maintained set tracks every
        step exactly.  Entry seg_ids are never reused, so the reborn
        id's matches are new pairs — no life-cycle violation."""
        svc = QueryService(_db(seed=20), auto_compact=False)
        sub = _sub("sub-a")
        # Shadow the queries so trajectory 500 definitely matches.
        q = sub.queries
        near = SegmentArray(q.xs + 0.5, q.ys, q.zs, q.ts,
                            q.xe + 0.5, q.ye, q.ze, q.te,
                            np.full_like(q.traj_ids, 500), q.seg_ids)
        svc.ingest(near)
        svc.register_subscription(sub)
        assert any(e == 500 for e in _entry_trajs(svc, "sub-a"))
        seq0 = svc.standing.last_seq
        svc.delete_trajectory(500)
        removed = [r for r in svc.standing.events_since(seq0)
                   if r["kind"] == "match_removed"]
        assert removed and all(r["sub_id"] == "sub-a"
                               for r in removed)
        assert not any(e == 500 for e in _entry_trajs(svc, "sub-a"))
        assert_exact(svc.standing, [sub], svc.current_snapshot())
        svc.compact()
        reborn = SegmentArray(q.xs - 0.5, q.ys, q.zs, q.ts,
                              q.xe - 0.5, q.ye, q.ze, q.te,
                              np.full_like(q.traj_ids, 500),
                              q.seg_ids)
        svc.ingest(reborn)
        added = [r for r in svc.standing.events_since(seq0)
                 if r["kind"] == "match_added"]
        assert added  # the reborn geometry matches again, as new pairs
        assert any(e == 500 for e in _entry_trajs(svc, "sub-a"))
        assert_exact(svc.standing, [sub], svc.current_snapshot())

    def test_compact_epoch_changes_nothing(self):
        subs = [_sub("sub-a")]
        vdb = VersionedDatabase(_db(seed=4))
        mgr = StandingQueryManager()
        mgr.register(subs[0], vdb.snapshot())
        segs = _db(num_traj=3, seed=9, id_offset=700)
        vdb.append(segs)
        mgr.process_epoch(vdb.snapshot(), "append", appended=segs)
        before = _result_bytes(mgr.results("sub-a"))
        vdb.compact()
        report = mgr.process_epoch(vdb.snapshot(), "compact")
        assert report.affected == [] and report.skipped == 1
        assert _result_bytes(mgr.results("sub-a")) == before
        assert_exact(mgr, subs, vdb.snapshot())


class TestSkipWork:
    """Unaffected subscriptions are proven unchanged, not re-scanned."""

    def test_far_append_skips_everybody(self):
        vdb = VersionedDatabase(_db(seed=5))
        mgr = StandingQueryManager()
        sub = _sub("sub-a")
        mgr.register(sub, vdb.snapshot())
        far = _db(num_traj=2, seed=6, id_offset=300)
        far = SegmentArray(far.xs + 1e6, far.ys, far.zs, far.ts,
                           far.xe + 1e6, far.ye, far.ze, far.te,
                           far.traj_ids, far.seg_ids)
        vdb.append(far)
        report = mgr.process_epoch(vdb.snapshot(), "append",
                                   appended=far)
        assert report.affected == []
        assert report.skipped == 1
        assert report.events_added == report.events_removed == 0
        assert_exact(mgr, [sub], vdb.snapshot())

    def test_delete_of_unmatched_trajectory_skips(self):
        vdb = VersionedDatabase(_db(seed=7))
        mgr = StandingQueryManager()
        # A subscription matching nothing holds no e_ids, so any
        # delete must skip it.
        sub = _sub("sub-none", seed=99)
        far_q = SegmentArray(
            sub.queries.xs + 1e6, sub.queries.ys, sub.queries.zs,
            sub.queries.ts, sub.queries.xe + 1e6, sub.queries.ye,
            sub.queries.ze, sub.queries.te, sub.queries.traj_ids,
            sub.queries.seg_ids)
        sub = Subscription(sub_id="sub-none", queries=far_q, d=D)
        mgr.register(sub, vdb.snapshot())
        assert mgr.matches("sub-none") == {}
        vdb.delete_trajectory(0)
        report = mgr.process_epoch(vdb.snapshot(), "delete",
                                   deleted_traj=0)
        assert report.affected == [] and report.skipped == 1
        assert_exact(mgr, [sub], vdb.snapshot())


class TestPolicy:
    def test_pressure_deferral_and_flush(self):
        vdb = VersionedDatabase(_db(seed=8))
        mgr = StandingQueryManager(
            policy=StandingPolicy(defer_on_pressure=True))
        sub = _sub("sub-a")
        mgr.register(sub, vdb.snapshot())
        segs = _db(num_traj=2, seed=12, id_offset=400)
        vdb.append(segs)
        report = mgr.process_epoch(vdb.snapshot(), "append",
                                   appended=segs, pressure=True)
        if report.deferred:
            assert mgr.pending == ["sub-a"]
            flush = mgr.flush(vdb.snapshot())
            assert flush.affected == ["sub-a"]
        assert mgr.pending == []
        assert_exact(mgr, [sub], vdb.snapshot())

    def test_deadline_overrun_carries_over_and_settles(self):
        vdb = VersionedDatabase(_db(seed=9))
        mgr = StandingQueryManager(
            policy=StandingPolicy(epoch_deadline_s=1e-12))
        sub = _sub("sub-a")
        mgr.register(sub, vdb.snapshot())
        segs = _db(num_traj=2, seed=13, id_offset=400)
        vdb.append(segs)
        report = mgr.process_epoch(vdb.snapshot(), "append",
                                   appended=segs)
        if report.overran_deadline:
            assert mgr.totals["deadline_overruns"] >= 1
            mgr.flush(vdb.snapshot())
        assert_exact(mgr, [sub], vdb.snapshot())

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            StandingPolicy(epoch_deadline_s=0.0)


class TestServiceIntegration:
    def test_register_ingest_poll_unregister(self):
        svc = QueryService(_db(seed=10), auto_compact=False)
        sub = _sub("sub-a")
        receipt = svc.register_subscription(sub)
        assert receipt["sub_id"] == "sub-a"
        first = svc.poll_subscription("sub-a")
        assert first["pending"] is False
        svc.ingest(_db(num_traj=2, seed=14, id_offset=300))
        svc.delete_trajectory(0)
        svc.compact()
        assert_exact(svc.standing, [sub], svc.current_snapshot())
        poll = svc.poll_subscription("sub-a",
                                     since_seq=first["last_seq"])
        stats = svc.stats()["standing"]
        assert stats["subscriptions"] == 1
        assert stats["epochs"] >= 3
        assert poll["last_seq"] >= first["last_seq"]
        svc.unregister_subscription("sub-a")
        with pytest.raises(KeyError):
            svc.poll_subscription("sub-a")

    def test_duplicate_registration_rejected(self):
        svc = QueryService(_db(seed=10), auto_compact=False)
        svc.register_subscription(_sub("sub-a"))
        with pytest.raises(ValueError):
            svc.register_subscription(_sub("sub-a"))


class TestSubscriptionValidation:
    def test_rejects_bad_inputs(self):
        q = _db(num_traj=1, seed=0)
        with pytest.raises(ValueError):
            Subscription(sub_id="", queries=q, d=1.0)
        with pytest.raises(ValueError):
            Subscription(sub_id="s", queries=SegmentArray.empty(),
                         d=1.0)
        with pytest.raises(ValueError):
            Subscription(sub_id="s", queries=q, d=-1.0)
        with pytest.raises(ValueError):
            Subscription(sub_id="s", queries=q, d=1.0,
                         window=(5.0, 1.0))

    def test_roundtrips_through_dict(self):
        sub = _sub("sub-a", window=(1.0, 9.0),
                   exclude_same_trajectory=True)
        again = Subscription.from_dict(sub.to_dict())
        assert again.sub_id == sub.sub_id
        assert again.d == sub.d
        assert again.window == sub.window
        assert again.exclude_same_trajectory
        assert np.array_equal(again.queries.xs, sub.queries.xs)


class TestCampaign:
    """The headline harness: adversarial seeds, every epoch checked,
    compaction + crash + recovery mid-stream."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_seeded_campaign_is_exact(self, seed):
        report = run_standing_campaign(
            StandingCampaignConfig(seed=seed))
        assert report.ok, report.render()
        assert report.mismatches == []
        assert report.event_violations == []
        assert report.checks > report.num_ops
        assert report.compactions >= 1
        assert report.crash_fired
        assert report.standing["recoveries"] >= 1
        assert report.stream_consistent

    def test_maintenance_is_delta_aware(self):
        """Affected re-evaluations strictly fewer than registered
        subscriptions on delta epochs — the envelope skipping works."""
        report = run_standing_campaign(StandingCampaignConfig(seed=0))
        totals = report.standing
        assert totals["skipped"] > 0
        assert totals["affected"] < (totals["delta_epochs"]
                                     * report.config.num_subscriptions)
        assert totals["events_added"] > 0

    def test_campaign_with_device_faults_stays_exact(self):
        report = run_standing_campaign(StandingCampaignConfig(
            seed=5, faults=True, probe_every=2, fault_rate=0.3))
        assert report.ok, report.render()
        assert report.probes_sent > 0
        assert sum(report.faults_fired.values()) > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StandingCampaignConfig(stream_epochs=3)
        with pytest.raises(ValueError):
            StandingCampaignConfig(kill_point="nonsense")
        with pytest.raises(ValueError):
            StandingCampaignConfig(num_subscriptions=0)
