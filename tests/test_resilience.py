"""Resilient serving: circuit breakers, lane health, deadlines, load
shedding, verified failover, and retry backoff accounting."""

from __future__ import annotations

import pytest

from repro.engines.base import RetryPolicy
from repro.faults import FaultInjector, FaultSpec
from repro.service import (CircuitBreaker, LaneHealth, QueryService,
                           SearchRequest)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3)
        assert b.allow(0.0)
        assert not b.record_failure(0.0)
        assert not b.record_failure(0.0)
        assert b.record_failure(0.0)  # third strike trips it
        assert b.state == "open" and b.trips == 1
        assert not b.allow(0.0)

    def test_success_resets_the_count(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure(0.0)
        b.record_success()
        b.record_failure(0.0)
        assert b.state == "closed"

    def test_reset_window_admits_half_open_probe(self):
        b = CircuitBreaker(failure_threshold=1, reset_after_s=10.0)
        b.record_failure(5.0)
        assert not b.allow(5.0)
        assert b.allow(15.0)
        assert b.state == "half_open"
        assert b.record_success()  # the probe closed the breaker
        assert b.state == "closed"

    def test_failed_probe_reopens(self):
        b = CircuitBreaker(failure_threshold=1, reset_after_s=1.0)
        b.record_failure(0.0)
        assert b.allow(2.0)
        assert b.record_failure(2.0)  # failed probe re-opens
        assert b.state == "open" and b.trips == 2
        assert not b.allow(2.5)

    def test_interleaved_traffic_never_strands_the_breaker_open(self):
        # Regression: under a repeating failure/recovery pattern the
        # breaker must keep cycling open -> half_open -> closed; a
        # stale `skips` count or an unreset `opened_at` would
        # eventually leave it permanently open (engine stranded).
        b = CircuitBreaker(failure_threshold=2, reset_after_s=5.0,
                           probe_after_skips=100)
        now = 0.0
        for _ in range(25):
            # Trip it...
            while b.state != "open":
                b.record_failure(now)
            assert not b.allow(now + 1.0)
            # ...wait out the reset window; the probe is admitted.
            now += 6.0
            assert b.allow(now)
            assert b.state == "half_open"
            # A successful probe fully closes and resets the strike
            # count: a single later failure must not re-trip.
            assert b.record_success()
            assert b.state == "closed"
            assert not b.record_failure(now)
            b.record_success()
            assert b.state == "closed"
            now += 1.0
        # 25 full cycles, each one trip, none of them sticky.
        assert b.trips == 25
        assert b.allow(now)

    def test_skip_fallback_unwedges_a_stalled_clock(self):
        b = CircuitBreaker(failure_threshold=1, reset_after_s=1e9,
                           probe_after_skips=3)
        b.record_failure(0.0)
        # The modeled clock never advances, yet the breaker still
        # admits a probe after enough skipped requests.
        assert [b.allow(0.0) for _ in range(4)] \
            == [False, False, False, True]
        assert b.state == "half_open"


class TestLaneHealth:
    def test_quarantines_at_threshold(self):
        h = LaneHealth()
        assert not h.record_failure(0.0, threshold=2, quarantine_s=5.0)
        assert h.record_failure(1.0, threshold=2, quarantine_s=5.0)
        assert h.state == "quarantined" and not h.usable
        assert h.quarantined_until == 6.0

    def test_window_expiry_enters_probation(self):
        h = LaneHealth()
        h.record_failure(0.0, threshold=1, quarantine_s=5.0)
        assert not h.refresh(4.0)
        assert h.refresh(5.0)
        assert h.state == "probation" and h.usable

    def test_probation_failure_requarantines_with_doubled_window(self):
        h = LaneHealth()
        h.record_failure(0.0, threshold=1, quarantine_s=5.0)
        h.refresh(5.0)
        assert h.record_failure(10.0, threshold=3, quarantine_s=5.0)
        assert h.quarantined_until == 20.0  # 10 + 5 * 2**1
        assert h.quarantine_count == 2

    def test_probation_success_readmits(self):
        h = LaneHealth()
        h.record_failure(0.0, threshold=1, quarantine_s=5.0)
        h.refresh(5.0)
        assert h.record_success()
        assert h.state == "healthy" and h.quarantine_count == 0


@pytest.fixture()
def gpu_request(small_queries):
    return SearchRequest(queries=small_queries, d=2.5,
                         method="gpu_temporal", request_id="r0")


class TestTypedRejections:
    def test_deadline_exceeded_is_a_typed_response(self, small_db,
                                                   gpu_request):
        svc = QueryService(small_db)
        gpu_request.deadline_s = 1e-12
        resp = svc.submit(gpu_request)
        assert not resp.ok
        assert resp.status == "deadline_exceeded"
        assert resp.outcome is None
        assert "budget" in resp.reason or "deadline" in resp.reason
        reg = svc.telemetry.metrics
        assert reg.counter("repro_rejections_total").total() == 1
        # Rejections round-trip through the JSON surface too.
        assert resp.to_dict()["outcome"] is None

    def test_queue_pressure_sheds_with_overloaded(self, small_db,
                                                  small_queries):
        svc = QueryService(small_db, max_queue_delay_s=0.0)
        reqs = [SearchRequest(queries=small_queries, d=2.5, method=m,
                              request_id=f"r{i}")
                for i, m in enumerate(
                    ("gpu_temporal", "cpu_rtree", "gpu_temporal"))]
        responses = svc.submit_batch(reqs)
        # r0 busies the GPU lane, r1 busies the host lane; with every
        # executor backlogged past the 0s limit, r2 is shed up front.
        assert responses[0].ok and responses[1].ok
        assert responses[2].status == "overloaded"
        assert svc.stats()["shed"] == 1

    def test_fresh_batch_is_not_shed(self, small_db, gpu_request):
        svc = QueryService(small_db, max_queue_delay_s=0.0)
        assert svc.submit(gpu_request).ok
        # The clock catches up between batches: no standing backlog.
        gpu_request.request_id = "r1"
        assert svc.submit(gpu_request).ok


class TestFailover:
    def test_midbatch_engine_failure_still_answers_complete(
            self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        # The first kernel launch succeeds; every later one aborts, so
        # the failure lands mid-batch, after request r0 already ran.
        inj = FaultInjector(
            [FaultSpec(kind="kernel_abort", after=1)], seed=0)
        svc = QueryService(db, faults=inj)
        r0, r1 = svc.submit_batch([
            SearchRequest(queries=queries, d=d, method="gpu_temporal",
                          request_id=f"r{i}") for i in range(2)])
        assert r0.ok and not r0.metrics.degraded
        assert r1.ok and r1.metrics.degraded
        assert r1.metrics.failovers == 3  # 2 GPU rungs, then cpu_rtree
        assert r1.metrics.engine == "cpu_rtree"
        assert "KernelAbortError" in r1.metrics.degradation_reason
        # Degraded means slower, never incomplete or wrong.
        assert r1.outcome.results.equivalent_to(truth)

    def test_failed_builds_are_never_usable_cache_entries(
            self, small_db, gpu_request):
        inj = FaultInjector([FaultSpec(kind="oom")], seed=0)
        svc = QueryService(small_db, faults=inj)
        resp = svc.submit(gpu_request)
        assert resp.ok and resp.metrics.degraded
        assert resp.metrics.engine == "cpu_rtree"
        stats = svc.cache.stats
        assert stats.failed_builds == 3  # every GPU rung's build OOMed
        assert len(svc.cache) == 1      # only cpu_rtree was cached
        # The next request must rebuild/fail over again, not "hit" a
        # phantom GPU entry.
        gpu_request.request_id = "r1"
        resp2 = svc.submit(gpu_request)
        assert resp2.ok and resp2.metrics.engine == "cpu_rtree"
        assert len(svc.cache) == 1

    def test_no_lane_available_carries_no_breaker_penalty(
            self, small_db, gpu_request):
        inj = FaultInjector([FaultSpec(kind="oom")], seed=0)
        svc = QueryService(small_db, faults=inj,
                           lane_failure_threshold=1,
                           lane_quarantine_s=1e9)
        svc.submit(gpu_request)  # quarantines the only lane
        assert svc.stats()["lane_health"]["0"]["state"] == "quarantined"
        gpu_request.request_id = "r1"
        resp = svc.submit(gpu_request)  # GPU rungs raise NoUsableLane
        assert resp.ok and resp.metrics.engine == "cpu_rtree"
        # Skipping for lack of a lane is not the engine's fault: the
        # gpu_temporal breaker holds at one strike from the OOM build.
        breaker = svc.stats()["breakers"]["gpu_temporal"]
        assert breaker["state"] == "closed"
        assert breaker["consecutive_failures"] == 1

    def test_breaker_opens_then_skips_the_rung(self, small_db,
                                               gpu_request):
        inj = FaultInjector([FaultSpec(kind="kernel_abort")], seed=0)
        svc = QueryService(small_db, faults=inj, breaker_threshold=1,
                           breaker_reset_s=1e9, lane_quarantine_s=1e9)
        svc.submit(gpu_request)
        assert svc.stats()["breakers"]["gpu_temporal"]["state"] == "open"
        gpu_request.request_id = "r1"
        resp = svc.submit(gpu_request)
        assert resp.ok and resp.metrics.degraded
        assert "circuit breaker open" in resp.metrics.degradation_reason
        reg = svc.telemetry.metrics
        assert reg.counter("repro_breaker_skips_total").total() > 0

    def test_breaker_probe_recloses_after_recovery(self, small_db,
                                                   gpu_request):
        # One abort, then the engine is healthy again.
        inj = FaultInjector(
            [FaultSpec(kind="kernel_abort", count=1)], seed=0)
        svc = QueryService(small_db, faults=inj, breaker_threshold=1,
                           breaker_reset_s=1e-12)
        assert svc.submit(gpu_request).metrics.degraded
        assert svc.stats()["breakers"]["gpu_temporal"]["state"] == "open"
        gpu_request.request_id = "r1"
        resp = svc.submit(gpu_request)  # half-open probe succeeds
        assert resp.ok and not resp.metrics.degraded
        assert resp.metrics.engine == "gpu_temporal"
        assert svc.stats()["breakers"]["gpu_temporal"]["state"] \
            == "closed"


class TestLaneLifecycle:
    def test_quarantine_invalidates_cached_engines_then_readmits(
            self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        req = SearchRequest(queries=queries, d=d,
                            method="gpu_temporal", request_id="r0")
        # Count the device operations of one clean request so the
        # blackout can be planted on its very last one — after the
        # build succeeded and the engine was cached.
        probe = FaultInjector([], seed=0)
        QueryService(db, faults=probe).submit(req)
        inj = FaultInjector(
            [FaultSpec(kind="lane_blackout",
                       after=probe.total_ops - 1, count=1)], seed=0)
        svc = QueryService(db, faults=inj, lane_failure_threshold=1,
                           lane_quarantine_s=1e-12)
        resp = svc.submit(req)
        assert resp.ok and resp.metrics.degraded
        assert resp.outcome.results.equivalent_to(truth)
        stats = svc.stats()
        assert stats["lane_health"]["0"]["state"] == "quarantined"
        assert svc.cache.stats.invalidations == 1
        assert len(svc.telemetry.events.of_kind("lane_quarantined")) == 1

        # Operator swaps the card; the quarantine window has lapsed on
        # the modeled clock, so the lane re-enters on probation and one
        # clean request readmits it.
        inj.revive(0)
        req.request_id = "r1"
        resp2 = svc.submit(req)
        assert resp2.ok and not resp2.metrics.degraded
        assert resp2.metrics.engine == "gpu_temporal"
        health = svc.stats()["lane_health"]["0"]
        assert health["state"] == "healthy"
        assert health["quarantine_count"] == 0
        assert len(svc.telemetry.events.of_kind("lane_readmitted")) == 1


class TestRetryBackoff:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(backoff_s=0.01, jitter=0.5)
        assert policy.backoff_for(1) == policy.backoff_for(1)
        assert policy.backoff_for(2) > policy.backoff_for(1)
        assert policy.backoff_for(3) > policy.backoff_for(2)
        assert RetryPolicy(backoff_s=0.0).backoff_for(5) == 0.0

    def test_attempts_and_backoff_surface_in_request_metrics(
            self, small_db, small_queries):
        svc = QueryService(
            small_db, retry=RetryPolicy(max_attempts=4, backoff_s=1e-3))
        resp = svc.submit(SearchRequest(
            queries=small_queries, d=2.5, method="gpu_temporal",
            params={"result_buffer_items": 1}, request_id="tiny"))
        assert resp.ok
        assert resp.metrics.attempts >= 2
        assert resp.metrics.backoff_s > 0.0
        # The modeled wait is charged to the response, not slept.
        assert resp.metrics.modeled_seconds >= resp.metrics.backoff_s


class TestCrosscheck:
    def test_sampled_failover_responses_match_ground_truth(
            self, small_db, small_queries):
        inj = FaultInjector([FaultSpec(kind="kernel_abort")], seed=0)
        svc = QueryService(small_db, faults=inj, crosscheck_every=1)
        for i in range(3):
            resp = svc.submit(SearchRequest(
                queries=small_queries, d=2.5, method="gpu_temporal",
                request_id=f"r{i}"))
            assert resp.ok and resp.metrics.degraded
        stats = svc.stats()
        assert stats["failover_serves"] == 3
        assert stats["crosschecks"] == 3
        assert stats["crosscheck_mismatches"] == []
        reg = svc.telemetry.metrics
        assert reg.counter(
            "repro_crosschecks_total").total() == 3

    def test_crosscheck_sampling_rate(self, small_db, small_queries):
        inj = FaultInjector([FaultSpec(kind="kernel_abort")], seed=0)
        svc = QueryService(small_db, faults=inj, crosscheck_every=2)
        for i in range(4):
            svc.submit(SearchRequest(
                queries=small_queries, d=2.5, method="gpu_temporal",
                request_id=f"r{i}"))
        assert svc.stats()["crosschecks"] == 2
