"""Tests for scenarios, the experiment harness and reporting.

These run at a tiny scale (0.004-0.008) so the whole file stays fast while
still executing the real figure pipelines end to end.
"""

import numpy as np
import pytest

from repro.experiments import (ExperimentRunner, RunRecord,
                               ablation_indirection, markdown_table,
                               ratio_table, records_to_series,
                               scenario_s1_random, scenario_s2_merger,
                               scenario_s3_random_dense, series_table)

TINY = 0.004


@pytest.fixture(scope="module")
def s1_runner():
    return ExperimentRunner(scenario_s1_random(TINY))


class TestScenarios:
    def test_env_scale(self, monkeypatch):
        from repro.experiments.scenarios import default_scale
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ValueError):
            default_scale()

    def test_s1_sizes(self):
        s = scenario_s1_random(0.01)
        db = s.make_database()
        q = s.make_queries(db)
        assert db.num_trajectories == 25
        # Fresh queries: ids disjoint from the database's.
        assert not set(np.unique(q.traj_ids)) \
            & set(np.unique(db.traj_ids))

    def test_s2_s3_query_subsets(self):
        for scen in (scenario_s2_merger(0.004),
                     scenario_s3_random_dense(0.004)):
            db = scen.make_database()
            q = scen.make_queries(db)
            assert set(np.unique(q.traj_ids)) \
                <= set(np.unique(db.traj_ids))

    def test_d_values_match_paper(self):
        assert scenario_s1_random(TINY).d_values[0] == 5.0
        assert scenario_s1_random(TINY).d_values[-1] == 50.0
        assert scenario_s2_merger(TINY).d_values[0] == 0.001
        assert scenario_s3_random_dense(TINY).d_values[-1] == 0.09


class TestRunner:
    def test_run_one_produces_record(self, s1_runner):
        rec, results = s1_runner.run_one("gpu_temporal", 10.0)
        assert isinstance(rec, RunRecord)
        assert rec.engine == "gpu_temporal"
        assert rec.modeled_seconds > 0
        assert rec.result_items == len(results)
        assert rec.comparisons > 0

    def test_engine_cache(self, s1_runner):
        a = s1_runner.engine("gpu_temporal")
        b = s1_runner.engine("gpu_temporal")
        assert a is b
        c = s1_runner.engine("gpu_temporal", num_bins=17)
        assert c is not a

    def test_sweep_covers_grid(self, s1_runner):
        recs = s1_runner.sweep(["cpu_rtree", "gpu_temporal"],
                               d_values=(5.0, 25.0))
        assert len(recs) == 4
        assert {(r.engine, r.d) for r in recs} == {
            ("cpu_rtree", 5.0), ("cpu_rtree", 25.0),
            ("gpu_temporal", 5.0), ("gpu_temporal", 25.0)}

    def test_optimistic_never_exceeds_modeled(self, s1_runner):
        recs = s1_runner.sweep(["gpu_spatial"], d_values=(5.0, 40.0))
        for r in recs:
            assert r.optimistic_seconds <= r.modeled_seconds + 1e-12

    def test_engines_exact_inside_harness(self, s1_runner):
        """The harness path produces the same results as brute force."""
        from repro.core.bruteforce import brute_force_search
        _, res = s1_runner.run_one("gpu_spatiotemporal", 15.0)
        truth = brute_force_search(s1_runner.queries,
                                   s1_runner.database, 15.0)
        assert res.equivalent_to(truth)

    def test_record_as_dict(self, s1_runner):
        rec, _ = s1_runner.run_one("cpu_rtree", 5.0)
        d = rec.as_dict()
        assert d["engine"] == "cpu_rtree"
        assert set(d) >= {"modeled_seconds", "comparisons", "d"}


class TestAblations:
    def test_indirection_overhead_positive(self):
        out = ablation_indirection(TINY, d=25.0)
        assert out["overhead_fraction"] > 0
        assert out["gpu_spatiotemporal_v1_s"] > out["gpu_temporal_s"]


class TestReport:
    @pytest.fixture()
    def records(self, s1_runner):
        return s1_runner.sweep(["cpu_rtree", "gpu_temporal"],
                               d_values=(5.0, 25.0))

    def test_records_to_series(self, records):
        d, series = records_to_series(records)
        assert d == [5.0, 25.0]
        assert set(series) == {"cpu_rtree", "gpu_temporal"}
        assert all(len(v) == 2 for v in series.values())

    def test_series_table_renders(self, records):
        d, series = records_to_series(records)
        text = series_table("My title", d, series)
        assert "My title" in text
        assert "cpu_rtree" in text and "gpu_temporal" in text

    def test_ratio_table(self, records):
        d, series = records_to_series(records)
        text = ratio_table("Ratios", d, series, baseline="cpu_rtree")
        assert "gpu_temporal" in text
        assert "cpu_rtree |" not in text  # baseline row dropped
        with pytest.raises(KeyError):
            ratio_table("x", d, series, baseline="nope")

    def test_markdown_table(self, records):
        d, series = records_to_series(records)
        md = markdown_table(d, series)
        assert md.startswith("| engine |")
        assert "| cpu_rtree |" in md

    def test_missing_point_rendered_as_dash(self):
        text = series_table("t", [1.0, 2.0],
                            {"e": [1.0, float("nan")]})
        assert "-" in text.splitlines()[-1]
