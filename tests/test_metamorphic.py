"""Metamorphic properties of the distance-threshold search.

The search's semantics are invariant under transformations of the whole
workload; every engine must commute with them:

* **spatial translation** — shifting all coordinates by a constant
  vector changes nothing;
* **uniform scaling** — scaling space by ``s`` and the threshold by
  ``s`` preserves the result pairs and intervals;
* **time shift** — shifting all times by ``Δ`` shifts the intervals by
  exactly ``Δ``;
* **axis permutation** — relabeling (x, y, z) changes nothing (catches
  transposed-axis bugs in the subbin/grid machinery);
* **database row permutation** — engines must not depend on input
  order.

These catch whole classes of indexing bugs that example-based tests
miss (wrong axis, missing d-expansion, off-by-one bin shifts).
"""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_search
from repro.core.search import SearchOutcome
from repro.core.types import SegmentArray, Trajectory
from repro.engines import (CpuRTreeEngine, GpuSpatialEngine,
                           GpuSpatioTemporalEngine, GpuTemporalEngine)
from repro.engines.cpu_scan import CpuScanEngine
from repro.gpu.costmodel import CpuCostModel
from repro.ingest import (IngestError, VersionedDatabase,
                          overlay_search)
from tests.conftest import make_walk_trajectories

FACTORIES = {
    "gpu_temporal": lambda db: GpuTemporalEngine(db, num_bins=16),
    "gpu_spatial": lambda db: GpuSpatialEngine(db, cells_per_dim=6),
    "gpu_spatiotemporal": lambda db: GpuSpatioTemporalEngine(
        db, num_bins=16, num_subbins=2, strict_subbins=False),
    "cpu_rtree": lambda db: CpuRTreeEngine(db, segments_per_mbb=2),
}


@pytest.fixture(scope="module")
def workload():
    db = SegmentArray.from_trajectories(
        make_walk_trajectories(16, 10, seed=21, box=15.0))
    q = db.take(np.arange(0, len(db), 7))
    return db, q, 2.0


def transform(seg: SegmentArray, *, shift=(0.0, 0.0, 0.0), scale=1.0,
              tshift=0.0, axes=(0, 1, 2)) -> SegmentArray:
    coords = [np.stack([seg.xs, seg.ys, seg.zs]),
              np.stack([seg.xe, seg.ye, seg.ze])]
    out = []
    for c in coords:
        c = c[list(axes)] * scale + np.asarray(shift)[:, None]
        out.append(c)
    (xs, ys, zs), (xe, ye, ze) = out
    return SegmentArray(xs, ys, zs, seg.ts + tshift, xe, ye, ze,
                        seg.te + tshift, seg.traj_ids, seg.seg_ids)


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestInvariances:
    def run(self, name, db, q, d):
        res, _ = FACTORIES[name](db).search(q, d)
        return res.canonical()

    def test_spatial_translation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        shift = (123.0, -45.0, 6.0)
        moved = self.run(name, transform(db, shift=shift),
                         transform(q, shift=shift), d)
        assert base.equivalent_to(moved)

    def test_uniform_scaling(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        s = 7.5
        scaled = self.run(name, transform(db, scale=s),
                          transform(q, scale=s), d * s)
        assert base.equivalent_to(scaled)

    def test_time_shift_moves_intervals(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        dt = 1000.0
        shifted = self.run(name, transform(db, tshift=dt),
                           transform(q, tshift=dt), d)
        assert np.array_equal(base.q_ids, shifted.q_ids)
        assert np.array_equal(base.e_ids, shifted.e_ids)
        np.testing.assert_allclose(shifted.t_lo, base.t_lo + dt,
                                   atol=1e-6)
        np.testing.assert_allclose(shifted.t_hi, base.t_hi + dt,
                                   atol=1e-6)

    def test_axis_permutation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        perm = (2, 0, 1)
        permuted = self.run(name, transform(db, axes=perm),
                            transform(q, axes=perm), d)
        assert base.equivalent_to(permuted)

    def test_database_row_permutation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        rng = np.random.default_rng(3)
        shuffled = db.take(rng.permutation(len(db)))
        assert base.equivalent_to(self.run(name, shuffled, q, d))

    def test_query_row_permutation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        rng = np.random.default_rng(4)
        shuffled = q.take(rng.permutation(len(q)))
        assert base.equivalent_to(self.run(name, db, shuffled, d))


class TestMonotonicity:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_results_monotone_in_d(self, name, workload):
        """The result pair set only grows with d."""
        db, q, _ = workload
        engine = FACTORIES[name](db)
        prev: set = set()
        for d in (0.5, 1.5, 4.0):
            res, _ = engine.search(q, d)
            pairs = res.pairs()
            assert prev <= pairs
            prev = pairs

    def test_subset_queries_subset_results(self, workload):
        db, q, d = workload
        engine = GpuTemporalEngine(db, num_bins=16)
        full, _ = engine.search(q, d)
        half_q = q.take(np.arange(0, len(q), 2))
        half, _ = engine.search(half_q, d)
        kept = set(half_q.seg_ids.tolist())
        expect = {(a, b) for a, b in full.pairs() if a in kept}
        assert half.pairs() == expect


# -- overlay under churn ------------------------------------------------------


def _segs(num_traj=4, steps=8, seed=0, id_offset=0, traj_id=None):
    trajs = make_walk_trajectories(num_traj, steps, seed=seed,
                                   box=15.0)
    relabel = (lambda t: traj_id) if traj_id is not None \
        else (lambda t: t.traj_id + id_offset)
    return SegmentArray.from_trajectories(
        [Trajectory(relabel(t), t.times, t.positions)
         for t in trajs])


def _overlay_answer(vdb, queries, d):
    """The serving path's answer at the current snapshot: base scan
    lifted through the tombstone filter + delta overlay."""
    snap = vdb.snapshot()
    engine = CpuScanEngine(snap.base)
    results, profile = engine.search(queries, d)
    outcome = SearchOutcome(
        results=results, profile=profile,
        modeled=profile.modeled_time(CpuCostModel()))
    outcome, _ = overlay_search(outcome, snap, queries, d)
    return outcome.results


def _logical_key(vdb, results):
    """Order- and seg_id-assignment-independent identity of a result
    set: entry segments named by (trajectory, segment start time)
    instead of their database-assigned ids."""
    logical = vdb.snapshot().logical()
    ident = {int(s): (int(t), float(ts)) for s, t, ts in
             zip(logical.seg_ids, logical.traj_ids, logical.ts)}
    c = results.canonical()
    return sorted(
        (int(q),) + ident[int(e)] + (float(lo), float(hi))
        for q, e, lo, hi in zip(c.q_ids, c.e_ids, c.t_lo, c.t_hi))


class TestOverlayChurnMetamorphic:
    """The overlay must equal from-scratch evaluation under any mix of
    ingest, delete, compaction, and (post-compaction) re-ingest of a
    previously deleted trajectory id — including the tombstone
    edge cases around id re-use."""

    D = 2.0

    @pytest.fixture()
    def queries(self):
        return _segs(num_traj=2, steps=6, seed=91, id_offset=9000)

    def check(self, vdb, queries):
        got = _overlay_answer(vdb, queries, self.D)
        truth = brute_force_search(queries,
                                   vdb.snapshot().logical(), self.D)
        assert got.equivalent_to(truth)

    def test_overlay_exact_at_every_step_of_mixed_churn(self, queries):
        vdb = VersionedDatabase(_segs(num_traj=8, seed=1))
        rng = np.random.default_rng(5)
        offset = 100
        for i in range(12):
            kind = ("append", "delete", "append", "compact")[i % 4]
            if kind == "append":
                vdb.append(_segs(num_traj=2, seed=40 + i,
                                 id_offset=offset))
                offset += 10
            elif kind == "delete":
                live = sorted(set(np.unique(
                    vdb.snapshot().logical().traj_ids).tolist()))
                vdb.delete_trajectory(
                    int(live[int(rng.integers(len(live) - 1))]))
            else:
                vdb.compact()
            self.check(vdb, queries)

    def test_disjoint_appends_commute(self, queries):
        a = _segs(num_traj=2, seed=50, id_offset=100)
        b = _segs(num_traj=2, seed=60, id_offset=200)
        ab = VersionedDatabase(_segs(num_traj=6, seed=2))
        ab.append(a), ab.append(b)
        ba = VersionedDatabase(_segs(num_traj=6, seed=2))
        ba.append(b), ba.append(a)
        key_ab = _logical_key(ab, _overlay_answer(ab, queries, self.D))
        key_ba = _logical_key(ba, _overlay_answer(ba, queries, self.D))
        assert key_ab == key_ba
        self.check(ab, queries)
        self.check(ba, queries)

    def test_delete_then_reinsert_same_id(self, queries):
        """The tombstone-reuse edge: re-appending a deleted id is
        rejected until compaction physically drops the old rows, and
        afterwards the overlay serves exactly the new geometry."""
        vdb = VersionedDatabase(_segs(num_traj=6, seed=3))
        vdb.delete_trajectory(0)
        self.check(vdb, queries)
        # Pre-compaction re-use would be silently hidden by the
        # tombstone, so it must raise instead.
        with pytest.raises(IngestError):
            vdb.append(_segs(num_traj=1, seed=70, traj_id=0))
        self.check(vdb, queries)
        vdb.compact()
        reborn = _segs(num_traj=1, seed=70, traj_id=0)
        vdb.append(reborn)
        self.check(vdb, queries)
        # The resurrected id serves its new geometry: every pair the
        # referee finds for trajectory 0 comes from the new segments.
        logical = vdb.snapshot().logical()
        rows = logical.traj_ids == 0
        assert np.array_equal(np.sort(logical.ts[rows]),
                              np.sort(reborn.ts))
        # And a later delete of the reborn id works normally.
        vdb.delete_trajectory(0)
        self.check(vdb, queries)

    def test_double_delete_is_noop(self, queries):
        vdb = VersionedDatabase(_segs(num_traj=6, seed=4))
        assert vdb.delete_trajectory(1) > 0
        before = _overlay_answer(vdb, queries, self.D).canonical()
        epoch = vdb.epoch
        assert vdb.delete_trajectory(1) == 0
        assert vdb.epoch == epoch  # a no-op must not burn an epoch
        after = _overlay_answer(vdb, queries, self.D).canonical()
        assert before.equivalent_to(after)
        self.check(vdb, queries)
