"""Metamorphic properties of the distance-threshold search.

The search's semantics are invariant under transformations of the whole
workload; every engine must commute with them:

* **spatial translation** — shifting all coordinates by a constant
  vector changes nothing;
* **uniform scaling** — scaling space by ``s`` and the threshold by
  ``s`` preserves the result pairs and intervals;
* **time shift** — shifting all times by ``Δ`` shifts the intervals by
  exactly ``Δ``;
* **axis permutation** — relabeling (x, y, z) changes nothing (catches
  transposed-axis bugs in the subbin/grid machinery);
* **database row permutation** — engines must not depend on input
  order.

These catch whole classes of indexing bugs that example-based tests
miss (wrong axis, missing d-expansion, off-by-one bin shifts).
"""

import numpy as np
import pytest

from repro.core.types import SegmentArray
from repro.engines import (CpuRTreeEngine, GpuSpatialEngine,
                           GpuSpatioTemporalEngine, GpuTemporalEngine)
from tests.conftest import make_walk_trajectories

FACTORIES = {
    "gpu_temporal": lambda db: GpuTemporalEngine(db, num_bins=16),
    "gpu_spatial": lambda db: GpuSpatialEngine(db, cells_per_dim=6),
    "gpu_spatiotemporal": lambda db: GpuSpatioTemporalEngine(
        db, num_bins=16, num_subbins=2, strict_subbins=False),
    "cpu_rtree": lambda db: CpuRTreeEngine(db, segments_per_mbb=2),
}


@pytest.fixture(scope="module")
def workload():
    db = SegmentArray.from_trajectories(
        make_walk_trajectories(16, 10, seed=21, box=15.0))
    q = db.take(np.arange(0, len(db), 7))
    return db, q, 2.0


def transform(seg: SegmentArray, *, shift=(0.0, 0.0, 0.0), scale=1.0,
              tshift=0.0, axes=(0, 1, 2)) -> SegmentArray:
    coords = [np.stack([seg.xs, seg.ys, seg.zs]),
              np.stack([seg.xe, seg.ye, seg.ze])]
    out = []
    for c in coords:
        c = c[list(axes)] * scale + np.asarray(shift)[:, None]
        out.append(c)
    (xs, ys, zs), (xe, ye, ze) = out
    return SegmentArray(xs, ys, zs, seg.ts + tshift, xe, ye, ze,
                        seg.te + tshift, seg.traj_ids, seg.seg_ids)


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestInvariances:
    def run(self, name, db, q, d):
        res, _ = FACTORIES[name](db).search(q, d)
        return res.canonical()

    def test_spatial_translation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        shift = (123.0, -45.0, 6.0)
        moved = self.run(name, transform(db, shift=shift),
                         transform(q, shift=shift), d)
        assert base.equivalent_to(moved)

    def test_uniform_scaling(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        s = 7.5
        scaled = self.run(name, transform(db, scale=s),
                          transform(q, scale=s), d * s)
        assert base.equivalent_to(scaled)

    def test_time_shift_moves_intervals(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        dt = 1000.0
        shifted = self.run(name, transform(db, tshift=dt),
                           transform(q, tshift=dt), d)
        assert np.array_equal(base.q_ids, shifted.q_ids)
        assert np.array_equal(base.e_ids, shifted.e_ids)
        np.testing.assert_allclose(shifted.t_lo, base.t_lo + dt,
                                   atol=1e-6)
        np.testing.assert_allclose(shifted.t_hi, base.t_hi + dt,
                                   atol=1e-6)

    def test_axis_permutation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        perm = (2, 0, 1)
        permuted = self.run(name, transform(db, axes=perm),
                            transform(q, axes=perm), d)
        assert base.equivalent_to(permuted)

    def test_database_row_permutation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        rng = np.random.default_rng(3)
        shuffled = db.take(rng.permutation(len(db)))
        assert base.equivalent_to(self.run(name, shuffled, q, d))

    def test_query_row_permutation(self, name, workload):
        db, q, d = workload
        base = self.run(name, db, q, d)
        rng = np.random.default_rng(4)
        shuffled = q.take(rng.permutation(len(q)))
        assert base.equivalent_to(self.run(name, db, shuffled, d))


class TestMonotonicity:
    @pytest.mark.parametrize("name", sorted(FACTORIES))
    def test_results_monotone_in_d(self, name, workload):
        """The result pair set only grows with d."""
        db, q, _ = workload
        engine = FACTORIES[name](db)
        prev: set = set()
        for d in (0.5, 1.5, 4.0):
            res, _ = engine.search(q, d)
            pairs = res.pairs()
            assert prev <= pairs
            prev = pairs

    def test_subset_queries_subset_results(self, workload):
        db, q, d = workload
        engine = GpuTemporalEngine(db, num_bins=16)
        full, _ = engine.search(q, d)
        half_q = q.take(np.arange(0, len(q), 2))
        half, _ = engine.search(half_q, d)
        kept = set(half_q.seg_ids.tolist())
        expect = {(a, b) for a, b in full.pairs() if a in kept}
        assert half.pairs() == expect
