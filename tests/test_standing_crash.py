"""Standing queries under process death: no lost or duplicated events.

Two layers of proof:

* **Kill-point campaigns** — the full standing campaign (streaming
  fleet, subscriptions, compactions, exactness referee after every
  mutation) is run once per :data:`~repro.durability.KILL_POINTS`
  class; every run must crash, recover, resume, and stay byte-exact.
* **Event-stream parity** — the same schedule is driven through an
  uninterrupted in-memory service and through a durable service that
  crashes mid-stream and recovers; the full delta-event streams
  (seq, epoch, kind, sub, pair) must be *identical*, pinning the
  recovery contract exactly: acknowledged events are never lost, never
  re-emitted, and catch-up events carry the same epoch stamps an
  uninterrupted run would have produced.

Plus sidecar damage: a torn (half-written) standing event line must be
detected, counted, and dropped without losing anything durable.
"""

import numpy as np
import pytest

from repro.core.types import SegmentArray, Trajectory
from repro.durability import (DurabilityPolicy, KILL_POINTS,
                              KillSwitch, SimulatedCrash)
from repro.engines.cpu_scan import CpuScanEngine
from repro.faults.crashes import _result_bytes
from repro.obs import Telemetry
from repro.service import QueryService
from repro.standing import (StandingCampaignConfig, Subscription,
                            run_standing_campaign)
from repro.standing.campaign import (_apply, _make_subscriptions,
                                     _materialize)
from repro.data.moving import MovingObjectsWorkload
from tests.conftest import make_walk_trajectories


def _quiet():
    return Telemetry(enabled=False)


def _db(num_traj=10, steps=8, seed=0, id_offset=0):
    trajs = make_walk_trajectories(num_traj, steps, seed=seed)
    if id_offset:
        trajs = [Trajectory(t.traj_id + id_offset, t.times,
                            t.positions) for t in trajs]
    return SegmentArray.from_trajectories(trajs)


def _event_key(rec):
    return (rec["seq"], rec["epoch"], rec["kind"], rec["sub_id"],
            rec["q_id"], rec["e_id"])


def _exact(service, sub):
    results, _ = CpuScanEngine(
        service.current_snapshot().logical()).search(
        sub.queries, sub.d,
        exclude_same_trajectory=sub.exclude_same_trajectory)
    want = _result_bytes(sub.apply_window(results))
    return want == _result_bytes(service.standing.results(sub.sub_id))


class TestKillPointCampaigns:
    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_campaign_survives_kill_point(self, point):
        report = run_standing_campaign(StandingCampaignConfig(
            seed=4, kill_point=point))
        assert report.crash_fired, report.render()
        assert report.ok, report.render()
        assert report.mismatches == []
        assert report.event_violations == []
        assert report.stream_consistent


class TestEventStreamParity:
    """Crashed-and-recovered event stream == uninterrupted stream."""

    @pytest.mark.parametrize("seed", [0, 11])
    def test_streams_identical_across_crash(self, seed, tmp_path):
        cfg = StandingCampaignConfig(seed=seed)
        deltas = MovingObjectsWorkload(
            config=cfg.fleet, seed=cfg.seed).epochs(cfg.stream_epochs)
        base, schedule = _materialize(cfg, deltas)
        subs = _make_subscriptions(cfg, deltas)

        # Uninterrupted reference: in-memory, same schedule.
        ref = QueryService(base, auto_compact=False,
                           telemetry=_quiet())
        for sub in subs:
            ref.register_subscription(sub)
        for op in schedule:
            _apply(ref, op)
        ref_stream = [_event_key(r)
                      for r in ref.standing.events_since(0)]
        ref_final = {sub.sub_id: ref.standing.matches(sub.sub_id)
                     for sub in subs}

        # Durable run that dies mid-schedule and recovers.
        policy = DurabilityPolicy(sync=cfg.sync,
                                  checkpoint_every=cfg.checkpoint_every)
        crash_op = max(2, len(schedule) // 2)
        svc = QueryService(
            base, durability_dir=tmp_path / "dur", durability=policy,
            durability_kill=KillSwitch("wal_post_append",
                                       occurrence=crash_op),
            auto_compact=False, telemetry=_quiet())
        for sub in subs:
            svc.register_subscription(sub)
        with pytest.raises(SimulatedCrash):
            for op in schedule:
                _apply(svc, op)
        stream = [_event_key(r) for r in svc.standing.events_since(0)]
        pre_crash_seq = svc.standing.last_seq
        svc = QueryService.recover(tmp_path / "dur", policy=policy,
                                   auto_compact=False,
                                   telemetry=_quiet())
        # Replayed events keep their pre-crash seqs (already in
        # `stream`); everything new continues after them.
        for op in schedule[svc.last_recovery.epoch:]:
            _apply(svc, op)
        stream += [_event_key(r) for r in
                   svc.standing.events_since(pre_crash_seq)]

        assert stream == ref_stream
        for sub in subs:
            assert svc.standing.matches(sub.sub_id) \
                == ref_final[sub.sub_id]
            assert _exact(svc, sub)


class TestStandingStateRecovery:
    def _sub(self):
        return Subscription(
            sub_id="sub-a",
            queries=_db(num_traj=2, steps=6, seed=77,
                        id_offset=9000),
            d=2.5)

    def test_clean_shutdown_then_recover(self, tmp_path):
        policy = DurabilityPolicy(sync="fsync", checkpoint_every=100)
        svc = QueryService(_db(seed=1), durability_dir=tmp_path / "d",
                           durability=policy, auto_compact=False,
                           telemetry=_quiet())
        sub = self._sub()
        svc.register_subscription(sub)
        svc.ingest(_db(num_traj=2, seed=5, id_offset=300))
        svc.shutdown()
        again = QueryService.recover(tmp_path / "d", policy=policy,
                                     auto_compact=False,
                                     telemetry=_quiet())
        assert sorted(again.standing.subscriptions) == ["sub-a"]
        # Shutdown checkpointed: nothing to replay, nothing to catch
        # up, and the restored answer is exact.
        assert again.standing.totals["replayed_events"] == 0
        assert again.standing.totals["caught_up_events"] == 0
        assert _exact(again, sub)
        # The stream keeps working post-recovery.
        again.ingest(_db(num_traj=2, seed=6, id_offset=400))
        assert _exact(again, sub)

    def test_torn_standing_event_is_dropped_not_fatal(self, tmp_path):
        policy = DurabilityPolicy(sync="fsync", checkpoint_every=100)
        svc = QueryService(_db(seed=1), durability_dir=tmp_path / "d",
                           durability=policy, auto_compact=False,
                           telemetry=_quiet())
        sub = self._sub()
        svc.register_subscription(sub)
        # Ingest a near-copy of the query geometry: guaranteed
        # matches, hence guaranteed durable match_added events.
        q = sub.queries
        near = SegmentArray(q.xs + 0.5, q.ys, q.zs, q.ts,
                            q.xe + 0.5, q.ye, q.ze, q.te,
                            np.full_like(q.traj_ids, 500), q.seg_ids)
        svc.ingest(near)
        assert svc.standing.store.events_appended > 0
        # Abandon the service as a dead process would and tear the
        # sidecar's final event line.
        events = tmp_path / "d" / "standing" / "events.jsonl"
        with events.open("a", encoding="utf-8") as fh:
            fh.write('{"seq": 9999, "epoch": 2, "kind": "match_ad')
        again = QueryService.recover(tmp_path / "d", policy=policy,
                                     auto_compact=False,
                                     telemetry=_quiet())
        assert again.standing.totals["torn_events"] == 1
        assert _exact(again, sub)
