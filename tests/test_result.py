"""Unit tests for ResultSet and interval merging."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.result import ResultSet, merge_intervals


def rs(pairs, intervals=None):
    q = np.array([p[0] for p in pairs], dtype=np.int64)
    e = np.array([p[1] for p in pairs], dtype=np.int64)
    if intervals is None:
        intervals = [(0.0, 1.0)] * len(pairs)
    lo = np.array([i[0] for i in intervals])
    hi = np.array([i[1] for i in intervals])
    return ResultSet(q, e, lo, hi)


class TestResultSet:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResultSet(np.zeros(2, dtype=np.int64),
                      np.zeros(1, dtype=np.int64), np.zeros(2),
                      np.zeros(2))

    def test_dedup_removes_pair_duplicates(self):
        r = rs([(1, 2), (1, 2), (1, 3), (2, 2), (1, 2)])
        d = r.deduplicated()
        assert len(d) == 3
        assert d.pairs() == {(1, 2), (1, 3), (2, 2)}

    def test_dedup_keeps_first_occurrence_order(self):
        r = rs([(5, 5), (1, 1), (5, 5), (3, 3)])
        d = r.deduplicated()
        assert list(d.q_ids) == [5, 1, 3]

    def test_canonical_is_sorted(self):
        r = rs([(3, 1), (1, 2), (1, 1), (2, 9)])
        c = r.canonical()
        keys = list(zip(c.q_ids, c.e_ids))
        assert keys == sorted(keys)

    def test_equivalent_ignores_order_and_duplicates(self):
        a = rs([(1, 2), (3, 4)], [(0, 1), (2, 3)])
        b = rs([(3, 4), (1, 2), (1, 2)], [(2, 3), (0, 1), (0, 1)])
        assert a.equivalent_to(b)
        c = rs([(1, 2)], [(0, 1)])
        assert not a.equivalent_to(c)
        # Same pairs, different interval => not equivalent.
        d = rs([(1, 2), (3, 4)], [(0, 1), (2, 3.5)])
        assert not a.equivalent_to(d)

    def test_from_parts(self):
        parts = [rs([(1, 1)]), ResultSet(), rs([(2, 2), (3, 3)])]
        merged = ResultSet.from_parts(parts)
        assert len(merged) == 3
        assert ResultSet.from_parts([]).pairs() == set()

    def test_by_trajectory_merges_adjacent_segments(self):
        # Segments 10,11 belong to query traj 1; entries 20,21 to traj 2.
        r = rs([(10, 20), (11, 21)], [(0.0, 1.0), (1.0, 2.0)])
        q_map = {10: 1, 11: 1}
        e_map = {20: 2, 21: 2}
        episodes = r.by_trajectory(q_map, e_map)
        assert episodes == {(1, 2): [(0.0, 2.0)]}

    def test_by_trajectory_keeps_gaps(self):
        r = rs([(10, 20), (11, 21)], [(0.0, 1.0), (5.0, 6.0)])
        episodes = r.by_trajectory({10: 1, 11: 1}, {20: 2, 21: 2})
        assert episodes == {(1, 2): [(0.0, 1.0), (5.0, 6.0)]}


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_kept_sorted(self):
        out = merge_intervals([(5, 6), (0, 1)])
        assert out == [(0, 1), (5, 6)]

    def test_overlapping_merged(self):
        assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]

    def test_touching_merged(self):
        assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]

    def test_containment(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)),
                    max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_merge_properties(self, raw):
        intervals = [(min(a, b), max(a, b)) for a, b in raw]
        merged = merge_intervals(intervals)
        # Sorted, disjoint with gaps.
        for (l1, h1), (l2, h2) in zip(merged, merged[1:]):
            assert h1 < l2
        # Total coverage preserved: every original endpoint is inside
        # some merged interval.
        for lo, hi in intervals:
            assert any(mlo - 1e-9 <= lo and hi <= mhi + 1e-9
                       for mlo, mhi in merged)
