"""The crash campaign: kill-points fire, recovery is byte-identical."""

from __future__ import annotations

import pytest

from repro.durability import KILL_POINTS
from repro.faults import CrashCampaignConfig, run_crash_campaign


def _small(**overrides) -> CrashCampaignConfig:
    """A campaign sized for the test suite (two CPU engines, tiny
    walks) — the full five-engine sweep runs in CI's crash job."""
    kw = dict(seed=0, num_ops=6, num_trajectories=8, steps=6,
              queries=2, checkpoint_every=2, sync="flush",
              methods=("cpu_scan", "cpu_rtree"))
    kw.update(overrides)
    return CrashCampaignConfig(**kw)


class TestConfigValidation:
    def test_too_few_ops_rejected(self):
        with pytest.raises(ValueError, match="num_ops"):
            CrashCampaignConfig(num_ops=3)

    def test_unknown_kill_point_rejected(self):
        with pytest.raises(ValueError, match="kill points"):
            CrashCampaignConfig(kill_points=("wal_mid_append", "oops"))

    def test_crash_on_op_bounds(self):
        with pytest.raises(ValueError, match="crash_on_op"):
            CrashCampaignConfig(num_ops=6, crash_on_op=7)


class TestCampaign:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        return run_crash_campaign(
            _small(), directory=tmp_path_factory.mktemp("campaign"))

    def test_campaign_passes(self, report):
        assert report.ok, report.render()

    def test_every_kill_point_class_fired(self, report):
        assert [r.point for r in report.runs] == list(KILL_POINTS)
        assert all(r.fired for r in report.runs)

    def test_torn_tail_exercised_by_mid_append(self, report):
        by_point = {r.point: r for r in report.runs}
        assert by_point["wal_mid_append"].torn_dropped == 1
        # The torn mutation never landed: recovery resumes it.
        mid = by_point["wal_mid_append"]
        assert mid.recovered_epoch + mid.resumed_ops \
            == report.reference_epoch

    def test_post_append_replays_the_durable_record(self, report):
        post = {r.point: r for r in report.runs}["wal_post_append"]
        assert post.torn_dropped == 0
        assert post.replayed >= 1
        assert post.recovered_epoch + post.resumed_ops \
            == report.reference_epoch

    def test_every_engine_byte_identical(self, report):
        for run in report.runs:
            assert set(run.identical) == {"cpu_scan", "cpu_rtree"}
            assert all(run.identical.values()), run.to_dict()

    def test_report_round_trips_to_dict(self, report):
        payload = report.to_dict()
        assert payload["ok"] is True
        assert len(payload["runs"]) == len(KILL_POINTS)
        assert "torn_dropped" in payload["runs"][0]

    def test_render_mentions_every_point(self, report):
        text = report.render()
        for point in KILL_POINTS:
            assert point in text


def test_deterministic_across_repeats(tmp_path):
    cfg = _small(kill_points=("wal_post_append",))
    a = run_crash_campaign(cfg, directory=tmp_path / "a")
    b = run_crash_campaign(cfg, directory=tmp_path / "b")
    assert a.to_dict() == b.to_dict()
    assert a.reference_epoch == b.reference_epoch
