"""Tests for the analytic cost model and profiles."""

import numpy as np
import pytest

from repro.gpu.costmodel import (CostBreakdown, CpuCostModel, GpuCostModel,
                                 XEON_W3690)
from repro.gpu.device import VirtualGPU
from repro.gpu.kernel import KernelLauncher, KernelStats
from repro.gpu.profiler import CpuSearchProfile, SearchProfile


def make_stats(work, atomics=0, gather=None):
    n = len(work)
    return KernelStats("k", n, np.asarray(work, dtype=np.int64),
                       np.asarray(gather if gather is not None
                                  else np.zeros(n), dtype=np.int64),
                       atomic_ops=atomics)


class TestCostBreakdown:
    def test_total_and_add(self):
        a = CostBreakdown(compute=1.0, transfers=0.5)
        b = CostBreakdown(launches=0.25, host=0.25)
        c = a + b
        assert c.total == 2.0
        assert c.compute == 1.0 and c.launches == 0.25


class TestGpuCostModel:
    def test_kernel_time_scales_with_work(self):
        m = GpuCostModel()
        t1 = m.kernel_time(make_stats([100] * 64)).compute
        t2 = m.kernel_time(make_stats([200] * 64)).compute
        assert t2 == pytest.approx(2 * t1)

    def test_divergence_costs(self):
        """Same total work, concentrated in one lane per warp => slower."""
        m = GpuCostModel()
        uniform = make_stats([10] * 32)
        hot = make_stats([320] + [0] * 31)
        assert m.kernel_time(hot).compute \
            > m.kernel_time(uniform).compute

    def test_throughput_matches_hand_calc(self):
        """14 concurrent warps x 32 lanes / 3000 cycles at 1.15 GHz."""
        m = GpuCostModel()
        n = 448 * 10
        stats = make_stats([3000] * n)  # 3000 comparisons/thread
        t = m.kernel_time(stats, include_launch=False).compute
        expect = (n / 32) * 3000 * m.cycles_per_comparison \
            / (14 * 1.15e9)
        assert t == pytest.approx(expect)

    def test_launch_overhead_charged_once_per_kernel(self):
        m = GpuCostModel()
        with_l = m.kernel_time(make_stats([1]))
        without = m.kernel_time(make_stats([1]), include_launch=False)
        assert with_l.launches == m.spec.kernel_launch_s
        assert without.launches == 0.0

    def test_atomic_serialization(self):
        m = GpuCostModel()
        t = m.kernel_time(make_stats([0], atomics=14 * 1000))
        expect = 14_000 * m.cycles_per_atomic / (14 * 1.15e9)
        assert t.atomics == pytest.approx(expect)

    def test_gather_cheaper_than_comparison(self):
        m = GpuCostModel()
        cmp_t = m.kernel_time(make_stats([100] * 32)).compute
        gth_t = m.kernel_time(make_stats([0] * 32,
                                         gather=[100] * 32)).compute
        assert gth_t < cmp_t


class TestCpuCostModel:
    def test_spec(self):
        assert XEON_W3690.cores == 6
        assert XEON_W3690.parallel_efficiency == pytest.approx(0.8)

    def test_throughput(self):
        m = CpuCostModel()
        t = m.search_time(node_visits=0, comparisons=1_000_000,
                          num_queries=0)
        expect = 1e6 * m.cycles_per_comparison \
            / (6 * 0.8 * 3.46e9)
        assert t.total == pytest.approx(expect)

    def test_components_additive(self):
        m = CpuCostModel()
        t_all = m.search_time(node_visits=100, comparisons=100,
                              num_queries=10, result_items=5).total
        t_parts = (m.search_time(node_visits=100, comparisons=0,
                                 num_queries=0).total
                   + m.search_time(node_visits=0, comparisons=100,
                                   num_queries=0).total
                   + m.search_time(node_visits=0, comparisons=0,
                                   num_queries=10, result_items=5).total)
        assert t_all == pytest.approx(t_parts)


class TestSearchProfile:
    def _profile(self):
        gpu = VirtualGPU()
        launcher = KernelLauncher(gpu)
        for _ in range(3):
            with launcher.launch("k", 64) as k:
                k.thread_work[:] = 10
                k.add_atomics(5)
        gpu.transfers.h2d("q", 1000)
        gpu.transfers.d2h("r", 2000)
        return SearchProfile.capture("engine", gpu, num_queries=64,
                                     schedule_items=64)

    def test_aggregates(self):
        p = self._profile()
        assert p.num_kernel_invocations == 3
        assert p.total_comparisons == 3 * 640
        assert p.total_atomics == 15
        assert p.h2d_bytes == 1000 and p.d2h_bytes == 2000

    def test_optimistic_discounts_reinvocations(self):
        """Fig. 4's optimistic curve: launch overhead charged once."""
        p = self._profile()
        m = GpuCostModel()
        full = p.modeled_time(m)
        opt = p.modeled_time(m, discount_reinvocations=True)
        assert opt.total < full.total
        assert full.launches == pytest.approx(3 * m.spec.kernel_launch_s)
        assert opt.launches == pytest.approx(m.spec.kernel_launch_s)

    def test_modeled_total_positive_components(self):
        p = self._profile()
        t = p.modeled_time(GpuCostModel())
        assert t.compute > 0 and t.transfers > 0 and t.host > 0
        assert t.total == pytest.approx(t.compute + t.atomics
                                        + t.launches + t.transfers
                                        + t.host)

    def test_cpu_profile_modeled(self):
        p = CpuSearchProfile("cpu_rtree", num_queries=10, node_visits=50,
                             comparisons=500, result_items=3)
        assert p.modeled_time(CpuCostModel()).total > 0

    def test_divergence_factor_converged(self):
        p = self._profile()
        assert p.divergence_factor() == pytest.approx(1.0)


class TestPaperCalibration:
    """The model constants reproduce the paper's anchor measurements
    (§V-D) when fed the paper's approximate operation counts."""

    def test_merger_small_d_anchor(self):
        """GPUTemporal at d=0.001 on Merger: 41.75 s for ~141k
        comparisons x 50,880 query threads."""
        m = GpuCostModel()
        n_threads = 50_880
        per_thread = 141_000
        stats = make_stats(np.full(n_threads, per_thread))
        t = m.kernel_time(stats, include_launch=False).compute
        assert t == pytest.approx(41.75, rel=0.15)

    def test_gpu_cpu_ratio_anchor(self):
        """CPU-RTree at the same point: 9.70 s => ratio ~4.3."""
        cpu = CpuCostModel()
        # ~5.3k refinement-equivalent ops per query reproduces 9.7 s.
        t = cpu.search_time(node_visits=0,
                            comparisons=50_880 * 5_280,
                            num_queries=50_880).total
        assert t == pytest.approx(9.70, rel=0.2)
