"""Edge-case tests: degenerate geometries, extreme workloads, and
pathological datasets that indexes must survive."""

import numpy as np

from repro.core.bruteforce import brute_force_search
from repro.core.types import SegmentArray, Trajectory
from repro.engines import (CpuRTreeEngine, CpuScanEngine,
                           GpuSpatialEngine, GpuSpatioTemporalEngine,
                           GpuTemporalEngine)

ALL_FACTORIES = [
    ("gpu_temporal", lambda db: GpuTemporalEngine(db, num_bins=8)),
    ("gpu_spatial", lambda db: GpuSpatialEngine(db, cells_per_dim=4)),
    ("gpu_spatiotemporal",
     lambda db: GpuSpatioTemporalEngine(db, num_bins=8, num_subbins=2,
                                        strict_subbins=False)),
    ("cpu_rtree", lambda db: CpuRTreeEngine(db, segments_per_mbb=2)),
    ("cpu_scan", lambda db: CpuScanEngine(db)),
]


def check_all(db: SegmentArray, queries: SegmentArray, d: float) -> None:
    truth = brute_force_search(queries, db, d)
    for name, factory in ALL_FACTORIES:
        res, _ = factory(db).search(queries, d)
        assert res.equivalent_to(truth), name


def line_traj(tid, k, origin, step, t0=0.0):
    times = t0 + np.arange(k, dtype=float)
    pos = np.asarray(origin, dtype=float) \
        + np.outer(np.arange(k), np.asarray(step, dtype=float))
    return Trajectory(tid, times, pos)


class TestDegenerateGeometry:
    def test_coplanar_dataset(self):
        """All motion in the z=0 plane: one grid/subbin dimension is
        degenerate."""
        db = SegmentArray.from_trajectories([
            line_traj(i, 6, [i * 2.0, 0.0, 0.0], [0.5, 1.0, 0.0])
            for i in range(8)])
        q = db.take(np.arange(5))
        check_all(db, q, 1.5)

    def test_collinear_dataset(self):
        """Everything on the x axis: two degenerate dimensions."""
        db = SegmentArray.from_trajectories([
            line_traj(i, 5, [i * 3.0, 0.0, 0.0], [1.0, 0.0, 0.0])
            for i in range(6)])
        check_all(db, db.take(np.arange(4)), 2.0)

    def test_stationary_objects(self):
        """Zero-velocity segments (points that persist in time)."""
        db = SegmentArray.from_trajectories([
            line_traj(i, 4, [float(i), float(i), 0.0], [0.0, 0.0, 0.0])
            for i in range(6)])
        check_all(db, db.take(np.arange(3)), 1.5)

    def test_single_point_in_space(self):
        """Every object at the same position: max duplicates, d=0."""
        db = SegmentArray.from_trajectories([
            line_traj(i, 3, [1.0, 1.0, 1.0], [0.0, 0.0, 0.0],
                      t0=float(i) * 0.5) for i in range(5)])
        check_all(db, db.take(np.arange(2)), 0.0)


class TestExtremeWorkloads:
    def test_single_segment_database(self):
        db = SegmentArray.from_trajectories(
            [line_traj(0, 2, [0, 0, 0], [1, 1, 1])])
        q = SegmentArray.from_trajectories(
            [line_traj(1, 2, [0.5, 0, 0], [1, 1, 1])])
        check_all(db, q, 1.0)

    def test_single_query(self, small_db):
        q = small_db.take(np.array([7]))
        check_all(small_db, q, 2.0)

    def test_queries_after_database_ends(self, small_db):
        t_max = small_db.te.max()
        q = SegmentArray.from_trajectories(
            [line_traj(999, 4, [5, 5, 5], [1, 0, 0], t0=t_max + 10.0)])
        for name, factory in ALL_FACTORIES:
            res, _ = factory(small_db).search(q, 100.0)
            assert len(res) == 0, name

    def test_queries_far_outside_space(self, small_db):
        q = SegmentArray.from_trajectories(
            [line_traj(999, 4, [1e7, 1e7, 1e7], [1, 0, 0], t0=5.0)])
        for name, factory in ALL_FACTORIES:
            res, _ = factory(small_db).search(q, 10.0)
            assert len(res) == 0, name

    def test_huge_d_returns_all_overlapping(self, small_db):
        q = small_db.take(np.arange(10))
        check_all(small_db, q, 1e6)

    def test_very_long_segments_spill(self):
        """One trajectory with segments 100x longer than the others:
        worst-case temporal spill for the bin index."""
        trajs = [line_traj(i, 8, [i * 1.0, 0, 0], [0.2, 0.2, 0.0])
                 for i in range(5)]
        slow = Trajectory(99, np.array([0.0, 50.0, 100.0]),
                          np.array([[0, 0, 0], [2, 2, 0], [4, 4, 0]],
                                   dtype=float))
        db = SegmentArray.from_trajectories([*trajs, slow])
        check_all(db, db.take(np.arange(len(db))), 1.0)


class TestPathologicalDistributions:
    def test_heavily_skewed_cluster(self):
        """99 % of segments inside a tiny ball, 1 % far away."""
        rng = np.random.default_rng(5)
        trajs = []
        for i in range(20):
            base = (np.array([500.0, 500.0, 500.0]) if i == 0
                    else np.zeros(3))
            pos = base + np.cumsum(rng.normal(0, 0.1, (6, 3)), axis=0)
            trajs.append(Trajectory(i, np.arange(6, dtype=float), pos))
        db = SegmentArray.from_trajectories(trajs)
        check_all(db, db.take(np.arange(10)), 0.5)

    def test_identical_start_times(self):
        """All trajectories share the exact snapshot grid (Merger-like):
        bin assignment piles into shared bins."""
        rng = np.random.default_rng(6)
        db = SegmentArray.from_trajectories([
            Trajectory(i, np.arange(5, dtype=float),
                       rng.uniform(0, 5, (5, 3))) for i in range(10)])
        check_all(db, db.take(np.arange(8)), 2.0)

    def test_temporal_gap(self):
        """Two eras with a long dead gap between them: many empty bins."""
        a = [line_traj(i, 4, [i * 1.0, 0, 0], [0.3, 0.3, 0], t0=0.0)
             for i in range(4)]
        b = [line_traj(10 + i, 4, [i * 1.0, 0, 0], [0.3, 0.3, 0],
                       t0=1000.0) for i in range(4)]
        db = SegmentArray.from_trajectories([*a, *b])
        check_all(db, db.take(np.arange(len(db))), 1.0)

    def test_anisotropic_extent(self):
        """Space 1000x wider in x than in y/z (road-like)."""
        rng = np.random.default_rng(7)
        trajs = [Trajectory(i, np.arange(5, dtype=float),
                            np.column_stack([
                                rng.uniform(0, 1000, 5),
                                rng.uniform(0, 1, 5),
                                rng.uniform(0, 1, 5)]))
                 for i in range(8)]
        db = SegmentArray.from_trajectories(trajs)
        check_all(db, db.take(np.arange(6)), 5.0)


class TestProfileCoherence:
    """Counter invariants that keep the cost model honest."""

    def test_temporal_comparisons_equal_schedule_mass(self, small_db,
                                                      small_queries):
        engine = GpuTemporalEngine(small_db, num_bins=16,
                                   result_buffer_items=100_000)
        _, prof = engine.search(small_queries, 1.0)
        q = small_queries.sorted_by_start_time()
        lo, hi = engine.index.candidate_rows(q.ts, q.te)
        assert prof.total_comparisons == int(np.maximum(
            hi - lo + 1, 0).sum())

    def test_atomics_equal_raw_results(self, small_db, small_queries):
        engine = GpuTemporalEngine(small_db, num_bins=16,
                                   result_buffer_items=100_000)
        _, prof = engine.search(small_queries, 2.5)
        # Single invocation: every produced item attempted one atomic.
        assert prof.num_kernel_invocations == 1
        assert prof.total_atomics == prof.raw_result_items

    def test_transfers_scale_with_queries(self, small_db,
                                          small_queries):
        engine = GpuTemporalEngine(small_db, num_bins=16)
        _, p_all = engine.search(small_queries, 1.0)
        _, p_half = engine.search(
            small_queries.take(np.arange(len(small_queries) // 2)), 1.0)
        assert p_half.h2d_bytes < p_all.h2d_bytes

    def test_device_memory_holds_db_and_index(self, small_db):
        engine = GpuSpatioTemporalEngine(small_db, num_bins=8,
                                         num_subbins=2,
                                         strict_subbins=False)
        allocs = engine.gpu.memory.allocations()
        assert any("coords" in k for k in allocs)
        assert any(k.startswith("subbin_") for k in allocs)
        assert "result_buffer" in allocs
