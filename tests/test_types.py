"""Unit tests for repro.core.types (SegmentArray, Trajectory)."""

import numpy as np
import pytest

from repro.core.types import SegmentArray, Trajectory, concatenate


class TestTrajectory:
    def test_basic_construction(self):
        t = Trajectory(7, np.array([0.0, 1.0, 2.5]),
                       np.arange(9, dtype=float).reshape(3, 3))
        assert t.num_points == 3
        assert t.num_segments == 2
        assert t.traj_id == 7

    def test_rejects_non_increasing_times(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Trajectory(0, np.array([0.0, 1.0, 1.0]), np.zeros((3, 3)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="positions"):
            Trajectory(0, np.array([0.0, 1.0]), np.zeros((3, 3)))

    def test_rejects_2d_times(self):
        with pytest.raises(ValueError, match="1-D"):
            Trajectory(0, np.zeros((2, 2)), np.zeros((2, 3)))

    def test_position_interpolation(self):
        t = Trajectory(0, np.array([0.0, 2.0]),
                       np.array([[0.0, 0.0, 0.0], [4.0, 2.0, -2.0]]))
        np.testing.assert_allclose(t.position_at(1.0), [2.0, 1.0, -1.0])
        np.testing.assert_allclose(t.position_at(0.0), [0.0, 0.0, 0.0])
        np.testing.assert_allclose(t.position_at(2.0), [4.0, 2.0, -2.0])

    def test_position_outside_extent_raises(self):
        t = Trajectory(0, np.array([0.0, 2.0]), np.zeros((2, 3)))
        with pytest.raises(ValueError, match="temporal extent"):
            t.position_at(3.0)


class TestSegmentArray:
    def test_from_trajectories_counts(self, small_db):
        assert len(small_db) == 30 * 19
        assert small_db.num_trajectories == 30

    def test_segment_endpoints_chain(self):
        traj = Trajectory(3, np.array([0.0, 1.0, 2.0]),
                          np.array([[0, 0, 0], [1, 1, 1], [2, 0, 2]],
                                   dtype=float))
        seg = SegmentArray.from_trajectories([traj])
        assert len(seg) == 2
        # Segment 0 ends where segment 1 starts.
        np.testing.assert_array_equal(seg.ends[0], seg.starts[1])
        assert seg.te[0] == seg.ts[1] == 1.0
        assert list(seg.traj_ids) == [3, 3]

    def test_empty(self):
        empty = SegmentArray.empty()
        assert len(empty) == 0
        assert SegmentArray.from_trajectories([]) == empty

    def test_rejects_reversed_time(self):
        z = np.zeros(1)
        with pytest.raises(ValueError, match="t_end >= t_start"):
            SegmentArray(z, z, z, np.array([2.0]), z, z, z,
                         np.array([1.0]), np.zeros(1, dtype=np.int64))

    def test_arrays_are_immutable(self, small_db):
        with pytest.raises(ValueError):
            small_db.xs[0] = 99.0

    def test_take_preserves_ids(self, small_db):
        sub = small_db.take(np.array([5, 1, 3]))
        assert list(sub.seg_ids) == [5, 1, 3]
        assert sub.xs[0] == small_db.xs[5]

    def test_sorted_by_start_time(self, small_db):
        s = small_db.sorted_by_start_time()
        assert np.all(np.diff(s.ts) >= 0)
        # Same multiset of segment ids.
        assert set(s.seg_ids) == set(small_db.seg_ids)

    def test_temporal_extent(self, small_db):
        lo, hi = small_db.temporal_extent
        assert lo == small_db.ts.min()
        assert hi == small_db.te.max()
        assert lo < hi

    def test_spatial_bounds_cover_everything(self, small_db):
        mins, maxs = small_db.spatial_bounds()
        assert np.all(small_db.starts >= mins - 1e-12)
        assert np.all(small_db.ends <= maxs + 1e-12)

    def test_max_spatial_extent(self):
        traj = Trajectory(0, np.array([0.0, 1.0]),
                          np.array([[0, 0, 0], [3.0, -4.0, 0.5]]))
        seg = SegmentArray.from_trajectories([traj])
        np.testing.assert_allclose(seg.max_spatial_extent(),
                                   [3.0, 4.0, 0.5])

    def test_empty_extent_raises(self):
        with pytest.raises(ValueError):
            SegmentArray.empty().temporal_extent
        with pytest.raises(ValueError):
            SegmentArray.empty().spatial_bounds()

    def test_iter_rows(self, small_db):
        rows = list(small_db.iter_rows())
        assert len(rows) == len(small_db)
        seg_id, traj_id, start, end, ts, te = rows[0]
        assert seg_id == small_db.seg_ids[0]
        assert ts <= te

    def test_nbytes_positive(self, small_db):
        # 8 coordinate arrays of f64 + 2 id arrays of i64 = 80 B/segment.
        assert small_db.nbytes() == 80 * len(small_db)

    def test_concatenate_roundtrip(self, small_db):
        a = small_db.take(np.arange(0, 100))
        b = small_db.take(np.arange(100, len(small_db)))
        cat = concatenate([a, b])
        assert cat == small_db

    def test_concatenate_empty(self):
        assert concatenate([]) == SegmentArray.empty()

    def test_equality(self, small_db):
        assert small_db == small_db.take(np.arange(len(small_db)))
        assert small_db != small_db.take(np.arange(len(small_db) - 1))
        assert small_db.__eq__(42) is NotImplemented
