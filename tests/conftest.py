"""Shared fixtures: small, fast, deterministic trajectory datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import SegmentArray, Trajectory


def make_walk_trajectories(num_traj: int, steps: int, *,
                           box: float = 20.0, step_sigma: float = 1.0,
                           start_spread: float = 5.0, dt: float = 1.0,
                           seed: int = 0) -> list[Trajectory]:
    """Small random-walk trajectories with staggered start times."""
    rng = np.random.default_rng(seed)
    trajs = []
    for k in range(num_traj):
        start = rng.uniform(0.0, box, size=3)
        stepv = rng.normal(0.0, step_sigma, size=(steps - 1, 3))
        pos = np.vstack([start, start + np.cumsum(stepv, axis=0)])
        t0 = rng.uniform(0.0, start_spread)
        times = t0 + dt * np.arange(steps, dtype=np.float64)
        trajs.append(Trajectory(k, times, pos))
    return trajs


@pytest.fixture(scope="session")
def small_db() -> SegmentArray:
    """~570 segments in a 20-unit box: big enough to exercise indexes,
    small enough for brute force."""
    return SegmentArray.from_trajectories(
        make_walk_trajectories(30, 20, seed=42))


@pytest.fixture(scope="session")
def small_queries(small_db: SegmentArray) -> SegmentArray:
    """Fresh walks (different seed) over the same box."""
    trajs = make_walk_trajectories(5, 20, seed=99)
    # Distinct trajectory ids from the database's.
    shifted = [Trajectory(t.traj_id + 1000, t.times, t.positions)
               for t in trajs]
    return SegmentArray.from_trajectories(shifted)


@pytest.fixture(scope="session")
def db_queries_truth(small_db, small_queries):
    """(database, queries, d, canonical brute-force truth) bundle."""
    from repro.core.bruteforce import brute_force_search
    d = 2.5
    truth = brute_force_search(small_queries, small_db, d).canonical()
    return small_db, small_queries, d, truth


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1)
