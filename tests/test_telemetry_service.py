"""Integration tests: the telemetry layer wired through the service.

One ``submit_batch`` call must yield a span tree covering
service → engine → kernel, a Prometheus snapshot with request-latency
buckets and cache counters, a multi-lane Chrome trace, and a JSON-lines
event log — and all of it must disappear when telemetry is disabled.
"""

import json

import pytest

from repro.gpu.profiler import (CpuSearchProfile, RequestMetrics,
                                SearchProfile)
from repro.obs import EventLog, Span, Telemetry, service_batch_trace
from repro.obs.chrome import HOST_TID, PCIE_TID, _lane_tid
from repro.service import QueryService, SearchRequest, SearchResponse


@pytest.fixture
def service(small_db):
    return QueryService(small_db, num_devices=2)


def _request(queries, d=2.5, **kw):
    return SearchRequest(queries=queries, d=d, **kw)


class TestSpanTree:
    def test_batch_produces_service_engine_kernel_tree(self, service,
                                                       small_queries):
        service.submit_batch([_request(small_queries,
                                       method="gpu_temporal",
                                       params={"num_bins": 40},
                                       request_id="t1")])
        roots = service.telemetry.tracer.roots
        assert len(roots) == 1
        batch = roots[0]
        assert batch.name == "service.batch"
        assert batch.attributes["batch_size"] == 1

        request = batch.find("service.request")
        assert request in batch.children
        assert request.attributes["request_id"] == "t1"
        assert request.attributes["engine"] == "gpu_temporal"

        execute = request.find("service.execute")
        assert execute in request.children
        search = execute.find("engine.search")
        assert search in execute.children
        assert search.attributes["engine"] == "gpu_temporal"
        assert search.attributes["result_items"] >= 0

        kernels = [s for s in search.children
                   if s.name.startswith("kernel:")]
        assert len(kernels) == search.attributes["invocations"]
        assert all(k.wall_dur_s >= 0 for k in kernels)
        assert kernels[0].attributes["invocation"] == 0

    def test_modeled_clocks_pinned_on_spans(self, service,
                                            small_queries):
        resp = service.submit(_request(small_queries,
                                       method="gpu_temporal",
                                       params={"num_bins": 40}))
        batch = service.telemetry.tracer.roots[-1]
        request = batch.find("service.request")
        assert request.modeled_dur_s == pytest.approx(
            resp.metrics.queue_wait_s + resp.metrics.modeled_seconds)
        search = batch.find("engine.search")
        assert search.modeled_dur_s == pytest.approx(
            resp.metrics.modeled_seconds)
        assert search.modeled_start_s == pytest.approx(
            resp.metrics.lane_spans[0]["start_s"])

    def test_index_build_span_recorded_on_miss(self, service,
                                               small_queries):
        service.submit(_request(small_queries, method="cpu_rtree"))
        batch = service.telemetry.tracer.roots[0]
        build = batch.find("engine.build")
        assert build is not None
        assert build.find("index.build") is not None

    def test_span_tree_json_round_trip(self, service, small_queries):
        service.submit(_request(small_queries, method="cpu_scan"))
        root = service.telemetry.tracer.roots[0]
        back = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert back.to_dict() == root.to_dict()
        assert [s.name for s in back.walk()] \
            == [s.name for s in root.walk()]


class TestMetrics:
    def test_prometheus_snapshot_after_batch(self, service,
                                             small_queries):
        req = _request(small_queries, method="gpu_temporal",
                       params={"num_bins": 40})
        service.submit(req)
        service.submit(req)  # second submit hits the cache
        text = service.telemetry.metrics.to_prometheus_text()
        assert "repro_request_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert 'repro_cache_hits_total{engine="gpu_temporal"} 1' in text
        assert ('repro_cache_misses_total{engine="gpu_temporal"} 1'
                in text)
        assert "repro_requests_total" in text
        assert "repro_kernel_invocations_total" in text

    def test_stats_reads_registry(self, service, small_queries):
        service.submit(_request(small_queries))
        stats = service.stats()
        assert stats["num_requests"] == 1
        assert stats["cache"]["hit_ratio"] == 0.0
        service.submit(_request(small_queries))
        stats = service.stats()
        assert stats["num_requests"] == 2
        assert stats["cache"]["hit_ratio"] == pytest.approx(0.5)
        assert stats["slow_queries"] == 0

    def test_registry_snapshot_round_trips(self, service,
                                           small_queries):
        from repro.obs import MetricsRegistry
        service.submit(_request(small_queries))
        reg = service.telemetry.metrics
        back = MetricsRegistry.restore(
            json.loads(json.dumps(reg.snapshot())))
        assert back.to_prometheus_text() == reg.to_prometheus_text()


class TestChromeTrace:
    def test_multi_lane_trace_structure(self, service, small_queries):
        responses = service.submit_batch([
            _request(small_queries, method="gpu_temporal",
                     params={"num_bins": 40}, request_id="a"),
            _request(small_queries, method="gpu_spatial",
                     params={"cells_per_dim": 8}, request_id="b"),
        ])
        events = service_batch_trace(responses,
                                     model=service.gpu_model)
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        # Both engines homed on distinct lanes -> both lane tracks
        # named, plus the shared pcie and host tracks.
        assert {"gpu lane 0 (modeled)", "gpu lane 1 (modeled)",
                "pcie (modeled)", "host (modeled)"} <= names

        slices = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in slices)
        lanes_used = {e["tid"] for e in slices}
        assert _lane_tid(0) in lanes_used
        assert _lane_tid(1) in lanes_used
        assert PCIE_TID in lanes_used

        # One summary occupancy slice per request on its lane.
        summaries = [e for e in slices
                     if e["name"].startswith(("a [", "b ["))]
        assert len(summaries) == 2
        for resp, tag in zip(responses, ("a", "b")):
            span = resp.metrics.lane_spans[0]
            match = [e for e in summaries
                     if e["name"].startswith(f"{tag} [")][0]
            assert match["tid"] == _lane_tid(span["lane"])
            # Trace timestamps are rounded to 3 decimals (ns grain).
            assert match["dur"] == pytest.approx(
                span["dur_s"] * 1e6, abs=1e-3)

    def test_write_service_trace_file(self, service, small_queries,
                                      tmp_path):
        from repro.obs import write_service_trace
        responses = service.submit_batch(
            [_request(small_queries, method="gpu_temporal",
                      params={"num_bins": 40})])
        path = write_service_trace(responses, tmp_path / "trace.json",
                                   model=service.gpu_model)
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_cpu_request_lands_on_host_track(self, service,
                                             small_queries):
        responses = service.submit_batch(
            [_request(small_queries, method="cpu_scan")])
        events = service_batch_trace(responses)
        slices = [e for e in events if e["ph"] == "X"]
        assert all(e["tid"] == HOST_TID for e in slices)


class TestEventLog:
    def test_request_events_round_trip_jsonl(self, service,
                                             small_queries, tmp_path):
        service.submit_batch([
            _request(small_queries, request_id="e1"),
            _request(small_queries, request_id="e2"),
        ])
        log = service.telemetry.events
        reqs = log.of_kind("request")
        assert [e.fields["request_id"] for e in reqs] == ["e1", "e2"]
        assert all(e.fields["engine"] for e in reqs)

        path = log.write_jsonl(tmp_path / "events.jsonl")
        back = EventLog.from_jsonl(path.read_text())
        assert [e.to_dict() for e in back] == [e.to_dict() for e in log]

    def test_legacy_events_view_unchanged(self, service, small_queries):
        service.submit(_request(small_queries))
        # request/engine_build events exist in the log but the legacy
        # view only surfaces degradations and evictions.
        assert len(service.telemetry.events) >= 2
        assert service.events == []


class TestSerializationRoundTrips:
    def test_gpu_profile_and_metrics_round_trip(self, service,
                                                small_queries):
        resp = service.submit(_request(small_queries,
                                       method="gpu_temporal",
                                       params={"num_bins": 40},
                                       shards=2, request_id="rt"))
        back = SearchResponse.from_dict(json.loads(json.dumps(
            resp.to_dict())))
        assert isinstance(back.outcome.profile, SearchProfile)
        assert back.metrics.to_dict() == resp.metrics.to_dict()
        assert back.metrics.lane_spans == resp.metrics.lane_spans
        assert back.metrics.arrival_s == resp.metrics.arrival_s
        assert len(back.metrics.lane_spans) == 2

    def test_cpu_profile_and_metrics_round_trip(self, service,
                                                small_queries):
        resp = service.submit(_request(small_queries,
                                       method="cpu_rtree"))
        back = SearchResponse.from_dict(json.loads(json.dumps(
            resp.to_dict())))
        assert isinstance(back.outcome.profile, CpuSearchProfile)
        assert back.metrics.to_dict() == resp.metrics.to_dict()
        assert back.metrics.lane_spans[0]["lane"] == -1

    def test_pre_telemetry_metrics_payload_still_loads(self):
        legacy = {"engine": "cpu_scan", "queue_wait_s": 0.0,
                  "cache_hit": True, "engine_build_s": 0.0,
                  "invocations": 0, "modeled_seconds": 0.5,
                  "wall_seconds": 0.1, "degraded": False,
                  "degradation_reason": ""}
        m = RequestMetrics.from_dict(legacy)
        assert m.arrival_s == 0.0
        assert m.lane_spans == []


class TestDisabledTelemetry:
    def test_disabled_service_records_nothing(self, small_db,
                                              small_queries):
        svc = QueryService(small_db, num_devices=1,
                           telemetry=Telemetry(enabled=False))
        resp = svc.submit(_request(small_queries,
                                   method="gpu_temporal",
                                   params={"num_bins": 40}))
        assert resp.outcome.results is not None
        assert svc.telemetry.tracer.roots == []
        assert len(svc.telemetry.events) == 0
        assert svc.telemetry.metrics.to_prometheus_text() == ""
        # stats() falls back to the plain instance counters.
        assert svc.stats()["num_requests"] == 1
        assert svc.stats()["degradations"] == 0

    def test_trace_still_renders_without_telemetry(self, small_db,
                                                   small_queries):
        """The Chrome exporter reads responses, not the hub — lane
        spans travel on the metrics either way."""
        svc = QueryService(small_db, num_devices=1,
                           telemetry=Telemetry(enabled=False))
        responses = svc.submit_batch(
            [_request(small_queries, method="gpu_temporal",
                      params={"num_bins": 40})])
        events = service_batch_trace(responses, model=svc.gpu_model)
        assert any(e["ph"] == "X" for e in events)
