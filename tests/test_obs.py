"""Unit tests for the repro.obs telemetry layer: metrics registry,
span tracer, structured events, slow-query log, and the disabled
no-op behavior."""

import json

import pytest

from repro.obs import (DEFAULT_LATENCY_BUCKETS, Event, EventLog,
                       MetricsRegistry, SlowQueryLog, Span, Telemetry,
                       Tracer)
from repro.obs.telemetry import DISABLED, current


class TestCounter:
    def test_inc_and_total(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "served requests")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0
        assert c.total() == 3.0

    def test_labels_make_distinct_series(self):
        c = MetricsRegistry().counter("hits")
        c.inc(engine="gpu_temporal")
        c.inc(engine="gpu_temporal")
        c.inc(engine="cpu_scan")
        assert c.value(engine="gpu_temporal") == 2.0
        assert c.value(engine="cpu_scan") == 1.0
        assert c.total() == 3.0

    def test_counters_only_go_up(self):
        c = MetricsRegistry().counter("n")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_add_value(self):
        g = MetricsRegistry().gauge("resident_bytes")
        g.set(100.0)
        g.add(-25.0)
        assert g.value() == 75.0
        g.set(10.0, lane="0")
        assert g.value(lane="0") == 10.0


class TestHistogram:
    def test_buckets_are_exponential_and_increasing(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        ratios = [b / a for a, b in zip(DEFAULT_LATENCY_BUCKETS,
                                        DEFAULT_LATENCY_BUCKETS[1:])]
        assert all(r == pytest.approx(4.0) for r in ratios)

    def test_observe_counts_and_sum(self):
        h = MetricsRegistry().histogram("latency")
        h.observe(2e-6)
        h.observe(3e-6)
        h.observe(100.0)  # beyond the last bound -> +Inf bucket
        assert h.count() == 3
        assert h.sum() == pytest.approx(2e-6 + 3e-6 + 100.0)
        cum = h.cumulative_counts()
        assert cum[-1] == 3              # +Inf sees everything
        assert cum[-2] == 2              # finite bounds miss the 100 s

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("reqs", "requests served").inc(3, engine="cpu_scan")
        reg.gauge("bytes").set(42.0)
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = reg.to_prometheus_text()
        assert "# HELP reqs requests served" in text
        assert "# TYPE reqs counter" in text
        assert 'reqs{engine="cpu_scan"} 3' in text
        assert "# TYPE bytes gauge" in text
        assert "bytes 42" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.1"} 0' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.5" in text
        assert "lat_count 1" in text

    def test_snapshot_restore_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c", "help c").inc(5, k="v")
        reg.gauge("g").set(-1.5)
        h = reg.histogram("h", buckets=(0.5, 2.0))
        h.observe(0.1, engine="e")
        h.observe(10.0, engine="e")
        payload = json.loads(json.dumps(reg.snapshot()))
        back = MetricsRegistry.restore(payload)
        assert back.snapshot() == reg.snapshot()
        assert back.to_prometheus_text() == reg.to_prometheus_text()

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(99)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(1.0)
        assert reg.counter("c").total() == 0.0
        assert reg.gauge("g").value() == 0.0
        assert reg.histogram("h").count() == 0


class TestTracer:
    def test_nesting_builds_parent_child_links(self):
        tr = Tracer()
        with tr.start_span("root", a=1) as root:
            with tr.start_span("child") as child:
                tr.record("leaf", 0.0, 0.5, k=2)
                assert tr.current_span is child
        assert tr.roots == [root]
        assert root.children == [child]
        assert child.children[0].name == "leaf"
        assert child.children[0].wall_dur_s == 0.5
        assert root.wall_dur_s >= child.wall_dur_s

    def test_walk_and_find(self):
        tr = Tracer()
        with tr.start_span("a"):
            with tr.start_span("b"):
                pass
            with tr.start_span("c"):
                pass
        root = tr.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        assert root.find("c").name == "c"
        assert root.find("missing") is None

    def test_span_dict_round_trip(self):
        tr = Tracer()
        with tr.start_span("root", engine="gpu_temporal") as root:
            with tr.start_span("inner") as inner:
                inner.set_modeled(0.25, 1.5)
        back = Span.from_dict(json.loads(json.dumps(root.to_dict())))
        assert back.to_dict() == root.to_dict()
        assert back.children[0].modeled_start_s == 0.25
        assert back.children[0].modeled_dur_s == 1.5
        assert back.attributes == {"engine": "gpu_temporal"}

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.start_span("root") as span:
            span.set_attribute("k", "v")
            span.set_modeled(0.0, 1.0)
            tr.record("leaf", 0.0, 1.0)
        assert tr.roots == []
        assert span.attributes == {}
        assert span.modeled_start_s is None


class TestEvents:
    def test_jsonl_round_trip(self):
        log = EventLog()
        log.emit("degradation", request_id="r1", fallback="cpu_scan")
        log.emit("eviction", nbytes=1024)
        text = log.to_jsonl()
        assert len(text.splitlines()) == 2
        back = EventLog.from_jsonl(text)
        assert [e.to_dict() for e in back] == [e.to_dict() for e in log]
        assert back.of_kind("eviction")[0].fields["nbytes"] == 1024

    def test_write_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("request", engine="cpu_scan")
        path = log.write_jsonl(tmp_path / "events.jsonl")
        back = EventLog.from_jsonl(path.read_text())
        assert len(back) == 1

    def test_bounded(self):
        log = EventLog(maxlen=3)
        for i in range(5):
            log.emit("e", i=i)
        assert len(log) == 3
        assert [e.fields["i"] for e in log] == [2, 3, 4]

    def test_ring_counts_every_drop(self):
        """The bound is a ring, and evictions are observable: a long
        campaign can report how much history it shed."""
        log = EventLog(maxlen=2)
        assert log.dropped_events == 0
        for i in range(7):
            log.emit("e", i=i)
        assert log.dropped_events == 5
        assert [e.fields["i"] for e in log] == [5, 6]

    def test_unbounded_log_never_drops(self):
        log = EventLog(maxlen=None)
        for i in range(50):
            log.emit("e", i=i)
        assert len(log) == 50 and log.dropped_events == 0

    def test_maxlen_validated(self):
        with pytest.raises(ValueError, match="maxlen"):
            EventLog(maxlen=0)

    def test_event_dict_round_trip(self):
        ev = Event(kind="retry", ts=12.5, fields={"attempt": 2})
        assert Event.from_dict(json.loads(
            json.dumps(ev.to_dict()))).to_dict() == ev.to_dict()

    def test_from_jsonl_skips_and_counts_corrupt_lines(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", y=2)
        text = log.to_jsonl()
        # A torn final line (crash mid-flush), a non-JSON line, and a
        # JSON line missing required keys — all skipped, all counted.
        dirty = ('{"not json\n' + text.splitlines()[0] + "\n"
                 + '{"ts": 1.0}\n' + text.splitlines()[1] + "\n"
                 + '{"kind": "c", "ts": 2.0, "fie')
        back = EventLog.from_jsonl(dirty)
        assert [e.kind for e in back] == ["a", "b"]
        assert back.corrupt_lines == 3

    def test_from_jsonl_clean_text_counts_zero(self):
        log = EventLog()
        log.emit("a")
        assert EventLog.from_jsonl(log.to_jsonl()).corrupt_lines == 0

    def test_disabled_log_emits_nothing(self):
        log = EventLog(enabled=False)
        assert log.emit("x") is None
        assert len(log) == 0


class TestSlowQueryLog:
    def test_threshold_gates_entries(self):
        log = SlowQueryLog(threshold_s=1.0)
        assert log.observe(request_id="fast", engine="gpu_temporal",
                           modeled_seconds=0.5) is None
        entry = log.observe(request_id="slow", engine="cpu_scan",
                            modeled_seconds=2.0, queue_wait_s=0.1,
                            degraded=True)
        assert entry is not None
        assert len(log) == 1
        assert log.entries()[0].request_id == "slow"

    def test_render_mentions_entries(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe(request_id="r9", engine="cpu_rtree",
                    modeled_seconds=3.0, cache_hit=True)
        text = log.render()
        assert "r9" in text and "cpu_rtree" in text
        assert "cache-hit" in text

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_s=-1.0)

    def test_jsonl_round_trip(self, tmp_path):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe(request_id="r1", engine="cpu_scan",
                    modeled_seconds=2.0, queue_wait_s=0.25,
                    degraded=True)
        path = log.write_jsonl(tmp_path / "slow.jsonl")
        back = SlowQueryLog.from_jsonl(path.read_text())
        assert [e.to_dict() for e in back] \
            == [e.to_dict() for e in log]
        assert back.corrupt_lines == 0

    def test_from_jsonl_skips_corrupt_lines(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.observe(request_id="r1", engine="cpu_scan",
                    modeled_seconds=2.0)
        dirty = log.to_jsonl() + '{"request_id": "torn", "eng'
        back = SlowQueryLog.from_jsonl(dirty)
        assert [e.request_id for e in back] == ["r1"]
        assert back.corrupt_lines == 1


class TestTelemetryHub:
    def test_ambient_activation(self):
        hub = Telemetry()
        assert current() is DISABLED
        with hub.activate():
            assert current() is hub
            with hub.span("work") as span:
                current().metrics.counter("c").inc()
                current().events.emit("e")
            assert span.name == "work"
        assert current() is DISABLED
        assert hub.metrics.counter("c").total() == 1.0
        assert len(hub.events) == 1
        assert hub.tracer.roots[0].name == "work"

    def test_disabled_hub_is_inert(self):
        hub = Telemetry(enabled=False)
        with hub.activate():
            with hub.span("work"):
                current().metrics.counter("c").inc()
                current().events.emit("e")
                current().slow_log.observe(
                    request_id="r", engine="e", modeled_seconds=99.0)
        assert hub.metrics.counter("c").total() == 0.0
        assert len(hub.events) == 0
        assert len(hub.slow_log) == 0
        assert hub.tracer.roots == []

    def test_reset_drops_data_keeps_switch(self):
        hub = Telemetry()
        with hub.activate(), hub.span("s"):
            hub.metrics.counter("c").inc()
            hub.events.emit("e")
        hub.reset()
        assert hub.tracer.roots == []
        assert len(hub.events) == 0
        assert hub.metrics.counter("c").total() == 0.0
        assert hub.enabled
