"""Tests for database partitioning and the simulated GPU cluster."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_search
from repro.core.types import concatenate
from repro.distributed import (GpuCluster, PARTITION_STRATEGIES,
                               partition_database)
from repro.engines import GpuTemporalEngine
from repro.gpu.costmodel import GpuCostModel


class TestPartition:
    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    def test_disjoint_and_covering(self, small_db, strategy):
        shards = partition_database(small_db, 4, strategy)
        assert len(shards) == 4
        all_ids = np.concatenate([s.seg_ids for s in shards])
        assert all_ids.size == len(small_db)
        np.testing.assert_array_equal(np.sort(all_ids),
                                      np.sort(small_db.seg_ids))

    def test_round_robin_deals_whole_trajectories(self, small_db):
        shards = partition_database(small_db, 3, "round_robin")
        seen: dict[int, int] = {}
        for n, shard in enumerate(shards):
            for t in np.unique(shard.traj_ids):
                assert t not in seen, "trajectory split across nodes"
                seen[int(t)] = n

    def test_temporal_slices_ordered(self, small_db):
        shards = partition_database(small_db, 3, "temporal")
        maxima = [s.ts.max() for s in shards[:-1]]
        minima = [s.ts.min() for s in shards[1:]]
        for hi, lo in zip(maxima, minima):
            assert hi <= lo + 1e-9

    def test_spatial_slabs_ordered(self, small_db):
        shards = partition_database(small_db, 3, "spatial")
        mins, maxs = small_db.spatial_bounds()
        axis = int(np.argmax(maxs - mins))
        centers = [0.5 * (s.starts[:, axis] + s.ends[:, axis])
                   for s in shards]
        for a, b in zip(centers, centers[1:]):
            assert a.max() <= b.min() + 1e-9

    def test_bad_args(self, small_db):
        with pytest.raises(ValueError):
            partition_database(small_db, 0)
        with pytest.raises(ValueError):
            partition_database(small_db, 2, "zigzag")

    def test_single_node_identity(self, small_db):
        shards = partition_database(small_db, 1)
        assert concatenate(shards) == small_db


class TestCluster:
    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    def test_cluster_equals_single_node(self, db_queries_truth, strategy):
        """Merged per-shard results == whole-database search."""
        db, queries, d, truth = db_queries_truth
        cluster = GpuCluster(
            db, 3, lambda shard: GpuTemporalEngine(shard, num_bins=20),
            strategy=strategy)
        res, prof = cluster.search(queries, d)
        assert res.equivalent_to(truth)
        assert prof.num_nodes == 3
        assert len(prof.node_profiles) == 3

    def test_modeled_time_is_slowest_node(self, db_queries_truth):
        db, queries, d, _ = db_queries_truth
        cluster = GpuCluster(
            db, 2, lambda shard: GpuTemporalEngine(shard, num_bins=20))
        _, prof = cluster.search(queries, d)
        m = GpuCostModel()
        per_node = [p.modeled_time(m).total for p in prof.node_profiles]
        assert prof.modeled_time(m).total == pytest.approx(max(per_node))

    def test_imbalance_metric(self, db_queries_truth):
        db, queries, d, _ = db_queries_truth
        rr = GpuCluster(db, 3,
                        lambda s: GpuTemporalEngine(s, num_bins=20),
                        strategy="round_robin")
        _, prof = rr.search(queries, d)
        assert prof.imbalance() >= 1.0

    def test_scaling_reduces_per_node_work(self, db_queries_truth):
        """More nodes => less work on the busiest node (the reason the
        paper wants clusters at all)."""
        db, queries, d, _ = db_queries_truth
        m = GpuCostModel()
        times = []
        for n in (1, 2, 4):
            cluster = GpuCluster(
                db, n, lambda s: GpuTemporalEngine(s, num_bins=20))
            _, prof = cluster.search(queries, d)
            times.append(prof.modeled_time(m).total)
        assert times[2] < times[0]

    def test_exclude_same_trajectory_propagates(self, small_db):
        cluster = GpuCluster(
            small_db, 2, lambda s: GpuTemporalEngine(s, num_bins=20))
        res, _ = cluster.search(small_db, 0.5,
                                exclude_same_trajectory=True)
        truth = brute_force_search(small_db, small_db, 0.5,
                                   exclude_same_trajectory=True)
        assert res.equivalent_to(truth)


class TestPartitionProperties:
    """Property test: every strategy yields disjoint, covering shards
    on adversarial databases (more shards than trajectories, a single
    trajectory, duplicate timestamps across trajectories)."""

    CASES = [
        # (num_traj, steps, num_nodes, seed)
        (1, 2, 4, 0),        # one trajectory, one segment, N > rows
        (1, 5, 3, 1),        # single trajectory split across slabs
        (2, 3, 16, 2),       # N >> trajectories: empty shards
        (7, 4, 3, 3),
        (5, 6, 5, 4),
        (12, 3, 4, 5),
    ]

    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    @pytest.mark.parametrize("num_traj,steps,nodes,seed", CASES)
    def test_disjoint_and_covering(self, strategy, num_traj, steps,
                                   nodes, seed):
        from repro.core.types import SegmentArray
        from tests.conftest import make_walk_trajectories
        db = SegmentArray.from_trajectories(
            make_walk_trajectories(num_traj, steps, seed=seed))
        shards = partition_database(db, nodes, strategy)
        assert len(shards) == nodes
        all_ids = np.concatenate([s.seg_ids for s in shards])
        # Disjoint: no seg_id appears twice across shards.
        assert all_ids.size == np.unique(all_ids).size
        # Covering: the union is exactly the database.
        np.testing.assert_array_equal(np.sort(all_ids),
                                      np.sort(db.seg_ids))

    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    def test_empty_shards_round_trip(self, strategy):
        """More shards than rows: the empty shards are real (length 0)
        SegmentArrays and the non-empty ones concatenate back to the
        database."""
        from repro.core.types import SegmentArray
        from tests.conftest import make_walk_trajectories
        db = SegmentArray.from_trajectories(
            make_walk_trajectories(2, 2, seed=7))  # 2 segments
        shards = partition_database(db, 9, strategy)
        assert sum(len(s) == 0 for s in shards) >= 7
        rebuilt = concatenate([s for s in shards if len(s)])
        order = np.argsort(rebuilt.seg_ids)
        np.testing.assert_array_equal(rebuilt.seg_ids[order],
                                      np.sort(db.seg_ids))

    def test_partition_indices_match_database_partition(self, small_db):
        from repro.distributed import partition_indices
        for strategy in sorted(PARTITION_STRATEGIES):
            idx = partition_indices(small_db, 4, strategy)
            shards = partition_database(small_db, 4, strategy)
            for ix, shard in zip(idx, shards):
                np.testing.assert_array_equal(
                    small_db.seg_ids[np.asarray(ix, dtype=np.int64)],
                    shard.seg_ids)


class TestMpiFallback:
    """repro.distributed must not require mpi4py (satellite: lazy
    import with a clear error)."""

    def test_import_clean_without_mpi4py(self):
        """A fresh interpreter with mpi4py blocked imports the package
        and builds a loopback world."""
        import subprocess
        import sys
        from pathlib import Path
        import repro
        src = str(Path(repro.__file__).parents[1])
        code = (
            "import sys; sys.modules['mpi4py'] = None\n"
            "import repro.distributed as d\n"
            "w = d.world()\n"
            "assert isinstance(w, d.LoopbackComm), type(w)\n"
            "print('clean')\n")
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True,
                              env={"PYTHONPATH": src})
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout

    def test_mpi4py_comm_raises_typed_error(self, monkeypatch):
        import sys
        from repro.distributed import Mpi4pyComm, MpiUnavailableError
        monkeypatch.setitem(sys.modules, "mpi4py", None)
        with pytest.raises(MpiUnavailableError) as exc:
            Mpi4pyComm()
        msg = str(exc.value)
        assert "LoopbackComm" in msg
        assert "mpiexec" in msg
        # Subclasses ImportError so existing fallbacks keep working.
        assert isinstance(exc.value, ImportError)

    def test_world_falls_back_to_loopback(self, monkeypatch):
        import sys
        from repro.distributed import LoopbackComm, world
        monkeypatch.setitem(sys.modules, "mpi4py", None)
        assert isinstance(world(), LoopbackComm)

    def test_explicit_comm_skips_import(self, monkeypatch):
        """Handing Mpi4pyComm a comm object never touches mpi4py."""
        import sys
        from repro.distributed import Mpi4pyComm
        monkeypatch.setitem(sys.modules, "mpi4py", None)

        class FakeComm:
            def Get_rank(self):
                return 3

            def Get_size(self):
                return 8

        comm = Mpi4pyComm(FakeComm())
        assert comm.rank == 3
        assert comm.size == 8
