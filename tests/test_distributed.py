"""Tests for database partitioning and the simulated GPU cluster."""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_search
from repro.core.types import concatenate
from repro.distributed import (GpuCluster, PARTITION_STRATEGIES,
                               partition_database)
from repro.engines import GpuTemporalEngine
from repro.gpu.costmodel import GpuCostModel


class TestPartition:
    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    def test_disjoint_and_covering(self, small_db, strategy):
        shards = partition_database(small_db, 4, strategy)
        assert len(shards) == 4
        all_ids = np.concatenate([s.seg_ids for s in shards])
        assert all_ids.size == len(small_db)
        np.testing.assert_array_equal(np.sort(all_ids),
                                      np.sort(small_db.seg_ids))

    def test_round_robin_deals_whole_trajectories(self, small_db):
        shards = partition_database(small_db, 3, "round_robin")
        seen: dict[int, int] = {}
        for n, shard in enumerate(shards):
            for t in np.unique(shard.traj_ids):
                assert t not in seen, "trajectory split across nodes"
                seen[int(t)] = n

    def test_temporal_slices_ordered(self, small_db):
        shards = partition_database(small_db, 3, "temporal")
        maxima = [s.ts.max() for s in shards[:-1]]
        minima = [s.ts.min() for s in shards[1:]]
        for hi, lo in zip(maxima, minima):
            assert hi <= lo + 1e-9

    def test_spatial_slabs_ordered(self, small_db):
        shards = partition_database(small_db, 3, "spatial")
        mins, maxs = small_db.spatial_bounds()
        axis = int(np.argmax(maxs - mins))
        centers = [0.5 * (s.starts[:, axis] + s.ends[:, axis])
                   for s in shards]
        for a, b in zip(centers, centers[1:]):
            assert a.max() <= b.min() + 1e-9

    def test_bad_args(self, small_db):
        with pytest.raises(ValueError):
            partition_database(small_db, 0)
        with pytest.raises(ValueError):
            partition_database(small_db, 2, "zigzag")

    def test_single_node_identity(self, small_db):
        shards = partition_database(small_db, 1)
        assert concatenate(shards) == small_db


class TestCluster:
    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    def test_cluster_equals_single_node(self, db_queries_truth, strategy):
        """Merged per-shard results == whole-database search."""
        db, queries, d, truth = db_queries_truth
        cluster = GpuCluster(
            db, 3, lambda shard: GpuTemporalEngine(shard, num_bins=20),
            strategy=strategy)
        res, prof = cluster.search(queries, d)
        assert res.equivalent_to(truth)
        assert prof.num_nodes == 3
        assert len(prof.node_profiles) == 3

    def test_modeled_time_is_slowest_node(self, db_queries_truth):
        db, queries, d, _ = db_queries_truth
        cluster = GpuCluster(
            db, 2, lambda shard: GpuTemporalEngine(shard, num_bins=20))
        _, prof = cluster.search(queries, d)
        m = GpuCostModel()
        per_node = [p.modeled_time(m).total for p in prof.node_profiles]
        assert prof.modeled_time(m).total == pytest.approx(max(per_node))

    def test_imbalance_metric(self, db_queries_truth):
        db, queries, d, _ = db_queries_truth
        rr = GpuCluster(db, 3,
                        lambda s: GpuTemporalEngine(s, num_bins=20),
                        strategy="round_robin")
        _, prof = rr.search(queries, d)
        assert prof.imbalance() >= 1.0

    def test_scaling_reduces_per_node_work(self, db_queries_truth):
        """More nodes => less work on the busiest node (the reason the
        paper wants clusters at all)."""
        db, queries, d, _ = db_queries_truth
        m = GpuCostModel()
        times = []
        for n in (1, 2, 4):
            cluster = GpuCluster(
                db, n, lambda s: GpuTemporalEngine(s, num_bins=20))
            _, prof = cluster.search(queries, d)
            times.append(prof.modeled_time(m).total)
        assert times[2] < times[0]

    def test_exclude_same_trajectory_propagates(self, small_db):
        cluster = GpuCluster(
            small_db, 2, lambda s: GpuTemporalEngine(s, num_bins=20))
        res, _ = cluster.search(small_db, 0.5,
                                exclude_same_trajectory=True)
        truth = brute_force_search(small_db, small_db, 0.5,
                                   exclude_same_trajectory=True)
        assert res.equivalent_to(truth)
