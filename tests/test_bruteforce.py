"""Tests for the brute-force reference search."""

import numpy as np

from repro.core.bruteforce import brute_force_search
from repro.core.distance import compare_pairs
from repro.core.result import ResultSet
from repro.core.types import SegmentArray


class TestBruteForce:
    def test_empty_inputs(self, small_db):
        empty = SegmentArray.empty()
        assert len(brute_force_search(empty, small_db, 1.0)) == 0
        assert len(brute_force_search(small_db, empty, 1.0)) == 0

    def test_monotone_in_d(self, small_db, small_queries):
        sizes = [len(brute_force_search(small_queries, small_db, d)
                     .deduplicated())
                 for d in (0.5, 2.0, 8.0)]
        assert sizes[0] <= sizes[1] <= sizes[2]

    def test_huge_d_returns_all_overlapping_pairs(self, small_db,
                                                  small_queries):
        res = brute_force_search(small_queries, small_db, 1e9)
        # Every temporally overlapping pair must be reported.
        expected = 0
        for i in range(len(small_queries)):
            t0 = np.maximum(small_queries.ts[i], small_db.ts)
            t1 = np.minimum(small_queries.te[i], small_db.te)
            expected += int(np.count_nonzero(t0 <= t1))
        assert len(res) == expected

    def test_agrees_with_direct_pair_refinement(self, small_db,
                                                small_queries):
        d = 2.5
        res = brute_force_search(small_queries, small_db, d).canonical()
        # Re-derive by one flat compare_pairs call.
        nq, ne = len(small_queries), len(small_db)
        qs = np.repeat(np.arange(nq), ne)
        es = np.tile(np.arange(ne), nq)
        ref = compare_pairs(small_queries, small_db, qs, es, d)
        expect = ResultSet(small_queries.seg_ids[qs[ref.mask]],
                           small_db.seg_ids[es[ref.mask]],
                           ref.t_lo[ref.mask],
                           ref.t_hi[ref.mask]).canonical()
        assert res.equivalent_to(expect)

    def test_chunking_invariance(self, small_db, small_queries,
                                 monkeypatch):
        """Result must not depend on the internal chunk size."""
        import repro.core.bruteforce as bf
        baseline = brute_force_search(small_queries, small_db, 2.5)
        monkeypatch.setattr(bf, "_CHUNK_PAIRS", 1000)
        chunked = brute_force_search(small_queries, small_db, 2.5)
        assert baseline.equivalent_to(chunked)

    def test_exclude_same_trajectory(self, small_db):
        own = brute_force_search(small_db, small_db, 0.5)
        cross = brute_force_search(small_db, small_db, 0.5,
                                   exclude_same_trajectory=True)
        assert len(cross) < len(own)
        tid = {int(s): int(t) for s, t in zip(small_db.seg_ids,
                                              small_db.traj_ids)}
        for q, e in cross.pairs():
            assert tid[q] != tid[e]
