"""Lint gate: `ruff check` must be clean under the pyproject config.

The rule set (E4/E7/E9/F) targets real defects — unused imports,
undefined names, syntax errors — not style.  The test is skipped when
ruff is not installed so the suite stays runnable on a bare
numpy/scipy/pytest environment.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_ruff_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff not installed in this environment")
    proc = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks", "examples"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}"
