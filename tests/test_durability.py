"""Durability layer: WAL framing, checkpoints, recovery, service wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.types import SegmentArray
from repro.data.io import load_segments, save_segments
from repro.durability import (DurabilityError, DurabilityManager,
                              DurabilityPolicy, KillSwitch,
                              SimulatedCrash, WalCorruptionError,
                              WriteAheadLog, list_checkpoints,
                              load_checkpoint, read_wal,
                              write_checkpoint)
from repro.durability.wal import decode_line, encode_record, WalRecord
from repro.ingest import IngestError, VersionedDatabase
from repro.service import QueryService, SearchRequest
from tests.conftest import make_walk_trajectories


def _db(seed=0, n=10, steps=8, offset=0):
    trajs = make_walk_trajectories(n, steps, seed=seed)
    if offset:
        from repro.core.types import Trajectory
        trajs = [Trajectory(t.traj_id + offset, t.times, t.positions)
                 for t in trajs]
    return SegmentArray.from_trajectories(trajs)


# -- WAL framing --------------------------------------------------------------


class TestWalFraming:
    def test_roundtrip(self):
        rec = WalRecord(lsn=3, op="delete", epoch=7,
                        payload={"traj_id": 4})
        assert decode_line(encode_record(rec).rstrip(b"\n")) == rec

    def test_crc_guards_every_byte(self):
        # Any single-byte flip either fails the frame outright or
        # decodes to the semantically identical record (e.g. a
        # mangled key name that from_dict ignores) — never to a
        # *different* mutation.
        original = WalRecord(lsn=1, op="compact", epoch=2)
        body = encode_record(original).rstrip(b"\n")
        for i in range(len(body)):
            mutated = bytearray(body)
            mutated[i] ^= 0x01
            decoded = decode_line(bytes(mutated))
            assert decoded is None or decoded == original

    def test_append_and_read(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", sync="flush")
        wal.append("append", 1, {"k": 1})
        wal.append("delete", 2, {"traj_id": 9})
        wal.close()
        scan = read_wal(tmp_path / "wal.jsonl")
        assert [r.op for r in scan.records] == ["append", "delete"]
        assert [r.lsn for r in scan.records] == [1, 2]
        assert scan.torn_records == 0

    def test_torn_tail_dropped_not_raised(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync="flush")
        wal.append("append", 1, {})
        wal.append("delete", 2, {"traj_id": 1})
        wal.close()
        # Simulate a crash mid-write: append half a record.
        good = path.read_bytes()
        half = encode_record(WalRecord(lsn=3, op="compact", epoch=3))
        path.write_bytes(good + half[:len(half) // 2])
        scan = read_wal(path)
        assert len(scan.records) == 2
        assert scan.torn_records == 1
        assert scan.valid_bytes == len(good)

    def test_mid_log_hole_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        r1 = encode_record(WalRecord(lsn=1, op="compact", epoch=1))
        r2 = encode_record(WalRecord(lsn=2, op="compact", epoch=2))
        path.write_bytes(r1 + b'{"garbage": true}\n' + r2)
        with pytest.raises(WalCorruptionError):
            read_wal(path)

    def test_lsn_gap_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        r1 = encode_record(WalRecord(lsn=1, op="compact", epoch=1))
        r3 = encode_record(WalRecord(lsn=3, op="compact", epoch=2))
        path.write_bytes(r1 + r3)
        with pytest.raises(WalCorruptionError):
            read_wal(path)

    def test_truncate_through(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", sync="flush")
        for epoch in (1, 2, 3, 4):
            wal.append("compact", epoch, {})
        assert wal.truncate_through(2) == 2
        scan = read_wal(tmp_path / "wal.jsonl")
        assert [r.epoch for r in scan.records] == [3, 4]
        # New appends continue the LSN sequence.
        rec = wal.append("compact", 5, {})
        assert rec.lsn == 5

    def test_drop_torn_tail_truncates_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync="flush")
        wal.append("compact", 1, {})
        wal.close()
        good = path.read_bytes()
        path.write_bytes(good + b'{"half')
        scan = read_wal(path)
        wal.drop_torn_tail(scan.valid_bytes)
        assert path.read_bytes() == good


# -- kill switch --------------------------------------------------------------


class TestKillSwitch:
    def test_fires_on_exact_occurrence(self):
        kill = KillSwitch("wal_post_append", occurrence=2)
        assert not kill.matches("wal_post_append")
        with pytest.raises(SimulatedCrash) as err:
            kill.check("wal_post_append")
        assert err.value.point == "wal_post_append"
        assert kill.fired

    def test_other_points_ignored(self):
        kill = KillSwitch("checkpoint_mid", occurrence=1)
        kill.check("wal_post_append")  # no crash
        kill.check("compact_mid")
        with pytest.raises(SimulatedCrash):
            kill.check("checkpoint_mid")

    def test_simulated_crash_is_not_exception(self):
        # Resilience ladders catch Exception; a simulated process
        # death must sail through them.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)


# -- checkpoints --------------------------------------------------------------


def _state(db: VersionedDatabase) -> dict:
    snap = db.snapshot()
    return {"epoch": db.epoch, "delta_epoch": db.delta_epoch,
            "base_version": db.base_version,
            "next_seg_id": db.next_seg_id, "base": snap.base,
            "delta": snap.delta, "tombstones": snap.tombstones,
            "counters": {}}


class TestCheckpoint:
    def test_write_load_roundtrip(self, tmp_path):
        db = VersionedDatabase(_db())
        db.append(_db(seed=5, n=2, offset=100))
        db.delete_trajectory(3)
        path = write_checkpoint(tmp_path / "checkpoints", _state(db))
        ckpt = load_checkpoint(path)
        assert ckpt.epoch == db.epoch
        assert ckpt.next_seg_id == db.next_seg_id
        assert ckpt.tombstones == {3}
        assert np.array_equal(ckpt.base.seg_ids,
                              db.snapshot().base.seg_ids)
        assert np.array_equal(ckpt.delta.xs, db.snapshot().delta.xs)

    def test_checksum_mismatch_detected(self, tmp_path):
        db = VersionedDatabase(_db())
        path = write_checkpoint(tmp_path / "checkpoints", _state(db))
        blob = (path / "base.npz").read_bytes()
        (path / "base.npz").write_bytes(
            blob[:-1] + bytes([blob[-1] ^ 0xFF]))
        from repro.durability import CheckpointError
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_kill_before_rename_leaves_no_checkpoint(self, tmp_path):
        db = VersionedDatabase(_db())
        kill = KillSwitch("checkpoint_mid", occurrence=1)
        with pytest.raises(SimulatedCrash):
            write_checkpoint(tmp_path / "checkpoints", _state(db),
                             kill=kill)
        assert list_checkpoints(tmp_path / "checkpoints") == []
        # ... but the tmp debris is there and recovery sweeps it.
        from repro.durability.checkpoint import clean_tmp_dirs
        assert clean_tmp_dirs(tmp_path / "checkpoints") == 1

    def test_list_newest_first(self, tmp_path):
        db = VersionedDatabase(_db())
        write_checkpoint(tmp_path / "c", _state(db))
        db.compact()
        write_checkpoint(tmp_path / "c", _state(db))
        names = [p.name for p in list_checkpoints(tmp_path / "c")]
        assert names == sorted(names, reverse=True)


# -- manager + recovery -------------------------------------------------------


class TestRecovery:
    def _durable_service(self, tmp_path, **kw):
        kw.setdefault("durability",
                      DurabilityPolicy(checkpoint_every=100))
        return QueryService(_db(), durability_dir=tmp_path / "state",
                            auto_compact=False, **kw)

    def test_attach_refuses_existing_state(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.shutdown()
        with pytest.raises(DurabilityError, match="recover"):
            QueryService(_db(), durability_dir=tmp_path / "state")

    def test_policy_without_dir_rejected(self):
        with pytest.raises(ValueError, match="durability_dir"):
            QueryService(_db(), durability=DurabilityPolicy())

    def test_recover_restores_exact_epoch_and_results(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.ingest(_db(seed=3, n=2, offset=50))
        svc.delete_trajectory(1)
        svc.compact()
        svc.ingest(_db(seed=4, n=2, offset=80))
        queries = _db(seed=9, n=2, offset=900)
        ref = svc.submit(SearchRequest(queries=queries, d=2.5,
                                       method="cpu_scan"))
        epoch = svc.versioned.epoch
        svc.shutdown()

        svc2 = QueryService.recover(tmp_path / "state",
                                    auto_compact=False)
        assert svc2.versioned.epoch == epoch
        assert svc2.fingerprint == svc.fingerprint
        got = svc2.submit(SearchRequest(queries=queries, d=2.5,
                                        method="cpu_scan"))
        a = ref.outcome.results.canonical()
        b = got.outcome.results.canonical()
        assert a.q_ids.tobytes() == b.q_ids.tobytes()
        assert a.e_ids.tobytes() == b.e_ids.tobytes()
        assert a.t_lo.tobytes() == b.t_lo.tobytes()
        assert a.t_hi.tobytes() == b.t_hi.tobytes()

    def test_recover_is_idempotent(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.ingest(_db(seed=3, n=2, offset=50))
        svc.delete_trajectory(2)
        svc.shutdown()
        one = QueryService.recover(tmp_path / "state",
                                   auto_compact=False)
        two = QueryService.recover(tmp_path / "state",
                                   auto_compact=False)
        assert one.versioned.epoch == two.versioned.epoch
        assert one.fingerprint == two.fingerprint
        assert one.versioned.next_seg_id == two.versioned.next_seg_id
        assert one.last_recovery.replayed == two.last_recovery.replayed

    def test_recover_with_empty_wal_tail(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.ingest(_db(seed=3, n=2, offset=50))
        svc.checkpoint()  # truncates the WAL through the epoch
        epoch, fp = svc.versioned.epoch, svc.fingerprint
        svc.shutdown()
        rec = QueryService.recover(tmp_path / "state",
                                   auto_compact=False)
        assert rec.last_recovery.replayed == 0
        assert rec.versioned.epoch == epoch
        assert rec.fingerprint == fp

    def test_prewarm_makes_restart_a_cache_hit(self, tmp_path):
        svc = self._durable_service(tmp_path)
        queries = _db(seed=9, n=2, offset=900)
        svc.submit(SearchRequest(queries=queries, d=2.5,
                                 method="gpu_temporal"))
        svc.checkpoint()
        svc.shutdown()
        svc2 = QueryService.recover(tmp_path / "state",
                                    auto_compact=False)
        resp = svc2.submit(SearchRequest(queries=queries, d=2.5,
                                         method="gpu_temporal"))
        assert resp.metrics.cache_hit
        total = svc2.telemetry.metrics.counter(
            "repro_recovery_prewarmed_total").total()
        assert total == 1

    def test_torn_wal_tail_loses_only_inflight_op(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.ingest(_db(seed=3, n=2, offset=50))
        epoch_before = svc.versioned.epoch
        kill = KillSwitch("wal_mid_append", occurrence=1)
        svc.durability.wal.kill = kill
        svc.durability.wal.close()  # reopen through the kill path
        with pytest.raises(SimulatedCrash):
            svc.ingest(_db(seed=4, n=2, offset=80))
        rec = QueryService.recover(tmp_path / "state",
                                   auto_compact=False)
        assert rec.last_recovery.torn_dropped == 1
        assert rec.versioned.epoch == epoch_before
        # The torn bytes are physically gone: appending again works
        # and a fresh recovery sees a clean log.
        rec.ingest(_db(seed=5, n=2, offset=120))
        rec.shutdown()
        again = QueryService.recover(tmp_path / "state",
                                     auto_compact=False)
        assert again.versioned.epoch == epoch_before + 1

    def test_noop_delete_not_logged(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.delete_trajectory(4)
        appends = svc.durability.wal.appends
        assert svc.delete_trajectory(4) == 0  # already tombstoned
        assert svc.durability.wal.appends == appends

    def test_invalid_mutation_not_logged(self, tmp_path):
        svc = self._durable_service(tmp_path)
        appends = svc.durability.wal.appends
        with pytest.raises(IngestError):
            svc.delete_trajectory(99999)
        with pytest.raises(IngestError):
            svc.ingest(SegmentArray.empty())
        assert svc.durability.wal.appends == appends

    def test_shutdown_flushes_logs_and_is_idempotent(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.ingest(_db(seed=3, n=2, offset=50))
        svc.shutdown()
        svc.shutdown()
        events = (tmp_path / "state" / "events.jsonl").read_text()
        kinds = [json.loads(line)["kind"]
                 for line in events.splitlines()]
        assert "ingest" in kinds
        assert (tmp_path / "state" / "slow_queries.jsonl").exists()

    def test_context_manager_shuts_down(self, tmp_path):
        with self._durable_service(tmp_path) as svc:
            svc.ingest(_db(seed=3, n=2, offset=50))
        assert (tmp_path / "state" / "events.jsonl").exists()

    def test_stats_expose_durability(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.ingest(_db(seed=3, n=2, offset=50))
        dur = svc.stats()["durability"]
        assert dur["wal_appends"] == 1
        assert dur["checkpoints_written"] == 1  # the attach bootstrap
        plain = QueryService(_db())
        assert plain.stats()["durability"] is None

    def test_periodic_checkpoint_cadence(self, tmp_path):
        svc = QueryService(
            _db(), durability_dir=tmp_path / "state",
            durability=DurabilityPolicy(checkpoint_every=2),
            auto_compact=False)
        for i in range(4):
            svc.ingest(_db(seed=10 + i, n=1, offset=200 + 10 * i))
        # attach + two periodic checkpoints (after ops 2 and 4).
        assert svc.durability.checkpoints_written == 3
        # keep_checkpoints=2 prunes the oldest.
        assert len(list_checkpoints(
            svc.durability.checkpoints_dir)) == 2

    def test_corrupt_newest_checkpoint_skipped(self, tmp_path):
        # truncate_wal=False keeps the full history, so recovery can
        # fall back past a corrupt checkpoint and still replay to the
        # exact pre-crash epoch.
        svc = self._durable_service(
            tmp_path, durability=DurabilityPolicy(
                checkpoint_every=100, truncate_wal=False))
        svc.ingest(_db(seed=3, n=2, offset=50))
        svc.checkpoint()
        epoch = svc.versioned.epoch
        svc.shutdown()
        newest = list_checkpoints(
            tmp_path / "state" / "checkpoints")[0]
        (newest / "MANIFEST.json").write_text("{broken")
        rec = QueryService.recover(tmp_path / "state",
                                   auto_compact=False)
        assert rec.last_recovery.invalid_checkpoints == 1
        assert rec.versioned.epoch == epoch

    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(DurabilityError, match="no checkpoints"):
            QueryService.recover(tmp_path / "nothing")

    def test_manager_refuses_bad_sync_mode(self):
        with pytest.raises(ValueError, match="sync"):
            DurabilityPolicy(sync="eventually")

    def test_durable_compaction_replays_identically(self, tmp_path):
        svc = self._durable_service(tmp_path)
        svc.ingest(_db(seed=3, n=2, offset=50))
        svc.compact()
        fp = svc.fingerprint
        svc.shutdown()
        # Wipe the checkpoints; force a full WAL replay from the
        # bootstrap state... not possible (WAL truncated), so instead
        # verify the recovered fingerprint matches the compacted one.
        rec = QueryService.recover(tmp_path / "state",
                                   auto_compact=False)
        assert rec.fingerprint == fp
        assert rec.versioned.base_version == svc.versioned.base_version


# -- atomic dataset saves (satellite) ----------------------------------------


class TestAtomicSave:
    def test_roundtrip_and_no_tmp_left(self, tmp_path):
        db = _db()
        out = save_segments(tmp_path / "db.npz", db)
        assert out == tmp_path / "db.npz"
        loaded = load_segments(out)
        assert np.array_equal(loaded.seg_ids, db.seg_ids)
        assert list(tmp_path.iterdir()) == [out]

    def test_suffix_appended_like_numpy(self, tmp_path):
        out = save_segments(tmp_path / "db", _db())
        assert out.name == "db.npz"
        assert load_segments(out) is not None

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        a, b = _db(seed=1), _db(seed=2)
        path = save_segments(tmp_path / "db.npz", a)
        save_segments(path, b)
        assert np.array_equal(load_segments(path).xs, b.xs)


class TestKeepSegIdsReplay:
    """The WAL records the router's ``keep_seg_ids`` flag so recovery
    replays shard appends with the same global ids."""

    def test_wal_replay_preserves_kept_ids(self, tmp_path):
        svc = QueryService(
            _db(), durability_dir=tmp_path / "state",
            auto_compact=False,
            durability=DurabilityPolicy(checkpoint_every=100))
        fresh = _db(seed=5, n=1, steps=4, offset=300)
        stamped = SegmentArray(
            fresh.xs, fresh.ys, fresh.zs, fresh.ts,
            fresh.xe, fresh.ye, fresh.ze, fresh.te,
            fresh.traj_ids,
            np.arange(77_000, 77_000 + len(fresh), dtype=np.int64))
        svc.ingest(stamped, keep_seg_ids=True)
        svc.shutdown()

        svc2 = QueryService.recover(tmp_path / "state",
                                    auto_compact=False)
        logical = svc2.versioned.snapshot().logical()
        kept = np.isin(logical.seg_ids, stamped.seg_ids)
        assert kept.sum() == len(stamped)
        svc2.shutdown()

    def test_wal_payload_carries_flag(self, tmp_path):
        svc = QueryService(
            _db(), durability_dir=tmp_path / "state",
            auto_compact=False,
            durability=DurabilityPolicy(checkpoint_every=100))
        fresh = _db(seed=5, n=1, steps=4, offset=300)
        stamped = SegmentArray(
            fresh.xs, fresh.ys, fresh.zs, fresh.ts,
            fresh.xe, fresh.ye, fresh.ze, fresh.te,
            fresh.traj_ids,
            np.arange(77_000, 77_000 + len(fresh), dtype=np.int64))
        svc.ingest(stamped, keep_seg_ids=True)
        svc.ingest(_db(seed=6, n=1, steps=4, offset=400))
        svc.shutdown()
        records = read_wal(tmp_path / "state" / "wal.jsonl").records
        appends = [r for r in records if r.op == "append"]
        assert appends[0].payload.get("keep_seg_ids") is True
        assert "keep_seg_ids" not in appends[1].payload


class TestIdempotencyAcrossRecovery:
    def test_wal_replay_recovers_the_dedup_table(self, tmp_path):
        """A keyed mutation applied before a crash must dedup after
        recovery — the WAL carries the keys."""
        svc = QueryService(_db(), durability_dir=tmp_path / "state",
                           auto_compact=False,
                           durability=DurabilityPolicy(
                               checkpoint_every=100))
        fresh = _db(seed=9, n=1, steps=4, offset=500)
        first = svc.ingest(fresh, idempotency_key="put-1")
        svc.delete_trajectory(2, idempotency_key="del-2")
        # Crash: abandon without shutdown; the WAL already synced.
        svc2 = QueryService.recover(tmp_path / "state",
                                    auto_compact=False)
        again = svc2.ingest(fresh, idempotency_key="put-1")
        assert again.deduplicated
        assert again.epoch == first.epoch
        assert svc2.versioned.epoch == svc.versioned.epoch
        hidden = svc2.delete_trajectory(2, idempotency_key="del-2")
        assert hidden > 0  # replayed receipt, not a 0-row no-op
        svc2.shutdown()

    def test_checkpoint_carries_the_dedup_table(self, tmp_path):
        """Keys must survive even when the WAL segment holding them is
        truncated away by a checkpoint."""
        svc = QueryService(_db(), durability_dir=tmp_path / "state",
                           auto_compact=False,
                           durability=DurabilityPolicy(
                               checkpoint_every=100))
        fresh = _db(seed=10, n=1, steps=4, offset=600)
        first = svc.ingest(fresh, idempotency_key="put-2")
        svc.checkpoint()
        svc.shutdown()
        svc2 = QueryService.recover(tmp_path / "state",
                                    auto_compact=False)
        again = svc2.ingest(fresh, idempotency_key="put-2")
        assert again.deduplicated and again.epoch == first.epoch
        svc2.shutdown()
