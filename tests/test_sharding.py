"""Tests for the sharded serving layer: exact scatter-gather, replica
failover, partial answers, op-log recovery, and divergence detection."""

import json

import numpy as np
import pytest

from repro.core.types import SegmentArray, Trajectory
from repro.distributed import PARTITION_STRATEGIES
from repro.engines.cpu_scan import CpuScanEngine
from repro.faults import (SHARD_FAULT_KINDS, ShardCampaignConfig,
                          ShardCampaignReport, run_shard_campaign)
from repro.faults.crashes import _result_bytes
from repro.ingest import IngestError
from repro.obs import Telemetry
from repro.service import SearchRequest
from repro.sharding import (MergeInvariantError, ShardMap,
                            ShardedService)
from tests.conftest import make_walk_trajectories

D = 4.0


def _db(num_traj=10, steps=6, seed=3, offset=0):
    trajs = make_walk_trajectories(num_traj, steps, seed=seed)
    if offset:
        trajs = [Trajectory(t.traj_id + offset, t.times, t.positions)
                 for t in trajs]
    return SegmentArray.from_trajectories(trajs)


@pytest.fixture(scope="module")
def queries():
    """Query walks chosen so the whole-database truth is non-empty —
    exactness assertions must never be vacuous (empty == empty)."""
    return _db(5, 8, seed=80, offset=9000)


def _truth_bytes(db, queries, keep_seg_ids=None):
    logical = db
    if keep_seg_ids is not None:
        mask = np.isin(db.seg_ids, keep_seg_ids)
        logical = db.take(np.flatnonzero(mask))
    return _result_bytes(CpuScanEngine(logical).search(queries, D)[0])


def _request(queries, method="cpu_scan", rid="r0"):
    return SearchRequest(queries=queries, d=D, method=method,
                         request_id=rid)


def _whole(db, *appends, deletes=()):
    """Whole-database referee: same global seg_id stamping the router
    applies (a plain VersionedDatabase restamps appends identically)."""
    from repro.ingest import VersionedDatabase
    ref = VersionedDatabase(db)
    for fresh in appends:
        ref.append(fresh)
    for tid in deletes:
        ref.delete_trajectory(tid)
    return ref.snapshot().logical()


class TestExactScatterGather:
    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    def test_merged_answer_matches_whole_database(self, strategy,
                                                  queries, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3, strategy=strategy,
                            durability_root=tmp_path) as svc:
            resp = svc.submit(_request(queries))
            assert resp.ok
            assert len(resp.outcome.results) > 0, "vacuous truth"
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(db, queries)

    def test_gpu_methods_merge_exactly(self, queries):
        db = _db()
        with ShardedService(db, num_shards=3) as svc:
            for method in ("gpu_temporal", "cpu_rtree", "auto"):
                resp = svc.submit(_request(queries, method=method))
                assert resp.ok, resp.reason
                assert _result_bytes(resp.outcome.results) == \
                    _truth_bytes(db, queries)

    def test_more_shards_than_trajectories(self, queries):
        db = _db(2, 4, seed=5)
        with ShardedService(db, num_shards=8) as svc:
            assert len([s for s in svc.shards if s.replicas]) <= 2
            resp = svc.submit(_request(queries))
            assert resp.ok
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(db, queries)

    def test_modeled_time_is_slowest_leg(self, queries):
        db = _db()
        with ShardedService(db, num_shards=3) as svc:
            resp = svc.submit(_request(queries, method="gpu_temporal"))
            assert resp.outcome.modeled.total > 0.0


class TestMutationRouting:
    def test_ingest_routes_and_stays_exact(self, queries, tmp_path):
        db = _db()
        fresh = _db(2, 5, seed=11, offset=500)
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            receipt = svc.ingest(fresh)
            assert receipt["segments"] == len(fresh)
            assert receipt["routed"]
            assert sum(receipt["routed"].values()) == len(fresh)
            resp = svc.submit(_request(queries))
            assert resp.ok
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(_whole(db, fresh), queries)

    def test_global_seg_ids_are_unique_across_shards(self, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            svc.ingest(_db(2, 5, seed=11, offset=500))
            ids = np.concatenate([
                r.service.versioned.snapshot().logical().seg_ids
                for s in svc.shards for r in s.replicas
                if r.live and r.index == 0])
            assert ids.size == np.unique(ids).size

    def test_delete_fans_out_and_stays_exact(self, queries):
        db = _db()
        with ShardedService(db, num_shards=3) as svc:
            victim = int(db.traj_ids[0])
            hidden = svc.delete_trajectory(victim)
            assert hidden > 0
            keep = db.take(np.flatnonzero(db.traj_ids != victim))
            resp = svc.submit(_request(queries))
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(keep, queries)
            # Idempotent: a second delete is a no-op.
            assert svc.delete_trajectory(victim) == 0

    def test_delete_refusals(self):
        db = _db()
        with ShardedService(db, num_shards=3) as svc:
            with pytest.raises(IngestError):
                svc.delete_trajectory(424242)
            victim = int(db.traj_ids[0])
            svc.delete_trajectory(victim)
            with pytest.raises(IngestError):
                # Re-using a deleted trajectory id is refused.
                svc.ingest(_db(1, 4, seed=9, offset=victim))

    def test_compaction_is_routed_and_exact(self, queries, tmp_path):
        from repro.ingest import CompactionPolicy
        db = _db()
        with ShardedService(
                db, num_shards=3, durability_root=tmp_path,
                service_kwargs={"compaction": CompactionPolicy(
                    max_delta_segments=4)}) as svc:
            appends = [_db(1, 5, seed=20 + k, offset=600 + 10 * k)
                       for k in range(3)]
            for fresh in appends:
                svc.ingest(fresh)
            assert any(op == "compact" for s in svc.shards
                       for _, op, _ in s.oplog)
            resp = svc.submit(_request(queries))
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(_whole(db, *appends), queries)


class TestFailover:
    def test_kill_one_replica_keeps_exact_answers(self, queries,
                                                  tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            killed = svc.kill_replica(0)
            assert killed is not None and not killed.live
            for i in range(3):
                resp = svc.submit(_request(queries, rid=f"k{i}"))
                assert resp.ok
                assert _result_bytes(resp.outcome.results) == \
                    _truth_bytes(db, queries)

    def test_blackout_answers_partial_over_survivors(self, queries,
                                                     tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            assert svc.blackout_shard(1) == 2
            resp = svc.submit(_request(queries))
            assert resp.status == "partial"
            assert resp.partial
            assert resp.missing_shards == (1,)
            surviving = np.concatenate(
                [svc.plan.seg_ids_of(s) for s in (0, 2)])
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(db, queries, keep_seg_ids=surviving)

    def test_partial_requires_both_replicas_down(self, queries,
                                                 tmp_path):
        """One live replica left => still a full, exact answer."""
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            svc.kill_replica(1, 0)
            resp = svc.submit(_request(queries))
            assert resp.status == "ok"
            assert resp.missing_shards == ()

    def test_recover_replica_rejoins_exactly(self, queries, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            svc.blackout_shard(0)
            fresh = _db(1, 5, seed=31, offset=700)
            svc.ingest(fresh)  # shard 0 dark: op-log only
            whole = _whole(db, fresh)
            for r in (0, 1):
                replica = svc.recover_replica(0, r)
                assert replica.live
                assert replica.service.versioned.epoch == \
                    svc.shards[0].epoch
            resp = svc.submit(_request(queries))
            assert resp.status == "ok"
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(whole, queries)

    def test_memory_only_recovery_replays_full_oplog(self, queries):
        db = _db()
        with ShardedService(db, num_shards=3) as svc:  # no durability
            shard = next(s.index for s in svc.shards if s.replicas)
            svc.ingest(_db(1, 4, seed=41, offset=800))
            svc.kill_replica(shard, 0)
            replica = svc.recover_replica(shard, 0)
            assert replica.live
            assert replica.service.versioned.epoch == \
                svc.shards[shard].epoch

    def test_recover_live_replica_is_an_error(self, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            with pytest.raises(ValueError):
                svc.recover_replica(0, 0)


class TestDivergenceDetection:
    """Satellite: a stale (pre-ingest epoch) replica is detected via
    the epoch carried in its SearchResponse and re-fetched from a
    healthy replica — never silently merged."""

    def test_stale_replica_discarded_and_refetched(self, queries,
                                                   tmp_path):
        from repro.service import QueryService
        db = _db()
        telemetry = Telemetry(enabled=True)
        with ShardedService(db, num_shards=3, telemetry=telemetry,
                            durability_root=tmp_path) as svc:
            shard = svc.shards[0]
            svc.kill_replica(0, 1)          # dies before the ingest
            # Extend a trajectory shard 0 already owns, so the ingest
            # is guaranteed to route there and advance its epoch.
            tid = next(int(t) for t in np.unique(db.traj_ids)
                       if svc.plan.shards_of(int(t)) == (0,))
            fresh = _db(1, 5, seed=51, offset=tid)
            svc.ingest(fresh)               # shard 0's epoch advances
            assert shard.epoch == 1
            # Resurrect replica 1 *stale*: pristine base, no catch-up
            # (simulating a replica that lost the mutation).
            shard.replicas[1].service = QueryService(
                shard.base, telemetry=Telemetry(enabled=False),
                **svc.service_kwargs)
            shard.rr = 1                    # stale replica tried first
            resp = svc.submit(_request(queries))
            assert resp.status == "ok"
            assert _result_bytes(resp.outcome.results) == \
                _truth_bytes(_whole(db, fresh), queries)
            mism = telemetry.metrics.get(
                "repro_router_epoch_mismatch_total")
            assert mism is not None and mism.total() >= 1

    def test_merge_invariant_raises_on_overlap(self, queries,
                                               tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            # Pick a shard whose leg actually has matches so the
            # duplicated part really overlaps.
            shard, leg = next(
                (s, r) for s in svc.shards if s.replicas
                for r in [s.replicas[0].service.submit(
                    _request(queries))]
                if r.ok and len(r.outcome.results) > 0)
            with pytest.raises(MergeInvariantError):
                svc._merge_outcomes(_request(queries),
                                    [(shard, leg), (shard, leg)])


class TestShardMap:
    def test_would_empty_and_shards_of(self):
        db = _db(3, 4, seed=8)
        plan = ShardMap(db, 3, "round_robin")
        for tid in np.unique(db.traj_ids).tolist():
            shards = plan.shards_of(int(tid))
            assert len(shards) == 1
            assert plan.would_empty(int(tid)) == list(shards)

    @pytest.mark.parametrize("strategy", sorted(PARTITION_STRATEGIES))
    def test_assign_append_routes_to_nonempty_shards(self, strategy):
        db = _db(4, 4, seed=8)
        plan = ShardMap(db, 6, strategy)
        fresh = _db(2, 4, seed=13, offset=300)
        routed = plan.assign_append(fresh)
        total = 0
        for shard, rows in routed:
            assert len(rows) > 0
            assert plan._seg_counts[shard] >= len(rows)
            total += len(rows)
        assert total == len(fresh)

    def test_known_trajectory_keeps_its_shard(self):
        db = _db(4, 4, seed=8)
        plan = ShardMap(db, 2, "round_robin")
        tid = int(db.traj_ids[0])
        home = plan.shards_of(tid)[0]
        more = _db(1, 3, seed=99, offset=tid)  # same trajectory id
        routed = plan.assign_append(more)
        assert [shard for shard, _ in routed] == [home]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ShardMap(_db(), 2, "zigzag")


class TestObservability:
    def test_merged_metrics_carry_shard_labels(self, queries,
                                               tmp_path):
        db = _db()
        telemetry = Telemetry(enabled=True)
        with ShardedService(db, num_shards=3, telemetry=telemetry,
                            durability_root=tmp_path) as svc:
            svc.submit(_request(queries))
            text = svc.merged_metrics().to_prometheus_text()
            assert 'shard="0"' in text
            assert 'replica="0"' in text
            assert "repro_router_requests_total" in text

    def test_stats_shape(self, queries, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            svc.submit(_request(queries))
            stats = svc.stats()
            assert stats["requests"] == 1
            assert len(stats["shards"]) == 3
            json.dumps(stats)  # JSON-friendly


class TestPartialResponseContract:
    def test_partial_round_trips(self, queries, tmp_path):
        from repro.service import SearchResponse
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            svc.blackout_shard(2)
            resp = svc.submit(_request(queries))
            assert resp.status == "partial"
            clone = SearchResponse.from_dict(resp.to_dict())
            assert clone.status == "partial"
            assert clone.missing_shards == resp.missing_shards

    def test_partial_requires_missing_shards(self):
        from repro.gpu.profiler import RequestMetrics
        from repro.service import SearchResponse
        with pytest.raises(ValueError):
            SearchResponse(request_id="x", outcome=None,
                           metrics=RequestMetrics(engine="t"),
                           status="partial")

    def test_missing_shards_only_on_partial(self, queries, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            resp = svc.submit(_request(queries))
            assert resp.status == "ok"
            assert resp.missing_shards == ()


class TestShardCampaign:
    def test_small_campaign_survives(self, tmp_path):
        cfg = ShardCampaignConfig(seed=0, num_requests=40,
                                  kill_every=7, recover_after=4,
                                  methods=("cpu_scan", "cpu_rtree"))
        report = run_shard_campaign(cfg, durability_root=tmp_path)
        assert report.ok, report.to_dict()
        assert report.total == 40
        assert all(report.fired_by_kind.get(k, 0) > 0
                   for k in SHARD_FAULT_KINDS)
        assert report.recoveries >= 1
        assert report.mismatches == []

    def test_report_round_trip_and_render(self, tmp_path):
        cfg = ShardCampaignConfig(seed=1, num_requests=24,
                                  kill_every=5, recover_after=3,
                                  methods=("cpu_scan",))
        report = run_shard_campaign(cfg, durability_root=tmp_path)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] == report.ok
        assert payload["config"]["seed"] == 1
        text = report.render()
        assert "shard-chaos campaign report" in text
        assert "survived" in text

    def test_memory_only_campaign(self):
        cfg = ShardCampaignConfig(seed=2, num_requests=24,
                                  kill_every=5, recover_after=3,
                                  durable=False,
                                  methods=("cpu_scan",))
        report = run_shard_campaign(cfg)
        assert report.ok, report.to_dict()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ShardCampaignConfig(num_requests=0)
        with pytest.raises(ValueError):
            ShardCampaignConfig(recover_after=0)

    def test_ok_gate_demands_all_kinds(self):
        report = ShardCampaignReport(
            config=ShardCampaignConfig(num_requests=1).to_dict())
        report.outcomes = {"ok": 1}
        report.verified = 1
        report.final_exact = True
        report.recoveries = 1
        report.fired_by_kind = {"shard_kill": 2}  # no blackout
        assert not report.ok
        report.fired_by_kind["shard_blackout"] = 1
        assert report.ok


class TestDeadlinePropagation:
    def test_exhausted_budget_is_typed_never_partial(self, queries,
                                                     tmp_path):
        """A budget that is gone before the scatter must come back as
        deadline_exceeded from the router itself — not as a vacuously
        'partial' answer over whichever shards happened to finish."""
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            req = SearchRequest(queries=queries, d=D,
                                method="cpu_scan", request_id="dl0",
                                deadline_s=1e-12)
            resp = svc.submit(req)
            assert resp.status == "deadline_exceeded"
            assert not resp.partial and resp.missing_shards == ()
            assert resp.metrics.engine == "router"
            assert "no replica was dispatched" in resp.reason
            reg = svc.telemetry.metrics
            assert reg.counter(
                "repro_router_deadline_rejects_total").total() >= 1

    def test_dead_budget_beats_partial_even_under_blackout(
            self, queries, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            svc.blackout_shard(1)
            req = SearchRequest(queries=queries, d=D,
                                method="cpu_scan", request_id="dl1",
                                deadline_s=1e-12)
            resp = svc.submit(req)
            assert resp.status == "deadline_exceeded"
            assert not resp.partial

    def test_no_replica_ever_sees_a_nonpositive_budget(self, queries,
                                                       tmp_path):
        """Slow legs burn the scatter's shared budget; downstream
        shards must either get the positive remainder or a router-side
        rejection — never a dispatch with deadline_s <= 0."""
        import time as _time

        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            leg_budgets = []
            for shard in svc.shards:
                for replica in shard.replicas:
                    orig = replica.service.submit

                    def slow(request, _orig=orig):
                        leg_budgets.append(request.deadline_s)
                        _time.sleep(0.06)
                        return _orig(request)

                    replica.service.submit = slow
            req = SearchRequest(queries=queries, d=D,
                                method="cpu_scan", request_id="dl2",
                                deadline_s=0.1)
            resp = svc.submit(req)
            # Two 60ms legs exhaust the 100ms budget mid-scatter.
            assert resp.status == "deadline_exceeded"
            assert leg_budgets, "no shard leg was dispatched at all"
            assert all(b is not None and b > 0 for b in leg_budgets)
            assert len(leg_budgets) < 2 * len(svc.shards)

    def test_leg_budget_never_exceeds_the_remaining_budget(
            self, queries, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            leg_budgets = []
            for shard in svc.shards:
                for replica in shard.replicas:
                    orig = replica.service.submit

                    def spy(request, _orig=orig):
                        leg_budgets.append(request.deadline_s)
                        return _orig(request)

                    replica.service.submit = spy
            req = SearchRequest(queries=queries, d=D,
                                method="cpu_scan", request_id="dl3",
                                deadline_s=30.0)
            assert svc.submit(req).status == "ok"
            assert len(leg_budgets) == 3
            assert all(0 < b <= 30.0 for b in leg_budgets)


class TestRouterIdempotency:
    def test_keyed_ingest_applies_exactly_once(self, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            fresh = _db(1, 5, seed=33, offset=800)
            first = svc.ingest(fresh, idempotency_key="put-9")
            epochs = {s.index: s.epoch for s in svc.shards}
            again = svc.ingest(fresh, idempotency_key="put-9")
            assert again["deduplicated"] is True
            assert again["segments"] == first["segments"]
            assert again["routed"] == first["routed"]
            # Nothing re-applied: every shard epoch is unchanged.
            assert {s.index: s.epoch for s in svc.shards} == epochs
            assert svc.telemetry.metrics.counter(
                "repro_idempotent_dedups_total").value(op="append") \
                == 1

    def test_keyed_delete_replays_the_receipt(self, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            first = svc.delete_trajectory(3, idempotency_key="del-3")
            assert first > 0
            again = svc.delete_trajectory(3, idempotency_key="del-3")
            assert again == first  # unkeyed retry would return 0
            assert svc.delete_trajectory(3) == 0
            assert svc.telemetry.metrics.counter(
                "repro_idempotent_dedups_total").value(op="delete") \
                == 1

    def test_key_cannot_cross_operation_kinds(self, tmp_path):
        db = _db()
        with ShardedService(db, num_shards=3,
                            durability_root=tmp_path) as svc:
            svc.ingest(_db(1, 5, seed=34, offset=850),
                       idempotency_key="mut-1")
            with pytest.raises(IngestError, match="named a"):
                svc.delete_trajectory(2, idempotency_key="mut-1")
