"""Tests for the terminal line-chart renderer."""

import pytest

from repro.experiments.asciichart import line_chart


@pytest.fixture()
def sample():
    d = [1.0, 2.0, 4.0, 8.0]
    series = {"flat": [0.01, 0.01, 0.01, 0.011],
              "rising": [0.001, 0.01, 0.1, 1.0]}
    return d, series


class TestLineChart:
    def test_renders_marks_and_legend(self, sample):
        d, series = sample
        out = line_chart(d, series, title="t")
        assert "t" in out.splitlines()[0]
        assert "o flat" in out and "x rising" in out
        assert "log10(s)" in out
        # Every series mark appears somewhere in the plot body.
        body = "\n".join(out.splitlines()[2:-3])
        assert "o" in body and "x" in body

    def test_x_tick_labels(self, sample):
        d, series = sample
        out = line_chart(d, series)
        assert "1" in out and "8" in out

    def test_monotone_series_has_monotone_rows(self, sample):
        """The rising series' marks move upward (smaller row index)
        left to right."""
        d, series = sample
        out = line_chart(d, {"rising": series["rising"]}, height=12,
                         width=40)
        rows_by_col = {}
        for r, line in enumerate(out.splitlines()):
            if "│" not in line and "┤" not in line:
                continue  # only scan the plot body, not the legend
            body = line.split("┤")[-1].split("│")[-1]
            offset = len(line) - len(body)
            for c, ch in enumerate(body):
                if ch == "o":
                    rows_by_col[offset + c] = r
        cols = sorted(rows_by_col)
        rows = [rows_by_col[c] for c in cols]
        assert rows == sorted(rows, reverse=True)

    def test_linear_scale(self, sample):
        d, series = sample
        out = line_chart(d, series, log_y=False)
        assert "[y: s]" in out

    def test_handles_nonpositive_points(self):
        out = line_chart([1, 2, 3], {"a": [0.0, 0.5, 1.0]})
        assert "a" in out  # zero point skipped, chart still renders

    def test_invalid_inputs(self, sample):
        d, series = sample
        with pytest.raises(ValueError):
            line_chart([], series)
        with pytest.raises(ValueError):
            line_chart(d, {})
        with pytest.raises(ValueError):
            line_chart(d, series, height=2)
        with pytest.raises(ValueError):
            line_chart(d, {"a": [-1.0] * 4})
