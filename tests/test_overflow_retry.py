"""Bounded-retry policy around the incremental overflow loop.

The safety-valve redesign: a result buffer smaller than a single query's
output is a clear, immediate error when retry is disabled, and a
self-healing condition under the default policy (the engine grows the
buffer and retries instead of burning kernel invocations)."""

import numpy as np
import pytest

from repro.engines import (GpuSpatialEngine, GpuSpatioTemporalEngine,
                           GpuTemporalEngine, NO_RETRY, RetryPolicy)
from repro.engines.base import (KernelInvocationLimitError,
                                ResultBufferOverflowError)

RETRYABLE_FACTORIES = {
    "gpu_temporal": lambda db, **kw: GpuTemporalEngine(
        db, num_bins=40, **kw),
    "gpu_spatiotemporal": lambda db, **kw: GpuSpatioTemporalEngine(
        db, num_bins=40, num_subbins=2, strict_subbins=False, **kw),
    "gpu_spatial": lambda db, **kw: GpuSpatialEngine(
        db, cells_per_dim=8, **kw),
}


@pytest.fixture(params=sorted(RETRYABLE_FACTORIES))
def factory(request):
    return RETRYABLE_FACTORIES[request.param]


class TestPolicyValidation:
    def test_bad_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(growth_factor=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1


class TestWithoutRetry:
    def test_impossible_buffer_is_clear_error(self, factory,
                                              db_queries_truth):
        """Buffer smaller than one query's output, retry disabled:
        the engine reports the configuration error immediately."""
        db, queries, d, truth = db_queries_truth
        if np.bincount(truth.q_ids).max() < 2:
            pytest.skip("no query with >1 result in this dataset")
        engine = factory(db, result_buffer_items=1, retry=NO_RETRY)
        with pytest.raises((ResultBufferOverflowError,
                            KernelInvocationLimitError),
                           match="result buffer") as exc:
            engine.search(queries, d)
        # The error carries the capacity that would unblock the search.
        assert exc.value.required_items > 1


class TestWithRetry:
    def test_default_policy_grows_and_succeeds(self, factory,
                                               db_queries_truth):
        """Same impossible buffer, default policy: the engine grows the
        buffer and completes exactly."""
        db, queries, d, truth = db_queries_truth
        if np.bincount(truth.q_ids).max() < 2:
            pytest.skip("no query with >1 result in this dataset")
        engine = factory(db, result_buffer_items=1)
        res, prof = engine.search(queries, d)
        assert res.equivalent_to(truth)
        assert engine.result_buffer.capacity_items > 1
        # The grown device allocation matches the host-side buffer.
        grown = engine.gpu.memory.get("result_buffer")
        assert len(grown) == engine.result_buffer.capacity_items

    def test_generous_growth_needs_few_invocations(self,
                                                   db_queries_truth):
        """A growth factor sized to the workload turns the sliver-buffer
        pathology into a near-single-invocation search."""
        db, queries, d, truth = db_queries_truth
        if np.bincount(truth.q_ids).max() < 2:
            pytest.skip("no query with >1 result in this dataset")
        engine = GpuTemporalEngine(
            db, num_bins=40, result_buffer_items=1,
            retry=RetryPolicy(growth_factor=4.0 * len(truth)))
        res, prof = engine.search(queries, d)
        assert res.equivalent_to(truth)
        # One failed sliver attempt, then a buffer that holds everything.
        assert prof.num_kernel_invocations <= 2

    def test_growth_respects_required_items(self, db_queries_truth):
        """When a query needs more than growth_factor x capacity, the
        buffer jumps straight to the required size."""
        db, queries, d, truth = db_queries_truth
        worst = int(np.bincount(truth.q_ids).max())
        if worst < 3:
            pytest.skip("needs a query with >=3 results")
        engine = GpuTemporalEngine(
            db, num_bins=40, result_buffer_items=1,
            retry=RetryPolicy(max_attempts=2, growth_factor=1.5))
        res, _ = engine.search(queries, d)
        assert res.equivalent_to(truth)
        assert engine.result_buffer.capacity_items >= worst

    def test_deadline_exhaustion_reraises(self, db_queries_truth):
        """A deadline in the past disables growth after the first
        failure."""
        db, queries, d, truth = db_queries_truth
        if np.bincount(truth.q_ids).max() < 2:
            pytest.skip("no query with >1 result in this dataset")
        engine = GpuTemporalEngine(
            db, num_bins=40, result_buffer_items=1,
            retry=RetryPolicy(max_attempts=10, deadline_s=1e-12))
        with pytest.raises((ResultBufferOverflowError,
                            KernelInvocationLimitError)):
            engine.search(queries, d)

    def test_results_identical_to_unconstrained(self, factory,
                                                db_queries_truth):
        """Retry is invisible in the results: grown-buffer output equals
        a comfortably-sized engine's output."""
        db, queries, d, truth = db_queries_truth
        roomy = factory(db, result_buffer_items=100_000)
        tight = factory(db, result_buffer_items=1)
        r1, _ = roomy.search(queries, d)
        r2, _ = tight.search(queries, d)
        assert r1.equivalent_to(r2)
        assert r1.equivalent_to(truth)
