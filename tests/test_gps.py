"""Tests for the GPS grid-city trajectory generator."""

import numpy as np
import pytest

from repro.data.gps import CityConfig, gps_dataset


@pytest.fixture(scope="module")
def city():
    cfg = CityConfig(num_vehicles=20, blocks=4, duration=120.0,
                     sample_period=5.0)
    return cfg, gps_dataset(cfg)


class TestCityConfig:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CityConfig(num_vehicles=0)
        with pytest.raises(ValueError):
            CityConfig(speed=0)
        with pytest.raises(ValueError):
            CityConfig(duration=1.0, sample_period=5.0)


class TestGpsDataset:
    def test_counts(self, city):
        cfg, db = city
        assert db.num_trajectories == cfg.num_vehicles
        samples = int(cfg.duration / cfg.sample_period) + 1
        assert len(db) == cfg.num_vehicles * (samples - 1)

    def test_positions_inside_city(self, city):
        cfg, db = city
        side = cfg.blocks * cfg.block_size
        for arr in (db.xs, db.xe, db.ys, db.ye):
            assert arr.min() >= -1e-9
            assert arr.max() <= side + 1e-9
        assert np.all(db.zs == 0.0) and np.all(db.ze == 0.0)

    def test_speed_limit_respected(self, city):
        """Between consecutive fixes a vehicle moves at most
        speed * sample_period (Manhattan metric)."""
        cfg, db = city
        manhattan = (np.abs(db.xe - db.xs) + np.abs(db.ye - db.ys))
        assert np.all(manhattan <= cfg.speed * cfg.sample_period + 1e-6)

    def test_vehicles_stay_on_grid_axes(self, city):
        """Within one sample interval the vehicle moves along at most
        one turn, so displacement is axis-dominated — and the data is
        effectively 2-D."""
        cfg, db = city
        # Every endpoint lies on a street: x or y a multiple of the
        # block size.
        on_street = (
            np.isclose(db.xs % cfg.block_size, 0.0)
            | np.isclose(db.xs % cfg.block_size, cfg.block_size)
            | np.isclose(db.ys % cfg.block_size, 0.0)
            | np.isclose(db.ys % cfg.block_size, cfg.block_size))
        assert np.all(on_street)

    def test_deterministic(self):
        cfg = CityConfig(num_vehicles=5, blocks=3, duration=60.0)
        assert gps_dataset(cfg) == gps_dataset(cfg)

    def test_searchable(self, city):
        """The dataset works end to end with the engines."""
        from repro.core.bruteforce import brute_force_search
        from repro.engines import GpuSpatioTemporalEngine
        cfg, db = city
        queries = db.take(np.arange(60))
        engine = GpuSpatioTemporalEngine(db, num_bins=24, num_subbins=2,
                                         strict_subbins=False)
        res, _ = engine.search(queries, 30.0)
        truth = brute_force_search(queries, db, 30.0)
        assert res.equivalent_to(truth)
