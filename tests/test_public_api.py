"""Public-API contract tests: the documented surface stays importable
and `__all__` stays truthful."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.gpu",
    "repro.indexes",
    "repro.engines",
    "repro.data",
    "repro.distributed",
    "repro.astro",
    "repro.experiments",
    "repro.service",
]


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_names_resolve(module_name):
    """Every name in __all__ exists on the module."""
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__") and module.__all__
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_is_sorted_unique(module_name):
    module = importlib.import_module(module_name)
    names = [n for n in module.__all__ if n != "__version__"]
    assert len(names) == len(set(names)), f"{module_name}: duplicates"


def test_readme_documented_entry_points_exist():
    """The names the README leans on are real."""
    import repro
    for name in ("DistanceThresholdSearch", "SegmentArray", "Trajectory",
                 "random_dataset", "merger_dataset", "VirtualGPU",
                 "GpuCostModel", "HybridEngine"):
        assert hasattr(repro, name)
    from repro.core import plan_search, verify_results, TrajectoryKnn
    from repro.distributed import GpuCluster, SpmdSearchDriver
    from repro.gpu import occupancy, write_trace
    assert callable(plan_search) and callable(verify_results)
    assert callable(occupancy) and callable(write_trace)
    assert GpuCluster and SpmdSearchDriver and TrajectoryKnn


def test_engine_registry_complete():
    from repro.core.search import ENGINE_REGISTRY
    assert set(ENGINE_REGISTRY) == {
        "gpu_spatial", "gpu_temporal", "gpu_spatiotemporal",
        "cpu_rtree", "cpu_scan"}


def test_service_layer_entry_points_exist():
    """The serving-layer surface added with the batched query service."""
    import repro
    for name in ("QueryService", "SearchRequest", "SearchResponse",
                 "register_engine", "ConfigError"):
        assert hasattr(repro, name)
    from repro.engines import (GpuSpatialConfig, GpuSpatioTemporalConfig,
                               GpuTemporalConfig, CpuRTreeConfig,
                               RetryPolicy, NO_RETRY)
    from repro.gpu.profiler import RequestMetrics
    from repro.service import EngineCache, database_fingerprint
    assert callable(database_fingerprint)
    assert EngineCache and RequestMetrics and RetryPolicy
    assert NO_RETRY.max_attempts == 1
    assert GpuSpatialConfig and GpuSpatioTemporalConfig
    assert GpuTemporalConfig and CpuRTreeConfig


def test_direct_registry_mutation_warns():
    """Writing ENGINE_REGISTRY[name] = cls still works but is
    deprecated in favour of @register_engine."""
    import warnings

    from repro.core.search import ENGINE_REGISTRY
    from repro.engines import CpuScanEngine

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ENGINE_REGISTRY["_legacy_test_engine"] = CpuScanEngine
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
    assert ENGINE_REGISTRY["_legacy_test_engine"] is CpuScanEngine
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        del ENGINE_REGISTRY["_legacy_test_engine"]
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
    assert "_legacy_test_engine" not in ENGINE_REGISTRY


def test_register_engine_decorator():
    """@register_engine is the supported extension point."""
    import pytest

    from repro.core.search import ENGINE_REGISTRY, register_engine
    from repro.engines import CpuScanEngine

    @register_engine("_decorated_test_engine")
    class _Custom(CpuScanEngine):
        """Test double."""

    try:
        assert ENGINE_REGISTRY["_decorated_test_engine"] is _Custom
    finally:
        dict.__delitem__(ENGINE_REGISTRY, "_decorated_test_engine")
    with pytest.raises(TypeError):
        register_engine("_bad")(object)
    with pytest.raises(ValueError):
        register_engine("")


def test_version():
    import repro
    assert repro.__version__.count(".") == 2


def test_public_docstrings_everywhere():
    """Every public callable/class in the top packages has a docstring
    (deliverable (e): doc comments on every public item)."""
    import inspect
    missing = []
    for module_name in PACKAGES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            if name == "__version__":
                continue
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module_name}.{name}")
    assert not missing, f"undocumented public items: {missing}"
