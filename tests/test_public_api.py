"""Public-API contract tests: the documented surface stays importable
and `__all__` stays truthful."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.gpu",
    "repro.indexes",
    "repro.engines",
    "repro.data",
    "repro.distributed",
    "repro.astro",
    "repro.experiments",
]


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_names_resolve(module_name):
    """Every name in __all__ exists on the module."""
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__") and module.__all__
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_is_sorted_unique(module_name):
    module = importlib.import_module(module_name)
    names = [n for n in module.__all__ if n != "__version__"]
    assert len(names) == len(set(names)), f"{module_name}: duplicates"


def test_readme_documented_entry_points_exist():
    """The names the README leans on are real."""
    import repro
    for name in ("DistanceThresholdSearch", "SegmentArray", "Trajectory",
                 "random_dataset", "merger_dataset", "VirtualGPU",
                 "GpuCostModel", "HybridEngine"):
        assert hasattr(repro, name)
    from repro.core import plan_search, verify_results, TrajectoryKnn
    from repro.distributed import GpuCluster, SpmdSearchDriver
    from repro.gpu import occupancy, write_trace
    assert callable(plan_search) and callable(verify_results)
    assert callable(occupancy) and callable(write_trace)
    assert GpuCluster and SpmdSearchDriver and TrajectoryKnn


def test_engine_registry_complete():
    from repro.core.search import ENGINE_REGISTRY
    assert set(ENGINE_REGISTRY) == {
        "gpu_spatial", "gpu_temporal", "gpu_spatiotemporal",
        "cpu_rtree", "cpu_scan"}


def test_version():
    import repro
    assert repro.__version__.count(".") == 2


def test_public_docstrings_everywhere():
    """Every public callable/class in the top packages has a docstring
    (deliverable (e): doc comments on every public item)."""
    import inspect
    missing = []
    for module_name in PACKAGES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            if name == "__version__":
                continue
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module_name}.{name}")
    assert not missing, f"undocumented public items: {missing}"
