"""Public-API contract tests: the documented surface stays importable
and `__all__` stays truthful."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.gpu",
    "repro.indexes",
    "repro.engines",
    "repro.data",
    "repro.distributed",
    "repro.astro",
    "repro.experiments",
    "repro.service",
    "repro.sharding",
    "repro.faults",
]


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_names_resolve(module_name):
    """Every name in __all__ exists on the module."""
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__") and module.__all__
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_is_sorted_unique(module_name):
    module = importlib.import_module(module_name)
    names = [n for n in module.__all__ if n != "__version__"]
    assert len(names) == len(set(names)), f"{module_name}: duplicates"


def test_readme_documented_entry_points_exist():
    """The names the README leans on are real."""
    import repro
    for name in ("DistanceThresholdSearch", "SegmentArray", "Trajectory",
                 "random_dataset", "merger_dataset", "VirtualGPU",
                 "GpuCostModel", "HybridEngine"):
        assert hasattr(repro, name)
    from repro.core import plan_search, verify_results, TrajectoryKnn
    from repro.distributed import GpuCluster, SpmdSearchDriver
    from repro.gpu import occupancy, write_trace
    assert callable(plan_search) and callable(verify_results)
    assert callable(occupancy) and callable(write_trace)
    assert GpuCluster and SpmdSearchDriver and TrajectoryKnn


def test_engine_registry_complete():
    from repro.engines import available, get_engine
    assert available() == ("cpu_rtree", "cpu_scan", "gpu_spatial",
                           "gpu_spatiotemporal", "gpu_temporal")
    for name in available():
        assert get_engine(name).name == name
    with pytest.raises(KeyError, match="unknown engine"):
        get_engine("quantum")


def test_service_layer_entry_points_exist():
    """The serving-layer surface added with the batched query service."""
    import repro
    for name in ("QueryService", "SearchRequest", "SearchResponse",
                 "register_engine", "ConfigError"):
        assert hasattr(repro, name)
    from repro.engines import (GpuSpatialConfig, GpuSpatioTemporalConfig,
                               GpuTemporalConfig, CpuRTreeConfig,
                               RetryPolicy, NO_RETRY)
    from repro.gpu.profiler import RequestMetrics
    from repro.service import EngineCache, database_fingerprint
    assert callable(database_fingerprint)
    assert EngineCache and RequestMetrics and RetryPolicy
    assert NO_RETRY.max_attempts == 1
    assert GpuSpatialConfig and GpuSpatioTemporalConfig
    assert GpuTemporalConfig and CpuRTreeConfig


def test_registry_view_deprecated():
    """ENGINE_REGISTRY survives as a read-only view: reads warn,
    writes raise."""
    from repro.core.search import ENGINE_REGISTRY
    from repro.engines import CpuScanEngine

    with pytest.warns(DeprecationWarning):
        assert ENGINE_REGISTRY["cpu_scan"] is CpuScanEngine
    with pytest.warns(DeprecationWarning):
        assert "cpu_scan" in ENGINE_REGISTRY
    with pytest.warns(DeprecationWarning):
        assert set(ENGINE_REGISTRY) == {
            "gpu_spatial", "gpu_temporal", "gpu_spatiotemporal",
            "cpu_rtree", "cpu_scan"}
    with pytest.raises(TypeError):
        ENGINE_REGISTRY["_legacy_test_engine"] = CpuScanEngine
    with pytest.raises(TypeError):
        del ENGINE_REGISTRY["cpu_scan"]


def test_register_engine_decorator():
    """@register_engine is the supported extension point."""
    import pytest

    from repro.core.search import register_engine
    from repro.engines import CpuScanEngine, get_engine
    from repro.engines.registry import _REGISTRY

    @register_engine("_decorated_test_engine")
    class _Custom(CpuScanEngine):
        """Test double."""

    try:
        assert get_engine("_decorated_test_engine") is _Custom
    finally:
        del _REGISTRY["_decorated_test_engine"]
    with pytest.raises(TypeError):
        register_engine("_bad")(object)
    with pytest.raises(ValueError):
        register_engine("")


def test_version():
    import repro
    assert repro.__version__.count(".") == 2


def test_public_docstrings_everywhere():
    """Every public callable/class in the top packages has a docstring
    (deliverable (e): doc comments on every public item)."""
    import inspect
    missing = []
    for module_name in PACKAGES:
        module = importlib.import_module(module_name)
        for name in module.__all__:
            if name == "__version__":
                continue
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module_name}.{name}")
    assert not missing, f"undocumented public items: {missing}"
