"""Tests for the cost-model sensitivity analysis."""

import pytest

from repro.experiments import ExperimentRunner, scenario_s2_merger
from repro.experiments.sensitivity import (CPU_PARAMETERS,
                                           GPU_PARAMETERS,
                                           SensitivityRow,
                                           collect_profiles,
                                           crossover_distance,
                                           sensitivity_analysis)
from repro.gpu.costmodel import CpuCostModel, GpuCostModel


@pytest.fixture(scope="module")
def profile_set():
    runner = ExperimentRunner(scenario_s2_merger(0.01))
    return collect_profiles(
        runner, ["cpu_rtree", "gpu_spatiotemporal"],
        d_values=(0.01, 1.0, 2.0, 3.5, 5.0))


class TestCrossover:
    def test_basic(self):
        d = (1.0, 2.0, 3.0)
        assert crossover_distance(d, [5, 2, 1], [3, 3, 3]) == 2.0
        assert crossover_distance(d, [5, 5, 5], [3, 3, 3]) is None
        assert crossover_distance(d, [1, 9, 9], [3, 3, 3]) == 1.0


class TestProfileSet:
    def test_pricing_shapes(self, profile_set):
        series = profile_set.price(GpuCostModel(), CpuCostModel())
        assert set(series) == {"cpu_rtree", "gpu_spatiotemporal"}
        assert all(len(v) == 5 for v in series.values())
        assert all(t > 0 for v in series.values() for t in v)

    def test_repricing_is_consistent(self, profile_set):
        """Doubling every GPU constant doubles only the GPU series'
        compute-dominated points."""
        base = profile_set.price(GpuCostModel(), CpuCostModel())
        doubled = profile_set.price(
            GpuCostModel(cycles_per_comparison=6000.0,
                         cycles_per_gather=1000.0,
                         cycles_per_atomic=1200.0),
            CpuCostModel())
        assert doubled["cpu_rtree"] == base["cpu_rtree"]
        assert all(b < d_ for b, d_ in zip(base["gpu_spatiotemporal"],
                                           doubled["gpu_spatiotemporal"]))


class TestSensitivity:
    def test_full_grid(self, profile_set):
        rows = sensitivity_analysis(profile_set)
        expected = 1 + 2 * (len(GPU_PARAMETERS) + len(CPU_PARAMETERS))
        assert len(rows) == expected
        assert rows[0].side == "baseline"
        assert all(isinstance(r, SensitivityRow) for r in rows)

    def test_conclusion_robust_to_halving_and_doubling(self,
                                                       profile_set):
        """The headline conclusion — GPUSpatioTemporal overtakes the CPU
        within the Merger sweep — holds at baseline and under the
        majority of single-constant 2x perturbations."""
        rows = sensitivity_analysis(profile_set)
        # Baseline holds ...
        assert rows[0].crossover_d is not None
        # ... and a clear majority of the 13 grid points agree.
        survived = [r for r in rows if r.crossover_d is not None]
        assert len(survived) >= 8

    def test_perturbation_directions_are_sane(self, profile_set):
        """Cheaper GPU => crossover no later; cheaper CPU => no
        earlier."""
        rows = {(r.side, r.parameter, r.factor): r
                for r in sensitivity_analysis(profile_set)}
        base = rows[("baseline", "-", 1.0)].crossover_d
        inf = float("inf")

        def c(side, param, f):
            d = rows[(side, param, f)].crossover_d
            return inf if d is None else d

        assert c("gpu", "cycles_per_comparison", 0.5) <= (base or inf)
        assert c("gpu", "cycles_per_comparison", 2.0) >= (base or 0.0)
        assert c("cpu", "cycles_per_comparison", 2.0) <= (base or inf)
        assert c("cpu", "cycles_per_comparison", 0.5) >= (base or 0.0)

    def test_describe_renders(self, profile_set):
        rows = sensitivity_analysis(profile_set)
        text = rows[0].describe()
        assert "baseline" in text and "crossover" in text
