"""Tests for the R-tree baseline index (STR and Guttman builds)."""

import numpy as np
import pytest

from repro.core.geometry import segment_mbbs
from repro.core.types import SegmentArray
from repro.indexes.rtree import RTree, RTreeNode
from repro.indexes.rtree_insert import GuttmanBuilder
from tests.conftest import make_walk_trajectories


@pytest.fixture(scope="module", params=["guttman", "str"])
def tree(request, ):
    db = SegmentArray.from_trajectories(make_walk_trajectories(30, 20,
                                                               seed=42))
    return RTree.build(db, segments_per_mbb=4, fanout=8,
                       method=request.param, temporal_axis=True), db


def walk(node: RTreeNode):
    yield node
    for c in node.children:
        yield from walk(c)


class TestBuild:
    def test_rejects_bad_params(self, small_db):
        with pytest.raises(ValueError):
            RTree.build(small_db, segments_per_mbb=0)
        with pytest.raises(ValueError):
            RTree.build(small_db, fanout=1)
        with pytest.raises(ValueError):
            RTree.build(small_db, method="bogus")
        with pytest.raises(ValueError):
            RTree.build(SegmentArray.empty())

    def test_leaf_count(self, tree):
        t, db = tree
        # 30 trajectories of 19 segments at r=4: ceil(19/4)=5 chunks each.
        assert t.num_leaf_mbbs == 30 * 5

    def test_leaves_never_span_trajectories(self, tree):
        t, _ = tree
        seg = t.segments
        for node in walk(t.root):
            if node.is_leaf:
                for lo, hi in node.ranges:
                    tids = seg.traj_ids[lo:hi + 1]
                    assert np.all(tids == tids[0])
                    # and are time-ordered consecutive rows
                    assert np.all(np.diff(seg.ts[lo:hi + 1]) >= 0)

    def test_containment_invariant(self, tree):
        """Every child box is contained in its parent's recorded box."""
        t, _ = tree

        def check(node, lo=None, hi=None):
            if lo is not None:
                assert np.all(node.child_lo >= lo - 1e-9)
                assert np.all(node.child_hi <= hi + 1e-9)
            for i, c in enumerate(node.children):
                check(c, node.child_lo[i], node.child_hi[i])
        check(t.root)

    def test_leaf_boxes_bound_their_segments(self, tree):
        t, _ = tree
        boxes = segment_mbbs(t.segments, temporal=True)
        for node in walk(t.root):
            if not node.is_leaf:
                continue
            for col, (lo, hi) in enumerate(node.ranges):
                rows = np.arange(lo, hi + 1)
                assert np.all(boxes.lo[rows] >= node.child_lo[col] - 1e-9)
                assert np.all(boxes.hi[rows] <= node.child_hi[col] + 1e-9)

    def test_ranges_tile_database(self, tree):
        t, _ = tree
        rows = []
        for node in walk(t.root):
            if node.is_leaf:
                for lo, hi in node.ranges:
                    rows.append(np.arange(lo, hi + 1))
        rows = np.sort(np.concatenate(rows))
        np.testing.assert_array_equal(rows, np.arange(len(t.segments)))

    def test_fanout_respected(self, tree):
        t, _ = tree
        for node in walk(t.root):
            assert 1 <= node.num_children <= t.fanout

    def test_depth_and_nodes(self, tree):
        t, _ = tree
        assert t.depth() >= 2
        assert t.num_nodes == sum(1 for _ in walk(t.root))

    def test_3d_build_has_no_time_axis(self, small_db):
        t = RTree.build(small_db, temporal_axis=False)
        assert t.root.child_lo.shape[1] == 3


class TestGuttmanSpecifics:
    def test_min_fanout_guard(self):
        with pytest.raises(ValueError, match="at least 4"):
            GuttmanBuilder(fanout=3)

    def test_min_fill_after_splits(self, small_db):
        t = RTree.build(small_db, segments_per_mbb=2, fanout=8,
                        method="guttman")
        # All non-root nodes respect minimum fill M//2.
        for node in walk(t.root):
            for c in node.children:
                assert c.num_children >= 4 or c is t.root

    def test_insertion_order_independent_correctness(self, small_db,
                                                     small_queries):
        """Different orders give different trees but identical search
        results."""
        from repro.engines.cpu_rtree import CpuRTreeEngine
        res = []
        for method in ("guttman", "str"):
            eng = CpuRTreeEngine(small_db, build_method=method)
            r, _ = eng.search(small_queries, 2.5)
            res.append(r)
        assert res[0].equivalent_to(res[1])


class TestQueryCandidates:
    def test_candidates_complete(self, tree, small_queries):
        """Every true result pair's entry row appears among the query's
        candidates (index may over-approximate, never miss)."""
        t, db = tree
        d = 2.5
        from repro.core.bruteforce import brute_force_search
        truth = brute_force_search(small_queries, t.segments, d)
        cands, visits = t.query_candidates(small_queries, d)
        row_of_id = {int(s): r for r, s in enumerate(t.segments.seg_ids)}
        qrow_of_id = {int(s): r
                      for r, s in enumerate(small_queries.seg_ids)}
        for qid, eid in truth.pairs():
            assert row_of_id[eid] in cands[qrow_of_id[qid]]

    def test_visits_positive_and_bounded(self, tree, small_queries):
        t, _ = tree
        _, visits = t.query_candidates(small_queries, 1.0)
        assert np.all(visits >= 1)          # at least the root
        assert np.all(visits <= t.num_nodes)

    def test_candidates_grow_with_d(self, tree, small_queries):
        t, _ = tree
        sizes = []
        for d in (0.1, 2.0, 10.0):
            cands, _ = t.query_candidates(small_queries, d)
            sizes.append(sum(c.size for c in cands))
        assert sizes == sorted(sizes)

    def test_larger_r_fewer_nodes_more_candidates(self, small_db,
                                                  small_queries):
        """The paper's r trade-off (§V-B)."""
        small = RTree.build(small_db, segments_per_mbb=1, fanout=8)
        large = RTree.build(small_db, segments_per_mbb=16, fanout=8)
        assert large.num_nodes < small.num_nodes
        c_small, _ = small.query_candidates(small_queries, 1.0)
        c_large, _ = large.query_candidates(small_queries, 1.0)
        assert (sum(c.size for c in c_large)
                >= sum(c.size for c in c_small))

    def test_empty_query_set(self, tree):
        t, _ = tree
        cands, visits = t.query_candidates(SegmentArray.empty(), 1.0)
        assert cands == [] and visits.size == 0

    def test_nbytes(self, tree):
        t, _ = tree
        assert t.nbytes() > 0
