"""Tests for the kNN extension (future-work §VI)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.knn import (TrajectoryKnn, knn_brute_force,
                            pair_min_distance)
from repro.core.distance import compare_pairs
from repro.core.types import SegmentArray, Trajectory


def seg(traj_id, t0, t1, p0, p1):
    return Trajectory(traj_id, np.array([t0, t1], dtype=float),
                      np.array([p0, p1], dtype=float))


class TestPairMinDistance:
    def test_crossing_pair_min_zero(self):
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, [0, 0, 0], [10, 0, 0])])
        e = SegmentArray.from_trajectories(
            [seg(1, 0.0, 1.0, [10, 0, 0], [0, 0, 0])])
        ov, d = pair_min_distance(q, e, np.array([0]), np.array([0]))
        assert ov[0] and d[0] == pytest.approx(0.0, abs=1e-12)

    def test_constant_separation(self):
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, [0, 0, 0], [1, 0, 0])])
        e = SegmentArray.from_trajectories(
            [seg(1, 0.0, 1.0, [0, 2, 0], [1, 2, 0])])
        _, d = pair_min_distance(q, e, np.array([0]), np.array([0]))
        assert d[0] == pytest.approx(2.0)

    def test_min_at_window_edge(self):
        """Unconstrained minimum outside the overlap: clamped."""
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 0.3, [0, 0, 0], [0, 0, 0])])
        # Approaches origin, closest at t=0.5 — after the window ends.
        e = SegmentArray.from_trajectories(
            [seg(1, 0.0, 1.0, [10, 1, 0], [-10, 1, 0])])
        _, d = pair_min_distance(q, e, np.array([0]), np.array([0]))
        expect = float(np.hypot(10 - 20 * 0.3, 1.0))
        assert d[0] == pytest.approx(expect)

    def test_no_overlap_inf(self):
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, [0, 0, 0], [1, 0, 0])])
        e = SegmentArray.from_trajectories(
            [seg(1, 5.0, 6.0, [0, 0, 0], [1, 0, 0])])
        ov, d = pair_min_distance(q, e, np.array([0]), np.array([0]))
        assert not ov[0] and np.isinf(d[0])

    @given(st.integers(0, 30))
    @settings(max_examples=30, deadline=None)
    def test_consistent_with_interval_solver(self, s):
        """compare_pairs(d) hits exactly when d_min <= d."""
        rng = np.random.default_rng(s)
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, rng.uniform(-5, 5, 3),
                 rng.uniform(-5, 5, 3))])
        e = SegmentArray.from_trajectories(
            [seg(1, 0.3, 1.4, rng.uniform(-5, 5, 3),
                 rng.uniform(-5, 5, 3))])
        _, dmin = pair_min_distance(q, e, np.array([0]), np.array([0]))
        for margin in (-1e-6, 1e-6):
            res = compare_pairs(q, e, np.array([0]), np.array([0]),
                                float(dmin[0]) + margin)
            assert res.num_hits == (1 if margin > 0 else res.num_hits)
            if margin > 0:
                assert res.num_hits == 1
        tight = compare_pairs(q, e, np.array([0]), np.array([0]),
                              max(float(dmin[0]) - 1e-6, 0.0))
        if dmin[0] > 1e-6:
            assert tight.num_hits == 0


class TestKnnBruteForce:
    def test_hand_computed(self):
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, [0, 0, 0], [0, 0, 0])])
        entries = SegmentArray.from_trajectories([
            seg(1, 0.0, 1.0, [1, 0, 0], [1, 0, 0]),
            seg(2, 0.0, 1.0, [3, 0, 0], [3, 0, 0]),
            seg(3, 0.0, 1.0, [2, 0, 0], [2, 0, 0]),
            seg(4, 9.0, 10.0, [0, 0, 0], [0, 0, 0]),  # no overlap
        ])
        res = knn_brute_force(q, entries, 2)
        assert res.counts[0] == 2
        np.testing.assert_array_equal(res.neighbor_ids[0], [0, 2])
        np.testing.assert_allclose(res.distances[0], [1.0, 2.0])

    def test_fewer_than_k_available(self):
        q = SegmentArray.from_trajectories(
            [seg(0, 0.0, 1.0, [0, 0, 0], [0, 0, 0])])
        entries = SegmentArray.from_trajectories(
            [seg(1, 0.0, 1.0, [1, 0, 0], [1, 0, 0])])
        res = knn_brute_force(q, entries, 5)
        assert res.counts[0] == 1
        assert res.neighbor_ids[0, 1] == -1
        assert np.isinf(res.distances[0, 1])

    def test_invalid_k(self, small_db):
        with pytest.raises(ValueError):
            knn_brute_force(small_db, small_db, 0)

    def test_distances_sorted(self, small_db, small_queries):
        res = knn_brute_force(small_queries, small_db, 4)
        for i in range(len(res)):
            c = res.counts[i]
            d = res.distances[i, :c]
            assert np.all(np.diff(d) >= 0)


class TestTrajectoryKnn:
    @pytest.mark.parametrize("method,params", [
        ("gpu_temporal", {"num_bins": 40}),
        ("gpu_spatiotemporal", {"num_bins": 40, "num_subbins": 2,
                                "strict_subbins": False}),
        ("cpu_rtree", {}),
    ])
    def test_matches_brute_force(self, small_db, small_queries, method,
                                 params):
        knn = TrajectoryKnn(small_db, method=method, **params)
        got = knn.query(small_queries, 3)
        want = knn_brute_force(small_queries, small_db, 3)
        np.testing.assert_array_equal(got.counts, want.counts)
        # Distances must agree exactly; ids may differ only under ties.
        np.testing.assert_allclose(got.distances, want.distances,
                                   atol=1e-9)

    def test_exclude_same_trajectory(self, small_db):
        sub = small_db.take(np.arange(40))
        knn = TrajectoryKnn(small_db, method="gpu_temporal", num_bins=40)
        res = knn.query(sub, 2, exclude_same_trajectory=True)
        tid = {int(s): int(t) for s, t in zip(small_db.seg_ids,
                                              small_db.traj_ids)}
        for i in range(len(res)):
            for j in range(res.counts[i]):
                assert tid[int(res.neighbor_ids[i, j])] \
                    != int(sub.traj_ids[i])

    def test_small_initial_radius_still_exact(self, small_db,
                                              small_queries):
        """Deepening from a hopeless starting radius converges."""
        knn = TrajectoryKnn(small_db, method="gpu_temporal", num_bins=40)
        got = knn.query(small_queries, 2, initial_radius=1e-6)
        want = knn_brute_force(small_queries, small_db, 2)
        np.testing.assert_allclose(got.distances, want.distances,
                                   atol=1e-9)

    def test_initial_radius_positive(self, small_db):
        knn = TrajectoryKnn(small_db, method="gpu_temporal", num_bins=40)
        assert knn.initial_radius(1) > 0
        assert knn.initial_radius(8) > knn.initial_radius(1)

    def test_invalid_k(self, small_db, small_queries):
        knn = TrajectoryKnn(small_db, method="gpu_temporal", num_bins=40)
        with pytest.raises(ValueError):
            knn.query(small_queries, 0)
