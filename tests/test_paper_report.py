"""Tests for the consolidated report builder."""

from pathlib import Path


from repro.experiments.paper_report import (ARTIFACTS, build_report,
                                            write_report)


class TestReport:
    def test_report_includes_available_artifacts(self, tmp_path):
        (tmp_path / "fig4_random.txt").write_text("THE FIG4 TABLE")
        report = build_report(tmp_path)
        assert "THE FIG4 TABLE" in report
        assert "Figure 4" in report
        # Unavailable artifacts are flagged, not silently dropped.
        assert "not regenerated yet" in report
        assert "Missing artifacts:" in report

    def test_every_artifact_documented(self):
        names = {a.file for a in ARTIFACTS}
        # One entry per figure, per in-text table, per extension.
        assert {"fig4_random", "fig5_merger", "fig6_random_dense",
                "fig7_ratios"} <= names
        assert any(n.startswith("ablation_") for n in names)
        assert any(n.startswith("extension_") for n in names)
        # Paper claims are non-empty prose.
        assert all(len(a.paper_claim) > 20 for a in ARTIFACTS)

    def test_write_report(self, tmp_path):
        (tmp_path / "fig5_merger.txt").write_text("table")
        out = write_report(tmp_path)
        assert Path(out).exists()
        assert "Figure 5" in Path(out).read_text()

    def test_complete_report_has_no_missing_section(self, tmp_path):
        for art in ARTIFACTS:
            (tmp_path / f"{art.file}.txt").write_text("data")
        report = build_report(tmp_path)
        assert "Missing artifacts" not in report
