"""Versioned-database and live-ingestion tests.

The contract under test (see ``src/repro/ingest/``): appends and
tombstones are *performance* mechanisms — for any mutation sequence, a
search over a snapshot equals a search over a from-scratch database
built from ``Snapshot.logical()``, and a compaction never changes any
answer.  Plus the serving-layer guarantees: MVCC snapshot pinning,
base-fingerprint cache keys that survive ingestion, and cache prewarm
after compaction.
"""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_search
from repro.core.types import SegmentArray, Trajectory
from repro.engines.cpu_scan import CpuScanEngine
from repro.ingest import (CompactionPolicy, IngestError, Snapshot,
                          VersionedDatabase, overlay_search)
from repro.service import QueryService, SearchRequest
from tests.conftest import make_walk_trajectories

D = 2.5


def _db(num_traj=12, steps=10, seed=0, id_offset=0):
    trajs = make_walk_trajectories(num_traj, steps, seed=seed)
    if id_offset:
        trajs = [Trajectory(t.traj_id + id_offset, t.times, t.positions)
                 for t in trajs]
    return SegmentArray.from_trajectories(trajs)


@pytest.fixture()
def base():
    return _db()


@pytest.fixture()
def queries():
    return _db(num_traj=3, steps=8, seed=77, id_offset=9000)


class TestCompactionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompactionPolicy(max_delta_segments=0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_delta_ratio=0.0)
        with pytest.raises(ValueError):
            CompactionPolicy(max_tombstone_ratio=-1.0)

    def test_triggers(self):
        p = CompactionPolicy(max_delta_segments=10,
                             max_delta_ratio=0.5,
                             max_tombstone_ratio=0.5)
        assert not p.should_compact(delta_rows=4, base_rows=100,
                                    tombstoned_rows=0)
        assert p.should_compact(delta_rows=10, base_rows=100,
                                tombstoned_rows=0)
        assert p.should_compact(delta_rows=51, base_rows=100,
                                tombstoned_rows=0)
        assert p.should_compact(delta_rows=0, base_rows=100,
                                tombstoned_rows=51)


class TestVersionedDatabase:
    def test_rejects_empty_base(self):
        with pytest.raises(ValueError):
            VersionedDatabase(SegmentArray.empty())

    def test_append_assigns_fresh_seg_ids(self, base):
        vdb = VersionedDatabase(base)
        receipt = vdb.append(_db(num_traj=2, seed=5, id_offset=100))
        assert min(receipt.seg_ids) > int(base.seg_ids.max())
        assert receipt.epoch == 1 and receipt.delta_epoch == 1
        assert len(set(receipt.seg_ids)) == receipt.num_segments
        snap = vdb.snapshot()
        all_ids = np.concatenate([snap.base.seg_ids,
                                  snap.delta.seg_ids])
        assert len(np.unique(all_ids)) == len(all_ids)

    def test_append_accepts_trajectory_and_list(self, base):
        vdb = VersionedDatabase(base)
        trajs = make_walk_trajectories(2, 6, seed=9)
        shifted = [Trajectory(t.traj_id + 500, t.times, t.positions)
                   for t in trajs]
        r1 = vdb.append(shifted[0])
        r2 = vdb.append([shifted[1]])
        assert r1.num_segments == r2.num_segments == 5

    def test_append_rejects_garbage_and_empty(self, base):
        vdb = VersionedDatabase(base)
        with pytest.raises(TypeError):
            vdb.append("not segments")
        with pytest.raises(IngestError):
            vdb.append(SegmentArray.empty())

    def test_delete_unknown_raises(self, base):
        vdb = VersionedDatabase(base)
        with pytest.raises(IngestError, match="not in the database"):
            vdb.delete_trajectory(424242)

    def test_delete_is_idempotent(self, base):
        vdb = VersionedDatabase(base)
        hidden = vdb.delete_trajectory(0)
        assert hidden > 0
        assert vdb.delete_trajectory(0) == 0
        assert vdb.num_tombstones == 1

    def test_delete_refuses_to_empty_db(self):
        vdb = VersionedDatabase(_db(num_traj=1))
        with pytest.raises(IngestError, match="non-empty"):
            vdb.delete_trajectory(0)

    def test_append_to_tombstoned_id_rejected(self, base):
        vdb = VersionedDatabase(base)
        vdb.delete_trajectory(3)
        with pytest.raises(IngestError, match="tombstoned"):
            vdb.append(_db(num_traj=5, seed=1).take(
                np.flatnonzero(_db(num_traj=5, seed=1).traj_ids == 3)))
        # After compaction the id is physically gone and reusable.
        vdb.compact()
        arrival = _db(num_traj=5, seed=1)
        rows = arrival.take(np.flatnonzero(arrival.traj_ids == 3))
        receipt = vdb.append(rows)
        assert receipt.num_segments == len(rows)

    def test_epoch_bookkeeping(self, base):
        vdb = VersionedDatabase(base)
        assert (vdb.epoch, vdb.delta_epoch, vdb.base_version) == (0, 0, 0)
        vdb.append(_db(num_traj=1, seed=2, id_offset=200))
        vdb.delete_trajectory(1)
        assert (vdb.epoch, vdb.delta_epoch) == (2, 2)
        result = vdb.compact()
        assert (vdb.epoch, vdb.delta_epoch, vdb.base_version) == (3, 0, 1)
        assert result.base_version == 1
        assert result.dropped_segments > 0

    def test_snapshot_is_immutable_under_writes(self, base, queries):
        """MVCC: a pinned snapshot answers from its version even after
        later appends, deletes, and compactions."""
        vdb = VersionedDatabase(base)
        pinned = vdb.snapshot()
        expected = brute_force_search(queries, pinned.logical(), D)
        vdb.append(_db(num_traj=4, seed=3, id_offset=300))
        vdb.delete_trajectory(0)
        vdb.compact()
        assert pinned.epoch == 0
        got = CpuScanEngine(pinned.logical()).search(queries, D)[0]
        assert got.equivalent_to(expected)

    def test_compaction_preserves_logical_database(self, base):
        vdb = VersionedDatabase(base)
        vdb.append(_db(num_traj=3, seed=4, id_offset=400))
        vdb.delete_trajectory(2)
        before = vdb.snapshot().logical()
        vdb.compact()
        after = vdb.snapshot()
        assert after.clean
        assert after.logical() == before
        assert vdb.base == before

    def test_stats_roundtrip(self, base):
        import json
        vdb = VersionedDatabase(base)
        vdb.append(_db(num_traj=1, seed=6, id_offset=600))
        payload = json.loads(json.dumps(vdb.stats()))
        assert payload["appends"] == 1
        assert payload["delta_rows"] > 0


class TestSnapshotOverlay:
    def test_clean_snapshot_passes_through(self, base, queries):
        snap = VersionedDatabase(base).snapshot()
        outcome_in = _scan_outcome(base, queries)
        outcome, profile = overlay_search(outcome_in, snap, queries, D)
        assert outcome is outcome_in and profile is None

    def test_overlay_equals_from_scratch(self, base, queries):
        vdb = VersionedDatabase(base)
        vdb.append(_db(num_traj=4, seed=8, id_offset=800))
        vdb.delete_trajectory(5)
        snap = vdb.snapshot()
        outcome, profile = overlay_search(
            _scan_outcome(snap.base, queries), snap, queries, D)
        truth = brute_force_search(queries, snap.logical(), D)
        assert outcome.results.equivalent_to(truth)
        assert profile is not None
        # The delta scan's host cost is charged to the outcome.
        assert outcome.modeled.total \
            > _scan_outcome(snap.base, queries).modeled.total

    def test_tombstone_only_overlay(self, base, queries):
        vdb = VersionedDatabase(base)
        vdb.delete_trajectory(4)
        snap = vdb.snapshot()
        outcome, profile = overlay_search(
            _scan_outcome(snap.base, queries), snap, queries, D)
        assert profile is None  # no delta rows to scan
        truth = brute_force_search(queries, snap.logical(), D)
        assert outcome.results.equivalent_to(truth)


def _scan_outcome(db, queries):
    from repro.core.search import SearchOutcome
    from repro.gpu.costmodel import CpuCostModel
    engine = CpuScanEngine(db)
    results, profile = engine.search(queries, D)
    return SearchOutcome(results=results, profile=profile,
                         modeled=profile.modeled_time(CpuCostModel()))


class TestServiceIngestion:
    def test_ingest_visible_and_exact(self, base, queries):
        svc = QueryService(base)
        svc.ingest(_db(num_traj=3, seed=10, id_offset=1000))
        resp = svc.submit(SearchRequest(queries=queries, d=D,
                                        method="gpu_temporal",
                                        params={"num_bins": 16}))
        assert resp.ok
        truth = brute_force_search(
            queries, svc.current_snapshot().logical(), D)
        assert resp.outcome.results.equivalent_to(truth)
        assert resp.metrics.delta_segments > 0
        assert resp.metrics.delta_scan_s > 0.0
        assert resp.metrics.snapshot_epoch == 1

    def test_base_engine_cache_hits_across_epochs(self, base, queries):
        """The acceptance criterion: a warm base engine is *reused*
        across ingests — the cache key is rooted at the base
        fingerprint, which appends do not change."""
        svc = QueryService(base, auto_compact=False)
        req = dict(queries=queries, d=D, method="gpu_temporal",
                   params={"num_bins": 16})
        assert not svc.submit(SearchRequest(**req)).metrics.cache_hit
        epochs = set()
        for i in range(3):
            svc.ingest(_db(num_traj=1, seed=20 + i,
                           id_offset=2000 + 10 * i))
            resp = svc.submit(SearchRequest(**req))
            assert resp.metrics.cache_hit, f"ingest {i} evicted the base"
            epochs.add(resp.metrics.snapshot_epoch)
        assert len(epochs) == 3
        assert svc.cache.stats.invalidations == 0

    def test_pinned_snapshot_serves_old_version(self, base, queries):
        svc = QueryService(base, auto_compact=False)
        pinned = svc.current_snapshot()
        truth_old = brute_force_search(queries, pinned.logical(), D)
        svc.ingest(_db(num_traj=3, seed=30, id_offset=3000))
        old = svc.submit(SearchRequest(queries=queries, d=D,
                                       method="cpu_scan"),
                         snapshot=pinned)
        new = svc.submit(SearchRequest(queries=queries, d=D,
                                       method="cpu_scan"))
        assert old.outcome.results.equivalent_to(truth_old)
        assert len(new.outcome.results) >= len(old.outcome.results)

    def test_delete_hides_results(self, base):
        svc = QueryService(base)
        # Query with the database itself: every segment matches itself
        # at distance 0, so the result set is guaranteed non-empty and
        # tombstoning any trajectory must shrink it.
        before = svc.submit(SearchRequest(queries=base, d=D,
                                          method="cpu_scan"))
        assert len(before.outcome.results) > 0
        hidden = svc.delete_trajectory(0)
        assert hidden > 0
        after = svc.submit(SearchRequest(queries=base, d=D,
                                         method="cpu_scan"))
        truth = brute_force_search(
            base, svc.current_snapshot().logical(), D)
        assert after.outcome.results.equivalent_to(truth)
        assert len(after.outcome.results) < len(before.outcome.results)

    def test_auto_compaction_and_prewarm(self, base, queries):
        svc = QueryService(base, compaction=CompactionPolicy(
            max_delta_segments=10))
        req = SearchRequest(queries=queries, d=D,
                            method="gpu_temporal",
                            params={"num_bins": 16})
        svc.submit(req)  # warm the base engine
        receipt = svc.ingest(_db(num_traj=3, seed=50, id_offset=5000))
        assert receipt.compaction_due
        stats = svc.stats()["ingest"]
        assert stats["compactions"] == 1
        assert stats["delta_rows"] == 0
        # Prewarm rebuilt the warm engine over the new base: the next
        # request cache-hits even though the fingerprint changed.
        resp = svc.submit(req)
        assert resp.metrics.cache_hit
        truth = brute_force_search(
            queries, svc.current_snapshot().logical(), D)
        assert resp.outcome.results.equivalent_to(truth)
        # The stale base engine was invalidated, not leaked.
        assert svc.cache.stats.invalidations >= 1
        kinds = [e.kind for e in svc.telemetry.events]
        assert "compaction" in kinds and "ingest" in kinds

    def test_forced_compaction(self, base):
        svc = QueryService(base)
        svc.ingest(_db(num_traj=1, seed=60, id_offset=6000))
        result = svc.compact()
        assert result.base_version == 1
        assert svc.current_snapshot().clean

    def test_crosscheck_uses_snapshot_truth(self, base, queries):
        """Failover crosschecks compare against the pinned snapshot's
        logical database, so ingestion cannot fake a mismatch."""
        from repro.gpu.device import DeviceSpec
        tiny = DeviceSpec(name="tiny", num_cores=64, num_sms=2,
                          warp_size=32, clock_hz=1e9,
                          global_mem_bytes=2048,
                          pcie_bandwidth=6e9, pcie_latency_s=1e-5,
                          kernel_launch_s=1e-5)
        svc = QueryService(base, spec=tiny, crosscheck_every=1,
                           auto_compact=False)
        svc.ingest(_db(num_traj=2, seed=70, id_offset=7000))
        resp = svc.submit(SearchRequest(
            queries=queries, d=D, method="gpu_temporal",
            params={"num_bins": 16}))
        assert resp.ok and resp.metrics.degraded
        assert svc.stats()["crosschecks"] >= 1
        assert not svc.crosscheck_mismatches

    def test_ingest_counters_exported(self, base):
        svc = QueryService(base)
        svc.ingest(_db(num_traj=1, seed=80, id_offset=8000))
        snap = svc.telemetry.metrics.snapshot()
        assert "repro_ingest_total" in snap
        assert "repro_delta_segments" in snap


class TestKeepSegIds:
    """``append(..., keep_seg_ids=True)``: the sharded router stamps
    globally unique ids before routing, and each shard's database must
    keep them verbatim instead of restamping."""

    def test_kept_ids_survive_verbatim(self, base):
        fresh = _db(num_traj=1, steps=4, seed=5, id_offset=300)
        stamped = SegmentArray(
            fresh.xs, fresh.ys, fresh.zs, fresh.ts,
            fresh.xe, fresh.ye, fresh.ze, fresh.te,
            fresh.traj_ids,
            np.arange(10_000, 10_000 + len(fresh), dtype=np.int64))
        db = VersionedDatabase(base)
        db.append(stamped, keep_seg_ids=True)
        logical = db.snapshot().logical()
        kept = np.isin(logical.seg_ids, stamped.seg_ids)
        assert kept.sum() == len(stamped)

    def test_next_append_continues_past_kept_ids(self, base):
        fresh = _db(num_traj=1, steps=4, seed=5, id_offset=300)
        stamped = SegmentArray(
            fresh.xs, fresh.ys, fresh.zs, fresh.ts,
            fresh.xe, fresh.ye, fresh.ze, fresh.te,
            fresh.traj_ids,
            np.arange(10_000, 10_000 + len(fresh), dtype=np.int64))
        db = VersionedDatabase(base)
        db.append(stamped, keep_seg_ids=True)
        more = db.append(_db(num_traj=1, steps=4, seed=6,
                             id_offset=400))
        logical = db.snapshot().logical()
        assert logical.seg_ids.min() >= 0
        assert int(logical.seg_ids.max()) >= 10_000 + len(stamped)
        assert logical.seg_ids.size == np.unique(logical.seg_ids).size
        assert more  # receipt truthy

    def test_kept_ids_below_counter_rejected(self, base):
        """Ids colliding with (or below) already-issued ids would break
        uniqueness: refused up front."""
        fresh = _db(num_traj=1, steps=4, seed=5, id_offset=300)
        clash = SegmentArray(
            fresh.xs, fresh.ys, fresh.zs, fresh.ts,
            fresh.xe, fresh.ye, fresh.ze, fresh.te,
            fresh.traj_ids,
            np.arange(len(fresh), dtype=np.int64))  # 0..n-1: taken
        db = VersionedDatabase(base)
        with pytest.raises(IngestError):
            db.append(clash, keep_seg_ids=True)

    def test_duplicate_kept_ids_rejected(self, base):
        fresh = _db(num_traj=1, steps=4, seed=5, id_offset=300)
        dup = SegmentArray(
            fresh.xs, fresh.ys, fresh.zs, fresh.ts,
            fresh.xe, fresh.ye, fresh.ze, fresh.te,
            fresh.traj_ids,
            np.full(len(fresh), 10_000, dtype=np.int64))
        db = VersionedDatabase(base)
        with pytest.raises(IngestError):
            db.append(dup, keep_seg_ids=True)
