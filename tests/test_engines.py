"""Engine tests: exactness vs brute force, incremental processing,
overflow/redo, and per-engine behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bruteforce import brute_force_search
from repro.core.types import SegmentArray
from repro.engines import (CpuRTreeEngine, GpuSpatialEngine,
                           GpuSpatioTemporalEngine, GpuTemporalEngine)
from repro.engines.base import first_fit_accept
from tests.conftest import make_walk_trajectories

ENGINE_FACTORIES = {
    "gpu_temporal": lambda db, **kw: GpuTemporalEngine(
        db, num_bins=40, **kw),
    "gpu_spatial": lambda db, **kw: GpuSpatialEngine(
        db, cells_per_dim=8, **kw),
    "gpu_spatiotemporal": lambda db, **kw: GpuSpatioTemporalEngine(
        db, num_bins=40, num_subbins=2, strict_subbins=False, **kw),
    "cpu_rtree": lambda db, **kw: CpuRTreeEngine(db, **kw),
}


@pytest.fixture(scope="module", params=sorted(ENGINE_FACTORIES))
def engine_name(request):
    return request.param


class TestExactness:
    def test_matches_brute_force(self, engine_name, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        engine = ENGINE_FACTORIES[engine_name](db)
        res, _ = engine.search(queries, d)
        assert res.equivalent_to(truth), engine_name

    @pytest.mark.parametrize("d", [0.0, 0.1, 7.5, 100.0])
    def test_matches_across_distances(self, engine_name, small_db,
                                      small_queries, d):
        truth = brute_force_search(small_queries, small_db, d)
        engine = ENGINE_FACTORIES[engine_name](small_db)
        res, _ = engine.search(small_queries, d)
        assert res.equivalent_to(truth)

    def test_self_join_excluding_own_trajectory(self, engine_name,
                                                small_db):
        truth = brute_force_search(small_db, small_db, 1.0,
                                   exclude_same_trajectory=True)
        engine = ENGINE_FACTORIES[engine_name](small_db)
        res, _ = engine.search(small_db, 1.0,
                               exclude_same_trajectory=True)
        assert res.equivalent_to(truth)

    def test_empty_database_rejected(self, engine_name):
        with pytest.raises(ValueError):
            ENGINE_FACTORIES[engine_name](SegmentArray.empty())

    def test_repeated_searches_reuse_index(self, engine_name, small_db,
                                           small_queries):
        """A second search on the same engine gives identical results
        (counters reset cleanly between searches)."""
        engine = ENGINE_FACTORIES[engine_name](small_db)
        r1, p1 = engine.search(small_queries, 2.5)
        r2, p2 = engine.search(small_queries, 2.5)
        assert r1.equivalent_to(r2)
        if engine_name != "cpu_rtree":
            assert (p1.num_kernel_invocations
                    == p2.num_kernel_invocations)


class TestIncrementalProcessing:
    """Failure injection: tiny result buffers force the §V-D/§V-E
    incremental path; results must stay exact."""

    @pytest.mark.parametrize("name", ["gpu_temporal",
                                      "gpu_spatiotemporal",
                                      "gpu_spatial"])
    def test_tiny_result_buffer_still_exact(self, name,
                                            db_queries_truth):
        db, queries, d, truth = db_queries_truth
        engine = ENGINE_FACTORIES[name](db, result_buffer_items=23)
        res, prof = engine.search(queries, d)
        assert res.equivalent_to(truth)
        assert prof.num_kernel_invocations > 1
        assert prof.redo_queries > 0

    def test_impossible_buffer_raises(self, db_queries_truth):
        """A query whose own output exceeds the whole buffer is a
        configuration error, reported as such (retry disabled; with the
        default policy the engine grows the buffer instead — see
        test_overflow_retry.py)."""
        from repro.engines.base import NO_RETRY
        db, queries, d, truth = db_queries_truth
        per_query = np.bincount(truth.q_ids)
        if per_query.max() < 2:
            pytest.skip("no query with >1 result in this dataset")
        engine = GpuTemporalEngine(db, num_bins=40,
                                   result_buffer_items=1, retry=NO_RETRY)
        with pytest.raises(RuntimeError, match="result buffer too small"):
            engine.search(queries, d)

    def test_more_invocations_means_more_transfers(self,
                                                   db_queries_truth):
        db, queries, d, _ = db_queries_truth
        big = GpuTemporalEngine(db, num_bins=40,
                                result_buffer_items=10_000)
        small = GpuTemporalEngine(db, num_bins=40,
                                  result_buffer_items=29)
        _, p_big = big.search(queries, d)
        _, p_small = small.search(queries, d)
        assert p_small.num_kernel_invocations \
            > p_big.num_kernel_invocations
        assert p_small.num_transfers > p_big.num_transfers
        # Re-done comparisons: incremental processing wastes work.
        assert p_small.total_comparisons >= p_big.total_comparisons


class TestGpuSpatialOverflow:
    def test_candidate_overflow_triggers_redo(self, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        # ~9 slots per query in the first invocation: most overflow.
        engine = GpuSpatialEngine(db, cells_per_dim=8,
                                  candidate_buffer_items=9 * len(queries))
        res, prof = engine.search(queries, d)
        assert res.equivalent_to(truth)
        assert prof.num_kernel_invocations > 1
        assert prof.redo_queries > 0

    def test_single_query_candidate_overflow_raises(self, small_db,
                                                    small_queries):
        engine = GpuSpatialEngine(small_db, cells_per_dim=8,
                                  candidate_buffer_items=2)
        with pytest.raises(RuntimeError, match="candidate buffer"):
            engine.search(small_queries, 5.0)

    def test_invalid_buffer_rejected(self, small_db):
        with pytest.raises(ValueError):
            GpuSpatialEngine(small_db, candidate_buffer_items=0)

    def test_duplicate_candidates_filtered_on_host(self, small_db,
                                                   small_queries):
        """Raw GPU results may contain duplicates (ids occur once per
        overlapped cell); host output must not."""
        engine = GpuSpatialEngine(small_db, cells_per_dim=10)
        res, prof = engine.search(small_queries, 3.0)
        assert prof.raw_result_items >= len(res)
        assert len(res.deduplicated()) == len(res)


class TestGpuTemporalBehaviour:
    def test_comparisons_independent_of_d(self, small_db,
                                          small_queries):
        """The scheme's signature (§V-C): candidates depend on time, not
        on d."""
        engine = GpuTemporalEngine(small_db, num_bins=40,
                                   result_buffer_items=100_000)
        _, p1 = engine.search(small_queries, 0.01)
        _, p2 = engine.search(small_queries, 50.0)
        assert p1.total_comparisons == p2.total_comparisons

    def test_schedule_transferred(self, small_db, small_queries):
        engine = GpuTemporalEngine(small_db, num_bins=40)
        _, prof = engine.search(small_queries, 1.0)
        assert prof.schedule_items == len(small_queries)
        assert prof.h2d_bytes > 0 and prof.d2h_bytes >= 0


class TestGpuSpatioTemporalBehaviour:
    def test_fewer_comparisons_than_temporal(self, small_db,
                                             small_queries):
        """Spatial subbins must add selectivity over pure temporal."""
        t = GpuTemporalEngine(small_db, num_bins=40)
        st_ = GpuSpatioTemporalEngine(small_db, num_bins=40,
                                      num_subbins=2,
                                      strict_subbins=False)
        _, pt = t.search(small_queries, 0.5)
        _, pst = st_.search(small_queries, 0.5)
        assert pst.total_comparisons < pt.total_comparisons

    def test_v1_equals_temporal_candidates_plus_indirection(
            self, small_db, small_queries):
        """v=1: same candidate set as GPUTemporal, one extra indirection
        (the §V-C +12.4 % experiment)."""
        t = GpuTemporalEngine(small_db, num_bins=40)
        st1 = GpuSpatioTemporalEngine(small_db, num_bins=40,
                                      num_subbins=1)
        _, pt = t.search(small_queries, 2.0)
        _, pst = st1.search(small_queries, 2.0)
        assert pst.total_comparisons == pt.total_comparisons
        assert pst.total_gathers > 0 and pt.total_gathers == 0

    def test_defaulted_counted(self, small_db, small_queries):
        engine = GpuSpatioTemporalEngine(small_db, num_bins=40,
                                         num_subbins=2,
                                         strict_subbins=False)
        _, p_small = engine.search(small_queries, 0.1)
        _, p_big = engine.search(small_queries, 30.0)
        assert p_big.defaulted_queries >= p_small.defaulted_queries


class TestCpuRTree:
    def test_profile_counts(self, small_db, small_queries):
        engine = CpuRTreeEngine(small_db)
        res, prof = engine.search(small_queries, 2.0)
        assert prof.node_visits > 0
        assert prof.comparisons >= len(res)
        assert prof.result_items == len(res)

    def test_tune_segments_per_mbb(self, small_db, small_queries):
        from repro.engines.cpu_rtree import tune_segments_per_mbb
        best, times = tune_segments_per_mbb(small_db, small_queries, 2.0,
                                            r_values=(1, 4, 16))
        assert best in times
        assert times[best] == min(times.values())
        assert len(times) == 3


class TestFirstFitAccept:
    def test_all_fit(self):
        acc = first_fit_accept(np.array([3, 4, 2]), 100)
        assert acc.all()

    def test_prefix_fit(self):
        acc = first_fit_accept(np.array([3, 4, 2]), 7)
        assert list(acc) == [True, True, False]

    def test_zero_hit_threads_always_complete(self):
        acc = first_fit_accept(np.array([5, 0, 5, 0]), 4)
        assert list(acc) == [False, True, False, True]

    def test_exact_capacity(self):
        acc = first_fit_accept(np.array([2, 2]), 4)
        assert acc.all()


@given(seed=st.integers(0, 50), d=st.floats(0.1, 15.0))
@settings(max_examples=25, deadline=None)
def test_all_engines_agree_property(seed, d):
    """Randomized cross-engine agreement: all four engines and brute
    force produce identical result sets."""
    db = SegmentArray.from_trajectories(
        make_walk_trajectories(8, 8, seed=seed, box=10.0))
    queries = SegmentArray.from_trajectories(
        [t for t in make_walk_trajectories(3, 6, seed=seed + 1000,
                                           box=10.0)])
    truth = brute_force_search(queries, db, d)
    for name, factory in ENGINE_FACTORIES.items():
        res, _ = factory(db).search(queries, d)
        assert res.equivalent_to(truth), f"{name} diverged (seed={seed})"
