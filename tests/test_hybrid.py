"""Tests for the hybrid CPU+GPU engine (the paper's future-work §VI)."""

import numpy as np
import pytest

from repro.engines import CpuRTreeEngine, GpuTemporalEngine, HybridEngine
from repro.gpu.costmodel import CpuCostModel, GpuCostModel


@pytest.fixture()
def engines(small_db):
    return (GpuTemporalEngine(small_db, num_bins=40),
            CpuRTreeEngine(small_db))


class TestHybridEngine:
    @pytest.mark.parametrize("frac", [0.0, 0.3, 0.5, 1.0])
    def test_exact_at_any_split(self, engines, db_queries_truth, frac):
        db, queries, d, truth = db_queries_truth
        gpu, cpu = engines
        hybrid = HybridEngine(gpu, cpu, gpu_fraction=frac)
        res, prof = hybrid.search(queries, d)
        assert res.equivalent_to(truth)
        assert prof.gpu_profile.num_queries \
            + prof.cpu_profile.num_queries == len(queries)

    def test_split_sizes(self, engines, small_queries):
        gpu, cpu = engines
        hybrid = HybridEngine(gpu, cpu, gpu_fraction=0.25)
        g_idx, c_idx = hybrid._split(small_queries, 0.25)
        assert g_idx.size == round(0.25 * len(small_queries))
        assert g_idx.size + c_idx.size == len(small_queries)
        assert np.intersect1d(g_idx, c_idx).size == 0

    def test_invalid_fraction(self, engines):
        gpu, cpu = engines
        with pytest.raises(ValueError):
            HybridEngine(gpu, cpu, gpu_fraction=1.5)

    def test_modeled_time_is_max_of_sides(self, engines,
                                          db_queries_truth):
        db, queries, d, _ = db_queries_truth
        gpu, cpu = engines
        hybrid = HybridEngine(gpu, cpu, gpu_fraction=0.5)
        _, prof = hybrid.search(queries, d)
        gm, cm = GpuCostModel(), CpuCostModel()
        t = prof.modeled_time(gm, cm).total
        assert t == pytest.approx(max(
            prof.gpu_profile.modeled_time(gm).total,
            prof.cpu_profile.modeled_time(cm).total))

    def test_balanced_split_in_range(self, engines, db_queries_truth):
        db, queries, d, _ = db_queries_truth
        gpu, cpu = engines
        f = HybridEngine.balanced_split(gpu, cpu, queries, d)
        assert 0.0 <= f <= 1.0

    def test_balanced_split_beats_extreme_splits(self, engines,
                                                 db_queries_truth):
        """The equalizing split should not be worse than both extremes."""
        db, queries, d, _ = db_queries_truth
        gpu, cpu = engines
        gm, cm = GpuCostModel(), CpuCostModel()
        f = HybridEngine.balanced_split(gpu, cpu, queries, d,
                                        gpu_model=gm, cpu_model=cm)
        times = {}
        for frac in (0.0, f, 1.0):
            hybrid = HybridEngine(gpu, cpu, gpu_fraction=frac)
            _, prof = hybrid.search(queries, d)
            times[frac] = prof.modeled_time(gm, cm).total
        assert times[f] <= max(times[0.0], times[1.0]) + 1e-9
