"""The admission-controlled front door: tenants, rate limits,
priority queues, brownout, idempotent retries, the HTTP surface, and
the seeded overload campaign."""

import asyncio
import json

import pytest

from repro.core.types import SegmentArray
from repro.engines.cpu_scan import CpuScanEngine
from repro.faults.crashes import _result_bytes
from repro.gateway import (BROWNOUT_LEVELS, BrownoutLadder,
                           GATEWAY_STATUSES, Gateway,
                           GatewayHTTPServer, GatewayResponse,
                           OverloadConfig, SimClock, TenantConfig,
                           TenantRegistry, TokenBucket,
                           retry_with_backoff, run_overload_campaign)
from repro.service import QueryService, SearchRequest
from tests.conftest import make_walk_trajectories

D = 2.5


def _fresh_walk(seed, offset=500):
    trajs = make_walk_trajectories(1, 5, seed=seed)
    shifted = [t.__class__(t.traj_id + offset, t.times, t.positions)
               for t in trajs]
    return SegmentArray.from_trajectories(shifted)


def _tenants():
    return [
        TenantConfig("alpha", "key-alpha", rate=1000.0, burst=1000.0),
        TenantConfig("bravo", "key-bravo", rate=1000.0, burst=1000.0,
                     priority="batch"),
        TenantConfig("tight", "key-tight", rate=0.5, burst=1.0),
        TenantConfig("capped", "key-capped", rate=1000.0,
                     burst=1000.0, daily_quota=2),
    ]


def _gateway(db, **kw):
    service = QueryService(db, num_devices=2)
    kw.setdefault("queue_depth", 8)
    return Gateway(service, _tenants(), **kw)


def _request(queries, rid="g0", **kw):
    return SearchRequest(queries=queries, d=D, request_id=rid, **kw)


class TestTokenBucket:
    def test_spend_until_empty_then_hint(self):
        clock = SimClock()
        bucket = TokenBucket(2.0, 3.0, clock=clock.now)
        assert [bucket.try_acquire() for _ in range(3)] == [None] * 3
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2 tokens/s

    def test_refill_is_clocked(self):
        clock = SimClock()
        bucket = TokenBucket(2.0, 2.0, clock=clock.now)
        bucket.try_acquire(2.0)
        assert bucket.try_acquire() is not None
        clock.advance(0.5)  # exactly one token back
        assert bucket.try_acquire() is None
        assert bucket.tokens == pytest.approx(0.0)

    def test_burst_caps_the_refill(self):
        clock = SimClock()
        bucket = TokenBucket(10.0, 3.0, clock=clock.now)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 2.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5)


class TestTenantRegistry:
    def _registry(self, clock):
        return TenantRegistry(_tenants(), clock=clock.now)

    def test_unknown_key_is_unauthenticated(self):
        reg = self._registry(SimClock())
        tenant, verdict, hint = reg.admit("who-dis")
        assert tenant is None and verdict == "unauthenticated"
        assert hint is None

    def test_rate_limit_hints_the_next_token(self):
        clock = SimClock()
        reg = self._registry(clock)
        assert reg.admit("key-tight")[1] == "ok"  # burst of 1
        tenant, verdict, hint = reg.admit("key-tight")
        assert tenant.tenant_id == "tight"
        assert verdict == "rate_limited"
        assert hint == pytest.approx(2.0)  # 1 token at 0.5/s
        clock.advance(2.0)
        assert reg.admit("key-tight")[1] == "ok"

    def test_quota_checked_before_rate(self):
        clock = SimClock()
        reg = TenantRegistry(
            [TenantConfig("t", "k", rate=0.1, burst=1.0,
                          daily_quota=1)], clock=clock.now)
        assert reg.admit("k")[1] == "ok"
        # Both budgets are now empty; the refusal names the quota.
        _, verdict, hint = reg.admit("k")
        assert verdict == "quota_exceeded"
        assert hint is not None and hint > 0

    def test_quota_window_resets(self):
        from repro.gateway import QUOTA_WINDOW_S
        clock = SimClock()
        reg = self._registry(clock)
        for _ in range(2):
            assert reg.admit("key-capped")[1] == "ok"
        assert reg.admit("key-capped")[1] == "quota_exceeded"
        clock.advance(QUOTA_WINDOW_S)
        assert reg.admit("key-capped")[1] == "ok"

    def test_duplicate_api_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate api_key"):
            TenantRegistry([TenantConfig("a", "k"),
                            TenantConfig("b", "k")])

    def test_stats_count_admissions(self):
        clock = SimClock()
        reg = self._registry(clock)
        reg.admit("key-alpha")
        reg.admit("key-tight")
        reg.admit("key-tight")
        stats = reg.stats()
        assert stats["alpha"]["admitted"] == 1
        assert stats["tight"] == {
            "admitted": 1, "rejected": 1, "window_used": 0,
            "tokens": 0.0}


class TestBrownoutLadder:
    def test_escalation_and_effects(self):
        ladder = BrownoutLadder()
        assert ladder.update(0.4) == 0 and not ladder.sheds_batch
        assert ladder.update(0.6) == 1 and ladder.sheds_batch
        assert ladder.update(0.8) == 2 and ladder.degrades_engine
        assert ladder.update(1.0) == 3 and ladder.refuses_writes
        assert ladder.name == BROWNOUT_LEVELS[3]
        assert [(a, b) for a, b, _ in ladder.transitions] == \
            [(0, 1), (1, 2), (2, 3)]

    def test_jumps_straight_to_the_binding_level(self):
        ladder = BrownoutLadder()
        assert ladder.update(0.95) == 3
        assert ladder.transitions == [(0, 3, 0.95)]

    def test_hysteresis_blocks_flapping(self):
        ladder = BrownoutLadder()
        ladder.update(0.5)
        # Inside the hysteresis band: holds at 1.
        assert ladder.update(0.45) == 1
        # Clears threshold - hysteresis: drops.
        assert ladder.update(0.39) == 0

    def test_transitions_are_labeled_counters(self):
        ladder = BrownoutLadder()
        ladder.update(0.95)
        ladder.update(0.0)
        counter = ladder.telemetry.metrics.counter(
            "repro_gateway_brownout_transitions_total")
        assert counter.value(from_level="0", to_level="3") == 1
        assert counter.value(from_level="3", to_level="0") == 1
        assert ladder.telemetry.metrics.gauge(
            "repro_gateway_brownout_level").value() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutLadder(thresholds=(0.9, 0.5, 0.95))
        with pytest.raises(ValueError):
            BrownoutLadder(hysteresis=-0.1)


class TestGatewayResponse:
    def test_unknown_status_rejected(self):
        with pytest.raises(ValueError, match="unknown gateway status"):
            GatewayResponse(kind="search", request_id="r", tenant="t",
                            priority="interactive", status="teapot")

    def test_retryable_refusal_requires_a_hint(self):
        with pytest.raises(ValueError, match="retry_after_s"):
            GatewayResponse(kind="search", request_id="r", tenant="t",
                            priority="interactive",
                            status="overloaded")

    def test_properties_and_json(self):
        resp = GatewayResponse(kind="search", request_id="r",
                               tenant="t", priority="batch",
                               status="rate_limited", reason="slow",
                               retry_after_s=1.5)
        assert resp.rejected and resp.retryable and not resp.ok
        assert json.loads(json.dumps(resp.to_dict()))["status"] == \
            "rate_limited"
        assert set(GATEWAY_STATUSES) >= {"ok", "partial", "invalid"}


class TestGatewayAdmission:
    def test_search_answers_through_the_front_door(self, small_db,
                                                   small_queries):
        gw = _gateway(small_db)
        resp = asyncio.run(gw.search(
            "key-alpha", _request(small_queries, method="cpu_scan")))
        assert resp.ok and resp.status == "ok"
        assert resp.kind == "search" and resp.tenant == "alpha"
        assert resp.response is not None
        assert _result_bytes(resp.response.outcome.results) == \
            _result_bytes(CpuScanEngine(small_db)
                          .search(small_queries, D)[0])
        gw.backend.shutdown()

    def test_bad_key_and_bad_priority_are_typed(self, small_db,
                                                small_queries):
        gw = _gateway(small_db)
        resp = asyncio.run(gw.search("nope",
                                     _request(small_queries)))
        assert resp.status == "unauthenticated"
        resp = asyncio.run(gw.search("key-alpha",
                                     _request(small_queries),
                                     priority="urgent"))
        assert resp.status == "invalid"
        assert "unknown priority" in resp.reason
        gw.backend.shutdown()

    def test_flood_sheds_typed_never_silently(self, small_db,
                                              small_queries):
        """One burst past saturation: every arrival gets exactly one
        typed response; overflow is overloaded-with-hint."""
        gw = _gateway(small_db, queue_depth=3)

        async def storm():
            calls = [gw.search("key-alpha",
                               _request(small_queries, rid=f"i{j}",
                                        method="cpu_scan"))
                     for j in range(6)]
            calls.append(gw.search(
                "key-bravo", _request(small_queries, rid="b0",
                                      method="cpu_scan")))
            return await asyncio.gather(*calls)

        responses = asyncio.run(storm())
        by_status = {}
        for resp in responses:
            by_status.setdefault(resp.status, []).append(resp)
        # 3 queued and answered; 3 interactive shed on a full queue.
        assert len(by_status["ok"]) == 3
        assert len(by_status["overloaded"]) == 4
        for resp in by_status["overloaded"]:
            assert resp.retry_after_s is not None
        # The batch arrival saw a saturated queue -> brownout shed.
        batch = [r for r in responses if r.priority == "batch"]
        assert batch[0].status == "overloaded"
        assert "batch tier is shed" in batch[0].reason
        assert gw.brownout.transitions  # the storm moved the ladder
        gw.backend.shutdown()

    def test_infeasible_deadline_rejected_on_arrival(self, small_db,
                                                     small_queries):
        gw = _gateway(small_db)

        async def run():
            backlog = [gw.search("key-alpha",
                                 _request(small_queries, rid=f"q{j}",
                                          method="cpu_scan"))
                       for j in range(3)]
            doomed = gw.search("key-alpha",
                               _request(small_queries, rid="late",
                                        method="cpu_scan",
                                        deadline_s=1e-9))
            return await asyncio.gather(*backlog, doomed)

        *_, late = asyncio.run(run())
        assert late.status == "deadline_exceeded"
        assert "rejected on arrival" in late.reason
        gw.backend.shutdown()

    def test_deadline_expires_in_queue(self, small_db, small_queries):
        """A feasible-on-arrival budget that dies while queued is a
        typed answer at dequeue, not a dispatch."""
        clock = SimClock()
        service = QueryService(small_db, num_devices=2)

        class Ticking:
            def submit(self, request):
                clock.advance(0.01)
                return service.submit(request)

            def __getattr__(self, name):
                return getattr(service, name)

        gw = Gateway(Ticking(), _tenants(), queue_depth=8,
                     est_service_s=1e-9, clock=clock.now)

        async def run():
            first = gw.search("key-alpha",
                              _request(small_queries, rid="f",
                                       method="cpu_scan"))
            # Half a tick of budget: alive on arrival, dead after the
            # first dispatch advances the clock.
            second = gw.search("key-alpha",
                               _request(small_queries, rid="s",
                                        method="cpu_scan",
                                        deadline_s=0.005))
            return await asyncio.gather(first, second)

        first, second = asyncio.run(run())
        assert first.status == "ok"
        assert second.status == "deadline_exceeded"
        assert "never dispatched" in second.reason
        assert gw.telemetry.metrics.counter(
            "repro_gateway_expired_in_queue_total").total() == 1
        service.shutdown()

    def test_brownout_degrades_auto_to_exact_cpu_scan(self, small_db,
                                                      small_queries):
        gw = _gateway(small_db)
        gw._backend_pressure = lambda: 0.8  # force level 2
        resp = asyncio.run(gw.search(
            "key-alpha", _request(small_queries, method="auto")))
        assert resp.ok
        assert resp.response.metrics.engine == "cpu_scan"
        assert _result_bytes(resp.response.outcome.results) == \
            _result_bytes(CpuScanEngine(small_db)
                          .search(small_queries, D)[0])
        assert gw.telemetry.metrics.counter(
            "repro_gateway_brownout_degrades_total").total() == 1
        gw.backend.shutdown()

    def test_brownout_refuses_writes_reads_still_serve(self, small_db,
                                                       small_queries):
        gw = _gateway(small_db)
        gw._backend_pressure = lambda: 0.95  # force level 3
        denied = asyncio.run(gw.ingest("key-alpha", _fresh_walk(7)))
        assert denied.status == "writes_disabled"
        assert denied.retry_after_s is not None
        served = asyncio.run(gw.search(
            "key-alpha", _request(small_queries, method="cpu_scan")))
        assert served.ok
        gw.backend.shutdown()

    def test_keyed_ingest_applies_exactly_once(self, small_db):
        gw = _gateway(small_db)
        fresh = _fresh_walk(11)

        async def twice():
            one = await gw.ingest("key-alpha", fresh,
                                  idempotency_key="put-1")
            two = await gw.ingest("key-alpha", fresh,
                                  idempotency_key="put-1")
            return one, two

        one, two = asyncio.run(twice())
        assert one.status == "ok" and not one.receipt["deduplicated"]
        assert two.status == "ok" and two.receipt["deduplicated"]
        assert two.receipt["epoch"] == one.receipt["epoch"]
        assert gw.backend.versioned.epoch == one.receipt["epoch"]
        gw.backend.shutdown()

    def test_delete_and_invalid_mutation(self, small_db):
        gw = _gateway(small_db)
        resp = asyncio.run(gw.delete("key-alpha", 0))
        assert resp.status == "ok" and resp.receipt["hidden"] > 0
        resp = asyncio.run(gw.ingest("key-alpha",
                                     SegmentArray.empty()))
        assert resp.status == "invalid"
        gw.backend.shutdown()

    def test_metrics_merge_gateway_and_backend(self, small_db,
                                               small_queries):
        gw = _gateway(small_db)
        asyncio.run(gw.search("key-alpha",
                              _request(small_queries,
                                       method="cpu_scan")))
        text = gw.metrics_text()
        assert 'repro_gateway_requests_total' in text
        assert 'component="gateway"' in text
        assert 'component="service"' in text
        stats = gw.stats()
        assert stats["served"] == 1
        assert set(stats["queues"]) == {"interactive", "batch"}
        assert stats["tenants"]["alpha"]["admitted"] == 1
        gw.backend.shutdown()


class TestRetryWithBackoff:
    def _refusal(self, status, hint=1.0):
        return GatewayResponse(kind="ingest", request_id="r",
                               tenant="t", priority="interactive",
                               status=status, retry_after_s=hint)

    def _ok(self):
        return GatewayResponse(kind="ingest", request_id="r",
                               tenant="t", priority="interactive",
                               status="ok", receipt={})

    def test_retries_until_ok_honoring_the_hint(self):
        script = [self._refusal("overloaded", hint=2.0), self._ok()]
        slept = []
        outcome = retry_with_backoff(lambda: script.pop(0),
                                     sleep=slept.append)
        assert outcome.ok and outcome.attempts == 2
        assert outcome.backoffs[0] >= 2.0  # server hint is a floor
        assert slept == outcome.backoffs

    def test_non_retryable_stops_immediately(self):
        script = [GatewayResponse(kind="search", request_id="r",
                                  tenant="t", priority="interactive",
                                  status="invalid"), self._ok()]
        outcome = retry_with_backoff(lambda: script.pop(0))
        assert not outcome.ok and outcome.attempts == 1

    def test_attempt_budget_is_finite(self):
        outcome = retry_with_backoff(
            lambda: self._refusal("rate_limited", hint=0.01),
            max_attempts=3)
        assert not outcome.ok and outcome.attempts == 3
        assert len(outcome.backoffs) == 2
        with pytest.raises(ValueError):
            retry_with_backoff(self._ok, max_attempts=0)


async def _http(host, port, method, path, body=b"", headers=None):
    reader, writer = await asyncio.open_connection(host, port)
    head = [f"{method} {path} HTTP/1.1", f"host: {host}",
            f"content-length: {len(body)}", "connection: close"]
    head += [f"{k}: {v}" for k, v in (headers or {}).items()]
    writer.write(("\r\n".join(head) + "\r\n\r\n")
                 .encode("latin-1") + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head_raw, _, payload = raw.partition(b"\r\n\r\n")
    lines = head_raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    hdrs = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        hdrs[name.strip().lower()] = value.strip()
    return status, hdrs, payload


class TestHTTPSurface:
    def test_wire_round_trips(self, small_db, small_queries):
        gw = _gateway(small_db)
        query = json.dumps(
            _request(small_queries, method="cpu_scan").to_dict()
        ).encode()

        async def drive():
            async with GatewayHTTPServer(gw) as server:
                host, port = server.host, server.port
                out = {}
                out["search"] = await _http(
                    host, port, "POST", "/v1/search", query,
                    {"x-api-key": "key-alpha",
                     "content-type": "application/json"})
                out["bad_key"] = await _http(
                    host, port, "POST", "/v1/search", query,
                    {"x-api-key": "intruder"})
                # The tight tenant has a one-token burst: the second
                # call must carry Retry-After on a 429.
                await _http(host, port, "POST", "/v1/search", query,
                            {"x-api-key": "key-tight"})
                out["limited"] = await _http(
                    host, port, "POST", "/v1/search", query,
                    {"x-api-key": "key-tight"})
                out["metrics"] = await _http(host, port, "GET",
                                             "/metrics")
                out["stats"] = await _http(host, port, "GET",
                                           "/stats")
                out["lost"] = await _http(host, port, "GET",
                                          "/nowhere")
                out["verb"] = await _http(host, port, "GET",
                                          "/v1/search")
                out["garbled"] = await _http(
                    host, port, "POST", "/v1/search", b"{nope",
                    {"x-api-key": "key-alpha"})
                return out

        out = asyncio.run(drive())
        status, _, payload = out["search"]
        assert status == 200
        assert json.loads(payload)["status"] == "ok"
        assert out["bad_key"][0] == 401
        status, hdrs, payload = out["limited"]
        assert status == 429
        assert int(hdrs["retry-after"]) >= 1
        assert json.loads(payload)["status"] == "rate_limited"
        status, hdrs, payload = out["metrics"]
        assert status == 200
        assert hdrs["content-type"].startswith("text/plain")
        assert b"repro_gateway_requests_total" in payload
        assert json.loads(out["stats"][2])["served"] >= 1
        assert out["lost"][0] == 404
        assert out["verb"][0] == 405
        assert out["garbled"][0] == 400
        gw.backend.shutdown()


class TestOverloadCampaign:
    @pytest.fixture(scope="class")
    def report(self):
        return run_overload_campaign(OverloadConfig(seed=1))

    def test_campaign_stays_civilized(self, report):
        assert report.ok, report.render()
        assert not report.mismatches and not report.missing_hints
        assert report.verified == report.search_answered > 0

    def test_every_overload_regime_occurred(self, report):
        assert report.sheds >= 1 and report.queue_full >= 1
        assert report.expired_in_queue >= 1
        assert report.brownout_transitions >= 1
        assert report.outcomes["rate_limited"] >= 1
        assert report.outcomes["quota_exceeded"] >= 1
        assert report.outcomes["deadline_exceeded"] >= 1

    def test_exactly_once_held_across_the_crash(self, report):
        assert report.recoveries == 1
        assert report.dedups >= 1
        assert report.post_recovery_dedup

    def test_latency_covers_both_priorities(self, report):
        assert set(report.latency) == {"interactive", "batch"}
        for pct in report.latency.values():
            assert pct["count"] > 0
            assert 0 < pct["p50_ms"] <= pct["p99_ms"]

    def test_report_round_trips_and_renders(self, report):
        back = json.loads(json.dumps(report.to_dict()))
        assert back["ok"] is True
        assert back["answered"] == report.answered
        entry = json.loads(json.dumps(report.bench_entry()))
        assert set(entry) == {"seed", "requests", "answered",
                              "latency", "outcomes"}
        text = report.render()
        assert "civilized           yes" in text
        assert "post-recovery: yes" in text

    def test_config_validation(self):
        with pytest.raises(ValueError, match="saturate"):
            OverloadConfig(queue_depth=9, interactive_per_burst=9)
        with pytest.raises(ValueError, match="inside the campaign"):
            OverloadConfig(num_bursts=4, crash_at_burst=4)
