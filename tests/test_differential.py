"""Differential test harness: every engine against ``cpu_scan``.

One randomized database generator, five engines, one referee.  For each
seed the harness builds a database that deliberately includes the
adversarial edges real data smuggles in —

* zero-length segments (coincident endpoints in space *and* time),
* exactly-duplicated segments on different trajectories,
* a cluster of segments sharing one ``t_start`` (every row lands in a
  single temporal bin, exercising the ``B_end`` spill handling),
* queries fully outside the database's temporal extent, and
* ``d = 0`` (touching counts, proximity does not)

— and asserts **exact result equality** (same pairs, same intervals)
between every engine, the service path, and the ``cpu_scan`` referee,
which is itself anchored against the O(|Q|·|D|) brute force once per
seed.

A second sweep drives the ingestion path: after appends, deletes, and a
compaction, the serving stack's answers must be *byte-identical* (the
canonical arrays compare equal, not merely equivalent) to a from-scratch
service built over the snapshot's logical database.
"""

import numpy as np
import pytest

from repro.core.bruteforce import brute_force_search
from repro.core.types import SegmentArray
from repro.engines import (CpuRTreeEngine, CpuScanEngine,
                           GpuSpatialEngine, GpuSpatioTemporalEngine,
                           GpuTemporalEngine)
from repro.service import QueryService, SearchRequest

SEEDS = [0, 1, 2, 3, 4]

ENGINE_FACTORIES = {
    "gpu_temporal": lambda db: GpuTemporalEngine(db, num_bins=24),
    "gpu_spatiotemporal": lambda db: GpuSpatioTemporalEngine(
        db, num_bins=24, num_subbins=2, strict_subbins=False),
    "gpu_spatial": lambda db: GpuSpatialEngine(db, cells_per_dim=6),
    "cpu_rtree": lambda db: CpuRTreeEngine(db, segments_per_mbb=4),
    "cpu_scan": lambda db: CpuScanEngine(db),
}


def _make_db(seed: int, *, n_moving: int = 80) -> SegmentArray:
    """Randomized database salted with adversarial degeneracies."""
    rng = np.random.default_rng(seed)
    box, t_hi = 10.0, 10.0

    # Ordinary moving segments.
    xs = rng.uniform(0, box, n_moving)
    ys = rng.uniform(0, box, n_moving)
    zs = rng.uniform(0, box, n_moving)
    step = rng.normal(0, 1.0, (n_moving, 3))
    ts = rng.uniform(0, t_hi * 0.8, n_moving)
    dur = rng.uniform(0.1, 2.0, n_moving)

    # Zero-length segments: both endpoints coincide in space and time.
    n_pts = 10
    px = rng.uniform(0, box, n_pts)
    py = rng.uniform(0, box, n_pts)
    pz = rng.uniform(0, box, n_pts)
    pt = rng.uniform(0, t_hi, n_pts)

    # Exact duplicates of a few moving segments, on fresh trajectories:
    # distance 0 at every instant, so they must pair at d = 0.
    n_dup = 5
    dup = rng.integers(0, n_moving, n_dup)

    # A same-instant cluster: one shared t_start, tiny duration — all
    # of them land in a single temporal bin of any index.
    n_burst = 8
    bx = rng.uniform(0, box, n_burst)
    by = rng.uniform(0, box, n_burst)
    bz = rng.uniform(0, box, n_burst)

    def col(m, p, d_, b):
        return np.concatenate([m, p, d_, b])

    X = col(xs, px, xs[dup], bx)
    Y = col(ys, py, ys[dup], by)
    Z = col(zs, pz, zs[dup], bz)
    T = col(ts, pt, ts[dup], np.full(n_burst, t_hi / 2))
    XE = col(xs + step[:, 0], px, xs[dup] + step[dup, 0], bx + 0.5)
    YE = col(ys + step[:, 1], py, ys[dup] + step[dup, 1], by + 0.5)
    ZE = col(zs + step[:, 2], pz, zs[dup] + step[dup, 2], bz + 0.5)
    TE = col(ts + dur, pt, ts[dup] + dur[dup],
             np.full(n_burst, t_hi / 2 + 1e-6))
    n = len(X)
    # A handful of trajectories so exclude_same_trajectory has bite;
    # the duplicated block gets its own id range.
    traj = rng.integers(0, 12, n).astype(np.int64)
    traj[n_moving + n_pts:n_moving + n_pts + n_dup] = \
        100 + np.arange(n_dup)
    return SegmentArray(X, Y, Z, T, XE, YE, ZE, TE, traj)


def _make_queries(seed: int, db: SegmentArray) -> SegmentArray:
    """Queries overlapping the database, plus rows entirely outside
    its temporal extent (they must match nothing)."""
    rng = np.random.default_rng(seed + 500)
    n_in, n_out = 12, 4
    t_min, t_max = db.temporal_extent
    xs = rng.uniform(0, 10, n_in + n_out)
    ys = rng.uniform(0, 10, n_in + n_out)
    zs = rng.uniform(0, 10, n_in + n_out)
    ts = np.concatenate([
        rng.uniform(t_min, t_max, n_in),
        t_max + 5.0 + rng.uniform(0, 1, n_out),   # fully outside
    ])
    te = ts + rng.uniform(0.1, 1.5, n_in + n_out)
    return SegmentArray(xs, ys, zs, ts, xs + 0.5, ys - 0.25, zs + 0.5,
                        te, np.full(n_in + n_out, 7000, dtype=np.int64),
                        seg_ids=90_000 + np.arange(n_in + n_out))


@pytest.fixture(scope="module", params=SEEDS)
def workload(request):
    seed = request.param
    db = _make_db(seed)
    queries = _make_queries(seed, db)
    return seed, db, queries


@pytest.fixture(scope="module", params=sorted(ENGINE_FACTORIES))
def engine_name(request):
    return request.param


class TestEngineDifferential:
    def test_referee_matches_brute_force(self, workload):
        """Anchor the referee itself: cpu_scan == O(|Q|·|D|) loop."""
        _, db, queries = workload
        for d in (0.0, 1.0, 3.0):
            truth = brute_force_search(queries, db, d)
            got, _ = CpuScanEngine(db).search(queries, d)
            assert got.equivalent_to(truth), d

    @pytest.mark.parametrize("d", [0.0, 0.75, 2.5])
    def test_engine_equals_referee(self, engine_name, workload, d):
        _, db, queries = workload
        ref, _ = CpuScanEngine(db).search(queries, d)
        got, _ = ENGINE_FACTORIES[engine_name](db).search(queries, d)
        assert got.equivalent_to(ref), (engine_name, d)

    def test_self_join_with_exclusion(self, engine_name, workload):
        """The database queried against itself, own-trajectory pairs
        excluded — degenerate rows participate on both sides."""
        _, db, _ = workload
        ref, _ = CpuScanEngine(db).search(
            db, 1.0, exclude_same_trajectory=True)
        got, _ = ENGINE_FACTORIES[engine_name](db).search(
            db, 1.0, exclude_same_trajectory=True)
        assert got.equivalent_to(ref)

    def test_duplicates_pair_at_zero_distance(self, workload):
        """The planted exact-duplicate segments must find each other
        at d = 0 (they are distance 0 apart for their whole overlap)."""
        _, db, _ = workload
        res, _ = CpuScanEngine(db).search(
            db, 0.0, exclude_same_trajectory=True)
        assert len(res) > 0

    def test_out_of_extent_queries_match_nothing(self, engine_name,
                                                 workload):
        _, db, queries = workload
        _, t_max = db.temporal_extent
        outside = queries.take(np.flatnonzero(queries.ts > t_max))
        assert len(outside) > 0
        got, _ = ENGINE_FACTORIES[engine_name](db).search(outside, 5.0)
        assert len(got) == 0

    def test_service_path_equals_referee(self, engine_name, workload):
        """The full serving stack (cache, lanes, overlay plumbing) adds
        no result drift over the bare engine."""
        _, db, queries = workload
        svc = QueryService(db)
        resp = svc.submit(SearchRequest(
            queries=queries, d=2.5, method=engine_name,
            params=_service_params(engine_name)))
        assert resp.ok
        ref, _ = CpuScanEngine(db).search(queries, 2.5)
        assert resp.outcome.results.equivalent_to(ref)


def _service_params(engine_name: str) -> dict:
    return {
        "gpu_temporal": {"num_bins": 24},
        "gpu_spatiotemporal": {"num_bins": 24, "num_subbins": 2,
                               "strict_subbins": False},
        "gpu_spatial": {"cells_per_dim": 6},
        "cpu_rtree": {"segments_per_mbb": 4},
        "cpu_scan": {},
    }[engine_name]


def _byte_identical(a, b) -> bool:
    """Stronger than ``equivalent_to``: the canonical arrays compare
    exactly — same pairs, bitwise-equal intervals."""
    a, b = a.canonical(), b.canonical()
    return (np.array_equal(a.q_ids, b.q_ids)
            and np.array_equal(a.e_ids, b.e_ids)
            and np.array_equal(a.t_lo, b.t_lo)
            and np.array_equal(a.t_hi, b.t_hi))


class TestIngestDifferential:
    """Post-ingest and post-compaction answers vs from-scratch rebuild."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("method", ["gpu_temporal", "cpu_rtree"])
    def test_mutated_service_equals_rebuild(self, seed, method):
        rng = np.random.default_rng(seed + 900)
        db = _make_db(seed)
        queries = _make_queries(seed, db)
        # Split rows: first 60% seed the base, the rest arrive in two
        # appends; then one trajectory is tombstoned.
        cut = int(len(db) * 0.6)
        mid = (cut + len(db)) // 2
        svc = QueryService(db.take(np.arange(cut)), auto_compact=False)
        svc.ingest(db.take(np.arange(cut, mid)))
        svc.ingest(db.take(np.arange(mid, len(db))))
        victim = int(rng.choice(np.unique(db.traj_ids)))
        svc.delete_trajectory(victim)

        params = _service_params(method)
        req = SearchRequest(queries=queries, d=2.0, method=method,
                            params=params)
        post_ingest = svc.submit(req)
        assert post_ingest.ok
        assert post_ingest.metrics.delta_segments > 0

        scratch = QueryService(svc.current_snapshot().logical())
        from_scratch = scratch.submit(req)
        assert _byte_identical(post_ingest.outcome.results,
                               from_scratch.outcome.results), seed

        # Compaction changes the physical layout only: byte-identical
        # answers again, now from a clean snapshot.
        svc.compact()
        post_compaction = svc.submit(req)
        assert post_compaction.metrics.delta_segments == 0
        assert _byte_identical(post_compaction.outcome.results,
                               from_scratch.outcome.results), seed

    @pytest.mark.parametrize("seed", SEEDS)
    def test_versioned_logical_equals_manual_assembly(self, seed):
        """The snapshot's logical view is literally 'base rows minus
        tombstones, then live delta rows' — the invariant every
        differential assertion above leans on."""
        from repro.ingest import VersionedDatabase
        db = _make_db(seed)
        cut = int(len(db) * 0.7)
        vdb = VersionedDatabase(db.take(np.arange(cut)))
        vdb.append(db.take(np.arange(cut, len(db))))
        victim = int(np.unique(db.traj_ids)[0])
        vdb.delete_trajectory(victim)
        snap = vdb.snapshot()
        logical = snap.logical()
        assert not np.isin(victim, logical.traj_ids)
        assert len(logical) == snap.num_logical_segments
        # Compaction reproduces it exactly.
        vdb.compact()
        assert vdb.base == logical
