"""Moving-objects workload generator: determinism, churn, continuity."""

import numpy as np
import pytest

from repro.data.moving import (EpochDelta, FleetConfig,
                               MovingObjectsWorkload)

FIELDS = ("xs", "ys", "zs", "ts", "xe", "ye", "ze", "te",
          "traj_ids", "seg_ids")


def epoch_bytes(delta: EpochDelta) -> bytes:
    return b"".join(getattr(delta.segments, f).tobytes()
                    for f in FIELDS)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_same_seed_byte_identical_epochs(self, seed):
        a = MovingObjectsWorkload(seed=seed)
        b = MovingObjectsWorkload(seed=seed)
        for ea, eb in zip(a.epochs(12), b.epochs(12)):
            assert ea.arrivals == eb.arrivals
            assert ea.departures == eb.departures
            assert ea.active == eb.active
            assert epoch_bytes(ea) == epoch_bytes(eb)

    def test_different_seeds_diverge(self):
        a = MovingObjectsWorkload(seed=0)
        b = MovingObjectsWorkload(seed=1)
        streams = [epoch_bytes(d) for d in a.epochs(5)], \
                  [epoch_bytes(d) for d in b.epochs(5)]
        assert streams[0] != streams[1]

    def test_stream_is_stateful_not_repeating(self):
        w = MovingObjectsWorkload(seed=3)
        first, second = w.next_epoch(), w.next_epoch()
        assert epoch_bytes(first) != epoch_bytes(second)
        assert second.index == first.index + 1


class TestChurn:
    def test_arrival_rate_matches_config(self):
        cfg = FleetConfig(arrival_rate=0.25, departure_rate=0.0)
        w = MovingObjectsWorkload(config=cfg, seed=11)
        epochs = w.epochs(300)
        arrivals = sum(len(e.arrivals) for e in epochs)
        expected = cfg.num_fleets * cfg.arrival_rate * len(epochs)
        # Binomial(900, 0.25): 3 sigma is ~39 around 225.
        assert abs(arrivals - expected) < 4 * np.sqrt(
            expected * (1 - cfg.arrival_rate))

    def test_departure_rate_matches_config(self):
        cfg = FleetConfig(num_fleets=4, vehicles_per_fleet=10,
                          arrival_rate=0.5, departure_rate=0.1)
        w = MovingObjectsWorkload(config=cfg, seed=5)
        departures = trials = 0
        for e in w.epochs(200):
            trials += len(e.active) + len(e.departures)
            departures += len(e.departures)
        rate = departures / trials
        assert 0.05 < rate < 0.15

    def test_min_active_floor_is_respected(self):
        cfg = FleetConfig(num_fleets=1, vehicles_per_fleet=3,
                          arrival_rate=0.0, departure_rate=1.0)
        w = MovingObjectsWorkload(config=cfg, seed=0)
        for e in w.epochs(10):
            assert len(e.active) >= cfg.min_active

    def test_ids_never_reused(self):
        cfg = FleetConfig(arrival_rate=0.6, departure_rate=0.3)
        w = MovingObjectsWorkload(config=cfg, seed=9)
        seen_departed: set[int] = set()
        for e in w.epochs(60):
            emitted = set(np.unique(e.segments.traj_ids).tolist())
            assert not emitted & seen_departed, \
                "a departed vehicle emitted again"
            assert not set(e.arrivals) & seen_departed
            seen_departed.update(e.departures)


class TestContinuity:
    def test_chunks_concatenate_into_gap_free_trajectories(self):
        w = MovingObjectsWorkload(seed=2)
        last: dict[int, tuple[float, float, float, float]] = {}
        for e in w.epochs(8):
            s = e.segments
            for tid in np.unique(s.traj_ids).tolist():
                rows = np.flatnonzero(s.traj_ids == tid)
                ts, te = s.ts[rows], s.te[rows]
                order = np.argsort(ts)
                # contiguous within the epoch chunk...
                assert np.allclose(ts[order][1:], te[order][:-1])
                if tid in last:
                    # ...and with the previous epoch's endpoint.
                    pt, px, py, pz = last[tid]
                    j = rows[order[0]]
                    assert s.ts[j] == pt
                    assert (s.xs[j], s.ys[j], s.zs[j]) == (px, py, pz)
                k = rows[order[-1]]
                last[tid] = (float(s.te[k]), float(s.xe[k]),
                             float(s.ye[k]), float(s.ze[k]))

    def test_epoch_time_grid(self):
        cfg = FleetConfig(epoch_steps=3, dt=0.5, departure_rate=0.0,
                          arrival_rate=0.0)
        w = MovingObjectsWorkload(config=cfg, seed=0)
        for i, e in enumerate(w.epochs(4)):
            lo, hi = e.t_range
            assert lo == pytest.approx(i * cfg.epoch_steps * cfg.dt)
            assert hi == pytest.approx((i + 1) * cfg.epoch_steps
                                       * cfg.dt)


class TestConfigValidation:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FleetConfig(arrival_rate=1.5)
        with pytest.raises(ValueError):
            FleetConfig(departure_rate=-0.1)

    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetConfig(num_fleets=0)

    def test_rejects_low_min_active(self):
        with pytest.raises(ValueError):
            FleetConfig(min_active=1)
