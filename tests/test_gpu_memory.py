"""Tests for device memory management and OOM behaviour."""

import numpy as np
import pytest

from repro.gpu.memory import (DeviceArray, DeviceOutOfMemoryError,
                              MemoryManager)


class TestMemoryManager:
    def test_alloc_and_accounting(self):
        mem = MemoryManager(capacity_bytes=10_000)
        a = mem.alloc("a", 100, dtype=np.float64)
        assert isinstance(a, DeviceArray)
        assert a.nbytes == 800
        assert mem.allocated_bytes == 800
        assert mem.free_bytes == 9_200
        assert "a" in mem

    def test_put_copies(self):
        mem = MemoryManager(capacity_bytes=10_000)
        host = np.arange(10, dtype=np.float64)
        dev = mem.put("x", host)
        host[0] = 99.0
        assert dev.data[0] == 0.0  # device copy unaffected

    def test_oom_raises(self):
        mem = MemoryManager(capacity_bytes=1_000, device_name="test-gpu")
        mem.alloc("big", 100, dtype=np.float64)  # 800 bytes
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            mem.alloc("more", 100, dtype=np.float64)
        assert exc.value.requested == 800
        assert exc.value.free == 200
        assert "test-gpu" in str(exc.value)

    def test_free_releases(self):
        mem = MemoryManager(capacity_bytes=1_000)
        mem.alloc("a", 100, dtype=np.float64)
        mem.free("a")
        assert mem.allocated_bytes == 0
        mem.alloc("a", 120, dtype=np.float64)  # name reusable after free

    def test_duplicate_name_rejected(self):
        mem = MemoryManager(capacity_bytes=1_000)
        mem.alloc("a", 10, dtype=np.int32)
        with pytest.raises(ValueError, match="already exists"):
            mem.alloc("a", 10, dtype=np.int32)
        with pytest.raises(ValueError, match="already exists"):
            mem.put("a", np.zeros(1))

    def test_free_unknown_raises(self):
        mem = MemoryManager(capacity_bytes=1_000)
        with pytest.raises(KeyError):
            mem.free("ghost")

    def test_peak_tracking(self):
        mem = MemoryManager(capacity_bytes=10_000)
        mem.alloc("a", 500, dtype=np.float64)  # 4000
        mem.free("a")
        mem.alloc("b", 100, dtype=np.float64)  # 800
        assert mem.peak_bytes == 4_000

    def test_allocations_snapshot(self):
        mem = MemoryManager(capacity_bytes=10_000)
        mem.alloc("a", 10, dtype=np.float64)
        mem.alloc("b", (5, 2), dtype=np.int64)
        assert mem.allocations() == {"a": 80, "b": 80}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryManager(capacity_bytes=0)

    def test_get(self):
        mem = MemoryManager(capacity_bytes=1_000)
        a = mem.alloc("a", 3, dtype=np.float32)
        assert mem.get("a") is a
        assert len(a) == 3


class TestDatabaseFitsOnDevice:
    def test_full_scale_merger_fits_c2075(self):
        """The paper's headline claim that D + index fit in 6 GiB: the
        25.2M-segment Merger database is ~2 GiB as SoA float64 + ids."""
        from repro.gpu.device import TESLA_C2075
        full_merger_segments = 25_165_824
        db_bytes = 80 * full_merger_segments
        index_bytes = 4 * 8 * 1_000              # 1,000 temporal bins
        xyz_bytes = 3 * 4 * full_merger_segments  # X/Y/Z id arrays
        result_buffer = 32 * 50_000_000
        total = db_bytes + index_bytes + xyz_bytes + result_buffer
        assert total < TESLA_C2075.global_mem_bytes
