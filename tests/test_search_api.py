"""Tests for the DistanceThresholdSearch facade."""

import pytest

from repro.core.bruteforce import brute_force_search
from repro.core.search import DistanceThresholdSearch, SearchOutcome
from repro.engines import available


class TestFacade:
    def test_unknown_method(self, small_db):
        with pytest.raises(ValueError, match="unknown method"):
            DistanceThresholdSearch(small_db, method="quantum")

    @pytest.mark.parametrize("method", available())
    def test_all_methods_exact(self, method, db_queries_truth):
        db, queries, d, truth = db_queries_truth
        params = {}
        if method == "gpu_temporal":
            params = {"num_bins": 40}
        elif method == "gpu_spatiotemporal":
            params = {"num_bins": 40, "num_subbins": 2,
                      "strict_subbins": False}
        elif method == "gpu_spatial":
            params = {"cells_per_dim": 8}
        search = DistanceThresholdSearch(db, method=method, **params)
        outcome = search.run(queries, d)
        assert isinstance(outcome, SearchOutcome)
        assert outcome.results.equivalent_to(truth)
        assert outcome.modeled_seconds > 0
        assert outcome.modeled.total == outcome.modeled_seconds

    def test_engine_reused_across_runs(self, small_db, small_queries):
        search = DistanceThresholdSearch(small_db, method="gpu_temporal",
                                         num_bins=40)
        first_engine = search.engine
        search.run(small_queries, 1.0)
        search.run(small_queries, 2.0)
        assert search.engine is first_engine

    def test_default_method_is_spatiotemporal(self, small_db):
        search = DistanceThresholdSearch(small_db, num_bins=8,
                                         num_subbins=2,
                                         strict_subbins=False)
        assert search.method == "gpu_spatiotemporal"

    def test_exclude_same_trajectory_passthrough(self, small_db):
        search = DistanceThresholdSearch(small_db, method="cpu_rtree")
        with_self = search.run(small_db, 0.5)
        without = search.run(small_db, 0.5, exclude_same_trajectory=True)
        assert len(without.results) < len(with_self.results)
        truth = brute_force_search(small_db, small_db, 0.5,
                                   exclude_same_trajectory=True)
        assert without.results.equivalent_to(truth)

    def test_cpu_method_uses_cpu_model(self, small_db, small_queries):
        from repro.gpu.costmodel import CpuCostModel
        expensive = CpuCostModel(cycles_per_comparison=1e6)
        cheap = CpuCostModel(cycles_per_comparison=1.0)
        t_slow = DistanceThresholdSearch(
            small_db, method="cpu_rtree",
            cpu_model=expensive).run(small_queries, 1.0).modeled_seconds
        t_fast = DistanceThresholdSearch(
            small_db, method="cpu_rtree",
            cpu_model=cheap).run(small_queries, 1.0).modeled_seconds
        assert t_slow > t_fast
