"""Tests for the astrophysics application layer."""

import numpy as np
import pytest

from repro.astro import (HazardEpisode, Supernova, close_encounters,
                         supernova_exposure)
from repro.core.bruteforce import brute_force_search
from repro.core.types import SegmentArray, Trajectory


@pytest.fixture(scope="module")
def stars():
    """A tiny 'stellar neighbourhood': three stars on known paths."""
    mk = lambda tid, xs: Trajectory(
        tid, np.arange(len(xs), dtype=float),
        np.column_stack([xs, np.zeros(len(xs)), np.zeros(len(xs))]))
    return SegmentArray.from_trajectories([
        mk(0, [0.0, 0.0, 0.0, 0.0, 0.0]),     # stationary at origin
        mk(1, [10.0, 7.5, 5.0, 2.5, 0.5]),    # approaches star 0
        mk(2, [50.0, 50.0, 50.0, 50.0, 50.0]),  # far away
    ])


class TestSupernova:
    def test_event_trajectory(self):
        sn = Supernova(99, np.array([1.0, 2.0, 3.0]), 10.0, 2.5)
        traj = sn.as_trajectory()
        assert traj.traj_id == 99
        np.testing.assert_array_equal(traj.times, [10.0, 12.5])
        np.testing.assert_array_equal(traj.positions[0],
                                      traj.positions[1])

    def test_exposure_finds_nearby_star(self, stars):
        sn = [Supernova(100, np.array([0.0, 0.0, 0.0]), 0.0, 4.0)]
        episodes = supernova_exposure(stars, sn, 1.0,
                                      method="cpu_rtree")
        hit_stars = {e.star_id for e in episodes}
        assert 0 in hit_stars           # the star at the origin
        assert 2 not in hit_stars       # the far one
        for e in episodes:
            assert e.source_id == 100
            assert e.total_exposure > 0
            assert e.first_contact >= 0.0

    def test_exposure_respects_time_window(self, stars):
        """A supernova before the trajectories start hits nothing."""
        sn = [Supernova(100, np.zeros(3), -10.0, 5.0)]
        assert supernova_exposure(stars, sn, 1.0,
                                  method="cpu_rtree") == []

    def test_habitable_filter(self, stars):
        sn = [Supernova(100, np.zeros(3), 0.0, 4.0)]
        episodes = supernova_exposure(stars, sn, 100.0,
                                      habitable_star_ids=np.array([2]),
                                      method="cpu_rtree")
        assert {e.star_id for e in episodes} == {2}

    def test_no_supernovae(self, stars):
        assert supernova_exposure(stars, [], 1.0) == []


class TestCloseEncounters:
    def test_finds_the_flyby(self, stars):
        episodes = close_encounters(stars, 1.0, method="cpu_rtree")
        pairs = {(e.star_id, e.source_id) for e in episodes}
        assert (0, 1) in pairs and (1, 0) in pairs
        assert not any(e.star_id == e.source_id for e in episodes)

    def test_encounter_interval_matches_geometry(self, stars):
        episodes = close_encounters(stars, 1.0, method="cpu_rtree")
        ep = next(e for e in episodes
                  if e.star_id == 0 and e.source_id == 1)
        # Star 1 reaches x=1 at t = 3 + 1.5/2 = 3.75 (segment 2.5 -> 0.5).
        lo, hi = ep.intervals[0]
        assert lo == pytest.approx(3.75, abs=1e-9)
        assert hi == pytest.approx(4.0, abs=1e-9)

    def test_habitable_subset_queries_only(self, stars):
        episodes = close_encounters(stars, 1.0,
                                    habitable_star_ids=np.array([1]),
                                    method="cpu_rtree")
        assert all(e.star_id == 1 for e in episodes)
        assert close_encounters(
            stars, 1.0, habitable_star_ids=np.array([77]),
            method="cpu_rtree") == []

    def test_agrees_with_bruteforce_selfjoin(self, stars):
        episodes = close_encounters(stars, 2.0, method="cpu_rtree")
        truth = brute_force_search(stars, stars, 2.0,
                                   exclude_same_trajectory=True)
        tid = {int(s): int(t) for s, t in zip(stars.seg_ids,
                                              stars.traj_ids)}
        truth_pairs = {(tid[q], tid[e]) for q, e in truth.pairs()}
        assert {(e.star_id, e.source_id) for e in episodes} \
            == truth_pairs

    def test_engine_choice_irrelevant(self, stars):
        a = close_encounters(stars, 1.0, method="cpu_rtree")
        b = close_encounters(stars, 1.0, method="gpu_temporal",
                             num_bins=4)
        key = lambda eps: sorted((e.star_id, e.source_id,
                                  tuple(np.round(np.array(e.intervals),
                                                 9).ravel()))
                                 for e in eps)
        assert key(a) == key(b)


class TestHazardEpisode:
    def test_total_exposure_sums_intervals(self):
        e = HazardEpisode(1, 2, [(0.0, 1.5), (4.0, 4.5)])
        assert e.total_exposure == pytest.approx(2.0)
        assert e.first_contact == 0.0
