"""Tests for the flatly-structured grid (GPUSpatial's index)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.geometry import segment_mbbs
from repro.indexes.fsg import FlatGrid
from tests.conftest import make_walk_trajectories
from repro.core.types import SegmentArray


@pytest.fixture(scope="module")
def grid(request):
    db = SegmentArray.from_trajectories(make_walk_trajectories(30, 20,
                                                               seed=42))
    return FlatGrid.build(db, 8), db


class TestBuild:
    def test_rejects_bad_resolution(self, small_db):
        with pytest.raises(ValueError):
            FlatGrid.build(small_db, 0)
        with pytest.raises(ValueError):
            FlatGrid.build(small_db, (4, -1, 4))

    def test_rejects_empty_db(self):
        with pytest.raises(ValueError):
            FlatGrid.build(SegmentArray.empty(), 4)

    def test_anisotropic_resolution(self, small_db):
        g = FlatGrid.build(small_db, (4, 8, 2))
        assert g.dims == (4, 8, 2)

    def test_only_nonempty_cells_stored(self, grid):
        g, db = grid
        assert g.num_nonempty_cells <= np.prod(g.dims)
        assert g.num_nonempty_cells > 0
        # Cell ids are sorted and unique (binary-searchable G array).
        assert np.all(np.diff(g.cell_ids) > 0)

    def test_cell_ranges_partition_lookup(self, grid):
        g, _ = grid
        assert g.cell_start[0] == 0
        assert g.cell_end[-1] == len(g.lookup)
        np.testing.assert_array_equal(g.cell_start[1:], g.cell_end[:-1])
        assert np.all(g.cell_end > g.cell_start)  # non-empty by def.

    def test_rasterization_complete(self, grid):
        """Every segment id appears in every cell its MBB overlaps —
        Fig. 1/2's indexing invariant."""
        g, db = grid
        boxes = segment_mbbs(db)
        for i in range(0, len(db), 37):  # sample segments
            cells = g.cells_overlapping_box(boxes.lo[i], boxes.hi[i])
            found, start, end = g.probe(cells)
            ids = np.concatenate([g.lookup[s:e] for s, e in
                                  zip(start[found], end[found])]) \
                if np.any(found) else np.zeros(0)
            assert i in ids

    def test_ids_can_repeat_across_cells(self, grid):
        """An MBB overlapping k cells occurs k times in A (paper allows
        duplicates; the host dedups)."""
        g, db = grid
        counts = np.bincount(g.lookup, minlength=len(db))
        assert counts.max() >= 2   # some segment straddles a boundary
        assert counts.min() >= 1   # and none is lost


class TestCoordinates:
    def test_linearize_roundtrip(self, grid):
        g, _ = grid
        rng = np.random.default_rng(0)
        ix = rng.integers(0, g.dims[0], 50)
        iy = rng.integers(0, g.dims[1], 50)
        iz = rng.integers(0, g.dims[2], 50)
        h = g.linearize(ix, iy, iz)
        rx, ry, rz = g.delinearize(h)
        np.testing.assert_array_equal(rx, ix)
        np.testing.assert_array_equal(ry, iy)
        np.testing.assert_array_equal(rz, iz)

    def test_row_major_order(self, grid):
        g, _ = grid
        # Incrementing z changes h by 1; y by nz; x by ny*nz.
        h0 = g.linearize(np.array([1]), np.array([1]), np.array([1]))[0]
        assert g.linearize(np.array([1]), np.array([1]),
                           np.array([2]))[0] == h0 + 1
        assert g.linearize(np.array([1]), np.array([2]),
                           np.array([1]))[0] == h0 + g.dims[2]

    def test_cell_box_recomputed(self, grid):
        g, _ = grid
        lo, hi = g.cell_box(int(g.cell_ids[0]))
        np.testing.assert_allclose(hi - lo, g.cell_size)


class TestProbe:
    def test_probe_miss(self, grid):
        g, _ = grid
        all_cells = np.arange(int(np.prod(g.dims)), dtype=np.int64)
        empty_cells = np.setdiff1d(all_cells, g.cell_ids)
        if empty_cells.size:
            found, _, _ = g.probe(empty_cells[:10])
            assert not np.any(found)

    def test_probe_hit_ranges(self, grid):
        g, _ = grid
        found, start, end = g.probe(g.cell_ids)
        assert np.all(found)
        np.testing.assert_array_equal(start, g.cell_start)
        np.testing.assert_array_equal(end, g.cell_end)

    def test_query_box_outside_grid_clips(self, grid):
        g, _ = grid
        cells = g.cells_overlapping_box(np.array([-1e6] * 3),
                                        np.array([-1e5] * 3))
        # Clipped to the boundary cell: still a valid (possibly absent)
        # cell id, never an out-of-range index.
        assert np.all(cells >= 0)
        assert np.all(cells < np.prod(g.dims))

    def test_nbytes(self, grid):
        g, _ = grid
        assert g.nbytes() == (g.cell_ids.nbytes + g.cell_start.nbytes
                              + g.cell_end.nbytes + g.lookup.nbytes)


@given(st.integers(2, 12))
@settings(max_examples=20, deadline=None)
def test_resolution_preserves_coverage(res):
    """The rasterization invariant holds at any resolution."""
    db = SegmentArray.from_trajectories(make_walk_trajectories(8, 6,
                                                               seed=5))
    g = FlatGrid.build(db, res)
    counts = np.bincount(g.lookup, minlength=len(db))
    assert counts.min() >= 1  # every segment is somewhere in A
