"""Typed per-engine configuration: validation, nearest-key suggestions,
JSON round-trips, and façade integration."""

import pytest

from repro.core.search import DistanceThresholdSearch
from repro.engines import (ConfigError, CpuRTreeConfig, CpuRTreeEngine,
                           CpuScanConfig, GpuSpatialConfig,
                           GpuSpatioTemporalConfig, GpuTemporalConfig,
                           GpuTemporalEngine, config_for)

ALL_CONFIGS = [GpuTemporalConfig, GpuSpatioTemporalConfig,
               GpuSpatialConfig, CpuRTreeConfig, CpuScanConfig]


class TestValidation:
    def test_defaults_are_valid(self):
        for cls in ALL_CONFIGS:
            cfg = cls()
            assert cfg.engine in repr(type(cfg).__name__).lower() \
                or cfg.engine  # engine label set on every config

    def test_unknown_key_names_engine_and_suggests(self):
        with pytest.raises(ConfigError) as exc:
            GpuTemporalConfig.from_params(num_bin=40)
        msg = str(exc.value)
        assert "gpu_temporal" in msg
        assert "num_bin" in msg and "'num_bins'" in msg

    def test_unknown_key_without_close_match_lists_valid(self):
        with pytest.raises(ConfigError) as exc:
            CpuRTreeConfig.from_params(zzz=1)
        assert "valid:" in str(exc.value)

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "10"])
    def test_positive_int_fields_rejected(self, bad):
        with pytest.raises(ConfigError):
            GpuTemporalConfig(num_bins=bad)

    def test_rtree_enum_and_bounds(self):
        with pytest.raises(ConfigError):
            CpuRTreeConfig(build_method="bulk")
        with pytest.raises(ConfigError):
            CpuRTreeConfig(fanout=1)

    def test_spatial_cells_tuple_normalized(self):
        cfg = GpuSpatialConfig(cells_per_dim=[4, 5, 6])
        assert cfg.cells_per_dim == (4, 5, 6)
        with pytest.raises(ConfigError):
            GpuSpatialConfig(cells_per_dim=(4, 5))

    def test_config_for_dispatch(self):
        cfg = config_for("gpu_spatiotemporal", num_bins=7)
        assert isinstance(cfg, GpuSpatioTemporalConfig)
        assert cfg.num_bins == 7
        with pytest.raises(ConfigError):
            config_for("nope")


class TestSerialization:
    @pytest.mark.parametrize("cls", ALL_CONFIGS)
    def test_round_trip(self, cls):
        import json
        cfg = cls()
        back = cls.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back == cfg

    def test_spatial_tuple_survives_json(self):
        import json
        cfg = GpuSpatialConfig(cells_per_dim=(3, 4, 5))
        back = GpuSpatialConfig.from_dict(
            json.loads(json.dumps(cfg.to_dict())))
        assert back.cells_per_dim == (3, 4, 5)


class TestFacadeIntegration:
    def test_facade_rejects_unknown_param(self, small_db):
        with pytest.raises(ConfigError, match="did you mean"):
            DistanceThresholdSearch(small_db, method="gpu_temporal",
                                    num_bin=40)

    def test_facade_accepts_config_object(self, small_db, small_queries):
        cfg = GpuTemporalConfig(num_bins=40)
        search = DistanceThresholdSearch(small_db, method="gpu_temporal",
                                         config=cfg)
        outcome = search.run(small_queries, 2.0)
        assert len(outcome.results) >= 0
        assert search.engine.index.num_bins == 40

    def test_config_and_params_mutually_exclusive(self, small_db):
        with pytest.raises(ValueError, match="either"):
            DistanceThresholdSearch(
                small_db, method="gpu_temporal",
                config=GpuTemporalConfig(), num_bins=40)

    def test_config_type_mismatch_rejected(self, small_db):
        with pytest.raises(TypeError):
            GpuTemporalEngine.from_config(small_db, CpuRTreeConfig())

    def test_from_config_builds_equivalent_engine(self, small_db,
                                                  small_queries):
        direct = CpuRTreeEngine(small_db, segments_per_mbb=2)
        via_cfg = CpuRTreeEngine.from_config(
            small_db, CpuRTreeConfig(segments_per_mbb=2))
        r1, _ = direct.search(small_queries, 2.0)
        r2, _ = via_cfg.search(small_queries, 2.0)
        assert r1.equivalent_to(r2)
