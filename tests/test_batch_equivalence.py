"""Per-thread op-count equivalence: batch vs perthread execution.

The whole-batch vectorized execution path must be *observationally
indistinguishable* from the legacy one-logical-thread-at-a-time
reference: byte-identical result sets, and — for the GPU engines —
identical per-invocation :class:`~repro.gpu.kernel.KernelStats`
(``thread_work`` per thread, ``gather_work`` per thread, ``atomic_ops``
per grid), because the cost model, profiler, traces, and the chaos and
differential crosschecks are all computed from those counts.

Databases and query sets come from the differential harness's seeded
adversarial generator (zero-length segments, exact duplicates, one-bin
bursts, out-of-extent queries), which is where vectorization bugs hide.
"""

import numpy as np
import pytest

from repro.core.execmode import execution_mode
from tests.test_differential import (ENGINE_FACTORIES, _byte_identical,
                                     _make_db, _make_queries)

SEEDS = [0, 1, 2]
D_VALUES = [0.0, 0.7, 2.5]


def _run(engine_name, seed, d, mode, *, exclude=False):
    """Build a fresh engine and run one search under ``mode``.

    Returns ``(result, profile, kernel_stats)`` — ``kernel_stats`` is
    the per-invocation list for GPU engines, ``None`` for CPU engines.
    """
    db = _make_db(seed)
    queries = _make_queries(seed, db)
    with execution_mode(mode):
        engine = ENGINE_FACTORIES[engine_name](db)
        result, profile = engine.search(
            queries, d, exclude_same_trajectory=exclude)
        stats = list(getattr(engine, "gpu", None).kernel_stats) \
            if hasattr(engine, "gpu") else None
    return result, profile, stats


def _assert_profiles_equal(a, b):
    da, db_ = a.to_dict(), b.to_dict()
    da.pop("wall_seconds"), db_.pop("wall_seconds")
    assert da == db_


def _assert_stats_equal(batch, perthread):
    assert len(batch) == len(perthread), "invocation counts differ"
    for i, (sb, sp) in enumerate(zip(batch, perthread)):
        assert sb.name == sp.name, f"invocation {i}: kernel name"
        assert sb.num_threads == sp.num_threads, \
            f"invocation {i}: grid size"
        assert np.array_equal(sb.thread_work, sp.thread_work), \
            f"invocation {i}: thread_work"
        assert np.array_equal(sb.gather_work, sp.gather_work), \
            f"invocation {i}: gather_work"
        assert sb.atomic_ops == sp.atomic_ops, \
            f"invocation {i}: atomic_ops"


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("d", D_VALUES)
def test_batch_equals_perthread(engine_name, seed, d):
    rb, pb, sb = _run(engine_name, seed, d, "batch")
    rp, pp, sp = _run(engine_name, seed, d, "perthread")
    assert _byte_identical(rb, rp)
    _assert_profiles_equal(pb, pp)
    if sb is not None:
        _assert_stats_equal(sb, sp)


@pytest.mark.parametrize("engine_name", sorted(ENGINE_FACTORIES))
def test_batch_equals_perthread_self_join_exclusion(engine_name):
    """The exclude-same-trajectory flag flows through both paths."""
    rb, pb, sb = _run(engine_name, 3, 1.2, "batch", exclude=True)
    rp, pp, sp = _run(engine_name, 3, 1.2, "perthread", exclude=True)
    assert _byte_identical(rb, rp)
    _assert_profiles_equal(pb, pp)
    if sb is not None:
        _assert_stats_equal(sb, sp)


@pytest.mark.parametrize("engine_name",
                         ["gpu_temporal", "gpu_spatiotemporal"])
def test_redo_invocations_equivalent(engine_name):
    """Force result-buffer pressure so the redo (re-invocation) path of
    the batch execution is exercised against the reference."""
    from repro.engines import (GpuSpatioTemporalEngine, GpuTemporalEngine,
                               NO_RETRY)

    def build(db):
        if engine_name == "gpu_temporal":
            return GpuTemporalEngine(db, num_bins=24,
                                     result_buffer_items=32,
                                     retry=NO_RETRY)
        return GpuSpatioTemporalEngine(db, num_bins=24, num_subbins=2,
                                       strict_subbins=False,
                                       result_buffer_items=32,
                                       retry=NO_RETRY)

    db = _make_db(1)
    queries = _make_queries(1, db)
    runs = {}
    for mode in ("batch", "perthread"):
        with execution_mode(mode):
            engine = build(db)
            result, profile = engine.search(queries, 8.0)
            runs[mode] = (result, profile,
                          list(engine.gpu.kernel_stats))
    assert runs["batch"][1].num_kernel_invocations > 1, \
        "workload failed to overflow the result buffer"
    assert _byte_identical(runs["batch"][0], runs["perthread"][0])
    _assert_profiles_equal(runs["batch"][1], runs["perthread"][1])
    _assert_stats_equal(runs["batch"][2], runs["perthread"][2])
