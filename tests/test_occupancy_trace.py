"""Tests for the occupancy calculator and the trace exporter."""

import json

import pytest

from repro.gpu.costmodel import GpuCostModel
from repro.gpu.occupancy import (FermiLimits, LaunchConfig,
                                 best_block_size, occupancy, utilization)
from repro.gpu.trace import profile_to_trace, write_trace


class TestOccupancy:
    def test_full_occupancy_at_modest_resources(self):
        cfg = occupancy(100_000, 192, registers_per_thread=20)
        # 1536/192 = 8 blocks also equals the block limit: 48 warps.
        assert cfg.occupancy == pytest.approx(1.0)
        assert cfg.resident_blocks_per_sm == 8

    def test_register_pressure_limits(self):
        light = occupancy(10_000, 256, registers_per_thread=16)
        heavy = occupancy(10_000, 256, registers_per_thread=63)
        assert heavy.occupancy < light.occupancy
        assert heavy.limiting_factor == "registers"

    def test_shared_memory_limits(self):
        cfg = occupancy(10_000, 128, shared_mem_per_block=24 * 1024,
                        registers_per_thread=16)
        assert cfg.limiting_factor == "smem"
        assert cfg.resident_blocks_per_sm == 2

    def test_block_count(self):
        cfg = occupancy(1000, 256)
        assert cfg.num_blocks == 4
        assert cfg.total_threads == 1024
        assert occupancy(0, 256).num_blocks == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            occupancy(10, 100)            # not a warp multiple
        with pytest.raises(ValueError):
            occupancy(10, 2048)           # above block limit
        with pytest.raises(ValueError):
            occupancy(-1, 256)

    def test_utilization_tail(self):
        """Tiny grids underutilize; big grids saturate — the |Q| effect
        behind the paper's 'moderately large' requirement."""
        small = utilization(64)
        large = utilization(1_000_000)
        assert small < 0.5
        assert large == pytest.approx(1.0)
        assert utilization(0) == 0.0

    def test_best_block_size_maximizes_occupancy(self):
        best = best_block_size(100_000, registers_per_thread=21)
        others = [occupancy(100_000, bs, registers_per_thread=21)
                  for bs in (64, 128, 192, 256, 384, 512)]
        assert best.occupancy == pytest.approx(
            max(o.occupancy for o in others))

    def test_custom_limits(self):
        tight = FermiLimits(max_threads_per_sm=256, max_blocks_per_sm=2,
                            max_warps_per_sm=8, registers_per_sm=8192,
                            shared_mem_per_sm=16384,
                            max_threads_per_block=256)
        cfg = occupancy(1000, 128, limits=tight,
                        registers_per_thread=8)
        assert cfg.resident_blocks_per_sm == 2
        assert isinstance(cfg, LaunchConfig)


class TestTrace:
    @pytest.fixture()
    def profile(self, small_db, small_queries):
        from repro.engines import GpuTemporalEngine
        engine = GpuTemporalEngine(small_db, num_bins=20,
                                   result_buffer_items=40)
        _, prof = engine.search(small_queries, 2.5)
        return prof

    def test_events_structure(self, profile):
        events = profile_to_trace(profile)
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert any("gpu_temporal" in n for n in names)
        assert any("upload" in n for n in names)
        assert any("drain" in n for n in names)
        # One kernel slice per invocation.
        kernels = [n for n in names if n.startswith("gpu_temporal #")]
        assert len(kernels) == profile.num_kernel_invocations

    def test_timeline_is_ordered_and_positive(self, profile):
        events = [e for e in profile_to_trace(profile) if e["ph"] == "X"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in events)

    def test_durations_sum_to_modeled_total(self, profile):
        model = GpuCostModel()
        events = [e for e in profile_to_trace(profile, model)
                  if e["ph"] == "X"]
        total_us = sum(e["dur"] for e in events)
        modeled = profile.modeled_time(model).total
        assert total_us / 1e6 == pytest.approx(modeled, rel=0.01)

    def test_redo_roundtrips_are_explicit(self, profile):
        """Every re-invocation gets its own redo-upload/kernel/drain
        triple, sized from that invocation's KernelStats."""
        assert profile.num_kernel_invocations == 2  # buffer overflowed
        events = [e for e in profile_to_trace(profile)
                  if e["ph"] == "X"]
        redos = [e for e in events
                 if e["name"].startswith("redo upload #")]
        assert len(redos) == profile.num_kernel_invocations - 1
        # The redo upload carries one 8-byte id per redo thread.
        redo_threads = profile.kernel_stats[1].num_threads
        assert redos[0]["args"]["redo_queries"] == redo_threads
        assert redos[0]["args"]["h2d_bytes"] == 8 * redo_threads
        drains = [e for e in events
                  if e["name"].startswith("drain results #")]
        assert len(drains) == profile.num_kernel_invocations
        # Drain bytes split in proportion to each invocation's atomic
        # appends, conserving the profile total.
        assert sum(e["args"]["d2h_bytes"] for e in drains) \
            == pytest.approx(profile.d2h_bytes, abs=len(drains))

    def test_defaulted_queries_counter_event(self, profile):
        counters = [e for e in profile_to_trace(profile)
                    if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "defaulted_queries"
        assert counters[0]["args"]["queries"] \
            == profile.defaulted_queries

    def test_write_trace_file(self, profile, tmp_path):
        path = write_trace(profile, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert len(payload["traceEvents"]) > 3
