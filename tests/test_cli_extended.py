"""Tests for the extended CLI commands (plan/stats/report/verify/trace)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli2") / "db.npz"
    assert main(["generate", "random-dense", "--scale", "0.002",
                 "--out", str(path)]) == 0
    return str(path)


class TestPlan:
    def test_plan_ranks_engines(self, db_path, capsys):
        assert main(["plan", db_path, "--d", "0.05",
                     "--num-bins", "100",
                     "--query-trajectories", "3"]) == 0
        out = capsys.readouterr().out
        assert "engine ranking" in out
        for eng in ("gpu_temporal", "gpu_spatiotemporal", "cpu_rtree",
                    "gpu_spatial"):
            assert eng in out


class TestStats:
    def test_stats_reports_all_indexes(self, db_path, capsys):
        assert main(["stats", db_path, "--num-bins", "50",
                     "--num-subbins", "2", "--cells-per-dim", "8"]) == 0
        out = capsys.readouterr().out
        for token in ("FsgStats", "TemporalStats",
                      "SpatioTemporalStats", "RTreeStats"):
            assert token in out


class TestVerifyAndTrace:
    def test_search_with_verify(self, db_path, capsys):
        assert main(["search", db_path, "--d", "0.05",
                     "--method", "gpu_temporal", "--num-bins", "50",
                     "--query-trajectories", "2", "--verify"]) == 0
        assert "verification: PASS" in capsys.readouterr().out

    def test_search_with_trace(self, db_path, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["search", db_path, "--d", "0.05",
                     "--method", "gpu_temporal", "--num-bins", "50",
                     "--query-trajectories", "2",
                     "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_trace_skipped_for_cpu_engine(self, db_path, tmp_path,
                                          capsys):
        trace = tmp_path / "trace.json"
        assert main(["search", db_path, "--d", "0.05",
                     "--method", "cpu_rtree",
                     "--query-trajectories", "2",
                     "--trace", str(trace)]) == 0
        assert "skipped" in capsys.readouterr().out
        assert not trace.exists()


class TestReport:
    def test_report_command(self, tmp_path, capsys):
        (tmp_path / "fig4_random.txt").write_text("table")
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "REPORT.md" in out
        assert (tmp_path / "REPORT.md").exists()
