"""Tests for the extended CLI commands (plan/stats/report/verify/trace
plus the telemetry exports: metrics, trace)."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli2") / "db.npz"
    assert main(["generate", "random-dense", "--scale", "0.002",
                 "--out", str(path)]) == 0
    return str(path)


class TestPlan:
    def test_plan_ranks_engines(self, db_path, capsys):
        assert main(["plan", db_path, "--d", "0.05",
                     "--num-bins", "100",
                     "--query-trajectories", "3"]) == 0
        out = capsys.readouterr().out
        assert "engine ranking" in out
        for eng in ("gpu_temporal", "gpu_spatiotemporal", "cpu_rtree",
                    "gpu_spatial"):
            assert eng in out


class TestStats:
    def test_stats_reports_all_indexes(self, db_path, capsys):
        assert main(["stats", db_path, "--num-bins", "50",
                     "--num-subbins", "2", "--cells-per-dim", "8"]) == 0
        out = capsys.readouterr().out
        for token in ("FsgStats", "TemporalStats",
                      "SpatioTemporalStats", "RTreeStats"):
            assert token in out


class TestVerifyAndTrace:
    def test_search_with_verify(self, db_path, capsys):
        assert main(["search", db_path, "--d", "0.05",
                     "--method", "gpu_temporal", "--num-bins", "50",
                     "--query-trajectories", "2", "--verify"]) == 0
        assert "verification: PASS" in capsys.readouterr().out

    def test_search_with_trace(self, db_path, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["search", db_path, "--d", "0.05",
                     "--method", "gpu_temporal", "--num-bins", "50",
                     "--query-trajectories", "2",
                     "--trace", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_trace_skipped_for_cpu_engine(self, db_path, tmp_path,
                                          capsys):
        trace = tmp_path / "trace.json"
        assert main(["search", db_path, "--d", "0.05",
                     "--method", "cpu_rtree",
                     "--query-trajectories", "2",
                     "--trace", str(trace)]) == 0
        assert "skipped" in capsys.readouterr().out
        assert not trace.exists()


class TestTelemetryCommands:
    def test_metrics_prometheus(self, db_path, capsys):
        assert main(["metrics", db_path, "--d", "0.05",
                     "--batches", "2", "--method", "gpu_temporal",
                     "--num-bins", "50"]) == 0
        out = capsys.readouterr().out
        assert "repro_request_latency_seconds_bucket" in out
        assert "repro_cache_hits_total" in out
        assert "repro_cache_misses_total" in out

    def test_metrics_json_to_file(self, db_path, tmp_path, capsys):
        out_path = tmp_path / "metrics.json"
        assert main(["metrics", db_path, "--d", "0.05",
                     "--batches", "1", "--format", "json",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["repro_requests_total"]["type"] == "counter"

    def test_metrics_requires_d(self, db_path, capsys):
        assert main(["metrics", db_path]) == 2
        assert "--d is required" in capsys.readouterr().err

    def test_trace_writes_all_artifacts(self, db_path, tmp_path,
                                        capsys):
        trace = tmp_path / "trace.json"
        spans = tmp_path / "spans.json"
        events = tmp_path / "events.jsonl"
        assert main(["trace", db_path, "--d", "0.05",
                     "--batches", "2", "--num-devices", "2",
                     "--method", "gpu_temporal", "--num-bins", "50",
                     "--out", str(trace), "--spans", str(spans),
                     "--events", str(events),
                     "--slow-ms", "0.0001"]) == 0
        payload = json.loads(trace.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])
        roots = json.loads(spans.read_text())
        assert roots[0]["name"] == "service.batch"
        assert any(json.loads(line)["kind"] == "request"
                   for line in events.read_text().splitlines())
        assert "slow queries" in capsys.readouterr().out


class TestReport:
    def test_report_command(self, tmp_path, capsys):
        (tmp_path / "fig4_random.txt").write_text("table")
        assert main(["report", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "REPORT.md" in out
        assert (tmp_path / "REPORT.md").exists()
