"""Metrics registry: counters, gauges, and histograms with labels.

The registry is the single numeric store behind
:meth:`repro.service.QueryService.stats`, the ``metrics`` CLI
subcommand, and the tests — one set of counters that every layer
(service, engines, kernel model) increments through the ambient
:class:`~repro.obs.telemetry.Telemetry`.

Two export formats:

* :meth:`MetricsRegistry.to_prometheus_text` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / sample lines), so a
  scraper or a human can read one snapshot;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.restore` —
  a JSON-friendly dict that round-trips, so snapshots can be archived
  next to experiment artifacts and diffed across runs.

Instruments are created lazily through ``counter()`` / ``gauge()`` /
``histogram()`` (get-or-create semantics): call sites never need to
know whether the instrument exists yet, and a disabled registry turns
every mutation into a no-op while keeping the same API.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS"]

#: Fixed exponential latency buckets (seconds): 1 µs · 4^i, twelve
#: decades from a microsecond to ~4 s, plus the implicit +Inf bucket.
#: Wide enough for both modeled GPU kernels (µs) and degraded CPU
#: scans (s).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * 4.0 ** i for i in range(12))


def _label_key(labels: dict) -> tuple:
    """Deterministic hashable view of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


@dataclass
class _Instrument:
    """Shared shape of every metric: name, help text, label sets."""

    name: str
    help: str
    enabled: bool = True

    def _check(self) -> bool:
        return self.enabled


@dataclass
class Counter(_Instrument):
    """Monotonically increasing count, one series per label set."""

    values: dict = field(default_factory=dict)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._check():
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self.values.values())


@dataclass
class Gauge(_Instrument):
    """Point-in-time value that can go up and down."""

    values: dict = field(default_factory=dict)

    def set(self, value: float, **labels) -> None:
        if not self._check():
            return
        self.values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels) -> None:
        if not self._check():
            return
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self.values.get(_label_key(labels), 0.0)


@dataclass
class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics).

    ``buckets`` are upper bounds in increasing order; the +Inf bucket
    is implicit.  Per label set the histogram keeps bucket counts, the
    running sum, and the observation count.
    """

    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    #: label key -> {"counts": [per-bucket cumulative-exclusive counts
    #: as raw per-bucket tallies], "sum": float, "count": int}
    series: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.buckets = tuple(float(b) for b in self.buckets)
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be increasing")

    def observe(self, value: float, **labels) -> None:
        if not self._check():
            return
        key = _label_key(labels)
        ser = self.series.get(key)
        if ser is None:
            ser = {"counts": [0] * (len(self.buckets) + 1),
                   "sum": 0.0, "count": 0}
            self.series[key] = ser
        # First bucket whose upper bound holds the value (+Inf last).
        idx = len(self.buckets)
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                idx = i
                break
        ser["counts"][idx] += 1
        ser["sum"] += float(value)
        ser["count"] += 1

    def count(self, **labels) -> int:
        ser = self.series.get(_label_key(labels))
        return ser["count"] if ser else 0

    def sum(self, **labels) -> float:
        ser = self.series.get(_label_key(labels))
        return ser["sum"] if ser else 0.0

    def cumulative_counts(self, key: tuple = ()) -> list[int]:
        """Per-bucket cumulative counts (``le`` semantics), +Inf last."""
        ser = self.series.get(key)
        if ser is None:
            return [0] * (len(self.buckets) + 1)
        out, running = [], 0
        for c in ser["counts"]:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Named collection of instruments with export to text and JSON."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, _Instrument] = {}

    # -- get-or-create -----------------------------------------------------------

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(name, Gauge, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        if not self.enabled:
            return Histogram(name=name, help=help_text, enabled=False,
                             buckets=buckets)
        inst = self._instruments.get(name)
        if inst is None:
            inst = Histogram(name=name, help=help_text,
                             enabled=self.enabled, buckets=buckets)
            self._instruments[name] = inst
        elif not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(inst).__name__}")
        return inst

    def _get(self, name: str, cls, help_text: str):
        if not self.enabled:
            # Hand out an unstored no-op: the registry stays empty, so
            # exposition and snapshots of a disabled hub are empty too.
            return cls(name=name, help=help_text, enabled=False)
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name=name, help=help_text, enabled=self.enabled)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(inst).__name__}")
        return inst

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    # -- aggregation --------------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry",
                   **extra_labels) -> None:
        """Fold another registry's series into this one, adding
        ``extra_labels`` to every series.

        The sharded router uses this to aggregate its per-replica
        service registries into one view where every series carries
        ``shard=``/``replica=`` labels.  Counters and histogram series
        accumulate; gauges overwrite (last write wins — aggregate
        repeatedly in a stable order).
        """
        if not self.enabled:
            return
        extra = _label_key(extra_labels)
        for name, inst in other._instruments.items():
            if isinstance(inst, Histogram):
                mine = self.histogram(name, inst.help,
                                      buckets=inst.buckets)
                for key, ser in inst.series.items():
                    merged_key = tuple(sorted((*key, *extra)))
                    dst = mine.series.get(merged_key)
                    if dst is None:
                        mine.series[merged_key] = {
                            "counts": list(ser["counts"]),
                            "sum": ser["sum"], "count": ser["count"]}
                    else:
                        dst["counts"] = [a + b for a, b in
                                         zip(dst["counts"],
                                             ser["counts"])]
                        dst["sum"] += ser["sum"]
                        dst["count"] += ser["count"]
            elif isinstance(inst, Counter):
                mine = self.counter(name, inst.help)
                for key, value in inst.values.items():
                    merged_key = tuple(sorted((*key, *extra)))
                    mine.values[merged_key] = \
                        mine.values.get(merged_key, 0.0) + value
            else:
                mine = self.gauge(name, inst.help)
                for key, value in inst.values.items():
                    mine.values[tuple(sorted((*key, *extra)))] = value

    # -- exposition --------------------------------------------------------------

    def to_prometheus_text(self) -> str:
        """Render every instrument in the Prometheus text format."""
        lines: list[str] = []
        for name in self.names():
            inst = self._instruments[name]
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            if isinstance(inst, Counter):
                lines.append(f"# TYPE {name} counter")
                for key in sorted(inst.values):
                    lines.append(f"{name}{_format_labels(key)} "
                                 f"{_num(inst.values[key])}")
            elif isinstance(inst, Gauge):
                lines.append(f"# TYPE {name} gauge")
                for key in sorted(inst.values):
                    lines.append(f"{name}{_format_labels(key)} "
                                 f"{_num(inst.values[key])}")
            elif isinstance(inst, Histogram):
                lines.append(f"# TYPE {name} histogram")
                for key in sorted(inst.series):
                    cum = inst.cumulative_counts(key)
                    bounds = [*inst.buckets, math.inf]
                    for ub, c in zip(bounds, cum):
                        le = "+Inf" if math.isinf(ub) else _num(ub)
                        labels = _format_labels(
                            (*key, ("le", le)))
                        lines.append(f"{name}_bucket{labels} {c}")
                    ser = inst.series[key]
                    lines.append(f"{name}_sum{_format_labels(key)} "
                                 f"{_num(ser['sum'])}")
                    lines.append(f"{name}_count{_format_labels(key)} "
                                 f"{ser['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- JSON round-trip ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument and series."""
        out: dict = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Histogram):
                out[name] = {
                    "type": "histogram",
                    "help": inst.help,
                    "buckets": list(inst.buckets),
                    "series": [
                        {"labels": [list(kv) for kv in key],
                         "counts": list(ser["counts"]),
                         "sum": ser["sum"], "count": ser["count"]}
                        for key, ser in sorted(inst.series.items())
                    ],
                }
            else:
                kind = ("counter" if isinstance(inst, Counter)
                        else "gauge")
                out[name] = {
                    "type": kind,
                    "help": inst.help,
                    "series": [
                        {"labels": [list(kv) for kv in key],
                         "value": value}
                        for key, value in sorted(inst.values.items())
                    ],
                }
        return out

    @classmethod
    def restore(cls, payload: dict) -> "MetricsRegistry":
        """Inverse of :meth:`snapshot`."""
        reg = cls()
        for name, spec in payload.items():
            kind = spec["type"]
            if kind == "histogram":
                inst = reg.histogram(name, spec.get("help", ""),
                                     buckets=tuple(spec["buckets"]))
                for ser in spec["series"]:
                    key = tuple(tuple(kv) for kv in ser["labels"])
                    inst.series[key] = {"counts": list(ser["counts"]),
                                        "sum": float(ser["sum"]),
                                        "count": int(ser["count"])}
            else:
                inst = (reg.counter(name, spec.get("help", ""))
                        if kind == "counter"
                        else reg.gauge(name, spec.get("help", "")))
                for ser in spec["series"]:
                    key = tuple(tuple(kv) for kv in ser["labels"])
                    inst.values[key] = float(ser["value"])
        return reg


def _num(value: float) -> str:
    """Prometheus-friendly number: integral values without the .0."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)
