"""Structured events: typed, timestamped records plus a slow-query log.

Replaces the service's former bare ``list[dict]`` event trail.  Every
record is an :class:`Event` — a kind, an epoch timestamp, and a flat
field dict — held in a bounded :class:`EventLog` that round-trips
through JSON lines, so a service run leaves a machine-readable audit
trail (degradations, evictions, retries, slow queries) next to its
responses.

The :class:`SlowQueryLog` is the operator-facing cut of the same data:
requests whose modeled latency crossed a configurable threshold, with
enough context (engine, cache state, queue wait) to triage without
re-running the workload.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Event", "EventLog", "SlowQueryLog", "SlowQuery",
           "STANDING_EVENT_KINDS"]

#: event kinds the standing-query layer emits (repro.standing): the
#: per-pair delta stream, subscription lifecycle, per-epoch summaries,
#: and recovery reports.  Grouped here so dashboards and tests filter
#: on one authoritative tuple instead of string literals.
STANDING_EVENT_KINDS = (
    "match_added", "match_removed",
    "subscription_registered", "subscription_unregistered",
    "standing_epoch", "standing_recovered",
)


@dataclass
class Event:
    """One structured record: what happened, when, and the details."""

    kind: str
    ts: float
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"kind": self.kind, "ts": float(self.ts),
                "fields": dict(self.fields)}

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        """Inverse of :meth:`to_dict`."""
        return cls(kind=payload["kind"], ts=float(payload["ts"]),
                   fields=dict(payload.get("fields", {})))


class EventLog:
    """Bounded, append-only sequence of :class:`Event` records.

    The bound is a ring buffer: once ``maxlen`` events are held, each
    new :meth:`emit` silently evicts the oldest record and increments
    ``dropped_events`` — long campaigns keep a flat memory footprint
    and the counter says how much history the ring discarded.
    ``maxlen=None`` disables the bound (unbounded growth).
    """

    def __init__(self, *, maxlen: int | None = 10_000,
                 enabled: bool = True) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError("maxlen must be >= 1 (or None)")
        self.enabled = enabled
        self._events: deque[Event] = deque(maxlen=maxlen)
        #: lines :meth:`from_jsonl` skipped as corrupt or torn.
        self.corrupt_lines = 0
        #: oldest events overwritten by the ring bound.
        self.dropped_events = 0

    @property
    def maxlen(self) -> int | None:
        """The ring bound (None = unbounded)."""
        return self._events.maxlen

    def emit(self, kind: str, **fields) -> Event | None:
        """Record one event now; returns it (None when disabled)."""
        if not self.enabled:
            return None
        ring = self._events
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped_events += 1
        event = Event(kind=kind, ts=time.time(), fields=fields)
        ring.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        self._events.clear()

    # -- JSON lines ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first."""
        return "".join(json.dumps(e.to_dict()) + "\n" for e in self)

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def from_jsonl(cls, text: str, *, maxlen: int | None = 10_000
                   ) -> "EventLog":
        """Inverse of :meth:`to_jsonl`.

        Tolerant of a crashed writer: a corrupt or torn line (most
        commonly the truncated final line of an interrupted flush) is
        skipped and counted in ``corrupt_lines``, never raised — an
        audit log must stay readable after the crash it documents.
        """
        log = cls(maxlen=maxlen)
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                log._events.append(Event.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                log.corrupt_lines += 1
        return log


@dataclass
class SlowQuery:
    """One request that crossed the slow-query latency threshold."""

    request_id: str
    engine: str
    modeled_seconds: float
    queue_wait_s: float
    cache_hit: bool
    degraded: bool
    ts: float

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "request_id": self.request_id,
            "engine": self.engine,
            "modeled_seconds": float(self.modeled_seconds),
            "queue_wait_s": float(self.queue_wait_s),
            "cache_hit": bool(self.cache_hit),
            "degraded": bool(self.degraded),
            "ts": float(self.ts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SlowQuery":
        """Inverse of :meth:`to_dict`."""
        return cls(**{k: payload[k] for k in (
            "request_id", "engine", "modeled_seconds", "queue_wait_s",
            "cache_hit", "degraded", "ts")})


class SlowQueryLog:
    """Requests slower (modeled) than a configurable threshold."""

    def __init__(self, threshold_s: float = 1.0, *,
                 maxlen: int = 1000, enabled: bool = True) -> None:
        if threshold_s < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold_s = float(threshold_s)
        self.enabled = enabled
        self._entries: deque[SlowQuery] = deque(maxlen=maxlen)
        #: lines :meth:`from_jsonl` skipped as corrupt or torn.
        self.corrupt_lines = 0

    def observe(self, *, request_id: str, engine: str,
                modeled_seconds: float, queue_wait_s: float = 0.0,
                cache_hit: bool = False, degraded: bool = False
                ) -> SlowQuery | None:
        """Record the request iff it crossed the threshold."""
        if not self.enabled or modeled_seconds < self.threshold_s:
            return None
        entry = SlowQuery(request_id=request_id, engine=engine,
                          modeled_seconds=modeled_seconds,
                          queue_wait_s=queue_wait_s,
                          cache_hit=cache_hit, degraded=degraded,
                          ts=time.time())
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entries(self) -> list[SlowQuery]:
        return list(self._entries)

    # -- JSON lines ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest first."""
        return "".join(json.dumps(e.to_dict()) + "\n" for e in self)

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path

    @classmethod
    def from_jsonl(cls, text: str, *, threshold_s: float = 1.0,
                   maxlen: int = 1000) -> "SlowQueryLog":
        """Inverse of :meth:`to_jsonl`; corrupt or torn lines are
        skipped and counted in ``corrupt_lines`` (see
        :meth:`EventLog.from_jsonl`)."""
        log = cls(threshold_s, maxlen=maxlen)
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                log._entries.append(
                    SlowQuery.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                log.corrupt_lines += 1
        return log

    def render(self) -> str:
        """Human-readable table, slowest first."""
        rows = sorted(self._entries, key=lambda e: -e.modeled_seconds)
        lines = [f"slow queries (modeled >= {self.threshold_s:g} s): "
                 f"{len(rows)}"]
        for e in rows:
            flags = []
            if e.cache_hit:
                flags.append("cache-hit")
            if e.degraded:
                flags.append("degraded")
            lines.append(
                f"  {e.request_id or '-':>12s} {e.engine:18s} "
                f"modeled {e.modeled_seconds:.6f} s "
                f"wait {e.queue_wait_s:.6f} s"
                f"{'  [' + ', '.join(flags) + ']' if flags else ''}")
        return "\n".join(lines)
