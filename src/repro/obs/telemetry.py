"""The telemetry hub: one object bundling metrics, tracing, and events.

:class:`Telemetry` is what the service owns and what instrumented code
reaches for.  Propagation is ambient, OpenTelemetry-style: the service
activates its hub around request handling
(``with telemetry.activate(): ...``) and any code underneath — engine
``search``, index builds, the kernel launcher — grabs it via
:func:`current` without threading objects through call signatures.
When nothing is active, :func:`current` returns the shared
:data:`DISABLED` hub whose tracer, registry, and logs are all no-ops,
so instrumented code costs almost nothing outside the service and
standalone engine use stays telemetry-free.

``Telemetry(enabled=False)`` gives the same no-op behavior on an
explicitly constructed hub — that is the switch the overhead benchmark
flips.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

from .events import EventLog, SlowQueryLog
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["Telemetry", "current", "DISABLED"]

#: ambient hub; None means "nothing activated" -> DISABLED.
_ACTIVE: ContextVar["Telemetry | None"] = ContextVar(
    "repro_obs_telemetry", default=None)


class Telemetry:
    """Metrics registry + tracer + event log + slow-query log.

    Parameters
    ----------
    enabled:
        Master switch.  False turns every component into a no-op with
        the identical API (nothing records, nothing allocates trees).
    slow_query_threshold_s:
        Modeled-latency threshold for the slow-query log.
    events_maxlen:
        Ring-buffer bound on the structured event log (None =
        unbounded); overwritten history is counted in
        ``events.dropped_events``.
    """

    def __init__(self, *, enabled: bool = True,
                 slow_query_threshold_s: float = 1.0,
                 events_maxlen: int | None = 10_000) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(enabled=enabled)
        self.events = EventLog(maxlen=events_maxlen, enabled=enabled)
        self.slow_log = SlowQueryLog(slow_query_threshold_s,
                                     enabled=enabled)

    @contextmanager
    def activate(self):
        """Make this hub the ambient telemetry for the enclosed block."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    def span(self, name: str, **attributes):
        """Shorthand for ``self.tracer.start_span(...)``."""
        return self.tracer.start_span(name, **attributes)

    def reset(self) -> None:
        """Drop accumulated spans, events, and metric values (the
        instrument definitions survive)."""
        self.tracer.clear()
        self.events.clear()
        self.metrics = MetricsRegistry(enabled=self.enabled)
        self.slow_log = SlowQueryLog(self.slow_log.threshold_s,
                                     enabled=self.enabled)


#: shared no-op hub returned by :func:`current` outside any activation.
DISABLED = Telemetry(enabled=False)


def current() -> Telemetry:
    """The ambient :class:`Telemetry` (or the no-op :data:`DISABLED`)."""
    active = _ACTIVE.get()
    return active if active is not None else DISABLED
