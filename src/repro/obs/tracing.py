"""Span-based tracing: one request becomes a tree of timed spans.

A :class:`Span` carries two clocks, matching the repository's split
between simulator and simulated machine:

* **wall** — ``perf_counter`` seconds the simulator actually spent
  inside the span (``wall_start_s`` / ``wall_dur_s``);
* **modeled** — seconds on the modeled machine's timeline
  (``modeled_start_s`` / ``modeled_dur_s``), filled in by the service
  once the cost model has priced the profile.

The :class:`Tracer` hands out spans through the ``start_span`` context
manager and keeps parent/child links via an internal stack, so the
service → engine → kernel nesting falls out of ordinary ``with``
blocks — no plumbing of span objects through call signatures.  Layers
reach the active tracer through the ambient
:func:`repro.obs.telemetry.current` telemetry, which returns a
disabled no-op tracer when nothing activated one.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NULL_SPAN"]


@dataclass
class Span:
    """One timed node of a trace tree."""

    name: str
    span_id: int = 0
    attributes: dict = field(default_factory=dict)
    wall_start_s: float = 0.0
    wall_dur_s: float = 0.0
    modeled_start_s: float | None = None
    modeled_dur_s: float | None = None
    children: list["Span"] = field(default_factory=list)

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attrs) -> None:
        self.attributes.update(attrs)

    def set_modeled(self, start_s: float, dur_s: float) -> None:
        """Place the span on the modeled machine's timeline."""
        self.modeled_start_s = float(start_s)
        self.modeled_dur_s = float(dur_s)

    # -- tree helpers -------------------------------------------------------------

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly recursive representation."""
        payload = {
            "name": self.name,
            "span_id": int(self.span_id),
            "attributes": dict(self.attributes),
            "wall_start_s": float(self.wall_start_s),
            "wall_dur_s": float(self.wall_dur_s),
            "children": [c.to_dict() for c in self.children],
        }
        if self.modeled_start_s is not None:
            payload["modeled_start_s"] = float(self.modeled_start_s)
            payload["modeled_dur_s"] = float(self.modeled_dur_s)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            span_id=int(payload.get("span_id", 0)),
            attributes=dict(payload.get("attributes", {})),
            wall_start_s=float(payload.get("wall_start_s", 0.0)),
            wall_dur_s=float(payload.get("wall_dur_s", 0.0)),
            modeled_start_s=payload.get("modeled_start_s"),
            modeled_dur_s=payload.get("modeled_dur_s"),
            children=[cls.from_dict(c)
                      for c in payload.get("children", [])],
        )


class _NullSpan(Span):
    """Inert span returned by a disabled tracer; mutations vanish."""

    def set_attribute(self, key: str, value) -> None:  # noqa: ARG002
        pass

    def set_attributes(self, **attrs) -> None:
        pass

    def set_modeled(self, start_s: float, dur_s: float) -> None:
        pass


#: shared inert span — what ``start_span`` yields when tracing is off.
NULL_SPAN = _NullSpan(name="null")


class Tracer:
    """Creates and nests spans; finished roots land in ``roots``.

    Single-threaded by design (the simulator is single-threaded): the
    active-span stack is plain instance state.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def start_span(self, name: str, **attributes):
        """Open a span as a child of the innermost active span."""
        if not self.enabled:
            yield NULL_SPAN
            return
        span = Span(name=name, span_id=next(self._ids),
                    attributes=dict(attributes),
                    wall_start_s=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.wall_dur_s = time.perf_counter() - span.wall_start_s

    def record(self, name: str, wall_start_s: float, wall_dur_s: float,
               **attributes) -> Span:
        """Attach an already-timed span (e.g. one kernel invocation)
        under the current span without making it the active parent."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name=name, span_id=next(self._ids),
                    attributes=dict(attributes),
                    wall_start_s=wall_start_s, wall_dur_s=wall_dur_s)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def clear(self) -> None:
        """Drop finished roots (the active stack is left alone)."""
        self.roots.clear()
