"""Unified telemetry: metrics registry, span tracing, and exporters.

One package observes the whole stack.  The pieces:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  behind a :class:`MetricsRegistry` with Prometheus-text and JSON
  exposition;
* :mod:`repro.obs.tracing` — a lightweight :class:`Tracer` whose
  ``start_span`` context managers build a parent/child span tree with
  wall *and* modeled durations;
* :mod:`repro.obs.events` — typed, timestamped structured events
  (JSON-lines) and the slow-query log;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` hub bundling the
  three, propagated ambiently (``with telemetry.activate(): ...`` /
  :func:`current`);
* :mod:`repro.obs.chrome` — Chrome-trace export of a whole service
  batch across device lanes.

Instrumented layers: :class:`repro.service.QueryService` (requests,
cache, degradation, slow queries), every engine (search spans, index
builds, retry/redo loops), and the kernel launcher (one span per
invocation).  ``QueryService.stats()`` reads the registry, the
``metrics`` / ``trace`` CLI subcommands export it.
"""

from .events import (Event, EventLog, STANDING_EVENT_KINDS, SlowQuery,
                     SlowQueryLog)
from .metrics import (Counter, DEFAULT_LATENCY_BUCKETS, Gauge, Histogram,
                      MetricsRegistry)
from .telemetry import DISABLED, Telemetry, current
from .tracing import Span, Tracer

# The chrome exporter reads repro.gpu (profiles, cost model), which
# itself instruments through this package — load it lazily so the
# telemetry core stays import-cycle-free for the layers it observes.
_LAZY = {"service_batch_trace", "write_service_trace"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import chrome
        return getattr(chrome, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DISABLED",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STANDING_EVENT_KINDS",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Telemetry",
    "Tracer",
    "current",
    "service_batch_trace",
    "write_service_trace",
]
