"""Chrome-trace export of a whole service batch across device lanes.

Where :func:`repro.gpu.trace.profile_to_trace` renders one engine
profile on a synthetic gpu/pcie/host track triple, this module renders
what the *service* did with a batch: one track per device lane of the
pool (plus the shared PCIe track and the host track), a summary slice
per request shard showing its modeled occupancy on its lane, and — for
unsharded GPU requests — the per-invocation kernel/transfer breakdown
nested inside that occupancy window.

The input is the list of :class:`~repro.service.SearchResponse`
objects a ``submit_batch`` call returned; everything needed (lane
placements, modeled start/duration, the profile) travels on the
response, so traces can be rendered offline from an archived
responses JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..gpu.costmodel import GpuCostModel
from ..gpu.profiler import SearchProfile
from ..gpu.trace import profile_events

__all__ = ["service_batch_trace", "write_service_trace"]

_US = 1e6

#: fixed thread ids for the shared tracks; lane i maps to 10 + i.
HOST_TID = 0
PCIE_TID = 1
_LANE_BASE = 10


def _lane_tid(lane: int) -> int:
    return HOST_TID if lane < 0 else _LANE_BASE + lane


def service_batch_trace(responses, *,
                        model: GpuCostModel | None = None) -> list[dict]:
    """Trace events for a batch of service responses.

    One ``process_name`` metadata event per used track, one summary
    ``X`` slice per (request, shard) lane occupancy, and the detailed
    modeled breakdown for unsharded GPU requests.
    """
    model = model or GpuCostModel()
    lanes = sorted({span["lane"] for resp in responses
                    for span in resp.metrics.lane_spans
                    if span["lane"] >= 0})
    track_names = {HOST_TID: "host (modeled)",
                   PCIE_TID: "pcie (modeled)"}
    for lane in lanes:
        track_names[_lane_tid(lane)] = f"gpu lane {lane} (modeled)"
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": name}}
        for tid, name in sorted(track_names.items())
    ]

    for resp in responses:
        m = resp.metrics
        label = resp.request_id or "request"
        for span in m.lane_spans:
            events.append({
                "name": f"{label} [{m.engine}]"
                        + (f" shard {span['shard']}"
                           if len(m.lane_spans) > 1 else ""),
                "ph": "X", "pid": 0, "tid": _lane_tid(span["lane"]),
                "ts": round(span["start_s"] * _US, 3),
                "dur": round(span["dur_s"] * _US, 3),
                "args": {
                    "engine": m.engine,
                    "cache_hit": bool(m.cache_hit),
                    "degraded": bool(m.degraded),
                    "queue_wait_s": float(m.queue_wait_s),
                    "modeled_seconds": float(m.modeled_seconds),
                },
            })
        profile = resp.outcome.profile
        if len(m.lane_spans) == 1 and isinstance(profile, SearchProfile):
            span = m.lane_spans[0]
            events.extend(profile_events(
                profile, model, t0=span["start_s"],
                tids={"gpu": _lane_tid(span["lane"]),
                      "pcie": PCIE_TID, "host": HOST_TID},
                label=label))
    return events


def write_service_trace(responses, path: str | Path, *,
                        model: GpuCostModel | None = None) -> Path:
    """Write a ``chrome://tracing``-loadable JSON for a served batch."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": service_batch_trace(responses,
                                                  model=model),
               "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path
