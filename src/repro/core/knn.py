"""k-nearest-neighbour trajectory search on the paper's indexes.

The paper's stated future direction (§VI) is "to apply our indexing
techniques to other spatial/spatiotemporal trajectory searches"; the kNN
search is the one it name-checks throughout §II.  This module implements
a *continuous* kNN: for each query segment, the ``k`` entry segments with
the smallest minimum distance over the pair's temporal overlap.

Why this composes cleanly with distance-threshold machinery: §II notes
that index-tree pruning is impossible for threshold searches "because k
is unknown"; the converse construction works, though — a kNN search *is*
a distance-threshold search with an initially unknown ``d``, solved by
iterative deepening:

1. guess a radius from the database's spatiotemporal density;
2. run the (cheap, index-accelerated) threshold search;
3. queries with >= k neighbours take the k smallest exact minimum
   distances; the rest re-run with a doubled radius.

The exact per-pair minimum distance comes from the same quadratic as the
interval solver: ``f(t) = |w|^2 t^2 + 2 u.w t + |u|^2`` minimized over
the closed overlap window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distance import _EPS, _interp_endpoints
from .search import DistanceThresholdSearch
from .types import SegmentArray

__all__ = ["pair_min_distance", "knn_brute_force", "TrajectoryKnn",
           "KnnResult"]


def pair_min_distance(
    queries: SegmentArray,
    entries: SegmentArray,
    q_idx: np.ndarray,
    e_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimum moving-point distance over each pair's temporal overlap.

    Returns ``(overlap_mask, d_min)``; ``d_min`` is +inf where the pair
    never coexists.
    """
    q_idx = np.asarray(q_idx, dtype=np.int64)
    e_idx = np.asarray(e_idx, dtype=np.int64)
    n = q_idx.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool), np.zeros(0)

    qp0, qv, qts, qte = _interp_endpoints(queries, q_idx)
    ep0, ev, ets, ete = _interp_endpoints(entries, e_idx)
    t0 = np.maximum(qts, ets)
    t1 = np.minimum(qte, ete)
    overlap = t0 <= t1

    w = ev - qv
    u = (ep0 - qp0) - ev * ets[:, None] + qv * qts[:, None]
    a = np.einsum("ij,ij->i", w, w)
    b = 2.0 * np.einsum("ij,ij->i", u, w)
    c = np.einsum("ij,ij->i", u, u)

    # Unconstrained minimizer of the quadratic, clamped to the window;
    # for a ~ 0 the distance is constant and any point in the window does.
    t_star = np.where(a > _EPS, -b / (2.0 * np.maximum(a, _EPS)), t0)
    t_star = np.clip(t_star, t0, t1)
    f = a * t_star * t_star + b * t_star + c
    d_min = np.sqrt(np.maximum(f, 0.0))
    return overlap, np.where(overlap, d_min, np.inf)


@dataclass(frozen=True)
class KnnResult:
    """Per-query neighbour lists.

    ``neighbor_ids[i, :counts[i]]`` are the entry *segment ids* of query
    row ``i``'s nearest segments, ascending by ``distances``; padding
    slots hold ``-1`` / ``inf``.  ``counts`` can fall short of ``k`` only
    when fewer than ``k`` entries temporally coexist with the query.
    """

    neighbor_ids: np.ndarray
    distances: np.ndarray
    counts: np.ndarray

    @property
    def k(self) -> int:
        return int(self.neighbor_ids.shape[1])

    def __len__(self) -> int:
        return int(self.neighbor_ids.shape[0])


def _topk_from_pairs(nq: int, k: int, q_rows: np.ndarray,
                     e_ids: np.ndarray, dists: np.ndarray) -> KnnResult:
    """Assemble per-query ascending top-k from a flat candidate list."""
    neighbor_ids = np.full((nq, k), -1, dtype=np.int64)
    distances = np.full((nq, k), np.inf)
    counts = np.zeros(nq, dtype=np.int64)
    if q_rows.size:
        order = np.lexsort((dists, q_rows))
        q_s, e_s, d_s = q_rows[order], e_ids[order], dists[order]
        starts = np.flatnonzero(np.r_[True, q_s[1:] != q_s[:-1]])
        ends = np.r_[starts[1:], q_s.size]
        for s, e in zip(starts, ends):
            q = int(q_s[s])
            take = min(k, e - s)
            neighbor_ids[q, :take] = e_s[s:s + take]
            distances[q, :take] = d_s[s:s + take]
            counts[q] = take
    return KnnResult(neighbor_ids, distances, counts)


def knn_brute_force(queries: SegmentArray, entries: SegmentArray, k: int,
                    *, exclude_same_trajectory: bool = False
                    ) -> KnnResult:
    """Exact kNN by scanning all pairs (the reference implementation)."""
    if k <= 0:
        raise ValueError("k must be positive")
    nq, ne = len(queries), len(entries)
    rows, ids, dd = [], [], []
    for q0 in range(0, nq, max(1, (1 << 20) // max(ne, 1))):
        q1 = min(nq, q0 + max(1, (1 << 20) // max(ne, 1)))
        qs = np.repeat(np.arange(q0, q1, dtype=np.int64), ne)
        es = np.tile(np.arange(ne, dtype=np.int64), q1 - q0)
        mask, dmin = pair_min_distance(queries, entries, qs, es)
        if exclude_same_trajectory:
            mask = mask & (queries.traj_ids[qs] != entries.traj_ids[es])
        rows.append(qs[mask])
        ids.append(entries.seg_ids[es[mask]])
        dd.append(dmin[mask])
    cat = np.concatenate
    return _topk_from_pairs(nq, k, cat(rows) if rows else np.zeros(0, int),
                            cat(ids) if ids else np.zeros(0, int),
                            cat(dd) if dd else np.zeros(0))


class TrajectoryKnn:
    """Index-accelerated continuous kNN via iterative radius deepening.

    Parameters mirror :class:`DistanceThresholdSearch`; any engine works,
    the temporal/spatiotemporal ones being the natural choices.
    """

    #: radius growth factor between deepening rounds.
    GROWTH = 2.0
    #: hard cap on deepening rounds (then the remaining queries simply
    #: have fewer than k temporal coexistents; verified and returned).
    MAX_ROUNDS = 40

    def __init__(self, database: SegmentArray, *,
                 method: str = "gpu_spatiotemporal", **engine_params):
        self.search = DistanceThresholdSearch(database, method=method,
                                              **engine_params)
        self.database = self.search.engine.database

    def initial_radius(self, k: int) -> float:
        """Density-derived starting radius: the radius of a sphere
        expected to hold ~k temporally coexistent segments."""
        db = self.database
        mins, maxs = db.spatial_bounds()
        volume = float(np.prod(np.maximum(maxs - mins, 1e-30)))
        t_lo, t_hi = db.temporal_extent
        mean_extent = float(np.mean(db.te - db.ts))
        coexist = len(db) * mean_extent / max(t_hi - t_lo, 1e-30)
        density = max(coexist, 1.0) / volume
        return float((3.0 * k / (4.0 * np.pi * density)) ** (1.0 / 3.0))

    def query(self, queries: SegmentArray, k: int, *,
              exclude_same_trajectory: bool = False,
              initial_radius: float | None = None) -> KnnResult:
        """Find each query segment's k nearest entry segments."""
        if k <= 0:
            raise ValueError("k must be positive")
        nq = len(queries)
        d = initial_radius if initial_radius is not None \
            else self.initial_radius(k)
        pending = np.arange(nq, dtype=np.int64)
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_d = np.full((nq, k), np.inf)
        out_counts = np.zeros(nq, dtype=np.int64)

        erow_of_id = {int(s): r
                      for r, s in enumerate(self.database.seg_ids)}

        for _ in range(self.MAX_ROUNDS):
            if pending.size == 0:
                break
            sub = queries.take(pending)
            outcome = self.search.run(
                sub, d, exclude_same_trajectory=exclude_same_trajectory)
            rs = outcome.results
            # Exact minimum distances for the returned pairs.
            local_of_qid = {int(s): r
                            for r, s in enumerate(sub.seg_ids)}
            q_rows_local = np.array([local_of_qid[int(q)]
                                     for q in rs.q_ids], dtype=np.int64)
            e_rows = np.array([erow_of_id[int(e)] for e in rs.e_ids],
                              dtype=np.int64)
            _, dmin = pair_min_distance(sub, self.database,
                                        q_rows_local, e_rows)
            partial = _topk_from_pairs(
                len(sub), k, q_rows_local,
                self.database.seg_ids[e_rows], dmin)

            # A query is settled when it found >= k neighbours, or when
            # its k-th distance is certain (cannot be undercut beyond d:
            # all found distances <= d by construction, so >= k found
            # means done).
            done_local = partial.counts >= k
            done_global = pending[done_local]
            out_ids[done_global] = partial.neighbor_ids[done_local]
            out_d[done_global] = partial.distances[done_local]
            out_counts[done_global] = partial.counts[done_local]
            pending = pending[~done_local]
            d *= self.GROWTH

        if pending.size:
            # Remaining queries coexist with fewer than k entries (or the
            # round cap hit): finish them exactly by brute force.
            sub = queries.take(pending)
            rest = knn_brute_force(
                sub, self.database, k,
                exclude_same_trajectory=exclude_same_trajectory)
            out_ids[pending] = rest.neighbor_ids
            out_d[pending] = rest.distances
            out_counts[pending] = rest.counts
        return KnnResult(out_ids, out_d, out_counts)
