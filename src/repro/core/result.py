"""Result sets for distance-threshold searches.

The search is *continuous* (paper §III): every reported item is a
``(query segment, entry segment, [t_lo, t_hi])`` triple.  On the GPU the
result set is accumulated in a fixed-capacity device buffer through atomic
appends; duplicates can occur (GPUSpatial may examine the same candidate
through several grid cells) and are filtered on the host.  This module is
that host-side machinery, plus trajectory-level post-processing used by the
astrophysics application examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ResultSet", "merge_intervals"]


@dataclass
class ResultSet:
    """A set of ``(q_id, e_id, t_lo, t_hi)`` result items.

    ``q_ids``/``e_ids`` are *segment ids* (not row indices), so results of
    engines with different internal orderings compare equal.
    """

    q_ids: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    e_ids: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    t_lo: np.ndarray = field(default_factory=lambda: np.zeros(0))
    t_hi: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        n = len(self.q_ids)
        if not (len(self.e_ids) == len(self.t_lo) == len(self.t_hi) == n):
            raise ValueError("result component length mismatch")

    def __len__(self) -> int:
        return int(self.q_ids.shape[0])

    # -- assembly -----------------------------------------------------------

    @classmethod
    def from_parts(cls, parts: list["ResultSet"]) -> "ResultSet":
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            return cls()
        return cls(
            np.concatenate([p.q_ids for p in parts]),
            np.concatenate([p.e_ids for p in parts]),
            np.concatenate([p.t_lo for p in parts]),
            np.concatenate([p.t_hi for p in parts]),
        )

    def deduplicated(self) -> "ResultSet":
        """Drop duplicate ``(q_id, e_id)`` pairs (host-side filter, §IV-A.2).

        GPUSpatial can refine the same candidate several times (its id can
        occur in the lookup array once per overlapped grid cell), producing
        byte-identical duplicates; keep the first of each pair.
        """
        if len(self) == 0:
            return ResultSet()
        order = np.lexsort((self.e_ids, self.q_ids))
        q, e = self.q_ids[order], self.e_ids[order]
        keep = np.ones(len(self), dtype=bool)
        keep[1:] = (q[1:] != q[:-1]) | (e[1:] != e[:-1])
        sel = order[keep]
        sel.sort()  # preserve append order among the survivors
        return ResultSet(self.q_ids[sel], self.e_ids[sel],
                         self.t_lo[sel], self.t_hi[sel])

    def canonical(self) -> "ResultSet":
        """Deterministic ordering for engine-vs-engine comparisons."""
        rs = self.deduplicated()
        order = np.lexsort((rs.e_ids, rs.q_ids))
        return ResultSet(rs.q_ids[order], rs.e_ids[order],
                         rs.t_lo[order], rs.t_hi[order])

    def equivalent_to(self, other: "ResultSet", *, atol: float = 1e-9
                      ) -> bool:
        """True when both sets report the same pairs with the same
        intervals (up to ``atol``), regardless of order or duplicates."""
        a, b = self.canonical(), other.canonical()
        if len(a) != len(b):
            return False
        return (np.array_equal(a.q_ids, b.q_ids)
                and np.array_equal(a.e_ids, b.e_ids)
                and np.allclose(a.t_lo, b.t_lo, atol=atol)
                and np.allclose(a.t_hi, b.t_hi, atol=atol))

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation (plain lists)."""
        return {
            "q_ids": self.q_ids.tolist(),
            "e_ids": self.e_ids.tolist(),
            "t_lo": self.t_lo.tolist(),
            "t_hi": self.t_hi.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultSet":
        """Inverse of :meth:`to_dict`."""
        return cls(
            np.asarray(payload["q_ids"], dtype=np.int64),
            np.asarray(payload["e_ids"], dtype=np.int64),
            np.asarray(payload["t_lo"], dtype=np.float64),
            np.asarray(payload["t_hi"], dtype=np.float64),
        )

    # -- application-level views ---------------------------------------------

    def pairs(self) -> set[tuple[int, int]]:
        return set(zip(self.q_ids.tolist(), self.e_ids.tolist()))

    def by_trajectory(
        self,
        q_traj_of_seg: dict[int, int],
        e_traj_of_seg: dict[int, int],
    ) -> dict[tuple[int, int], list[tuple[float, float]]]:
        """Aggregate segment-level items to trajectory-level proximity
        episodes: per ``(query traj, entry traj)`` pair, the merged list of
        time intervals during which the trajectories were within ``d``.

        This is the form the astrophysics application consumes ("find the
        stars within distance d of a supernova, and when").
        """
        buckets: dict[tuple[int, int], list[tuple[float, float]]] = {}
        for q, e, lo, hi in zip(self.q_ids.tolist(), self.e_ids.tolist(),
                                self.t_lo.tolist(), self.t_hi.tolist()):
            key = (q_traj_of_seg[q], e_traj_of_seg[e])
            buckets.setdefault(key, []).append((lo, hi))
        return {k: merge_intervals(v) for k, v in buckets.items()}


def merge_intervals(intervals: list[tuple[float, float]],
                    *, eps: float = 1e-12) -> list[tuple[float, float]]:
    """Union a list of closed intervals; intervals closer than ``eps`` are
    coalesced (adjacent segments of one trajectory meet at a shared
    timestep, so refinement naturally produces abutting intervals)."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for lo, hi in ordered[1:]:
        mlo, mhi = merged[-1]
        if lo <= mhi + eps:
            merged[-1] = (mlo, max(mhi, hi))
        else:
            merged.append((lo, hi))
    return merged
