"""Continuous distance-threshold refinement for moving-point segments.

This is the paper's ``compare(D[entryID], Q[queryID])`` primitive
(Algorithms 1-3, line "result <- compare(...)").  Each 4-D line segment
describes a point moving at constant velocity during its temporal extent.
For a query segment ``q`` and an entry segment ``l`` the refinement must
return the (possibly empty) time interval during which the two moving
points are within Euclidean distance ``d`` of each other.

Mathematics
-----------
Restrict to the temporal overlap ``[t0, t1]`` of the two segments (empty
overlap => no result).  Within it, both positions are affine in ``t``, so
the displacement vector is affine, ``delta(t) = u + w t``, and the squared
distance is the quadratic

    f(t) = |w|^2 t^2 + 2 (u.w) t + |u|^2.

``f(t) <= d^2`` therefore holds on at most one closed interval, obtained
from the roots of ``f(t) - d^2``.  Intersecting with ``[t0, t1]`` yields
the reported interval.  Degenerate cases:

* ``|w| = 0`` (identical velocities, incl. two stationary points): the
  distance is constant — the answer is all of ``[t0, t1]`` or nothing.
* zero temporal extent (``t_start == t_end``): the segment is a point
  event; the overlap is at most an instant and the closed-interval
  semantics still apply.

Everything is vectorized over an arbitrary batch of (query, entry) pairs;
this one function is the computational kernel that dominates response time
in every engine, exactly as segment comparison dominates in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import SegmentArray

__all__ = ["compare_pairs", "pair_coefficients", "solve_intervals",
           "PairCoefficients", "PairIntervals"]

# Relative tolerance used when deciding whether the quadratic coefficient
# is numerically zero (parallel motion).  Scaled by the magnitude of the
# velocities involved so the test is unit-free.
_EPS = 1e-30


@dataclass(frozen=True)
class PairIntervals:
    """Result of refining a batch of (query, entry) candidate pairs.

    ``mask`` flags the pairs whose moving points come within ``d`` during
    their temporal overlap; ``t_lo``/``t_hi`` give the closed interval for
    those pairs (undefined where ``mask`` is False).
    """

    mask: np.ndarray
    t_lo: np.ndarray
    t_hi: np.ndarray

    def __len__(self) -> int:
        return int(self.mask.shape[0])

    @property
    def num_hits(self) -> int:
        return int(np.count_nonzero(self.mask))


def _interp_endpoints(seg: SegmentArray, idx: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """Return (p0, v, ts, te) for segments ``idx``: p(t) = p0 + v*(t-ts)."""
    p0 = np.stack([seg.xs[idx], seg.ys[idx], seg.zs[idx]], axis=1)
    p1 = np.stack([seg.xe[idx], seg.ye[idx], seg.ze[idx]], axis=1)
    ts = seg.ts[idx]
    te = seg.te[idx]
    dt = te - ts
    # Zero-extent segments are stationary points: velocity 0.
    v = np.divide(p1 - p0, dt[:, None],
                  out=np.zeros_like(p0), where=dt[:, None] > 0)
    return p0, v, ts, te


@dataclass(frozen=True)
class PairCoefficients:
    """The ``d``-invariant part of refining a batch of candidate pairs.

    For each *alive* pair (non-empty temporal overlap, not excluded) the
    squared distance on the overlap ``[t0, t1]`` is the quadratic
    ``f(t) = a t^2 + b t + c0``; a threshold query only shifts the
    constant term (``f(t) <= d^2  <=>  a t^2 + b t + (c0 - d^2) <= 0``).
    Engines whose candidate schedule does not depend on ``d`` (the
    temporal scheme's signature property) therefore compute these
    coefficients once per query set and re-solve per threshold.

    ``alive_idx`` maps the compacted coefficient rows back to positions
    in the original pair batch; every other array is compacted (one slot
    per alive pair).
    """

    num_pairs: int
    alive_idx: np.ndarray
    t0: np.ndarray
    t1: np.ndarray
    a: np.ndarray
    b: np.ndarray
    c0: np.ndarray

    def __len__(self) -> int:
        return self.num_pairs

    @property
    def num_alive(self) -> int:
        return int(self.alive_idx.shape[0])

    def nbytes(self) -> int:
        """Host memory held by the cached coefficient arrays."""
        return int(self.alive_idx.nbytes + self.t0.nbytes
                   + self.t1.nbytes + self.a.nbytes + self.b.nbytes
                   + self.c0.nbytes)

    def subset(self, positions: np.ndarray) -> "PairCoefficients":
        """Coefficients of the sub-batch at ``positions`` (sorted,
        strictly increasing positions into this pair batch).

        A re-processed (redo) invocation's pairs are a subset of the
        first invocation's, so its coefficients are a gather of the
        cached ones — recomputing the quadratic from the segment store
        would produce bit-for-bit the same values, just slower.
        """
        if positions.shape[0] == 0:
            z = np.zeros(0)
            return PairCoefficients(
                num_pairs=0, alive_idx=np.zeros(0, dtype=np.int64),
                t0=z, t1=z.copy(), a=z.copy(), b=z.copy(), c0=z.copy())
        locs = np.searchsorted(positions, self.alive_idx)
        locs_c = np.minimum(locs, positions.shape[0] - 1)
        keep = positions[locs_c] == self.alive_idx
        return PairCoefficients(
            num_pairs=int(positions.shape[0]),
            alive_idx=locs_c[keep],
            t0=self.t0[keep], t1=self.t1[keep], a=self.a[keep],
            b=self.b[keep], c0=self.c0[keep])

    def alive_map(self) -> np.ndarray:
        """Pair position -> row in the compacted arrays (-1 when the
        pair was culled at build time), memoized."""
        cached = getattr(self, "_alive_map", None)
        if cached is None:
            cached = np.full(self.num_pairs, -1, dtype=np.int64)
            cached[self.alive_idx] = np.arange(self.alive_idx.shape[0],
                                               dtype=np.int64)
            object.__setattr__(self, "_alive_map", cached)
        return cached

    def take(self, positions: np.ndarray) -> "PairCoefficients":
        """Coefficients of an arbitrary (possibly unsorted) selection
        of this batch's pair positions, as a standalone batch.

        Unlike :meth:`subset`, ``positions`` need not be sorted — the
        spatiotemporal scheme's per-``d`` pair set visits the cached
        superset in schedule order, not pair order.
        """
        src_all = self.alive_map()[positions]
        keep = np.flatnonzero(src_all >= 0)
        src = src_all[keep]
        return PairCoefficients(
            num_pairs=int(positions.shape[0]), alive_idx=keep,
            t0=self.t0[src], t1=self.t1[src], a=self.a[src],
            b=self.b[src], c0=self.c0[src])

    def partition(self) -> "_SolvePartition":
        """The ``d``-invariant part of root solving, memoized.

        Splitting alive pairs into the constant-distance and genuine
        quadratic cases — and pre-gathering the per-case operands — does
        not depend on the threshold, so a cached coefficient set being
        re-solved across a ``d``-sweep pays for it once.  Every derived
        array holds exactly the intermediate values
        :func:`solve_intervals` historically computed, so solving from
        the partition is bit-identical.
        """
        cached = getattr(self, "_partition", None)
        if cached is None:
            const = self.a <= _EPS
            quad = ~const
            bq = self.b[quad]
            aq = self.a[quad]
            cached = _SolvePartition(
                const_alive=self.alive_idx[const],
                c0_const=self.c0[const],
                t0_const=self.t0[const],
                t1_const=self.t1[const],
                quad_alive=self.alive_idx[quad],
                bb=bq * bq,
                foura=4.0 * aq,
                negb=-bq,
                twoa=2.0 * aq,
                c0q=self.c0[quad],
                t0q=self.t0[quad],
                t1q=self.t1[quad],
            )
            object.__setattr__(self, "_partition", cached)
        return cached


@dataclass(frozen=True)
class _SolvePartition:
    """Pre-gathered operands for per-threshold root solving."""

    const_alive: np.ndarray
    c0_const: np.ndarray
    t0_const: np.ndarray
    t1_const: np.ndarray
    quad_alive: np.ndarray
    bb: np.ndarray
    foura: np.ndarray
    negb: np.ndarray
    twoa: np.ndarray
    c0q: np.ndarray
    t0q: np.ndarray
    t1q: np.ndarray


def pair_coefficients(
    queries: SegmentArray,
    entries: SegmentArray,
    q_idx: np.ndarray,
    e_idx: np.ndarray,
    *,
    exclude_same_trajectory: bool = False,
) -> PairCoefficients:
    """Compute the ``d``-invariant quadratic coefficients of a pair batch.

    The whole batch is processed in a handful of 1-D vectorized passes
    over the structure-of-arrays segment store: temporal-overlap
    clipping, compaction to the alive pairs, then the component-wise
    quadratic coefficients.  No ``(n, 3)`` temporaries are built.
    """
    q_idx = np.asarray(q_idx, dtype=np.int64)
    e_idx = np.asarray(e_idx, dtype=np.int64)
    if q_idx.shape != e_idx.shape or q_idx.ndim != 1:
        raise ValueError("q_idx and e_idx must be equal-length 1-D arrays")
    n = q_idx.shape[0]

    # Temporal overlap [t0, t1]; closed-interval semantics (touching
    # counts).  Computed full-width: it is what decides aliveness.
    qts = queries.ts[q_idx]
    ets = entries.ts[e_idx]
    t0 = np.maximum(qts, ets)
    t1 = np.minimum(queries.te[q_idx], entries.te[e_idx])
    alive = t0 <= t1
    if exclude_same_trajectory:
        alive &= queries.traj_ids[q_idx] != entries.traj_ids[e_idx]

    # Everything below runs compacted: dead pairs (the overwhelming
    # majority for spatially selective indexes) never touch the FPU.
    live = np.flatnonzero(alive)
    qi = q_idx[live]
    ei = e_idx[live]
    qts = qts[live]
    ets = ets[live]

    qvx, qvy, qvz = queries.velocities()
    evx, evy, evz = entries.velocities()

    # delta(t) = u + w t  with positions expressed as p0 + v*(t - ts).
    # Component-wise, accumulated in (x + z) + y order — the exact
    # floating-point association the previous einsum("ij,ij->i") kernel
    # produced, so results are bit-identical to the historical path.
    qvx = qvx[qi]; qvy = qvy[qi]; qvz = qvz[qi]  # noqa: E702
    evx = evx[ei]; evy = evy[ei]; evz = evz[ei]  # noqa: E702
    wx = evx - qvx
    wy = evy - qvy
    wz = evz - qvz
    ux = (entries.xs[ei] - queries.xs[qi]) - evx * ets + qvx * qts
    uy = (entries.ys[ei] - queries.ys[qi]) - evy * ets + qvy * qts
    uz = (entries.zs[ei] - queries.zs[qi]) - evz * ets + qvz * qts

    a = (wx * wx + wz * wz) + wy * wy
    b = 2.0 * ((ux * wx + uz * wz) + uy * wy)
    c0 = (ux * ux + uz * uz) + uy * uy

    return PairCoefficients(num_pairs=n, alive_idx=live,
                            t0=t0[live], t1=t1[live], a=a, b=b, c0=c0)


def solve_intervals(coef: PairCoefficients, d: float) -> PairIntervals:
    """Solve a coefficient batch at threshold ``d``.

    The ``d``-dependent half of :func:`compare_pairs`: roots of
    ``a t^2 + b t + (c0 - d^2)``, intersected with the temporal overlap.
    """
    if d < 0:
        raise ValueError("query distance d must be non-negative")
    n = coef.num_pairs
    t_lo = np.empty(n)
    t_hi = np.empty(n)
    mask = np.zeros(n, dtype=bool)
    d2 = d * d
    p = coef.partition()

    # Case 1: constant relative distance (a == 0 numerically).
    hit_const = p.c0_const - d2 <= 0.0
    idx = p.const_alive[hit_const]
    t_lo[idx] = p.t0_const[hit_const]
    t_hi[idx] = p.t1_const[hit_const]
    mask[idx] = True

    # Case 2: genuine quadratic.  f <= 0 between the roots.
    if p.quad_alive.size:
        cq = p.c0q - d2
        disc = p.bb - p.foura * cq
        has_roots = disc >= 0.0
        sq = np.sqrt(np.maximum(disc, 0.0))
        r_lo = (p.negb - sq) / p.twoa
        r_hi = (p.negb + sq) / p.twoa
        lo = np.maximum(r_lo, p.t0q)
        hi = np.minimum(r_hi, p.t1q)
        hit = has_roots & (lo <= hi)
        quad_idx = p.quad_alive[hit]
        t_lo[quad_idx] = lo[hit]
        t_hi[quad_idx] = hi[hit]
        mask[quad_idx] = True

    return PairIntervals(mask, t_lo, t_hi)


def compare_pairs(
    queries: SegmentArray,
    entries: SegmentArray,
    q_idx: np.ndarray,
    e_idx: np.ndarray,
    d: float,
    *,
    exclude_same_trajectory: bool = False,
) -> PairIntervals:
    """Refine candidate pairs ``(q_idx[i], e_idx[i])`` at threshold ``d``.

    Parameters
    ----------
    queries, entries:
        The query set ``Q`` and database ``D``.
    q_idx, e_idx:
        Equal-length integer arrays of row indices into ``queries`` and
        ``entries`` — the candidate pairs produced by an index.
    d:
        The query distance threshold (``d >= 0``).
    exclude_same_trajectory:
        When the query set is drawn from the database itself (the paper's
        astrophysics scenario ii), comparisons of a trajectory against its
        own segments are meaningless; this drops pairs whose trajectory ids
        match.

    Returns
    -------
    PairIntervals with one slot per input pair.
    """
    if d < 0:
        raise ValueError("query distance d must be non-negative")
    coef = pair_coefficients(
        queries, entries, q_idx, e_idx,
        exclude_same_trajectory=exclude_same_trajectory)
    return solve_intervals(coef, d)


def distance_at(
    queries: SegmentArray,
    entries: SegmentArray,
    qi: int,
    ei: int,
    t: np.ndarray,
) -> np.ndarray:
    """Exact distance between moving points of pair ``(qi, ei)`` at times
    ``t`` — a slow, obviously-correct helper used by the test suite to
    cross-check :func:`compare_pairs` by dense sampling."""
    t = np.asarray(t, dtype=np.float64)
    out = np.empty_like(t)
    qp0, qv, qts, _ = _interp_endpoints(queries, np.array([qi]))
    ep0, ev, ets, _ = _interp_endpoints(entries, np.array([ei]))
    for k, tk in enumerate(t):
        pq = qp0[0] + qv[0] * (tk - qts[0])
        pe = ep0[0] + ev[0] * (tk - ets[0])
        out[k] = float(np.linalg.norm(pq - pe))
    return out
