"""Continuous distance-threshold refinement for moving-point segments.

This is the paper's ``compare(D[entryID], Q[queryID])`` primitive
(Algorithms 1-3, line "result <- compare(...)").  Each 4-D line segment
describes a point moving at constant velocity during its temporal extent.
For a query segment ``q`` and an entry segment ``l`` the refinement must
return the (possibly empty) time interval during which the two moving
points are within Euclidean distance ``d`` of each other.

Mathematics
-----------
Restrict to the temporal overlap ``[t0, t1]`` of the two segments (empty
overlap => no result).  Within it, both positions are affine in ``t``, so
the displacement vector is affine, ``delta(t) = u + w t``, and the squared
distance is the quadratic

    f(t) = |w|^2 t^2 + 2 (u.w) t + |u|^2.

``f(t) <= d^2`` therefore holds on at most one closed interval, obtained
from the roots of ``f(t) - d^2``.  Intersecting with ``[t0, t1]`` yields
the reported interval.  Degenerate cases:

* ``|w| = 0`` (identical velocities, incl. two stationary points): the
  distance is constant — the answer is all of ``[t0, t1]`` or nothing.
* zero temporal extent (``t_start == t_end``): the segment is a point
  event; the overlap is at most an instant and the closed-interval
  semantics still apply.

Everything is vectorized over an arbitrary batch of (query, entry) pairs;
this one function is the computational kernel that dominates response time
in every engine, exactly as segment comparison dominates in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import SegmentArray

__all__ = ["compare_pairs", "PairIntervals"]

# Relative tolerance used when deciding whether the quadratic coefficient
# is numerically zero (parallel motion).  Scaled by the magnitude of the
# velocities involved so the test is unit-free.
_EPS = 1e-30


@dataclass(frozen=True)
class PairIntervals:
    """Result of refining a batch of (query, entry) candidate pairs.

    ``mask`` flags the pairs whose moving points come within ``d`` during
    their temporal overlap; ``t_lo``/``t_hi`` give the closed interval for
    those pairs (undefined where ``mask`` is False).
    """

    mask: np.ndarray
    t_lo: np.ndarray
    t_hi: np.ndarray

    def __len__(self) -> int:
        return int(self.mask.shape[0])

    @property
    def num_hits(self) -> int:
        return int(np.count_nonzero(self.mask))


def _interp_endpoints(seg: SegmentArray, idx: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
    """Return (p0, v, ts, te) for segments ``idx``: p(t) = p0 + v*(t-ts)."""
    p0 = np.stack([seg.xs[idx], seg.ys[idx], seg.zs[idx]], axis=1)
    p1 = np.stack([seg.xe[idx], seg.ye[idx], seg.ze[idx]], axis=1)
    ts = seg.ts[idx]
    te = seg.te[idx]
    dt = te - ts
    # Zero-extent segments are stationary points: velocity 0.
    v = np.divide(p1 - p0, dt[:, None],
                  out=np.zeros_like(p0), where=dt[:, None] > 0)
    return p0, v, ts, te


def compare_pairs(
    queries: SegmentArray,
    entries: SegmentArray,
    q_idx: np.ndarray,
    e_idx: np.ndarray,
    d: float,
    *,
    exclude_same_trajectory: bool = False,
) -> PairIntervals:
    """Refine candidate pairs ``(q_idx[i], e_idx[i])`` at threshold ``d``.

    Parameters
    ----------
    queries, entries:
        The query set ``Q`` and database ``D``.
    q_idx, e_idx:
        Equal-length integer arrays of row indices into ``queries`` and
        ``entries`` — the candidate pairs produced by an index.
    d:
        The query distance threshold (``d >= 0``).
    exclude_same_trajectory:
        When the query set is drawn from the database itself (the paper's
        astrophysics scenario ii), comparisons of a trajectory against its
        own segments are meaningless; this drops pairs whose trajectory ids
        match.

    Returns
    -------
    PairIntervals with one slot per input pair.
    """
    if d < 0:
        raise ValueError("query distance d must be non-negative")
    q_idx = np.asarray(q_idx, dtype=np.int64)
    e_idx = np.asarray(e_idx, dtype=np.int64)
    if q_idx.shape != e_idx.shape or q_idx.ndim != 1:
        raise ValueError("q_idx and e_idx must be equal-length 1-D arrays")
    n = q_idx.shape[0]
    if n == 0:
        z = np.zeros(0)
        return PairIntervals(np.zeros(0, dtype=bool), z, z)

    qp0, qv, qts, qte = _interp_endpoints(queries, q_idx)
    ep0, ev, ets, ete = _interp_endpoints(entries, e_idx)

    # Temporal overlap [t0, t1]; closed-interval semantics (touching counts).
    t0 = np.maximum(qts, ets)
    t1 = np.minimum(qte, ete)
    alive = t0 <= t1
    if exclude_same_trajectory:
        alive &= queries.traj_ids[q_idx] != entries.traj_ids[e_idx]

    # delta(t) = u + w t   with positions expressed as p0 + v*(t - ts).
    w = ev - qv
    u = (ep0 - qp0) - ev * ets[:, None] + qv * qts[:, None]

    a = np.einsum("ij,ij->i", w, w)
    b = 2.0 * np.einsum("ij,ij->i", u, w)
    c = np.einsum("ij,ij->i", u, u) - d * d

    t_lo = np.empty(n)
    t_hi = np.empty(n)
    mask = np.zeros(n, dtype=bool)

    # Case 1: constant relative distance (a == 0 numerically).
    const = alive & (a <= _EPS)
    hit_const = const & (c <= 0.0)
    t_lo[hit_const] = t0[hit_const]
    t_hi[hit_const] = t1[hit_const]
    mask[hit_const] = True

    # Case 2: genuine quadratic.  f <= 0 between the roots.
    quad = alive & (a > _EPS)
    if np.any(quad):
        aq, bq, cq = a[quad], b[quad], c[quad]
        disc = bq * bq - 4.0 * aq * cq
        has_roots = disc >= 0.0
        sq = np.sqrt(np.maximum(disc, 0.0))
        r_lo = (-bq - sq) / (2.0 * aq)
        r_hi = (-bq + sq) / (2.0 * aq)
        lo = np.maximum(r_lo, t0[quad])
        hi = np.minimum(r_hi, t1[quad])
        hit = has_roots & (lo <= hi)
        quad_idx = np.flatnonzero(quad)[hit]
        t_lo[quad_idx] = lo[hit]
        t_hi[quad_idx] = hi[hit]
        mask[quad_idx] = True

    return PairIntervals(mask, t_lo, t_hi)


def distance_at(
    queries: SegmentArray,
    entries: SegmentArray,
    qi: int,
    ei: int,
    t: np.ndarray,
) -> np.ndarray:
    """Exact distance between moving points of pair ``(qi, ei)`` at times
    ``t`` — a slow, obviously-correct helper used by the test suite to
    cross-check :func:`compare_pairs` by dense sampling."""
    t = np.asarray(t, dtype=np.float64)
    out = np.empty_like(t)
    qp0, qv, qts, _ = _interp_endpoints(queries, np.array([qi]))
    ep0, ev, ets, _ = _interp_endpoints(entries, np.array([ei]))
    for k, tk in enumerate(t):
        pq = qp0[0] + qv[0] * (tk - qts[0])
        pe = ep0[0] + ev[0] * (tk - ets[0])
        out[k] = float(np.linalg.norm(pq - pe))
    return out
