"""Cost-based engine selection: predict response times before searching.

The paper's conclusion is a decision rule — CPU for small/sparse,
GPUSpatioTemporal for large/dense unless ``d`` is small — that a user
must otherwise apply by hand.  This planner automates it: it estimates
each engine's per-query candidate count by *sampling* (a few dozen query
segments counted exactly against the database, O(sample x |D|) — far
cheaper than building an index or running a search), prices the counts
with the calibrated cost models, and returns ranked
:class:`PlanEstimate`s.

Sampling instead of closed-form density formulas matters: the Merger
dataset is heavily clustered, and any uniform-density estimate is off by
orders of magnitude exactly where engine choice is hardest.  The
accompanying tests verify the planner's *ranking* against measured
modeled times on the paper's scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.costmodel import CpuCostModel, GpuCostModel
from .types import SegmentArray

__all__ = ["PlanEstimate", "WorkloadStats", "plan_search"]


@dataclass(frozen=True)
class WorkloadStats:
    """Cheap (O(|D| + |Q|)) global statistics."""

    num_entries: int
    num_queries: int
    volume: float
    total_time: float
    mean_entry_extent_t: float
    mean_entry_extent_s: np.ndarray   # (3,)
    max_entry_extent_s: np.ndarray    # (3,)
    mean_query_extent_t: float
    mean_query_extent_s: np.ndarray   # (3,)
    side: np.ndarray                  # (3,)

    @classmethod
    def measure(cls, database: SegmentArray,
                queries: SegmentArray) -> "WorkloadStats":
        mins, maxs = database.spatial_bounds()
        side = np.maximum(maxs - mins, 1e-30)
        t_lo, t_hi = database.temporal_extent
        q_ext_s = np.stack([np.abs(queries.xe - queries.xs),
                            np.abs(queries.ye - queries.ys),
                            np.abs(queries.ze - queries.zs)], axis=1)
        e_ext_s = np.stack([np.abs(database.xe - database.xs),
                            np.abs(database.ye - database.ys),
                            np.abs(database.ze - database.zs)], axis=1)
        return cls(
            num_entries=len(database),
            num_queries=len(queries),
            volume=float(np.prod(side)),
            total_time=max(t_hi - t_lo, 1e-30),
            mean_entry_extent_t=float(np.mean(database.te - database.ts)),
            mean_entry_extent_s=e_ext_s.mean(axis=0),
            max_entry_extent_s=e_ext_s.max(axis=0),
            mean_query_extent_t=float(np.mean(queries.te - queries.ts)),
            mean_query_extent_s=q_ext_s.mean(axis=0),
            side=side,
        )

    @property
    def coexisting_entries(self) -> float:
        """Entries alive at a random instant."""
        return (self.num_entries * self.mean_entry_extent_t
                / self.total_time)


@dataclass(frozen=True)
class PlanEstimate:
    """One engine's predicted workload and response time."""

    engine: str
    params: dict
    est_candidates_per_query: float
    est_seconds: float

    def __repr__(self) -> str:  # compact, for ranked listings
        return (f"PlanEstimate({self.engine}, "
                f"~{self.est_candidates_per_query:.0f} cand/q, "
                f"~{self.est_seconds:.6f}s)")


@dataclass(frozen=True)
class _SampledSelectivity:
    """Mean per-query candidate counts measured on a query sample."""

    temporal: float
    spatiotemporal: float
    spatial: float
    rtree: float


def _sample_counts(database: SegmentArray, queries: SegmentArray,
                   d: float, *, num_bins: int, num_subbins: int,
                   cells_per_dim: int, segments_per_mbb: int,
                   sample: int, rng: np.random.Generator
                   ) -> _SampledSelectivity:
    """Count each engine's candidates exactly for sampled queries.

    One vectorized pass over the database per sampled query; mirrors
    each index's candidate rule without building the index.
    """
    n = len(database)
    take = rng.choice(len(queries), size=min(sample, len(queries)),
                      replace=False)
    mins, _ = database.spatial_bounds()
    stats = WorkloadStats.measure(database, queries)
    bin_width = stats.total_time / num_bins
    sub_w = stats.side / num_subbins
    cell = stats.side / cells_per_dim
    # Expected dead space on a random query/leaf alignment is half the
    # leaf's union extent on each side.
    leaf_s = stats.mean_entry_extent_s * segments_per_mbb / 2.0
    leaf_t = stats.mean_entry_extent_t * segments_per_mbb / 2.0
    # Spill: segments extend past their bin's nominal edge by up to
    # their own extent; candidate windows grow accordingly.
    max_spill = float((database.te - database.ts).max())

    d_lo = np.minimum(database.starts, database.ends)
    d_hi = np.maximum(database.starts, database.ends)

    c_t = c_st = c_sp = c_rt = 0.0
    for qi in take:
        q_lo3 = np.minimum(
            np.array([queries.xs[qi], queries.ys[qi], queries.zs[qi]]),
            np.array([queries.xe[qi], queries.ye[qi], queries.ze[qi]]))
        q_hi3 = np.maximum(
            np.array([queries.xs[qi], queries.ys[qi], queries.zs[qi]]),
            np.array([queries.xe[qi], queries.ye[qi], queries.ze[qi]]))
        qts, qte = queries.ts[qi], queries.te[qi]

        # GPUTemporal: bin-granular window with spill.
        t_mask = ((database.ts <= qte + bin_width)
                  & (database.ts >= qts - bin_width - max_spill))
        n_t = int(np.count_nonzero(t_mask))
        c_t += n_t

        # GPUSpatioTemporal: best single-subbin dimension among the
        # temporal candidates; default to temporal when every dimension
        # straddles a subbin boundary.
        best = None
        for dim in range(3):
            w_lo = q_lo3[dim] - d
            w_hi = q_hi3[dim] + d
            j_lo = int(np.clip((w_lo - mins[dim]) // sub_w[dim], 0,
                               num_subbins - 1))
            j_hi = int(np.clip((w_hi - mins[dim]) // sub_w[dim], 0,
                               num_subbins - 1))
            if j_lo != j_hi:
                continue
            sb_lo = mins[dim] + j_lo * sub_w[dim]
            sb_hi = sb_lo + sub_w[dim]
            cnt = int(np.count_nonzero(
                t_mask & (d_lo[:, dim] <= sb_hi)
                & (d_hi[:, dim] >= sb_lo)))
            best = cnt if best is None else min(best, cnt)
        c_st += n_t if best is None else best

        # GPUSpatial: cell-granular spatial overlap, all times, with
        # rasterization duplication (ids appear once per overlapped
        # cell the query probes).
        sp_mask = np.ones(n, dtype=bool)
        for dim in range(3):
            w_lo = q_lo3[dim] - d - cell[dim]
            w_hi = q_hi3[dim] + d + cell[dim]
            sp_mask &= (d_lo[:, dim] <= w_hi) & (d_hi[:, dim] >= w_lo)
        dup = float(np.prod(1.0 + stats.mean_entry_extent_s / cell))
        c_sp += np.count_nonzero(sp_mask) * min(dup, 8.0) ** 0.5

        # CPU-RTree: 4-D leaf overlap (leaf dead space in both space
        # and time), all r segments of each overlapping leaf.
        rt_mask = ((database.ts <= qte + leaf_t)
                   & (database.te >= qts - leaf_t))
        for dim in range(3):
            w_lo = q_lo3[dim] - d - leaf_s[dim]
            w_hi = q_hi3[dim] + d + leaf_s[dim]
            rt_mask &= (d_lo[:, dim] <= w_hi) & (d_hi[:, dim] >= w_lo)
        c_rt += int(np.count_nonzero(rt_mask))

    k = float(take.shape[0])
    return _SampledSelectivity(temporal=c_t / k, spatiotemporal=c_st / k,
                               spatial=c_sp / k, rtree=c_rt / k)


def _gpu_seconds(stats: WorkloadStats, cand_per_query: float,
                 model: GpuCostModel, *, gathers_per_query: float = 0.0
                 ) -> float:
    total_cmp = cand_per_query * stats.num_queries
    # Tail underutilization, mirroring the kernel cost model: a grid
    # with fewer warps than the device runs concurrently cannot fill it.
    ws = model.spec.warp_size
    grid_warps = max(1, -(-stats.num_queries // ws))
    concurrency = min(model.spec.concurrent_warps, grid_warps)
    compute = ((total_cmp * model.cycles_per_comparison
                + gathers_per_query * stats.num_queries
                * model.cycles_per_gather)
               / (concurrency * ws * model.spec.clock_hz))
    transfers = (stats.num_queries * 96) / model.spec.pcie_bandwidth
    return compute + transfers + model.spec.kernel_launch_s


def _cpu_seconds(stats: WorkloadStats, cand_per_query: float,
                 visits_per_query: float, model: CpuCostModel) -> float:
    thr = (model.spec.cores * model.spec.parallel_efficiency
           * model.spec.clock_hz)
    cycles = stats.num_queries * (
        cand_per_query * model.cycles_per_comparison
        + visits_per_query * model.cycles_per_node_visit
        + model.cycles_per_query_overhead)
    return cycles / thr


def plan_search(
    database: SegmentArray,
    queries: SegmentArray,
    d: float,
    *,
    num_bins: int = 1000,
    num_subbins: int = 4,
    cells_per_dim: int = 50,
    segments_per_mbb: int = 4,
    sample: int = 48,
    gpu_model: GpuCostModel | None = None,
    cpu_model: CpuCostModel | None = None,
    rng: np.random.Generator | None = None,
) -> list[PlanEstimate]:
    """Rank the engines for this workload, fastest predicted first."""
    if len(database) == 0 or len(queries) == 0:
        raise ValueError("planner needs a non-empty database and "
                         "query set")
    gpu_model = gpu_model or GpuCostModel()
    cpu_model = cpu_model or CpuCostModel()
    rng = rng or np.random.default_rng(0)
    stats = WorkloadStats.measure(database, queries)
    sel = _sample_counts(database, queries, d, num_bins=num_bins,
                         num_subbins=num_subbins,
                         cells_per_dim=cells_per_dim,
                         segments_per_mbb=segments_per_mbb,
                         sample=sample, rng=rng)

    probes = float(np.prod(np.ceil(
        (stats.mean_query_extent_s + 2.0 * d)
        / (stats.side / cells_per_dim)) + 1.0))
    # Node *expansions* per query: one per tree level on the main
    # descent path plus one per touched leaf node.
    leaves = max(stats.num_entries / segments_per_mbb, 1.0)
    visits = (np.log(leaves) / np.log(16) + 1.0
              + sel.rtree / (segments_per_mbb * 16.0))

    plans = [
        PlanEstimate("gpu_temporal", {"num_bins": num_bins},
                     sel.temporal,
                     _gpu_seconds(stats, sel.temporal, gpu_model)),
        PlanEstimate("gpu_spatiotemporal",
                     {"num_bins": num_bins, "num_subbins": num_subbins},
                     sel.spatiotemporal,
                     _gpu_seconds(stats, sel.spatiotemporal, gpu_model,
                                  gathers_per_query=sel.spatiotemporal)),
        PlanEstimate("gpu_spatial", {"cells_per_dim": cells_per_dim},
                     sel.spatial,
                     _gpu_seconds(
                         stats, sel.spatial, gpu_model,
                         gathers_per_query=sel.spatial + probes
                         * np.log2(max(stats.num_entries, 2)))),
        PlanEstimate("cpu_rtree",
                     {"segments_per_mbb": segments_per_mbb},
                     sel.rtree,
                     _cpu_seconds(stats, sel.rtree, visits, cpu_model)),
    ]
    return sorted(plans, key=lambda p: p.est_seconds)
