"""Core types, geometry, refinement and the public search façade."""

from .analysis import (co_travel_time, interaction_groups, most_exposed,
                       proximity_graph)
from .bruteforce import brute_force_search
from .distance import PairIntervals, compare_pairs
from .geometry import MBB, expand, mbb_min_distance, overlaps, segment_mbbs
from .knn import KnnResult, TrajectoryKnn, knn_brute_force
from .planner import PlanEstimate, WorkloadStats, plan_search
from .result import ResultSet, merge_intervals
from .search import (DistanceThresholdSearch, ENGINE_REGISTRY,
                     SearchOutcome, register_engine)
from .types import SegmentArray, Trajectory, concatenate
from .verify import VerificationReport, verify_results

__all__ = [
    "DistanceThresholdSearch", "ENGINE_REGISTRY", "KnnResult", "MBB",
    "PairIntervals", "PlanEstimate", "ResultSet", "SearchOutcome",
    "SegmentArray", "Trajectory", "TrajectoryKnn", "VerificationReport",
    "WorkloadStats", "brute_force_search", "co_travel_time",
    "compare_pairs", "concatenate", "expand", "interaction_groups",
    "knn_brute_force", "mbb_min_distance", "merge_intervals",
    "most_exposed", "overlaps", "plan_search", "proximity_graph",
    "register_engine", "segment_mbbs", "verify_results",
]
