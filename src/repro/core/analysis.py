"""Result-set analysis: proximity graphs over trajectories.

A distance-threshold result set induces a graph on trajectories — nodes
are moving objects, edges connect pairs that came within ``d``, weighted
by total co-proximity time.  Several of the paper's motivating questions
are graph questions in disguise: stellar "interaction groups" are the
connected components; the most perturbation-exposed star is the node
with the greatest weighted degree; convoys are long-dwell edges.

Built on :mod:`networkx` so downstream users get its whole algorithm
library on top of the search results.
"""

from __future__ import annotations

import networkx as nx

from .result import ResultSet, merge_intervals
from .types import SegmentArray

__all__ = ["proximity_graph", "interaction_groups",
           "most_exposed", "co_travel_time"]


def proximity_graph(results: ResultSet, queries: SegmentArray,
                    entries: SegmentArray, *,
                    min_dwell: float = 0.0) -> nx.Graph:
    """Build the trajectory proximity graph from a result set.

    Nodes are trajectory ids; an undirected edge ``(a, b)`` carries:

    * ``weight`` — total time within the threshold (merged intervals);
    * ``episodes`` — number of disjoint proximity episodes;
    * ``first_contact`` — earliest approach time.

    Self-pairs are ignored.  ``min_dwell`` drops edges whose cumulative
    proximity time is shorter (GPS noise suppression).
    """
    q_map = {int(s): int(t) for s, t in zip(queries.seg_ids,
                                            queries.traj_ids)}
    e_map = {int(s): int(t) for s, t in zip(entries.seg_ids,
                                            entries.traj_ids)}
    buckets: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for q, e, lo, hi in zip(results.q_ids.tolist(),
                            results.e_ids.tolist(),
                            results.t_lo.tolist(),
                            results.t_hi.tolist()):
        a, b = q_map[q], e_map[e]
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        buckets.setdefault(key, []).append((lo, hi))

    graph = nx.Graph()
    graph.add_nodes_from(sorted(set(q_map.values())
                                | set(e_map.values())))
    for (a, b), raw in buckets.items():
        merged = merge_intervals(raw)
        dwell = sum(hi - lo for lo, hi in merged)
        if dwell < min_dwell:
            continue
        graph.add_edge(a, b, weight=dwell, episodes=len(merged),
                       first_contact=merged[0][0])
    return graph


def interaction_groups(graph: nx.Graph, *,
                       min_size: int = 2) -> list[set[int]]:
    """Connected components with at least one edge, largest first."""
    groups = [set(c) for c in nx.connected_components(graph)
              if len(c) >= min_size]
    return sorted(groups, key=len, reverse=True)


def most_exposed(graph: nx.Graph, n: int = 5) -> list[tuple[int, float]]:
    """Trajectories ranked by total co-proximity time (weighted degree)."""
    degrees = graph.degree(weight="weight")
    ranked = sorted(degrees, key=lambda kv: -kv[1])
    return [(int(node), float(w)) for node, w in ranked[:n] if w > 0]


def co_travel_time(graph: nx.Graph, a: int, b: int) -> float:
    """Total time trajectories ``a`` and ``b`` spent within threshold."""
    if graph.has_edge(a, b):
        return float(graph[a][b]["weight"])
    return 0.0
