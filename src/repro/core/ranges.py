"""Flat range expansion — the workhorse of whole-batch candidate gathers.

Every index in this codebase describes a thread's candidates as row
*ranges*; the vectorized execution paths flatten many ranges into one
candidate array in a single pass instead of per-thread ``arange`` +
``concatenate`` loops.
"""

from __future__ import annotations

import numpy as np

__all__ = ["expand_ranges"]


def expand_ranges(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i]+lens[i])`` vectorized."""
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    out = np.arange(total, dtype=np.int64)
    shift = np.repeat(np.cumsum(lens) - lens, lens)
    return out - shift + np.repeat(starts, lens)
