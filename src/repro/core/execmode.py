"""Execution-mode switch: whole-batch vectorized vs per-thread reference.

The production path executes each kernel invocation as a few whole-batch
NumPy passes over all live threads at once (``"batch"``).  The original
per-thread/per-block execution is retained as ``"perthread"`` — a slow
reference that processes one logical thread at a time, exactly like the
pre-vectorization engines did.  Both paths must produce byte-identical
results *and* identical per-thread op counts (``KernelStats``); the
equivalence suite in ``tests/test_batch_equivalence.py`` pins that
contract across all five engines.

The switch is a :class:`~contextvars.ContextVar` so tests can flip it
without threading a parameter through every engine layer.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["current_execution_mode", "execution_mode", "EXECUTION_MODES"]

EXECUTION_MODES = ("batch", "perthread")

_MODE: ContextVar[str] = ContextVar("repro_execution_mode",
                                    default="batch")


def current_execution_mode() -> str:
    """The ambient execution mode (``"batch"`` unless overridden)."""
    return _MODE.get()


@contextmanager
def execution_mode(mode: str):
    """Run the enclosed block under ``mode``.

    ``"batch"`` is the vectorized production path; ``"perthread"`` is the
    legacy one-logical-thread-at-a-time reference implementation.
    """
    if mode not in EXECUTION_MODES:
        raise ValueError(f"unknown execution mode {mode!r}; "
                         f"expected one of {EXECUTION_MODES}")
    token = _MODE.set(mode)
    try:
        yield
    finally:
        _MODE.reset(token)
