"""Core data types for spatiotemporal trajectory databases.

The paper (Section III) defines the database ``D`` as a set of *entry line
segments*: 4-dimensional (3 spatial + 1 temporal) line segments, each with
a spatiotemporal start point, end point, a segment id and a trajectory id.
A segment describes one object moving at constant velocity during its
temporal extent ``[t_start, t_end]``.

For GPU-friendliness (and NumPy-friendliness) the database is stored as a
structure-of-arrays: one contiguous ``float64`` array per coordinate.  This
mirrors the layout the paper uses in device global memory, where coalesced
access requires neighbouring threads to read neighbouring addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["SegmentArray", "Trajectory", "concatenate"]


@dataclass(frozen=True)
class Trajectory:
    """A single trajectory: a time-ordered polyline of observed positions.

    Parameters
    ----------
    traj_id:
        Application-level identifier of the moving object.
    times:
        Strictly increasing array of ``k`` observation times.
    positions:
        ``(k, 3)`` array of positions, one row per observation.
    """

    traj_id: int
    times: np.ndarray
    positions: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        positions = np.asarray(self.positions, dtype=np.float64)
        if times.ndim != 1:
            raise ValueError("times must be a 1-D array")
        if positions.shape != (times.shape[0], 3):
            raise ValueError(
                f"positions must have shape ({times.shape[0]}, 3), "
                f"got {positions.shape}"
            )
        if times.shape[0] >= 2 and not np.all(np.diff(times) > 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "positions", positions)

    @property
    def num_points(self) -> int:
        return int(self.times.shape[0])

    @property
    def num_segments(self) -> int:
        return max(0, self.num_points - 1)

    def position_at(self, t: float) -> np.ndarray:
        """Linearly interpolate the object's position at time ``t``.

        ``t`` must lie within the trajectory's temporal extent.
        """
        if not (self.times[0] <= t <= self.times[-1]):
            raise ValueError(f"t={t} outside temporal extent "
                             f"[{self.times[0]}, {self.times[-1]}]")
        j = int(np.searchsorted(self.times, t, side="right"))
        j = min(max(j, 1), self.num_points - 1)
        t0, t1 = self.times[j - 1], self.times[j]
        w = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
        return (1.0 - w) * self.positions[j - 1] + w * self.positions[j]


class SegmentArray:
    """Structure-of-arrays container for 4-D trajectory line segments.

    Every segment ``i`` is the straight-line motion from
    ``(xs[i], ys[i], zs[i])`` at time ``ts[i]`` to ``(xe[i], ye[i], ze[i])``
    at time ``te[i]``.  ``traj_ids[i]`` records which trajectory the segment
    belongs to and ``seg_ids[i]`` is a database-wide unique segment id (the
    paper's *entry id*).

    Instances are immutable by convention: all arrays are flagged
    non-writeable at construction, and reordering operations return new
    instances.
    """

    _FIELDS = ("xs", "ys", "zs", "ts", "xe", "ye", "ze", "te")

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        zs: np.ndarray,
        ts: np.ndarray,
        xe: np.ndarray,
        ye: np.ndarray,
        ze: np.ndarray,
        te: np.ndarray,
        traj_ids: np.ndarray,
        seg_ids: np.ndarray | None = None,
    ) -> None:
        arrays = [np.ascontiguousarray(a, dtype=np.float64)
                  for a in (xs, ys, zs, ts, xe, ye, ze, te)]
        n = arrays[0].shape[0]
        for name, a in zip(self._FIELDS, arrays):
            if a.shape != (n,):
                raise ValueError(f"{name} must be 1-D of length {n}, "
                                 f"got shape {a.shape}")
        traj_ids = np.ascontiguousarray(traj_ids, dtype=np.int64)
        if traj_ids.shape != (n,):
            raise ValueError("traj_ids length mismatch")
        if seg_ids is None:
            seg_ids = np.arange(n, dtype=np.int64)
        else:
            seg_ids = np.ascontiguousarray(seg_ids, dtype=np.int64)
            if seg_ids.shape != (n,):
                raise ValueError("seg_ids length mismatch")
        if np.any(arrays[7] < arrays[3]):
            raise ValueError("segments must satisfy t_end >= t_start")

        (self.xs, self.ys, self.zs, self.ts,
         self.xe, self.ye, self.ze, self.te) = arrays
        self.traj_ids = traj_ids
        self.seg_ids = seg_ids
        for a in (*arrays, traj_ids, seg_ids):
            a.flags.writeable = False

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls) -> "SegmentArray":
        z = np.zeros(0)
        return cls(z, z, z, z, z, z, z, z, np.zeros(0, dtype=np.int64))

    @classmethod
    def from_trajectories(
        cls, trajectories: Iterable[Trajectory]
    ) -> "SegmentArray":
        """Decompose polylines into the flat entry-segment database."""
        xs, ys, zs, ts = [], [], [], []
        xe, ye, ze, te = [], [], [], []
        tids = []
        for traj in trajectories:
            p, t = traj.positions, traj.times
            if traj.num_segments == 0:
                continue
            xs.append(p[:-1, 0]); ys.append(p[:-1, 1]); zs.append(p[:-1, 2])
            xe.append(p[1:, 0]); ye.append(p[1:, 1]); ze.append(p[1:, 2])
            ts.append(t[:-1]); te.append(t[1:])
            tids.append(np.full(traj.num_segments, traj.traj_id,
                                dtype=np.int64))
        if not xs:
            return cls.empty()
        cat = np.concatenate
        return cls(cat(xs), cat(ys), cat(zs), cat(ts),
                   cat(xe), cat(ye), cat(ze), cat(te), cat(tids))

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return int(self.xs.shape[0])

    def __repr__(self) -> str:
        return (f"SegmentArray(n={len(self)}, "
                f"trajectories={self.num_trajectories})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SegmentArray):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, f), getattr(other, f))
            for f in (*self._FIELDS, "traj_ids", "seg_ids")
        )

    @property
    def num_trajectories(self) -> int:
        if len(self) == 0:
            return 0
        return int(np.unique(self.traj_ids).shape[0])

    # -- derived geometry --------------------------------------------------

    def velocities(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-segment constant velocity ``(vx, vy, vz)``, cached.

        Zero-extent segments are stationary points (velocity 0).  Because
        instances are immutable, the arrays are computed once per
        SegmentArray and shared by every kernel invocation that refines
        against it — part of the structure-of-arrays segment store the
        whole-batch execution path reads (no per-call ``(n, 3)``
        temporaries).
        """
        cached = getattr(self, "_velocities", None)
        if cached is None:
            dt = self.te - self.ts
            moving = dt > 0
            cached = tuple(
                np.divide(e - s, dt, out=np.zeros(len(self)), where=moving)
                for s, e in ((self.xs, self.xe), (self.ys, self.ye),
                             (self.zs, self.ze)))
            for a in cached:
                a.flags.writeable = False
            self._velocities = cached
        return cached

    @property
    def starts(self) -> np.ndarray:
        """``(n, 3)`` array of spatial start points."""
        return np.stack([self.xs, self.ys, self.zs], axis=1)

    @property
    def ends(self) -> np.ndarray:
        """``(n, 3)`` array of spatial end points."""
        return np.stack([self.xe, self.ye, self.ze], axis=1)

    @property
    def temporal_extent(self) -> tuple[float, float]:
        """``(t_min, t_max)`` over the whole database (paper §IV-B)."""
        if len(self) == 0:
            raise ValueError("empty SegmentArray has no temporal extent")
        return float(self.ts.min()), float(self.te.max())

    def spatial_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-dimension ``(mins, maxs)`` over all segment endpoints."""
        if len(self) == 0:
            raise ValueError("empty SegmentArray has no spatial bounds")
        mins = np.array([
            min(self.xs.min(), self.xe.min()),
            min(self.ys.min(), self.ye.min()),
            min(self.zs.min(), self.ze.min()),
        ])
        maxs = np.array([
            max(self.xs.max(), self.xe.max()),
            max(self.ys.max(), self.ye.max()),
            max(self.zs.max(), self.ze.max()),
        ])
        return mins, maxs

    def max_spatial_extent(self) -> np.ndarray:
        """Per-dimension maximum segment extent (paper §IV-C.1).

        e.g. ``max_i |x_start_i - x_end_i|`` for the x dimension.  This
        bounds the admissible spatial subbin count of GPUSpatioTemporal.
        """
        return np.array([
            np.abs(self.xs - self.xe).max(initial=0.0),
            np.abs(self.ys - self.ye).max(initial=0.0),
            np.abs(self.zs - self.ze).max(initial=0.0),
        ])

    # -- reordering / selection ---------------------------------------------

    def take(self, idx: np.ndarray) -> "SegmentArray":
        """Return a new SegmentArray with rows ``idx`` (keeps seg_ids)."""
        return SegmentArray(
            self.xs[idx], self.ys[idx], self.zs[idx], self.ts[idx],
            self.xe[idx], self.ye[idx], self.ze[idx], self.te[idx],
            self.traj_ids[idx], self.seg_ids[idx],
        )

    def sorted_by_start_time(self) -> "SegmentArray":
        """Entries sorted by ascending ``t_start`` (GPUTemporal pre-pass)."""
        order = np.argsort(self.ts, kind="stable")
        return self.take(order)

    def iter_rows(self) -> Iterator[tuple]:
        """Yield ``(seg_id, traj_id, start(3,), end(3,), ts, te)`` rows.

        Intended for tests and examples; hot paths must stay vectorized.
        """
        for i in range(len(self)):
            yield (int(self.seg_ids[i]), int(self.traj_ids[i]),
                   self.starts[i], self.ends[i],
                   float(self.ts[i]), float(self.te[i]))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation (plain lists, one per column)."""
        payload = {f: getattr(self, f).tolist() for f in self._FIELDS}
        payload["traj_ids"] = self.traj_ids.tolist()
        payload["seg_ids"] = self.seg_ids.tolist()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentArray":
        """Inverse of :meth:`to_dict`."""
        return cls(
            *(np.asarray(payload[f], dtype=np.float64)
              for f in cls._FIELDS),
            traj_ids=np.asarray(payload["traj_ids"], dtype=np.int64),
            seg_ids=np.asarray(payload["seg_ids"], dtype=np.int64),
        )

    # -- memory accounting ---------------------------------------------------

    def nbytes(self) -> int:
        """Device-memory footprint if resident on the (virtual) GPU."""
        return sum(getattr(self, f).nbytes for f in self._FIELDS) \
            + self.traj_ids.nbytes + self.seg_ids.nbytes


def concatenate(parts: Sequence[SegmentArray]) -> SegmentArray:
    """Concatenate several SegmentArrays (used by the cluster partitioner)."""
    parts = [p for p in parts if len(p) > 0]
    if not parts:
        return SegmentArray.empty()
    cat = np.concatenate
    return SegmentArray(
        cat([p.xs for p in parts]), cat([p.ys for p in parts]),
        cat([p.zs for p in parts]), cat([p.ts for p in parts]),
        cat([p.xe for p in parts]), cat([p.ye for p in parts]),
        cat([p.ze for p in parts]), cat([p.te for p in parts]),
        cat([p.traj_ids for p in parts]), cat([p.seg_ids for p in parts]),
    )
