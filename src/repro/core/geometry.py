"""Minimum bounding boxes and related spatial predicates.

The indexing schemes of the paper all reason about segments through their
spatial Minimum Bounding Boxes (MBBs, §IV-A.1): GPUSpatial rasterizes entry
MBBs onto the flat grid, GPUSpatioTemporal assigns segments to spatial
subbins by per-dimension MBB overlap, and CPU-RTree stores ``r`` consecutive
segments per (4-D) MBB.

All routines are vectorized over ``n`` boxes at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import SegmentArray

__all__ = [
    "MBB",
    "segment_mbbs",
    "expand",
    "overlaps",
    "point_segment_distance",
    "mbb_min_distance",
]


@dataclass(frozen=True)
class MBB:
    """A batch of axis-aligned boxes: ``lo``/``hi`` are ``(n, k)`` arrays.

    ``k`` is 3 for spatial boxes and 4 for spatiotemporal boxes (the R-tree
    uses 4-D MBBs with time as the fourth axis).
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.atleast_2d(np.asarray(self.lo, dtype=np.float64))
        hi = np.atleast_2d(np.asarray(self.hi, dtype=np.float64))
        if lo.shape != hi.shape:
            raise ValueError("lo/hi shape mismatch")
        if np.any(hi < lo):
            raise ValueError("MBB requires hi >= lo in every dimension")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    @property
    def ndim(self) -> int:
        return int(self.lo.shape[1])

    def union(self) -> "MBB":
        """The single box covering the whole batch."""
        return MBB(self.lo.min(axis=0, keepdims=True),
                   self.hi.max(axis=0, keepdims=True))

    def volume(self) -> np.ndarray:
        return np.prod(self.hi - self.lo, axis=1)

    def centers(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    def take(self, idx: np.ndarray) -> "MBB":
        return MBB(self.lo[idx], self.hi[idx])


def segment_mbbs(segments: SegmentArray, *, temporal: bool = False) -> MBB:
    """Per-segment MBBs: spatial (3-D) or spatiotemporal (4-D).

    A segment's spatial MBB is the box spanned by its two endpoints; a
    moving point on the segment never leaves it because motion is linear.
    """
    lo3 = np.minimum(segments.starts, segments.ends)
    hi3 = np.maximum(segments.starts, segments.ends)
    if not temporal:
        return MBB(lo3, hi3)
    lo = np.concatenate([lo3, segments.ts[:, None]], axis=1)
    hi = np.concatenate([hi3, segments.te[:, None]], axis=1)
    return MBB(lo, hi)


def expand(boxes: MBB, margin: float, *, spatial_only: bool = True) -> MBB:
    """Grow boxes by ``margin`` on every side.

    Distance-threshold search requires the *query* MBB to be enlarged by the
    query distance ``d`` before probing any spatial index; otherwise entries
    within distance ``d`` but outside the raw MBB would be missed.  For 4-D
    boxes, ``spatial_only=True`` leaves the temporal axis untouched (time is
    never blurred by ``d``).
    """
    if margin < 0:
        raise ValueError("margin must be non-negative")
    delta = np.full(boxes.ndim, float(margin))
    if spatial_only and boxes.ndim > 3:
        delta[3:] = 0.0
    return MBB(boxes.lo - delta, boxes.hi + delta)


def overlaps(a: MBB, b: MBB) -> np.ndarray:
    """Pairwise overlap test between two equal-length batches.

    Returns a boolean array of length ``n``; boxes touching at a face count
    as overlapping (closed boxes), matching the inclusive interval
    semantics of the search.
    """
    if len(a) != len(b):
        raise ValueError("batch length mismatch")
    return np.all((a.lo <= b.hi) & (b.lo <= a.hi), axis=1)


def overlaps_one_to_many(one: MBB, many: MBB) -> np.ndarray:
    """Overlap of a single box against a batch (broadcast form)."""
    if len(one) != 1:
        raise ValueError("first argument must contain exactly one box")
    return np.all((one.lo <= many.hi) & (many.lo <= one.hi), axis=1)


def point_segment_distance(p: np.ndarray, a: np.ndarray,
                           b: np.ndarray) -> np.ndarray:
    """Euclidean distance from points ``p`` to *static* segments ``ab``.

    All arguments are ``(n, 3)``.  Used by tests as an independent check of
    purely-spatial proximity (the search itself uses the continuous
    moving-point solver in :mod:`repro.core.distance`).
    """
    ab = b - a
    ap = p - a
    denom = np.einsum("ij,ij->i", ab, ab)
    tpar = np.divide(np.einsum("ij,ij->i", ap, ab), denom,
                     out=np.zeros_like(denom), where=denom > 0)
    tpar = np.clip(tpar, 0.0, 1.0)
    closest = a + tpar[:, None] * ab
    return np.linalg.norm(p - closest, axis=1)


def mbb_min_distance(a: MBB, b: MBB) -> np.ndarray:
    """Pairwise minimum distance between boxes (0 when overlapping).

    Spatial dimensions only — for 4-D boxes the caller must first check
    temporal overlap separately.
    """
    if len(a) != len(b):
        raise ValueError("batch length mismatch")
    k = min(a.ndim, 3)
    gap = np.maximum.reduce([
        a.lo[:, :k] - b.hi[:, :k],
        b.lo[:, :k] - a.hi[:, :k],
        np.zeros((len(a), k)),
    ])
    return np.linalg.norm(gap, axis=1)
