"""Public façade: one entry point over all engines.

Typical use::

    from repro import DistanceThresholdSearch, random_dataset

    db = random_dataset(scale=0.05)
    search = DistanceThresholdSearch(db, method="gpu_spatiotemporal",
                                     num_bins=1000, num_subbins=4)
    outcome = search.run(queries, d=5.0)
    outcome.results          # the ResultSet
    outcome.modeled_seconds  # response time under the machine model
    outcome.profile          # raw operation counts

Engines are constructed lazily but cached: the index build is the offline
phase (excluded from response time, §V-B) and is reused across ``run``
calls, exactly like a database that is indexed once and queried many
times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..engines.base import SearchEngine
from ..engines.cpu_rtree import CpuRTreeEngine
from ..engines.cpu_scan import CpuScanEngine
from ..engines.gpu_spatial import GpuSpatialEngine
from ..engines.gpu_spatiotemporal import GpuSpatioTemporalEngine
from ..engines.gpu_temporal import GpuTemporalEngine
from ..gpu.costmodel import CostBreakdown, CpuCostModel, GpuCostModel
from ..gpu.profiler import CpuSearchProfile, SearchProfile
from .result import ResultSet
from .types import SegmentArray

__all__ = ["DistanceThresholdSearch", "SearchOutcome", "ENGINE_REGISTRY"]

#: method name -> engine class; extended by registering new engines.
ENGINE_REGISTRY: dict[str, type[SearchEngine]] = {
    "gpu_spatial": GpuSpatialEngine,
    "gpu_temporal": GpuTemporalEngine,
    "gpu_spatiotemporal": GpuSpatioTemporalEngine,
    "cpu_rtree": CpuRTreeEngine,
    "cpu_scan": CpuScanEngine,
}


@dataclass(frozen=True)
class SearchOutcome:
    """Everything one search produced."""

    results: ResultSet
    profile: SearchProfile | CpuSearchProfile
    modeled: CostBreakdown

    @property
    def modeled_seconds(self) -> float:
        return self.modeled.total


class DistanceThresholdSearch:
    """Distance-threshold similarity search over a trajectory database.

    Parameters
    ----------
    database:
        The entry-segment database ``D``.
    method:
        One of ``ENGINE_REGISTRY``:``"gpu_spatial"``, ``"gpu_temporal"``,
        ``"gpu_spatiotemporal"`` (default — the paper's best overall), or
        ``"cpu_rtree"``.
    gpu_model, cpu_model:
        Cost models used to convert profiles to modeled seconds; defaults
        model the paper's Tesla C2075 and Xeon W3690.
    **engine_params:
        Forwarded to the engine constructor (e.g. ``num_bins``,
        ``num_subbins``, ``cells_per_dim``, ``segments_per_mbb``,
        ``result_buffer_items``).
    """

    def __init__(self, database: SegmentArray, *,
                 method: str = "gpu_spatiotemporal",
                 gpu_model: GpuCostModel | None = None,
                 cpu_model: CpuCostModel | None = None,
                 **engine_params: Any) -> None:
        if method not in ENGINE_REGISTRY:
            raise ValueError(
                f"unknown method {method!r}; available: "
                f"{sorted(ENGINE_REGISTRY)}")
        self.method = method
        self.database = database
        self.gpu_model = gpu_model or GpuCostModel()
        self.cpu_model = cpu_model or CpuCostModel()
        self.engine: SearchEngine = ENGINE_REGISTRY[method](
            database, **engine_params)

    def run(self, queries: SegmentArray, d: float, *,
            exclude_same_trajectory: bool = False) -> SearchOutcome:
        """Execute the search and price it under the machine model."""
        results, profile = self.engine.search(
            queries, d, exclude_same_trajectory=exclude_same_trajectory)
        if isinstance(profile, CpuSearchProfile):
            modeled = profile.modeled_time(self.cpu_model)
        else:
            modeled = profile.modeled_time(self.gpu_model)
        return SearchOutcome(results=results, profile=profile,
                             modeled=modeled)
