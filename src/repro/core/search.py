"""Public façade: one entry point over all engines.

Typical use::

    from repro import DistanceThresholdSearch, random_dataset

    db = random_dataset(scale=0.05)
    search = DistanceThresholdSearch(db, method="gpu_spatiotemporal",
                                     num_bins=1000, num_subbins=4)
    outcome = search.run(queries, d=5.0)
    outcome.results          # the ResultSet
    outcome.modeled_seconds  # response time under the machine model
    outcome.profile          # raw operation counts

Engine parameters are validated against the typed per-engine configs in
:mod:`repro.engines.config`; a misspelled knob raises
:class:`~repro.engines.config.ConfigError` naming the engine and the
nearest valid key, instead of dying somewhere inside the constructor.
Alternatively pass a config object directly::

    from repro.engines.config import GpuSpatioTemporalConfig
    search = DistanceThresholdSearch(
        db, method="gpu_spatiotemporal",
        config=GpuSpatioTemporalConfig(num_bins=1000, num_subbins=4))

Engines are constructed lazily but cached: the index build is the offline
phase (excluded from response time, §V-B) and is reused across ``run``
calls, exactly like a database that is indexed once and queried many
times.

Third-party engines register through the :func:`register_engine`
decorator::

    @register_engine("my_engine")
    class MyEngine(SearchEngine):
        ...

Enumerate engines with :func:`repro.engines.available` and resolve a
name with :func:`repro.engines.get_engine`; the historical
``ENGINE_REGISTRY`` mapping remains importable from here as a read-only
view that emits a ``DeprecationWarning`` on every read.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engines.base import SearchEngine
from ..engines.config import EngineConfig
from ..engines.registry import (ENGINE_REGISTRY, available, get_engine,
                                register_engine)
from ..gpu.costmodel import CostBreakdown, CpuCostModel, GpuCostModel
from ..gpu.device import VirtualGPU
from ..gpu.profiler import CpuSearchProfile, SearchProfile
from .result import ResultSet
from .types import SegmentArray

__all__ = ["DistanceThresholdSearch", "SearchOutcome", "ENGINE_REGISTRY",
           "register_engine"]


@dataclass(frozen=True)
class SearchOutcome:
    """Everything one search produced."""

    results: ResultSet
    profile: SearchProfile | CpuSearchProfile
    modeled: CostBreakdown

    @property
    def modeled_seconds(self) -> float:
        return self.modeled.total

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation (service responses and
        ``results/`` artifacts share this serialization)."""
        return {
            "results": self.results.to_dict(),
            "profile": self.profile.to_dict(),
            "modeled": self.modeled.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchOutcome":
        """Inverse of :meth:`to_dict`."""
        prof = payload["profile"]
        profile_cls = (CpuSearchProfile if prof.get("kind") == "cpu"
                       else SearchProfile)
        return cls(
            results=ResultSet.from_dict(payload["results"]),
            profile=profile_cls.from_dict(prof),
            modeled=CostBreakdown.from_dict(payload["modeled"]),
        )


class DistanceThresholdSearch:
    """Distance-threshold similarity search over a trajectory database.

    Parameters
    ----------
    database:
        The entry-segment database ``D``.
    method:
        One of :func:`repro.engines.available`: ``"gpu_spatial"``,
        ``"gpu_temporal"``,
        ``"gpu_spatiotemporal"`` (default — the paper's best overall),
        ``"cpu_rtree"`` or ``"cpu_scan"``.
    config:
        A typed engine config (see :mod:`repro.engines.config`); mutually
        exclusive with ``**engine_params``.
    gpu:
        Place a GPU engine on a specific :class:`VirtualGPU` (the query
        service uses this to pin engines to pool devices).
    gpu_model, cpu_model:
        Cost models used to convert profiles to modeled seconds; defaults
        model the paper's Tesla C2075 and Xeon W3690.
    **engine_params:
        Engine tuning knobs (e.g. ``num_bins``, ``num_subbins``,
        ``cells_per_dim``, ``segments_per_mbb``,
        ``result_buffer_items``), validated against the engine's typed
        config; unknown keys raise
        :class:`~repro.engines.config.ConfigError`.
    """

    def __init__(self, database: SegmentArray, *,
                 method: str = "gpu_spatiotemporal",
                 config: EngineConfig | None = None,
                 gpu: VirtualGPU | None = None,
                 gpu_model: GpuCostModel | None = None,
                 cpu_model: CpuCostModel | None = None,
                 **engine_params) -> None:
        if method not in available():
            raise ValueError(
                f"unknown method {method!r}; available: "
                f"{sorted(available())}")
        self.method = method
        self.database = database
        self.gpu_model = gpu_model or GpuCostModel()
        self.cpu_model = cpu_model or CpuCostModel()
        self.engine: SearchEngine = get_engine(method).from_config(
            database, config, gpu=gpu, **engine_params)

    def run(self, queries: SegmentArray, d: float, *,
            exclude_same_trajectory: bool = False) -> SearchOutcome:
        """Execute the search and price it under the machine model."""
        results, profile = self.engine.search(
            queries, d, exclude_same_trajectory=exclude_same_trajectory)
        if isinstance(profile, CpuSearchProfile):
            modeled = profile.modeled_time(self.cpu_model)
        else:
            modeled = profile.modeled_time(self.gpu_model)
        return SearchOutcome(results=results, profile=profile,
                             modeled=modeled)
