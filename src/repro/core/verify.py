"""Independent result verification.

Engines are tested against brute force in the test suite, but a
downstream user running a new workload deserves a runtime check too.
This module verifies a result set against the database it came from,
without trusting any engine internals:

* **soundness** — every reported ``(q, e, [t_lo, t_hi])`` satisfies the
  distance bound at sampled instants of its interval;
* **completeness (spot check)** — random (query, entry) pairs are
  refined directly; any hit must appear in the result set;
* **interval sanity** — intervals lie inside both segments' temporal
  extents.

Exposed on the CLI as part of ``search --verify``-style workflows and
used by the integration tests as a second, engine-independent oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .distance import compare_pairs, distance_at
from .result import ResultSet
from .types import SegmentArray

__all__ = ["VerificationReport", "verify_results"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a verification pass."""

    items_checked: int
    pairs_spot_checked: int
    soundness_violations: list[tuple[int, int]] = field(
        default_factory=list)
    completeness_violations: list[tuple[int, int]] = field(
        default_factory=list)
    interval_violations: list[tuple[int, int]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.soundness_violations
                    or self.completeness_violations
                    or self.interval_violations)

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise AssertionError(
                f"verification failed: "
                f"{len(self.soundness_violations)} soundness, "
                f"{len(self.completeness_violations)} completeness, "
                f"{len(self.interval_violations)} interval violations")


def verify_results(
    results: ResultSet,
    queries: SegmentArray,
    database: SegmentArray,
    d: float,
    *,
    exclude_same_trajectory: bool = False,
    max_items: int = 2_000,
    spot_pairs: int = 2_000,
    samples_per_interval: int = 7,
    rng: np.random.Generator | None = None,
    tol: float = 1e-6,
) -> VerificationReport:
    """Check a result set for soundness and (sampled) completeness."""
    rng = rng or np.random.default_rng(0)
    q_row = {int(s): r for r, s in enumerate(queries.seg_ids)}
    e_row = {int(s): r for r, s in enumerate(database.seg_ids)}

    # -- soundness + interval sanity on a sample of reported items -------
    n = len(results)
    take = (np.arange(n) if n <= max_items
            else np.sort(rng.choice(n, size=max_items, replace=False)))
    sound_bad: list[tuple[int, int]] = []
    interval_bad: list[tuple[int, int]] = []
    for i in take:
        q = int(results.q_ids[i])
        e = int(results.e_ids[i])
        qi, ei = q_row[q], e_row[e]
        lo, hi = float(results.t_lo[i]), float(results.t_hi[i])
        t0 = max(queries.ts[qi], database.ts[ei])
        t1 = min(queries.te[qi], database.te[ei])
        if not (t0 - tol <= lo <= hi <= t1 + tol):
            interval_bad.append((q, e))
            continue
        ts = np.linspace(lo, hi, samples_per_interval)
        dist = distance_at(queries, database, qi, ei, ts)
        if np.any(dist > d + tol * max(1.0, d)):
            sound_bad.append((q, e))

    # -- completeness spot check ------------------------------------------
    reported = results.pairs()
    nq, ne = len(queries), len(database)
    k = min(spot_pairs, nq * ne)
    qi = rng.integers(0, nq, size=k)
    ei = rng.integers(0, ne, size=k)
    ref = compare_pairs(queries, database, qi, ei, d,
                        exclude_same_trajectory=exclude_same_trajectory)
    missing: list[tuple[int, int]] = []
    hit_idx = np.flatnonzero(ref.mask)
    for j in hit_idx:
        # Grazing contacts (interval of ~zero measure) may round either
        # way across implementations; only flag clear misses.
        if ref.t_hi[j] - ref.t_lo[j] < tol:
            continue
        pair = (int(queries.seg_ids[qi[j]]),
                int(database.seg_ids[ei[j]]))
        if pair not in reported:
            missing.append(pair)

    return VerificationReport(
        items_checked=int(take.size),
        pairs_spot_checked=k,
        soundness_violations=sound_bad,
        completeness_violations=missing,
        interval_violations=interval_bad,
    )
