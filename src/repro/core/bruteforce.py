"""Brute-force reference search: refine every (query, entry) pair.

No index, no pruning — the all-pairs ground truth every engine is validated
against.  Quadratic in ``|Q| x |D|`` so only suitable for tests and small
examples, but completely trustworthy: the only nontrivial code it relies on
is the interval solver, which is itself validated by dense numerical
sampling.
"""

from __future__ import annotations

import numpy as np

from .distance import compare_pairs
from .result import ResultSet
from .types import SegmentArray

__all__ = ["brute_force_search"]

# Refinement proceeds in bounded-size chunks of pairs so peak memory stays
# flat even for largish test inputs.
_CHUNK_PAIRS = 1 << 20


def brute_force_search(
    queries: SegmentArray,
    entries: SegmentArray,
    d: float,
    *,
    exclude_same_trajectory: bool = False,
) -> ResultSet:
    """Exact distance-threshold search by exhaustive refinement."""
    nq, ne = len(queries), len(entries)
    if nq == 0 or ne == 0:
        return ResultSet()

    parts: list[ResultSet] = []
    rows_per_chunk = max(1, _CHUNK_PAIRS // ne)
    e_all = np.arange(ne, dtype=np.int64)
    for q0 in range(0, nq, rows_per_chunk):
        q1 = min(q0 + rows_per_chunk, nq)
        qs = np.repeat(np.arange(q0, q1, dtype=np.int64), ne)
        es = np.tile(e_all, q1 - q0)
        res = compare_pairs(queries, entries, qs, es, d,
                            exclude_same_trajectory=exclude_same_trajectory)
        if res.num_hits:
            hit = res.mask
            parts.append(ResultSet(
                queries.seg_ids[qs[hit]],
                entries.seg_ids[es[hit]],
                res.t_lo[hit],
                res.t_hi[hit],
            ))
    return ResultSet.from_parts(parts)
