"""Crash campaign: kill the durable apply path and prove recovery.

Where :mod:`repro.faults.campaign` injects *device* faults into a
running service, this module injects *process death*: a seeded
:class:`~repro.durability.KillSwitch` raises
:class:`~repro.durability.SimulatedCrash` (a ``BaseException``, so no
resilience ladder can absorb it) at an exact point of the durable write
path, the half-written bytes are left on disk exactly as a real crash
would leave them, and :meth:`~repro.service.QueryService.recover`
rebuilds a fresh service from the directory.

One campaign run per kill-point class:

* ``wal_mid_append`` — dies with half a WAL line on disk; recovery
  must detect the torn record via CRC and drop it, losing exactly the
  in-flight mutation and nothing else;
* ``wal_post_append`` — the record is durable, the in-memory apply
  never ran; recovery must replay it (the mutation *happened*);
* ``checkpoint_mid`` — dies after a periodic checkpoint's files are
  written but before the atomic rename; recovery must ignore the tmp
  debris and use the previous checkpoint + WAL;
* ``compact_mid`` — dies inside the post-compaction checkpoint; the
  compact WAL record is durable, so recovery replays the
  (deterministic) fold and lands on the identical new base.

After each recovery the remaining operation schedule is resumed — the
recovered epoch says exactly how many operations landed, because every
mutation bumps the epoch by one — and the final database must answer
queries **byte-identically** to an uninterrupted reference run, across
all five engines and through the service path.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.types import SegmentArray
from ..durability import DurabilityPolicy, KILL_POINTS, KillSwitch, \
    SimulatedCrash
from ..ingest import VersionedDatabase
from ..obs import Telemetry
from ..service import QueryService, SearchRequest
from .campaign import _walk_db

__all__ = ["CrashCampaignConfig", "CrashCampaignReport", "CrashRun",
           "run_crash_campaign"]

#: the engines the post-recovery verification sweeps.
VERIFY_METHODS = ("gpu_temporal", "gpu_spatiotemporal", "gpu_spatial",
                  "cpu_rtree", "cpu_scan")


@dataclass(frozen=True)
class CrashCampaignConfig:
    """Knobs of one crash campaign; everything derives from ``seed``."""

    seed: int = 0
    #: mutations in the operation schedule (appends/deletes/compacts).
    num_ops: int = 12
    #: kill-point classes exercised (one crash run each).
    kill_points: tuple[str, ...] = KILL_POINTS
    #: database size: trajectories x timesteps of random walk.
    num_trajectories: int = 14
    steps: int = 10
    queries: int = 3
    d: float = 2.5
    #: periodic checkpoint cadence (mutations between checkpoints).
    checkpoint_every: int = 3
    sync: str = "fsync"
    #: verification engines (all five by default).
    methods: tuple[str, ...] = VERIFY_METHODS
    #: crash on exactly this mutation at the WAL kill points (None =
    #: a mid-schedule default); ``chaos --crash-every`` sets it.
    crash_on_op: int | None = None

    def __post_init__(self) -> None:
        if self.num_ops < 4:
            raise ValueError("num_ops must be >= 4 (the schedule "
                             "needs room for every kill point)")
        unknown = set(self.kill_points) - set(KILL_POINTS)
        if unknown:
            raise ValueError(f"unknown kill points {sorted(unknown)}; "
                             f"expected a subset of {KILL_POINTS}")
        if self.crash_on_op is not None and not (
                1 <= self.crash_on_op <= self.num_ops):
            raise ValueError("crash_on_op must be within the "
                             "operation schedule (1..num_ops)")


@dataclass
class CrashRun:
    """One kill-point's crash, recovery, and verification."""

    point: str
    occurrence: int
    #: the simulated crash actually fired (a run whose kill point was
    #: never reached proves nothing).
    fired: bool = False
    #: operations applied before the crash (== recovered epoch).
    recovered_epoch: int = -1
    #: WAL records replayed on top of the checkpoint.
    replayed: int = 0
    #: CRC-torn final records dropped during recovery.
    torn_dropped: int = 0
    #: operations re-driven after recovery to finish the schedule.
    resumed_ops: int = 0
    #: engines prewarmed from the recovered checkpoint.
    prewarmed: int = 0
    #: the first post-recovery request on the prewarmed engine was a
    #: cache hit (None when the crash predates the first checkpoint
    #: that persisted an engine).
    prewarm_hit: bool | None = None
    #: per-engine byte-identity vs the uninterrupted reference.
    identical: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return (self.error is None and self.fired
                and all(self.identical.values()))

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"point": self.point, "occurrence": self.occurrence,
                "fired": self.fired,
                "recovered_epoch": self.recovered_epoch,
                "replayed": self.replayed,
                "torn_dropped": self.torn_dropped,
                "resumed_ops": self.resumed_ops,
                "prewarmed": self.prewarmed,
                "prewarm_hit": self.prewarm_hit,
                "identical": dict(self.identical),
                "error": self.error, "ok": self.ok}


@dataclass
class CrashCampaignReport:
    """Everything one crash campaign measured."""

    config: CrashCampaignConfig
    runs: list[CrashRun] = field(default_factory=list)
    #: final epoch of the uninterrupted reference run.
    reference_epoch: int = 0

    @property
    def ok(self) -> bool:
        return bool(self.runs) and all(run.ok for run in self.runs)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"seed": self.config.seed,
                "num_ops": self.config.num_ops,
                "reference_epoch": self.reference_epoch,
                "ok": self.ok,
                "runs": [run.to_dict() for run in self.runs]}

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [f"crash campaign: seed={self.config.seed} "
                 f"ops={self.config.num_ops} "
                 f"reference_epoch={self.reference_epoch} "
                 f"-> {'OK' if self.ok else 'FAILED'}"]
        for run in self.runs:
            engines = sum(run.identical.values())
            lines.append(
                f"  {run.point:16s} occ={run.occurrence:<2d} "
                f"fired={'y' if run.fired else 'N'} "
                f"epoch={run.recovered_epoch:<3d} "
                f"replayed={run.replayed} torn={run.torn_dropped} "
                f"resumed={run.resumed_ops} prewarm={run.prewarmed}"
                f"{'(hit)' if run.prewarm_hit else ''} "
                f"identical={engines}/{len(run.identical)}"
                + (f"  ERROR: {run.error}" if run.error else ""))
        return "\n".join(lines)


# -- schedule -----------------------------------------------------------------


def _build_schedule(cfg: CrashCampaignConfig,
                    base: SegmentArray) -> list[tuple]:
    """A deterministic, always-valid mutation schedule.

    Ops are ``("append", SegmentArray)``, ``("delete", traj_id)`` or
    ``("compact",)``.  Validity (no deleting a tombstoned or unknown
    id, never emptying the database) is guaranteed by dry-running the
    schedule against a scratch database while generating it.
    """
    rng = np.random.default_rng(cfg.seed + 0xC4A54)
    scratch = VersionedDatabase(base)
    schedule: list[tuple] = []
    next_offset = 1000
    for i in range(cfg.num_ops):
        # Guarantee compactions mid-stream so compact_mid and the
        # replay-a-compaction path are always exercised.
        if i in (cfg.num_ops // 3, 2 * cfg.num_ops // 3):
            kind = "compact"
        else:
            kind = rng.choice(["append", "append", "append", "delete"])
        if kind == "delete":
            snap = scratch.snapshot()
            live = sorted(set(np.unique(snap.base.traj_ids).tolist())
                          | set(np.unique(snap.delta.traj_ids).tolist()))
            live = [t for t in live if t not in snap.tombstones]
            if len(live) < 2:
                kind = "append"  # never empty the database
            else:
                victim = int(live[int(rng.integers(len(live)))])
                scratch.delete_trajectory(victim)
                schedule.append(("delete", victim))
                continue
        if kind == "compact":
            scratch.compact()
            schedule.append(("compact",))
            continue
        segs = _walk_db(int(rng.integers(1, 3)), cfg.steps,
                        seed=cfg.seed + 31 * i,
                        id_offset=next_offset)
        next_offset += 100
        scratch.append(segs)
        schedule.append(("append", segs))
    return schedule


def _apply(service: QueryService, op: tuple) -> None:
    if op[0] == "append":
        service.ingest(op[1])
    elif op[0] == "delete":
        service.delete_trajectory(op[1])
    else:
        service.compact()


def _result_bytes(results) -> tuple[bytes, ...]:
    """Canonical raw bytes of a result set — byte-level identity, not
    tolerance-based equivalence."""
    c = results.canonical()
    return (c.q_ids.tobytes(), c.e_ids.tobytes(),
            c.t_lo.tobytes(), c.t_hi.tobytes())


def _verify_results(service: QueryService, queries: SegmentArray,
                    cfg: CrashCampaignConfig
                    ) -> dict[str, tuple[tuple, bool]]:
    """Final-state answers per engine: (canonical bytes, cache hit)."""
    out = {}
    for method in cfg.methods:
        response = service.submit(SearchRequest(
            queries=queries, d=cfg.d, method=method,
            request_id=f"verify-{method}"))
        if not response.ok:
            raise RuntimeError(f"{method}: verification request "
                               f"rejected: {response.reason}")
        if response.metrics.degraded:
            raise RuntimeError(f"{method}: verification request was "
                               f"degraded to another engine")
        out[method] = (_result_bytes(response.outcome.results),
                       response.metrics.cache_hit)
    return out


# -- the campaign -------------------------------------------------------------


def _occurrences(cfg: CrashCampaignConfig) -> dict[str, int]:
    """Which visit of each kill point the campaign crashes on.

    WAL points are visited once per mutation, so mid-schedule
    occurrences exercise a non-trivial prefix.  ``checkpoint_mid`` is
    visited once by the bootstrap checkpoint (attach) before any
    periodic one — crashing *there* would leave nothing to recover
    from (correct, but vacuous), so occurrence 2 targets the first
    periodic checkpoint.  ``compact_mid`` is only visited by
    post-compaction checkpoints.
    """
    wal_mid = cfg.crash_on_op or max(2, cfg.num_ops // 2)
    wal_post = cfg.crash_on_op or max(2, cfg.num_ops // 3)
    return {
        "wal_mid_append": wal_mid,
        "wal_post_append": wal_post,
        "checkpoint_mid": 2,
        "compact_mid": 1,
    }


def _crash_run(cfg: CrashCampaignConfig, base: SegmentArray,
               schedule: list[tuple], queries: SegmentArray,
               point: str, occurrence: int,
               reference: dict[str, tuple], directory: Path
               ) -> CrashRun:
    run = CrashRun(point=point, occurrence=occurrence)
    policy = DurabilityPolicy(sync=cfg.sync,
                              checkpoint_every=cfg.checkpoint_every)
    kill = KillSwitch(point, occurrence=occurrence)
    service = QueryService(base, durability_dir=directory,
                           durability=policy, durability_kill=kill,
                           auto_compact=False,
                           telemetry=Telemetry(enabled=False))
    try:
        # Warm one engine up front so later checkpoints persist its
        # artifact — that is what post-recovery prewarm restores.
        service.submit(SearchRequest(queries=queries, d=cfg.d,
                                     method=cfg.methods[0],
                                     request_id="warmup"))
        for op in schedule:
            _apply(service, op)
    except SimulatedCrash:
        run.fired = True
    # The crashed service is abandoned exactly as a dead process
    # leaves it: WAL handle unreleased, tmp debris on disk.
    if not run.fired:
        run.error = (f"kill point {point} (occurrence {occurrence}) "
                     f"was never reached by the schedule")
        return run
    try:
        recovered = QueryService.recover(
            directory, policy=policy, auto_compact=False,
            telemetry=Telemetry(enabled=False))
        rec = recovered.last_recovery
        run.recovered_epoch = rec.epoch
        run.replayed = rec.replayed
        run.torn_dropped = rec.torn_dropped
        run.prewarmed = len(rec.engines)
        # Every mutation bumps the epoch by exactly one, so the
        # recovered epoch *is* the count of operations that landed;
        # resume the schedule right after them.
        for op in schedule[rec.epoch:]:
            _apply(recovered, op)
            run.resumed_ops += 1
        answers = _verify_results(recovered, queries, cfg)
        run.identical = {m: answers[m][0] == reference[m][0]
                         for m in cfg.methods}
        if run.prewarmed:
            run.prewarm_hit = answers[cfg.methods[0]][1]
        recovered.shutdown()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        run.error = f"{type(exc).__name__}: {exc}"
    return run


def run_crash_campaign(cfg: CrashCampaignConfig | None = None, *,
                       directory: str | Path | None = None
                       ) -> CrashCampaignReport:
    """Run one crash campaign; returns the report.

    ``directory`` hosts the per-run durability directories (a temp dir
    that is cleaned up when None).
    """
    cfg = cfg or CrashCampaignConfig()
    base = _walk_db(cfg.num_trajectories, cfg.steps, seed=cfg.seed)
    queries = _walk_db(cfg.queries, cfg.steps, seed=cfg.seed + 9999,
                       id_offset=90_000)
    schedule = _build_schedule(cfg, base)
    report = CrashCampaignReport(config=cfg)

    # Uninterrupted reference: same schedule, no durability, no kill.
    reference_svc = QueryService(base, auto_compact=False,
                                 telemetry=Telemetry(enabled=False))
    reference_svc.submit(SearchRequest(queries=queries, d=cfg.d,
                                       method=cfg.methods[0],
                                       request_id="warmup"))
    for op in schedule:
        _apply(reference_svc, op)
    report.reference_epoch = reference_svc.versioned.epoch
    reference = _verify_results(reference_svc, queries, cfg)

    occurrences = _occurrences(cfg)
    owned_tmp = directory is None
    root = Path(directory) if directory is not None \
        else Path(tempfile.mkdtemp(prefix="crash-campaign-"))
    try:
        for point in cfg.kill_points:
            run_dir = root / f"run-{point}"
            if run_dir.exists():
                shutil.rmtree(run_dir)
            report.runs.append(_crash_run(
                cfg, base, schedule, queries, point,
                occurrences[point], reference, run_dir))
    finally:
        if owned_tmp:
            shutil.rmtree(root, ignore_errors=True)
    return report
