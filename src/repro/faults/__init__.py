"""Deterministic fault injection and chaos campaigns.

:mod:`repro.faults.injector` supplies the failures — a seed-driven
:class:`FaultInjector` threaded through the virtual GPU stack so device
OOM, transfer faults, kernel aborts/stalls, and lane blackouts can be
injected at exact, replayable operations.  :mod:`repro.faults.campaign`
drives a fault-injected :class:`~repro.service.QueryService` through a
seeded request storm and verifies that every response is either correct
or a typed rejection — the survival report behind the ``chaos`` CLI
subcommand and the CI chaos job.
"""

from .campaign import CampaignConfig, CampaignReport, run_campaign
from .crashes import (CrashCampaignConfig, CrashCampaignReport,
                      CrashRun, run_crash_campaign)
from .injector import (FAULT_KINDS, FaultInjector, FaultSpec,
                       InjectedFault, KernelAbortError,
                       LaneBlackoutError, TransferFault)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CrashCampaignConfig",
    "CrashCampaignReport",
    "CrashRun",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "KernelAbortError",
    "LaneBlackoutError",
    "TransferFault",
    "run_campaign",
    "run_crash_campaign",
]
