"""Deterministic fault injection and chaos campaigns.

:mod:`repro.faults.injector` supplies the failures — a seed-driven
:class:`FaultInjector` threaded through the virtual GPU stack so device
OOM, transfer faults, kernel aborts/stalls, and lane blackouts can be
injected at exact, replayable operations.  :mod:`repro.faults.campaign`
drives a fault-injected :class:`~repro.service.QueryService` through a
seeded request storm and verifies that every response is either correct
or a typed rejection — the survival report behind the ``chaos`` CLI
subcommand and the CI chaos job.  :mod:`repro.faults.shards` lifts the
same discipline to the sharded serving layer: seeded shard kills and
blackouts against a :class:`~repro.sharding.ShardedService`, with
mid-storm crash recovery and a byte-identity referee.
"""

from .campaign import CampaignConfig, CampaignReport, run_campaign
from .crashes import (CrashCampaignConfig, CrashCampaignReport,
                      CrashRun, run_crash_campaign)
from .injector import (FAULT_KINDS, FaultInjector, FaultSpec,
                       InjectedFault, KernelAbortError,
                       LaneBlackoutError, TransferFault)
from .shards import (SHARD_FAULT_KINDS, ShardCampaignConfig,
                     ShardCampaignReport, run_shard_campaign)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CrashCampaignConfig",
    "CrashCampaignReport",
    "CrashRun",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "KernelAbortError",
    "LaneBlackoutError",
    "SHARD_FAULT_KINDS",
    "ShardCampaignConfig",
    "ShardCampaignReport",
    "TransferFault",
    "run_campaign",
    "run_crash_campaign",
    "run_shard_campaign",
]
