"""Deterministic, seed-driven fault injection for the virtual GPU stack.

The paper's pipeline already survives one failure mode — result-buffer
overflow drives host-side kernel re-invocation (§V-D) — but a serving
deployment must also survive device OOM, PCIe transfer faults, kernel
aborts, slow lanes, and whole-device blackouts.  This module supplies the
*failures*: a :class:`FaultInjector` threaded through
:class:`~repro.gpu.device.VirtualGPU` (and from there into the memory
manager, the transfer ledger, and the kernel launcher) so that any
modeled GPU operation can fail on demand.

Determinism is the design center: every activation decision is a pure
function of ``(seed, spec index, eligible-op ordinal)``, so a campaign
replayed with the same seed injects exactly the same faults at exactly
the same operations — which is what lets the chaos CLI and the CI job
make exact assertions about recovery behaviour.

Fault taxonomy (``FaultSpec.kind``):

``oom``
    The next device allocation at an eligible site raises
    :class:`~repro.gpu.memory.DeviceOutOfMemoryError` (with the real
    requested/free numbers and the lane's allocation snapshot).
``h2d`` / ``d2h``
    A host→device / device→host copy raises :class:`TransferFault`.
``kernel_abort``
    A kernel launch raises :class:`KernelAbortError` before executing.
``kernel_stall``
    A kernel runs to completion but ``stall_factor`` times slower (the
    per-thread work is inflated, so modeled time reflects the slow lane;
    results are unaffected).
``lane_blackout``
    The device lane dies: the triggering operation and *every*
    subsequent operation on that lane raise :class:`LaneBlackoutError`
    until :meth:`FaultInjector.revive` is called — the model of a card
    falling off the bus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..gpu.memory import DeviceOutOfMemoryError

__all__ = ["FAULT_KINDS", "FaultInjector", "FaultSpec", "InjectedFault",
           "KernelAbortError", "LaneBlackoutError", "TransferFault"]

#: every fault kind a :class:`FaultSpec` may name.
FAULT_KINDS = ("oom", "h2d", "d2h", "kernel_abort", "kernel_stall",
               "lane_blackout")

#: operation sites instrumented in the gpu layer.
SITES = ("alloc", "h2d", "d2h", "kernel")

#: which sites each fault kind is eligible to fire at.
_KIND_SITES = {
    "oom": ("alloc",),
    "h2d": ("h2d",),
    "d2h": ("d2h",),
    "kernel_abort": ("kernel",),
    "kernel_stall": ("kernel",),
    "lane_blackout": SITES,
}


class InjectedFault(RuntimeError):
    """Base class of every failure raised by the injector."""


class TransferFault(InjectedFault):
    """A host<->device copy failed (modeled PCIe fault)."""

    def __init__(self, direction: str, label: str,
                 lane: int | None) -> None:
        super().__init__(
            f"injected {direction} transfer fault on {label!r}"
            f"{_lane_suffix(lane)}")
        self.direction = direction
        self.label = label
        self.lane = lane


class KernelAbortError(InjectedFault):
    """A kernel invocation aborted before completing."""

    def __init__(self, kernel: str, lane: int | None) -> None:
        super().__init__(
            f"injected abort of kernel {kernel!r}{_lane_suffix(lane)}")
        self.kernel = kernel
        self.lane = lane


class LaneBlackoutError(InjectedFault):
    """Every operation on a dead lane fails until the lane is revived."""

    def __init__(self, lane: int | None, site: str) -> None:
        super().__init__(
            f"device lane {lane} is blacked out ({site} refused)")
        self.lane = lane
        self.site = site


def _lane_suffix(lane: int | None) -> str:
    return "" if lane is None else f" (lane {lane})"


@dataclass(frozen=True)
class FaultSpec:
    """One entry of the activation plan: where, what, and how often.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Activation probability per eligible operation (1.0 = the next
        eligible operation fails for sure).
    after:
        Skip the first ``after`` eligible operations — the knob that
        places a fault *mid-batch* instead of at the first touch.
    count:
        Maximum number of activations (``None`` = unlimited).
    lanes:
        Restrict to these device lanes; ``None`` matches any lane,
        including operations on a device not yet homed on a lane.
    stall_factor:
        ``kernel_stall`` only: how many times slower the stalled kernel
        runs.
    """

    kind: str
    rate: float = 1.0
    after: int = 0
    count: int | None = None
    lanes: tuple[int, ...] | None = None
    stall_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("rate must be within [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None)")
        if self.stall_factor <= 1.0:
            raise ValueError("stall_factor must be > 1")
        if self.lanes is not None:
            object.__setattr__(self, "lanes", tuple(self.lanes))

    def matches(self, site: str, lane: int | None) -> bool:
        if site not in _KIND_SITES[self.kind]:
            return False
        if self.lanes is None:
            return True
        return lane is not None and lane in self.lanes

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"kind": self.kind, "rate": self.rate, "after": self.after,
                "count": self.count,
                "lanes": list(self.lanes) if self.lanes else None,
                "stall_factor": self.stall_factor}


@dataclass
class _SpecState:
    """Mutable per-spec bookkeeping (the spec itself is frozen)."""

    eligible_ops: int = 0
    fired: int = 0


class FaultInjector:
    """Evaluates the activation plan at every instrumented GPU operation.

    The gpu layer calls :meth:`check` at each site; the injector either
    returns a stall factor (1.0 = run normally) or raises the injected
    failure.  Sites and the injector are duck-typed: the gpu modules
    never import this package, so a ``faults=None`` device pays only a
    single ``is None`` test per operation.
    """

    def __init__(self, specs: list[FaultSpec] | tuple = (),
                 *, seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = int(seed)
        self.enabled = True
        self.dead_lanes: set[int] = set()
        self._states = [_SpecState() for _ in self.specs]
        #: operations observed per site (fired or not).
        self.ops_by_site: dict[str, int] = {}
        #: activations per fault kind.
        self.fired_by_kind: dict[str, int] = {}

    # -- the hook ---------------------------------------------------------------

    def check(self, site: str, *, lane: int | None = None,
              label: str = "", requested: int = 0, free: int = 0,
              device: str = "gpu",
              allocations: dict | None = None) -> float:
        """Evaluate the plan for one operation at ``site``.

        Returns the stall factor to apply (1.0 = none).  Raises the
        injected failure when a failing spec activates.  The keyword
        context (label, requested/free bytes, allocation snapshot) only
        feeds error messages.
        """
        if not self.enabled:
            return 1.0
        self.ops_by_site[site] = self.ops_by_site.get(site, 0) + 1
        if lane is not None and lane in self.dead_lanes:
            raise LaneBlackoutError(lane, site)
        stall = 1.0
        for i, spec in enumerate(self.specs):
            if not spec.matches(site, lane):
                continue
            state = self._states[i]
            state.eligible_ops += 1
            if spec.rate <= 0.0:
                continue  # can never fire; skip the (costly) roll
            if state.eligible_ops <= spec.after:
                continue
            if spec.count is not None and state.fired >= spec.count:
                continue
            if spec.rate < 1.0 and not self._roll(i, state.eligible_ops,
                                                  spec.rate):
                continue
            state.fired += 1
            self.fired_by_kind[spec.kind] = \
                self.fired_by_kind.get(spec.kind, 0) + 1
            if spec.kind == "kernel_stall":
                stall = max(stall, spec.stall_factor)
                continue
            self._raise(spec, site, lane=lane, label=label,
                        requested=requested, free=free, device=device,
                        allocations=allocations)
        return stall

    def _roll(self, spec_index: int, ordinal: int, rate: float) -> bool:
        """Deterministic Bernoulli draw for one (spec, eligible op)."""
        rng = random.Random(f"{self.seed}:{spec_index}:{ordinal}")
        return rng.random() < rate

    def _raise(self, spec: FaultSpec, site: str, *, lane, label,
               requested, free, device, allocations) -> None:
        if spec.kind == "oom":
            raise DeviceOutOfMemoryError(requested, free, device,
                                         lane=lane,
                                         allocations=allocations)
        if spec.kind in ("h2d", "d2h"):
            raise TransferFault(spec.kind, label, lane)
        if spec.kind == "kernel_abort":
            raise KernelAbortError(label, lane)
        # lane_blackout: the lane dies and stays dead.
        if lane is not None:
            self.dead_lanes.add(lane)
        raise LaneBlackoutError(lane, site)

    # -- lane lifecycle ----------------------------------------------------------

    def revive(self, lane: int) -> None:
        """Bring a blacked-out lane back (the operator swapped the card)."""
        self.dead_lanes.discard(lane)

    # -- reporting ---------------------------------------------------------------

    @property
    def total_fired(self) -> int:
        return sum(self.fired_by_kind.values())

    @property
    def total_ops(self) -> int:
        return sum(self.ops_by_site.values())

    def report(self) -> dict:
        """Activation summary for the chaos survival report."""
        return {
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
            "ops_by_site": dict(sorted(self.ops_by_site.items())),
            "fired_by_kind": dict(sorted(self.fired_by_kind.items())),
            "total_ops": self.total_ops,
            "total_fired": self.total_fired,
            "dead_lanes": sorted(self.dead_lanes),
        }
