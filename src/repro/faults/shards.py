"""Seeded shard-chaos campaigns: kill shards under a request storm.

The shard-level sibling of :mod:`repro.faults.campaign`: a
:class:`~repro.sharding.ShardedService` (N shards, a replica pair per
shard, per-replica WAL + checkpoints) is driven through a deterministic
request storm while a seeded fault plan kills replicas and blacks out
whole shards mid-storm, and a recovery schedule crash-recovers them a
few requests later via ``QueryService.recover()`` + op-log catch-up.

Two shard fault kinds (:data:`SHARD_FAULT_KINDS`):

* ``shard_kill`` — one replica of a seeded-random shard dies (process
  death: the service object is abandoned, its WAL left as a crash
  would leave it).  The shard keeps answering through the surviving
  replica; answers must stay *byte-identical* to the whole-database
  ``cpu_scan`` referee.
* ``shard_blackout`` — every replica of a shard dies.  Requests must
  answer ``status="partial"`` (never silently shrink an "ok" answer),
  and the partial outcome must be byte-identical to the referee
  *restricted to the surviving shards' rows*.

Every mutation the router applies (ingest / delete, with router-stamped
global seg_ids) is mirrored into a plain whole-database
:class:`~repro.ingest.VersionedDatabase` — the referee.  Because the
router stamps ids exactly the way the referee's own append would, the
two id spaces agree and result equality can be checked at the byte
level (:func:`repro.faults.crashes._result_bytes`).

The report's ``ok`` gate is what CI asserts: every request accounted,
zero inexact answers, both fault kinds fired, at least one mid-storm
recovery, and every ``partial`` answer legitimate (issued only while a
shard had zero live replicas).
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field

import numpy as np

from ..core.result import ResultSet
from ..engines.cpu_scan import CpuScanEngine
from ..ingest import CompactionPolicy, VersionedDatabase
from ..obs import Telemetry
from ..service import SearchRequest
from ..sharding import ShardedService
from .campaign import _walk_db
from .crashes import _result_bytes

__all__ = ["SHARD_FAULT_KINDS", "ShardCampaignConfig",
           "ShardCampaignReport", "run_shard_campaign"]

#: shard-level fault kinds the plan cycles through.
SHARD_FAULT_KINDS = ("shard_kill", "shard_blackout")


@dataclass(frozen=True)
class ShardCampaignConfig:
    """Knobs of one shard-chaos campaign; all derive from ``seed``."""

    seed: int = 0
    num_requests: int = 120
    num_shards: int = 3
    replicas_per_shard: int = 2
    strategy: str = "round_robin"
    #: database size: trajectories x timesteps of random walk.
    num_trajectories: int = 18
    steps: int = 10
    num_query_sets: int = 6
    queries_per_set: int = 3
    d: float = 2.5
    methods: tuple[str, ...] = ("gpu_temporal", "cpu_rtree", "auto",
                                "cpu_scan", "gpu_spatial")
    #: every Nth request fires one shard fault (0 = storm without
    #: faults); which shard dies is seeded-random.
    kill_every: int = 11
    #: every Nth fault is a whole-shard blackout instead of a single
    #: replica kill.
    blackout_every: int = 3
    #: requests after its death at which a killed replica is
    #: crash-recovered (mid-storm rejoin).
    recover_after: int = 7
    #: every Nth request ingests one fresh trajectory (0 = never).
    ingest_every: int = 9
    ingest_steps: int = 6
    #: every Nth request deletes one (eligible) trajectory (0 = never).
    delete_every: int = 31
    #: per-shard compaction trigger, small so shards compact mid-storm.
    compaction_max_delta: int = 48
    #: run replicas durably (WAL + checkpoints in a temp dir) so
    #: recovery goes through ``QueryService.recover()``; False
    #: exercises the pristine-base + full-op-log rejoin path instead.
    durable: bool = True

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        if self.blackout_every < 1:
            raise ValueError("blackout_every must be >= 1")
        if self.recover_after < 1:
            raise ValueError("recover_after must be >= 1")

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "seed": self.seed, "num_requests": self.num_requests,
            "num_shards": self.num_shards,
            "replicas_per_shard": self.replicas_per_shard,
            "strategy": self.strategy,
            "num_trajectories": self.num_trajectories,
            "steps": self.steps,
            "num_query_sets": self.num_query_sets,
            "queries_per_set": self.queries_per_set, "d": self.d,
            "methods": list(self.methods),
            "kill_every": self.kill_every,
            "blackout_every": self.blackout_every,
            "recover_after": self.recover_after,
            "ingest_every": self.ingest_every,
            "ingest_steps": self.ingest_steps,
            "delete_every": self.delete_every,
            "compaction_max_delta": self.compaction_max_delta,
            "durable": self.durable,
        }


@dataclass
class ShardCampaignReport:
    """Survival report of one shard-chaos campaign."""

    config: dict
    #: responses by status (ok / partial / overloaded / ...).
    outcomes: dict = field(default_factory=dict)
    #: full (ok) answers byte-identical to the whole-database referee.
    verified: int = 0
    #: partial answers byte-identical to the surviving-shard referee.
    partial_verified: int = 0
    #: request ids whose answer disagreed with the referee.
    mismatches: list = field(default_factory=list)
    #: partial answers issued while every missing shard still had a
    #: live replica (must stay empty: partial strictly means *down*).
    illegitimate_partials: list = field(default_factory=list)
    #: shard faults fired, by kind.
    fired_by_kind: dict = field(default_factory=dict)
    #: replicas crash-recovered and rejoined mid-storm.
    recoveries: int = 0
    #: True when the post-storm full-coverage request (every replica
    #: recovered) was byte-identical to the referee.
    final_exact: bool = False
    router: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    @property
    def answered(self) -> int:
        return self.outcomes.get("ok", 0)

    @property
    def partials(self) -> int:
        return self.outcomes.get("partial", 0)

    @property
    def all_kinds_fired(self) -> bool:
        return all(self.fired_by_kind.get(k, 0) > 0
                   for k in SHARD_FAULT_KINDS)

    @property
    def ok(self) -> bool:
        """Did the sharded service survive: every request accounted,
        zero inexact answers (full or partial), both shard fault kinds
        fired, at least one mid-storm recovery, every partial
        legitimate, and the post-storm rejoined service exact."""
        return (not self.mismatches
                and not self.illegitimate_partials
                and self.verified == self.answered
                and self.partial_verified == self.partials
                and self.total == self.config["num_requests"]
                and self.all_kinds_fired
                and self.recoveries >= 1
                and self.final_exact)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "config": self.config, "outcomes": dict(self.outcomes),
            "verified": self.verified,
            "partial_verified": self.partial_verified,
            "mismatches": list(self.mismatches),
            "illegitimate_partials": list(self.illegitimate_partials),
            "fired_by_kind": dict(self.fired_by_kind),
            "recoveries": self.recoveries,
            "final_exact": self.final_exact,
            "router": self.router, "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable survival report."""
        lines = [
            "shard-chaos campaign report",
            f"  seed                {self.config['seed']}",
            f"  shards              {self.config['num_shards']} x "
            f"{self.config['replicas_per_shard']} replicas "
            f"({self.config['strategy']})",
            f"  requests            {self.total}",
        ]
        for status in ("ok", "partial", "overloaded",
                       "deadline_exceeded"):
            lines.append(f"    {status:<18}"
                         f"{self.outcomes.get(status, 0)}")
        lines += [
            f"  verified exact      {self.verified}/{self.answered} "
            f"full, {self.partial_verified}/{self.partials} partial",
            f"  mismatches          {len(self.mismatches)}",
        ]
        for kind in SHARD_FAULT_KINDS:
            lines.append(f"    {kind:<18}"
                         f"{self.fired_by_kind.get(kind, 0)}")
        lines += [
            f"  recoveries          {self.recoveries}",
            f"  final exact         "
            f"{'yes' if self.final_exact else 'NO'}",
            f"  survived            {'yes' if self.ok else 'NO'}",
        ]
        return "\n".join(lines)


def run_shard_campaign(config: ShardCampaignConfig | None = None, *,
                       telemetry: Telemetry | None = None,
                       durability_root=None) -> ShardCampaignReport:
    """Run one seeded shard-chaos campaign; returns its report.

    ``durability_root`` overrides where the per-replica durable state
    lives (default: a temporary directory when ``config.durable``).
    """
    cfg = config or ShardCampaignConfig()
    with tempfile.TemporaryDirectory() as tmp:
        root = durability_root or (tmp if cfg.durable else None)
        return _run(cfg, root, telemetry)


def _run(cfg: ShardCampaignConfig, durability_root,
         telemetry: Telemetry | None) -> ShardCampaignReport:
    database = _walk_db(cfg.num_trajectories, cfg.steps, seed=cfg.seed)
    query_sets = [
        _walk_db(cfg.queries_per_set, cfg.steps,
                 seed=cfg.seed + 1000 + i, id_offset=10_000 + 100 * i)
        for i in range(cfg.num_query_sets)
    ]
    compaction = CompactionPolicy(
        max_delta_segments=cfg.compaction_max_delta)
    svc = ShardedService(
        database, num_shards=cfg.num_shards,
        replicas_per_shard=cfg.replicas_per_shard,
        strategy=cfg.strategy, durability_root=durability_root,
        telemetry=telemetry,
        service_kwargs={"compaction": compaction})
    #: the whole-database referee, mutated in lockstep with the router
    #: (its own seg_id counter assigns exactly the ids the router
    #: stamps, so comparisons are byte-exact).
    referee = VersionedDatabase(database, policy=compaction)

    truths: dict[tuple, tuple] = {}

    def truth_bytes(qi: int, missing: tuple[int, ...] = ()) -> tuple:
        """Canonical result bytes of the referee for one query set,
        optionally restricted to the shards *not* in ``missing``."""
        key = (referee.epoch, qi, missing)
        if key not in truths:
            logical = referee.snapshot().logical()
            if missing:
                surviving = [svc.plan.seg_ids_of(s.index)
                             for s in svc.shards
                             if s.replicas and s.index not in missing]
                live_ids = (np.concatenate(surviving) if surviving
                            else np.zeros(0, dtype=np.int64))
                keep = np.isin(logical.seg_ids, live_ids)
                logical = logical.take(np.flatnonzero(keep))
            if len(logical) == 0:
                truths[key] = _result_bytes(ResultSet())
            else:
                results = CpuScanEngine(logical).search(
                    query_sets[qi], cfg.d)[0]
                truths[key] = _result_bytes(results)
        return truths[key]

    report = ShardCampaignReport(config=cfg.to_dict())
    rng = random.Random(f"{cfg.seed}:shard-faults")
    #: (due_request, shard, replica) recovery schedule.
    pending_recoveries: list[tuple[int, int, int]] = []
    faults_fired = 0

    def fire_fault(i: int) -> None:
        nonlocal faults_fired
        candidates = [s.index for s in svc.shards if s.replicas]
        shard = rng.choice(candidates)
        blackout = (faults_fired % cfg.blackout_every
                    == cfg.blackout_every - 1)
        faults_fired += 1
        if blackout:
            victims = [r.index for r in
                       svc.shards[shard].live_replicas()]
            if svc.blackout_shard(shard):
                report.fired_by_kind["shard_blackout"] = \
                    report.fired_by_kind.get("shard_blackout", 0) + 1
                for k, r in enumerate(victims):
                    pending_recoveries.append(
                        (i + cfg.recover_after + k, shard, r))
        else:
            victim = svc.kill_replica(shard)
            if victim is not None:
                report.fired_by_kind["shard_kill"] = \
                    report.fired_by_kind.get("shard_kill", 0) + 1
                pending_recoveries.append(
                    (i + cfg.recover_after, shard, victim.index))

    def run_recoveries(i: int) -> None:
        due = [p for p in pending_recoveries if p[0] <= i]
        for item in due:
            pending_recoveries.remove(item)
            _, shard, rep = item
            if svc.shards[shard].replicas[rep].live:
                continue  # re-killed and re-scheduled; later entry wins
            svc.recover_replica(shard, rep)
            report.recoveries += 1

    def eligible_delete() -> int | None:
        """A live trajectory whose delete empties no shard."""
        live = sorted(tid for tid in svc.plan._traj_shards
                      if tid not in svc._tombstones
                      and tid < 10_000  # never delete query ids
                      and not svc.plan.would_empty(tid))
        return rng.choice(live) if live else None

    def verify(i: int, resp) -> None:
        rid = f"q{i:04d}"
        report.outcomes[resp.status] = \
            report.outcomes.get(resp.status, 0) + 1
        if resp.status == "ok":
            if _result_bytes(resp.outcome.results) == truth_bytes(
                    i % len(query_sets)):
                report.verified += 1
            else:
                report.mismatches.append(rid)
        elif resp.status == "partial":
            live = svc.live_map()
            bad = [s for s in resp.missing_shards if live.get(s)]
            if bad:
                report.illegitimate_partials.append(rid)
            if _result_bytes(resp.outcome.results) == truth_bytes(
                    i % len(query_sets), resp.missing_shards):
                report.partial_verified += 1
            else:
                report.mismatches.append(rid)

    for i in range(cfg.num_requests):
        run_recoveries(i)
        if cfg.kill_every and i and i % cfg.kill_every == 0:
            fire_fault(i)
        if cfg.ingest_every and i and i % cfg.ingest_every == 0:
            fresh = _walk_db(1, cfg.ingest_steps,
                             seed=cfg.seed + 5000 + i,
                             id_offset=50_000 + i)
            svc.ingest(fresh)
            referee.append(fresh)
        if cfg.delete_every and i and i % cfg.delete_every == 0:
            tid = eligible_delete()
            if tid is not None:
                svc.delete_trajectory(tid)
                referee.delete_trajectory(tid)
        qi = i % len(query_sets)
        resp = svc.submit(SearchRequest(
            queries=query_sets[qi], d=cfg.d,
            method=cfg.methods[i % len(cfg.methods)],
            request_id=f"q{i:04d}"))
        verify(i, resp)

    # Post-storm: every dead replica rejoins (the "killed shard
    # rejoins via recover() within the same campaign" gate), then one
    # full-coverage request must be exact again.
    for shard in svc.shards:
        for replica in shard.replicas:
            if not replica.live:
                svc.recover_replica(shard.index, replica.index)
                report.recoveries += 1
    final = svc.submit(SearchRequest(
        queries=query_sets[0], d=cfg.d, method="cpu_scan",
        request_id="final"))
    report.final_exact = (final.ok and _result_bytes(
        final.outcome.results) == truth_bytes(0))
    report.router = svc.stats()
    svc.shutdown()
    return report
