"""Seeded chaos campaigns: a fault-injected service under a request storm.

A campaign builds a small deterministic trajectory database, wires a
:class:`~repro.faults.injector.FaultInjector` covering every fault kind
into a :class:`~repro.service.QueryService`, and drives a few hundred
requests through it in batches — cycling engines, sprinkling impossible
deadlines, periodically "swapping the card" (reviving blacked-out
lanes) so quarantine → probation → re-admission actually happens, and
periodically *ingesting* fresh trajectories so the delta overlay and
compaction run under fire (compaction prewarms engines on the virtual
GPU, so injected faults fire mid-compaction too).

Every successful response is verified against ``cpu_scan`` ground truth
computed on the un-faulted path over the database *version the batch
was pinned to* (ingestion moves the truth; the epoch names which one):
*exact* result equality, plus a no-internal-duplicates check.  The
produced :class:`CampaignReport` is the survival report the ``chaos``
CLI prints and the CI chaos job asserts on; because the injector, the
dataset, and the request schedule are all seed-driven, the same seed
reproduces the same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.result import ResultSet
from ..core.types import SegmentArray, Trajectory
from ..engines.base import RetryPolicy
from ..engines.cpu_scan import CpuScanEngine
from ..ingest import CompactionPolicy
from ..obs import Telemetry
from ..service import QueryService, SearchRequest
from .injector import FaultInjector, FaultSpec

__all__ = ["CampaignConfig", "CampaignReport", "run_campaign"]


def _walk_db(num_traj: int, steps: int, *, seed: int,
             id_offset: int = 0, box: float = 20.0) -> SegmentArray:
    """Small random-walk trajectories with staggered start times."""
    rng = np.random.default_rng(seed)
    trajs = []
    for k in range(num_traj):
        start = rng.uniform(0.0, box, size=3)
        steps_v = rng.normal(0.0, 1.0, size=(steps - 1, 3))
        pos = np.vstack([start, start + np.cumsum(steps_v, axis=0)])
        t0 = rng.uniform(0.0, 5.0)
        times = t0 + np.arange(steps, dtype=np.float64)
        trajs.append(Trajectory(id_offset + k, times, pos))
    return SegmentArray.from_trajectories(trajs)


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one chaos campaign; everything derives from ``seed``."""

    seed: int = 0
    num_requests: int = 200
    batch_size: int = 8
    num_devices: int = 2
    #: database size: trajectories x timesteps of random walk.
    num_trajectories: int = 20
    steps: int = 12
    #: distinct query sets cycled over the requests.
    num_query_sets: int = 8
    queries_per_set: int = 3
    d: float = 2.5
    #: per-eligible-operation activation rate of each fault spec.
    injection_rate: float = 0.15
    methods: tuple[str, ...] = ("gpu_temporal", "gpu_spatiotemporal",
                                "gpu_spatial", "cpu_rtree", "auto")
    #: every Nth request carries an impossible deadline (0 = never).
    deadline_every: int = 29
    #: every Nth request, revive blacked-out lanes (0 = never) — the
    #: "operator swapped the card" step that lets probation run.
    revive_every: int = 25
    #: every Nth GPU request uses a tiny result buffer, forcing the
    #: overflow retry/backoff path (0 = never).
    small_buffer_every: int = 4
    #: every Nth request, ingest one fresh trajectory into the live
    #: service (0 = never) — exercises the delta overlay under faults
    #: and, via the tight compaction policy below, compaction + cache
    #: prewarm while the injector is armed.
    ingest_every: int = 13
    #: timesteps of each ingested trajectory (steps-1 segments).
    ingest_steps: int = 6
    #: compaction trigger: delta rows before the service folds the
    #: delta into a fresh base (small, so campaigns actually compact).
    compaction_max_delta: int = 64
    #: queue-pressure shedding limit handed to the service (None = off).
    max_queue_delay_s: float | None = None
    #: service recovery tuning, sized to the campaign's modeled scale
    #: (a whole campaign advances the modeled clock by only a few
    #: milliseconds, so windows are tens of microseconds).
    lane_quarantine_s: float = 2e-5
    breaker_reset_s: float = 1e-5
    crosscheck_every: int = 4

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not (0.0 <= self.injection_rate <= 1.0):
            raise ValueError("injection_rate must be within [0, 1]")

    def fault_specs(self) -> list[FaultSpec]:
        """One spec per fault kind, rates scaled off ``injection_rate``.

        Blackouts are catastrophic, so they fire at a tenth of the base
        rate and at most twice per campaign — enough to exercise
        quarantine and revival without denying all GPU service."""
        r = self.injection_rate
        return [
            # Allocations happen ~5x per build: halve the rate so some
            # engines actually get built and run kernels.
            FaultSpec(kind="oom", rate=r / 2.0),
            FaultSpec(kind="h2d", rate=r),
            FaultSpec(kind="d2h", rate=r),
            FaultSpec(kind="kernel_abort", rate=r),
            # Kernels only run once a build survived and the query
            # upload went through, so kernel ops are scarce; a high
            # stall rate keeps the one non-raising kind represented.
            FaultSpec(kind="kernel_stall", rate=min(4.0 * r, 1.0),
                      stall_factor=6.0),
            FaultSpec(kind="lane_blackout", rate=max(r / 5.0, 0.001),
                      count=2),
        ]

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "seed": self.seed, "num_requests": self.num_requests,
            "batch_size": self.batch_size,
            "num_devices": self.num_devices,
            "num_trajectories": self.num_trajectories,
            "steps": self.steps,
            "num_query_sets": self.num_query_sets,
            "queries_per_set": self.queries_per_set, "d": self.d,
            "injection_rate": self.injection_rate,
            "methods": list(self.methods),
            "deadline_every": self.deadline_every,
            "revive_every": self.revive_every,
            "small_buffer_every": self.small_buffer_every,
            "ingest_every": self.ingest_every,
            "ingest_steps": self.ingest_steps,
            "compaction_max_delta": self.compaction_max_delta,
            "max_queue_delay_s": self.max_queue_delay_s,
            "lane_quarantine_s": self.lane_quarantine_s,
            "breaker_reset_s": self.breaker_reset_s,
            "crosscheck_every": self.crosscheck_every,
        }


@dataclass
class CampaignReport:
    """Survival report of one campaign."""

    config: dict
    #: responses by disposition: ok / degraded / overloaded /
    #: deadline_exceeded.
    outcomes: dict = field(default_factory=dict)
    #: ok+degraded responses whose results matched ground truth exactly.
    verified: int = 0
    #: request ids whose results disagreed with ground truth.
    mismatches: list = field(default_factory=list)
    #: total failover hops walked across all requests.
    failover_hops: int = 0
    injector: dict = field(default_factory=dict)
    service: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    @property
    def answered(self) -> int:
        """Responses that carried results (ok or degraded)."""
        return (self.outcomes.get("ok", 0)
                + self.outcomes.get("degraded", 0))

    @property
    def ok(self) -> bool:
        """Did the service survive: every answered request verified
        exact, every non-answer a typed rejection (by construction),
        nothing lost."""
        return (not self.mismatches
                and self.verified == self.answered
                and self.total == self.config["num_requests"])

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "config": self.config, "outcomes": dict(self.outcomes),
            "verified": self.verified,
            "mismatches": list(self.mismatches),
            "failover_hops": self.failover_hops,
            "injector": self.injector, "service": self.service,
            "ok": self.ok,
        }

    def render(self) -> str:
        """Human-readable survival report."""
        inj = self.injector
        lines = [
            "chaos campaign report",
            f"  seed                {self.config['seed']}",
            f"  requests            {self.total}",
        ]
        for status in ("ok", "degraded", "overloaded",
                       "deadline_exceeded"):
            lines.append(f"    {status:<18}{self.outcomes.get(status, 0)}")
        lines += [
            f"  verified exact      {self.verified}/{self.answered}",
            f"  mismatches          {len(self.mismatches)}",
            f"  failover hops       {self.failover_hops}",
            f"  faults injected     {inj.get('total_fired', 0)} "
            f"over {inj.get('total_ops', 0)} ops",
        ]
        for kind, n in sorted(inj.get("fired_by_kind", {}).items()):
            lines.append(f"    {kind:<18}{n}")
        svc = self.service
        if svc:
            cache = svc.get("cache", {})
            ing = svc.get("ingest", {})
            lines += [
                f"  ingests             {ing.get('appends', 0)} "
                f"(+{ing.get('appended_segments', 0)} segments)",
                f"  compactions         {ing.get('compactions', 0)}",
                f"  prewarm failures    "
                f"{ing.get('prewarm_failures', 0)}",
            ]
            lines += [
                f"  lane quarantines    "
                f"{sum(h.get('quarantine_count', 0) for h in svc.get('lane_health', {}).values())}",
                f"  breaker trips       "
                f"{sum(b.get('trips', 0) for b in svc.get('breakers', {}).values())}",
                f"  shed                {svc.get('shed', 0)}",
                f"  crosschecks         {svc.get('crosschecks', 0)}",
                f"  cache failed builds {cache.get('failed_builds', 0)}",
                f"  cache invalidations {cache.get('invalidations', 0)}",
            ]
        lines.append(f"  survived            {'yes' if self.ok else 'NO'}")
        return "\n".join(lines)


def run_campaign(config: CampaignConfig | None = None, *,
                 telemetry: Telemetry | None = None) -> CampaignReport:
    """Run one seeded chaos campaign; returns its survival report.

    Ground truth for every query set is computed once with ``cpu_scan``
    on an un-faulted path; every ok/degraded response must match it
    *exactly* (same pairs, same intervals, no internal duplicates) —
    fault handling may make a request slower or degraded, never wrong.
    """
    cfg = config or CampaignConfig()
    database = _walk_db(cfg.num_trajectories, cfg.steps,
                        seed=cfg.seed)
    query_sets = [
        _walk_db(cfg.queries_per_set, cfg.steps,
                 seed=cfg.seed + 1000 + i, id_offset=10_000 + 100 * i)
        for i in range(cfg.num_query_sets)
    ]

    injector = FaultInjector(cfg.fault_specs(), seed=cfg.seed)
    svc = QueryService(
        database, num_devices=cfg.num_devices, faults=injector,
        retry=RetryPolicy(max_attempts=4, backoff_s=1e-4),
        telemetry=telemetry,
        max_queue_delay_s=cfg.max_queue_delay_s,
        lane_quarantine_s=cfg.lane_quarantine_s,
        breaker_reset_s=cfg.breaker_reset_s,
        crosscheck_every=cfg.crosscheck_every,
        compaction=CompactionPolicy(
            max_delta_segments=cfg.compaction_max_delta))

    # Ground truth moves when the campaign ingests: compute it lazily
    # per (epoch, query set) over the snapshot each batch was pinned
    # to, on the un-faulted CPU path.
    truth_engines: dict[int, CpuScanEngine] = {}
    truths: dict[tuple[int, int], ResultSet] = {}

    def truth_for(snap, qi: int) -> ResultSet:
        key = (snap.epoch, qi)
        if key not in truths:
            engine = truth_engines.get(snap.epoch)
            if engine is None:
                engine = CpuScanEngine(snap.logical())
                truth_engines[snap.epoch] = engine
            truths[key] = engine.search(
                query_sets[qi], cfg.d)[0].canonical()
        return truths[key]

    report = CampaignReport(config=cfg.to_dict())
    pending: list[tuple[SearchRequest, int]] = []

    def flush() -> None:
        if not pending:
            return
        snap = svc.current_snapshot()
        responses = svc.submit_batch([req for req, _ in pending])
        for (req, qi), resp in zip(pending, responses):
            if not resp.ok:
                status = resp.status
            elif resp.metrics.degraded:
                status = "degraded"
            else:
                status = "ok"
            report.outcomes[status] = report.outcomes.get(status, 0) + 1
            if resp.ok:
                report.failover_hops += resp.metrics.failovers
                results = resp.outcome.results
                exact = (results.equivalent_to(truth_for(snap, qi))
                         and len(results.deduplicated())
                         == len(results))
                if exact:
                    report.verified += 1
                else:
                    report.mismatches.append(req.request_id)
        pending.clear()

    for i in range(cfg.num_requests):
        if cfg.revive_every and i and i % cfg.revive_every == 0:
            for lane in sorted(injector.dead_lanes):
                injector.revive(lane)
        if cfg.ingest_every and i and i % cfg.ingest_every == 0:
            # Live ingestion: one fresh trajectory lands in the delta;
            # pending requests were not submitted yet, so the whole
            # batch pins the post-ingest snapshot at flush time.
            svc.ingest(_walk_db(1, cfg.ingest_steps,
                                seed=cfg.seed + 5000 + i,
                                id_offset=50_000 + i))
        qi = i % len(query_sets)
        method = cfg.methods[i % len(cfg.methods)]
        params = {}
        if (cfg.small_buffer_every and method.startswith("gpu")
                and i % cfg.small_buffer_every == 0):
            params = {"result_buffer_items": 64}
        deadline = (1e-9 if cfg.deadline_every
                    and i % cfg.deadline_every == cfg.deadline_every - 1
                    else None)
        pending.append((SearchRequest(
            queries=query_sets[qi], d=cfg.d, method=method,
            params=params, deadline_s=deadline,
            request_id=f"c{i:04d}"), qi))
        if len(pending) >= cfg.batch_size:
            flush()
    flush()

    report.injector = injector.report()
    report.service = svc.stats()
    return report
