"""repro — reproduction of Gowanlock & Casanova, "Indexing of
Spatiotemporal Trajectories for Efficient Distance Threshold Similarity
Searches on the GPU" (IPDPS Workshops 2015).

Public surface
--------------
* :class:`DistanceThresholdSearch` — one façade over the paper's three GPU
  engines and the CPU R-tree baseline.
* :mod:`repro.data` — the Random / Random-dense / Merger-equivalent
  dataset generators.
* :mod:`repro.gpu` — the virtual-GPU substrate and cost models.
* :mod:`repro.experiments` — scenario definitions and the figure/table
  regeneration harness.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core import (DistanceThresholdSearch, ENGINE_REGISTRY, ResultSet,
                   SearchOutcome, SegmentArray, Trajectory,
                   brute_force_search, register_engine)
from .data import (merger_dataset, queries_from_database, random_dataset,
                   random_dense_dataset)
from .engines import (ConfigError, CpuRTreeEngine, GpuSpatialEngine,
                      GpuSpatioTemporalEngine, GpuTemporalEngine,
                      HybridEngine)
from .gpu import (CpuCostModel, GpuCostModel, TESLA_C2075, VirtualGPU,
                  XEON_W3690)
from .obs import Telemetry
from .service import QueryService, SearchRequest, SearchResponse

__version__ = "1.1.0"

__all__ = [
    "ConfigError", "CpuCostModel", "CpuRTreeEngine",
    "DistanceThresholdSearch", "ENGINE_REGISTRY", "GpuCostModel",
    "GpuSpatialEngine", "GpuSpatioTemporalEngine", "GpuTemporalEngine",
    "HybridEngine", "QueryService", "ResultSet", "SearchOutcome",
    "SearchRequest", "SearchResponse", "SegmentArray", "Telemetry",
    "TESLA_C2075",
    "Trajectory", "VirtualGPU", "XEON_W3690", "brute_force_search",
    "merger_dataset", "queries_from_database", "random_dataset",
    "random_dense_dataset", "register_engine", "__version__",
]
