"""Virtual GPU substrate: SIMT execution, memory, transfers, cost model.

This package substitutes for the paper's Tesla C2075 + OpenCL runtime (see
DESIGN.md §2).  The search kernels run for real; machine time is modeled
from the measured operation counts.
"""

from .atomics import AtomicIntList, AtomicResultBuffer
from .costmodel import (CostBreakdown, CpuCostModel, CpuSpec, GpuCostModel,
                        XEON_W3690)
from .device import DeviceSpec, TESLA_C2075, VirtualGPU
from .kernel import KernelLauncher, KernelStats, warp_work
from .memory import DeviceArray, DeviceOutOfMemoryError, MemoryManager
from .occupancy import (FERMI, FermiLimits, LaunchConfig, best_block_size,
                        occupancy, utilization)
from .trace import profile_to_trace, write_trace
from .profiler import CpuSearchProfile, SearchProfile
from .transfers import TransferLedger, TransferRecord

__all__ = [
    "AtomicIntList", "AtomicResultBuffer",
    "CostBreakdown", "CpuCostModel", "CpuSpec", "GpuCostModel",
    "XEON_W3690",
    "DeviceSpec", "TESLA_C2075", "VirtualGPU",
    "KernelLauncher", "KernelStats", "warp_work",
    "DeviceArray", "DeviceOutOfMemoryError", "FERMI", "FermiLimits",
    "LaunchConfig", "MemoryManager", "best_block_size", "occupancy",
    "profile_to_trace", "utilization", "write_trace",
    "CpuSearchProfile", "SearchProfile",
    "TransferLedger", "TransferRecord",
]
