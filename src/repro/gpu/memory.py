"""Device global-memory management for the virtual GPU.

The paper stresses (§III) that GPU memory management is the hard part of
this problem: "there is no true dynamic memory allocation on the GPU, one
must statically allocate buffers and handle buffer overflow".  We model
that discipline:

* Allocations are explicit, named, and bounded by the device capacity —
  exceeding it raises :class:`DeviceOutOfMemoryError`, exactly the
  constraint that forces the paper to process query sets incrementally.
* A :class:`DeviceArray` wraps the backing NumPy array; host code must
  explicitly copy through the transfer ledger, which keeps the PCIe
  accounting honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceArray", "MemoryManager", "DeviceOutOfMemoryError"]


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation would exceed device global memory.

    Under a :class:`~repro.service.DevicePool` the message also names
    the device lane and snapshots the resident allocations, so a pool
    OOM is attributable to one card's contents rather than "a GPU".
    """

    def __init__(self, requested: int, free: int, device: str, *,
                 lane: int | None = None,
                 allocations: dict | None = None) -> None:
        msg = (f"{device}: cannot allocate {requested} bytes "
               f"({free} bytes free)")
        if lane is not None:
            msg += f" on lane {lane}"
        if allocations:
            resident = ", ".join(
                f"{name}={nbytes}" for name, nbytes in
                sorted(allocations.items()))
            msg += f"; resident: {resident}"
        super().__init__(msg)
        self.requested = requested
        self.free = free
        self.lane = lane
        self.allocations = dict(allocations or {})


@dataclass
class DeviceArray:
    """A named allocation in device global memory.

    ``data`` is the backing store.  Treat it as *device-resident*: host
    logic must go through :class:`repro.gpu.transfers.TransferLedger`
    (engines do) so that modeled PCIe traffic matches what a real
    implementation would ship across the bus.
    """

    name: str
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def __len__(self) -> int:
        return int(self.data.shape[0])


class MemoryManager:
    """Tracks named allocations against a fixed global-memory capacity."""

    def __init__(self, capacity_bytes: int, device_name: str = "gpu", *,
                 faults=None, lane: int | None = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.device_name = device_name
        #: fault injector consulted on every allocation (duck-typed,
        #: see :mod:`repro.faults`); None = no injection.
        self.faults = faults
        #: device-pool lane this memory belongs to (None = not pooled).
        self.lane = lane
        self._allocations: dict[str, DeviceArray] = {}
        self.peak_bytes = 0

    # -- allocation ------------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    def alloc(self, name: str, shape: tuple[int, ...] | int,
              dtype: np.dtype | type = np.float64) -> DeviceArray:
        """Allocate a zero-initialized device array."""
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        probe = np.zeros(shape, dtype=dtype)
        return self._register(name, probe)

    def put(self, name: str, host_array: np.ndarray) -> DeviceArray:
        """Allocate and fill from a host array (contents are copied).

        Note: this only *places* the data; the PCIe cost of moving it is
        recorded by the caller via the transfer ledger, because some
        placements (the database, the index) happen offline and are
        excluded from response time (§V-B).
        """
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        return self._register(name, np.array(host_array, copy=True))

    def _register(self, name: str, data: np.ndarray) -> DeviceArray:
        if self.faults is not None:
            self.faults.check("alloc", lane=self.lane, label=name,
                              requested=int(data.nbytes),
                              free=self.free_bytes,
                              device=self.device_name,
                              allocations=self.allocations())
        if data.nbytes > self.free_bytes:
            raise DeviceOutOfMemoryError(data.nbytes, self.free_bytes,
                                         self.device_name,
                                         lane=self.lane,
                                         allocations=self.allocations())
        arr = DeviceArray(name=name, data=data)
        self._allocations[name] = arr
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        return arr

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self._allocations[name]

    def resize(self, name: str, shape: tuple[int, ...] | int,
               dtype: np.dtype | type = np.float64) -> DeviceArray:
        """Replace an allocation with a zero-initialized one of a new
        shape (capacity-checked against the memory freed by the old one).

        Used by the engines' retry policy to grow the device result
        buffer in place without juggling temporary names.
        """
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        old = self._allocations.pop(name)
        try:
            return self.alloc(name, shape, dtype)
        except DeviceOutOfMemoryError:
            self._allocations[name] = old  # roll back
            raise

    def get(self, name: str) -> DeviceArray:
        return self._allocations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._allocations

    def allocations(self) -> dict[str, int]:
        """Snapshot of {name: nbytes} for reporting."""
        return {k: v.nbytes for k, v in self._allocations.items()}
