"""Host <-> device transfer accounting (the PCIe bus model).

Every byte an engine moves between host and GPU is recorded here.  The
paper's response-time behaviour depends heavily on this traffic: result
sets are transferred back after every kernel invocation, ``redo`` lists
ping-pong for GPUSpatial, and GPUSpatioTemporal's whole design trades
wasteful device computation for *less* data shipped to the device
("Experiments show that the induced wasteful computation on the GPU is
worth the savings in amount of data sent to the GPU", §IV-C.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TransferLedger", "TransferRecord"]


@dataclass(frozen=True)
class TransferRecord:
    """One host<->device copy."""

    direction: str  # "h2d" | "d2h"
    label: str
    nbytes: int


@dataclass
class TransferLedger:
    """Append-only log of PCIe transfers with direction totals.

    ``faults`` (duck-typed, see :mod:`repro.faults`) is consulted before
    a copy is recorded; an injected :class:`~repro.faults.TransferFault`
    models a PCIe transaction failing mid-flight, so the failed copy
    never appears in the ledger.
    """

    records: list[TransferRecord] = field(default_factory=list)
    faults: object | None = None
    lane: int | None = None

    def h2d(self, label: str, payload: np.ndarray | int) -> None:
        """Record a host-to-device copy of ``payload`` (array or #bytes)."""
        self._record("h2d", label, payload)

    def d2h(self, label: str, payload: np.ndarray | int) -> None:
        """Record a device-to-host copy of ``payload`` (array or #bytes)."""
        self._record("d2h", label, payload)

    def _record(self, direction: str, label: str,
                payload: np.ndarray | int) -> None:
        nbytes = int(payload.nbytes if isinstance(payload, np.ndarray)
                     else payload)
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if self.faults is not None:
            self.faults.check(direction, lane=self.lane, label=label)
        self.records.append(TransferRecord(direction, label, nbytes))

    # -- summaries ---------------------------------------------------------------

    @property
    def h2d_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.direction == "h2d")

    @property
    def d2h_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.direction == "d2h")

    @property
    def total_bytes(self) -> int:
        return self.h2d_bytes + self.d2h_bytes

    @property
    def num_transfers(self) -> int:
        return len(self.records)

    def by_label(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0) + r.nbytes
        return out
