"""Launch configuration and SM occupancy for the virtual GPU.

The paper sizes its kernels with "one query segment per thread" and
relies on ``|Q|`` being "moderately large [so] all GPU cores can be
utilized" (§IV).  This module makes that reasoning precise for the
modeled device: given a kernel's per-thread resource appetite (registers,
shared memory) and a block size, it computes how many blocks fit on an SM
(Fermi-generation limits), the resulting *occupancy* (resident warps vs
the SM's capacity), and the whole-grid utilization including the tail
effect when ``|Q|`` is small.

The search kernels are memory-bound, so occupancy mostly matters for
latency hiding; the cost model's throughput constants assume full
occupancy, and :func:`utilization` quantifies how far a given workload
falls short — the quantity behind Fig. 4's "the overhead of using the GPU
is simply too great" verdict on small workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec, TESLA_C2075

__all__ = ["FermiLimits", "LaunchConfig", "occupancy", "utilization",
           "best_block_size"]


@dataclass(frozen=True)
class FermiLimits:
    """Per-SM hardware limits (Fermi GF100/GF110 generation)."""

    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    max_warps_per_sm: int = 48
    registers_per_sm: int = 32768
    shared_mem_per_sm: int = 48 * 1024
    max_threads_per_block: int = 1024


FERMI = FermiLimits()


@dataclass(frozen=True)
class LaunchConfig:
    """One kernel launch configuration and its occupancy analysis."""

    block_size: int
    num_blocks: int
    resident_blocks_per_sm: int
    occupancy: float          # resident warps / max warps per SM
    limiting_factor: str      # "threads" | "blocks" | "registers" | "smem"

    @property
    def total_threads(self) -> int:
        return self.block_size * self.num_blocks


def occupancy(num_threads: int, block_size: int, *,
              registers_per_thread: int = 32,
              shared_mem_per_block: int = 0,
              spec: DeviceSpec = TESLA_C2075,
              limits: FermiLimits = FERMI) -> LaunchConfig:
    """Analyze a launch of ``num_threads`` at the given block size."""
    if not 1 <= block_size <= limits.max_threads_per_block:
        raise ValueError(f"block size must be in "
                         f"[1, {limits.max_threads_per_block}]")
    if block_size % spec.warp_size:
        raise ValueError("block size must be a warp multiple")
    if num_threads < 0:
        raise ValueError("num_threads must be non-negative")

    candidates = {
        "threads": limits.max_threads_per_sm // block_size,
        "blocks": limits.max_blocks_per_sm,
        "registers": (limits.registers_per_sm
                      // max(registers_per_thread * block_size, 1)),
    }
    if shared_mem_per_block > 0:
        candidates["smem"] = (limits.shared_mem_per_sm
                              // shared_mem_per_block)
    limiting = min(candidates, key=candidates.__getitem__)
    resident = max(0, candidates[limiting])
    warps_per_block = block_size // spec.warp_size
    occ = (resident * warps_per_block) / limits.max_warps_per_sm
    num_blocks = -(-num_threads // block_size) if num_threads else 0
    return LaunchConfig(block_size=block_size, num_blocks=num_blocks,
                        resident_blocks_per_sm=resident,
                        occupancy=min(occ, 1.0),
                        limiting_factor=limiting)


def utilization(num_threads: int, *, block_size: int = 256,
                spec: DeviceSpec = TESLA_C2075,
                limits: FermiLimits = FERMI,
                registers_per_thread: int = 32) -> float:
    """Fraction of the device a grid can keep busy (tail effect).

    A grid smaller than one full wave of resident blocks leaves SMs (or
    lanes) idle; this is why the paper needs "moderately large" |Q|.
    """
    cfg = occupancy(num_threads, block_size,
                    registers_per_thread=registers_per_thread,
                    spec=spec, limits=limits)
    if num_threads == 0:
        return 0.0
    wave_blocks = cfg.resident_blocks_per_sm * spec.num_sms
    if cfg.num_blocks >= wave_blocks:
        return 1.0
    # Partial wave: idle SMs plus a ragged final block.
    busy_threads = min(num_threads, cfg.num_blocks * block_size)
    return min(busy_threads / (spec.num_cores
                               * max(1.0, cfg.occupancy * 4)), 1.0)


def best_block_size(num_threads: int, *,
                    candidates: tuple[int, ...] = (64, 128, 192, 256,
                                                   384, 512),
                    registers_per_thread: int = 32,
                    shared_mem_per_block: int = 0,
                    spec: DeviceSpec = TESLA_C2075,
                    limits: FermiLimits = FERMI) -> LaunchConfig:
    """Pick the candidate block size with the highest occupancy
    (ties: smaller blocks, which reduce tail waste)."""
    best: LaunchConfig | None = None
    for bs in sorted(candidates):
        cfg = occupancy(num_threads, bs,
                        registers_per_thread=registers_per_thread,
                        shared_mem_per_block=shared_mem_per_block,
                        spec=spec, limits=limits)
        if best is None or cfg.occupancy > best.occupancy + 1e-12:
            best = cfg
    assert best is not None
    return best
