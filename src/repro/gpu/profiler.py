"""Search profiles: the measured-counts record of one engine run.

Every engine returns, next to its :class:`~repro.core.result.ResultSet`, a
:class:`SearchProfile` holding exactly what happened: kernel invocations
with per-thread work, PCIe traffic, atomic counts, buffer events, and
host-side schedule size.  The profile is the single source the cost model
reads, and it is also what the experiment harness prints so that every
reproduced figure is traceable to raw counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from .costmodel import CostBreakdown, CpuCostModel, GpuCostModel
from .device import VirtualGPU
from .kernel import KernelStats

__all__ = ["SearchProfile", "CpuSearchProfile", "RequestMetrics"]


@dataclass
class SearchProfile:
    """Execution record of one GPU-engine search."""

    engine: str
    num_queries: int
    kernel_stats: list[KernelStats] = field(default_factory=list)
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    num_transfers: int = 0
    schedule_items: int = 0
    #: queries that had to be re-processed (buffer overflow / result-buffer
    #: pressure), summed over all re-invocations.
    redo_queries: int = 0
    #: GPUSpatioTemporal only: queries that fell back to the temporal scheme.
    defaulted_queries: int = 0
    #: result items before host-side deduplication.
    raw_result_items: int = 0
    #: result items after deduplication.
    result_items: int = 0
    #: device bytes held by the index (offline, for reporting).
    index_bytes: int = 0
    #: wall-clock seconds spent simulating (not modeled time).
    wall_seconds: float = 0.0
    #: search attempts under the retry policy (1 = first try succeeded).
    attempts: int = 1
    #: modeled backoff the retry policy charged between attempts.
    backoff_s: float = 0.0

    @classmethod
    def capture(cls, engine: str, gpu: VirtualGPU, num_queries: int,
                **kw) -> "SearchProfile":
        return cls(
            engine=engine,
            num_queries=num_queries,
            kernel_stats=list(gpu.kernel_stats),
            h2d_bytes=gpu.transfers.h2d_bytes,
            d2h_bytes=gpu.transfers.d2h_bytes,
            num_transfers=gpu.transfers.num_transfers,
            **kw,
        )

    # -- aggregates -------------------------------------------------------------

    @property
    def num_kernel_invocations(self) -> int:
        return len(self.kernel_stats)

    @property
    def total_comparisons(self) -> int:
        return sum(s.total_comparisons for s in self.kernel_stats)

    @property
    def total_gathers(self) -> int:
        return sum(s.total_gathers for s in self.kernel_stats)

    @property
    def total_atomics(self) -> int:
        return sum(s.atomic_ops for s in self.kernel_stats)

    def divergence_factor(self, warp_size: int = 32) -> float:
        """Grid-wide SIMT divergence (1.0 = converged)."""
        num = 0.0
        den = 0.0
        for s in self.kernel_stats:
            from .kernel import warp_work
            num += warp_work(s.thread_work, warp_size) * warp_size
            den += s.thread_work.sum()
        return float(num / den) if den else 1.0

    # -- modeled time -------------------------------------------------------------

    def modeled_time(self, model: GpuCostModel,
                     *, discount_reinvocations: bool = False
                     ) -> CostBreakdown:
        """Convert this profile's counts to modeled seconds."""
        total = CostBreakdown()
        for i, stats in enumerate(self.kernel_stats):
            include_launch = not (discount_reinvocations and i > 0)
            total = total + model.kernel_time(
                stats, include_launch=include_launch)
        xfer_payload = ((self.h2d_bytes + self.d2h_bytes)
                        / model.spec.pcie_bandwidth)
        n_lat = 2 if (discount_reinvocations
                      and self.num_kernel_invocations > 1) \
            else self.num_transfers
        total = total + CostBreakdown(
            transfers=xfer_payload + n_lat * model.spec.pcie_latency_s)
        total = total + model.host_time(self.schedule_items)
        return total

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation; ``kind`` discriminates GPU/CPU
        profiles so :meth:`SearchOutcome.from_dict` can reload either."""
        return {
            "kind": "gpu",
            "engine": self.engine,
            "num_queries": int(self.num_queries),
            "kernel_stats": [s.to_dict() for s in self.kernel_stats],
            "h2d_bytes": int(self.h2d_bytes),
            "d2h_bytes": int(self.d2h_bytes),
            "num_transfers": int(self.num_transfers),
            "schedule_items": int(self.schedule_items),
            "redo_queries": int(self.redo_queries),
            "defaulted_queries": int(self.defaulted_queries),
            "raw_result_items": int(self.raw_result_items),
            "result_items": int(self.result_items),
            "index_bytes": int(self.index_bytes),
            "wall_seconds": float(self.wall_seconds),
            "attempts": int(self.attempts),
            "backoff_s": float(self.backoff_s),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchProfile":
        """Inverse of :meth:`to_dict` (retry fields are optional so
        pre-resilience payloads still load)."""
        if payload.get("kind", "gpu") != "gpu":
            raise ValueError(
                f"expected a GPU profile, got kind={payload.get('kind')!r}")
        fields_ = {k: payload[k] for k in (
            "engine", "num_queries", "h2d_bytes", "d2h_bytes",
            "num_transfers", "schedule_items", "redo_queries",
            "defaulted_queries", "raw_result_items", "result_items",
            "index_bytes", "wall_seconds")}
        fields_["kernel_stats"] = [KernelStats.from_dict(s)
                                   for s in payload["kernel_stats"]]
        fields_["attempts"] = int(payload.get("attempts", 1))
        fields_["backoff_s"] = float(payload.get("backoff_s", 0.0))
        return cls(**fields_)


@dataclass
class CpuSearchProfile:
    """Execution record of one CPU-RTree search."""

    engine: str
    num_queries: int
    node_visits: int = 0
    comparisons: int = 0
    result_items: int = 0
    index_bytes: int = 0
    wall_seconds: float = 0.0

    def modeled_time(self, model: CpuCostModel) -> CostBreakdown:
        return model.search_time(
            node_visits=self.node_visits,
            comparisons=self.comparisons,
            num_queries=self.num_queries,
            result_items=self.result_items,
        )

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation (``kind`` discriminator: cpu)."""
        return {
            "kind": "cpu",
            "engine": self.engine,
            "num_queries": int(self.num_queries),
            "node_visits": int(self.node_visits),
            "comparisons": int(self.comparisons),
            "result_items": int(self.result_items),
            "index_bytes": int(self.index_bytes),
            "wall_seconds": float(self.wall_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CpuSearchProfile":
        """Inverse of :meth:`to_dict`."""
        if payload.get("kind", "cpu") != "cpu":
            raise ValueError(
                f"expected a CPU profile, got kind={payload.get('kind')!r}")
        return cls(**{k: payload[k] for k in (
            "engine", "num_queries", "node_visits", "comparisons",
            "result_items", "index_bytes", "wall_seconds")})


@dataclass
class RequestMetrics:
    """Service-side telemetry for one batch request.

    Produced by :class:`repro.service.QueryService` next to each
    :class:`~repro.core.search.SearchOutcome`: where the time went
    (queue wait vs execution), whether the engine cache hit, and whether
    the request was degraded to a fallback engine.
    """

    #: engine actually used (after auto selection / degradation).
    engine: str = ""
    #: modeled seconds the batch waited for a free device lane.
    queue_wait_s: float = 0.0
    #: True when a cached engine (index already built) served the batch.
    cache_hit: bool = False
    #: wall seconds spent building the engine/index (0.0 on cache hits).
    engine_build_s: float = 0.0
    #: kernel invocations the batch needed (0 for CPU engines).
    invocations: int = 0
    #: modeled response time of the search itself.
    modeled_seconds: float = 0.0
    #: wall seconds spent simulating the search.
    wall_seconds: float = 0.0
    #: True when the requested/planned engine failed and the service
    #: fell back to another engine.
    degraded: bool = False
    #: why the degradation happened (empty when not degraded).
    degradation_reason: str = ""
    #: search attempts the serving engine needed (retry policy).
    attempts: int = 1
    #: modeled backoff charged between retry attempts.
    backoff_s: float = 0.0
    #: failover hops the service walked before this engine answered
    #: (0 = the requested/planned engine served it).
    failovers: int = 0
    #: modeled service-clock instant the request arrived.
    arrival_s: float = 0.0
    #: modeled lane occupancy, one entry per shard:
    #: ``{"lane": int, "start_s": float, "dur_s": float, "shard": int}``
    #: (lane -1 = host).  Feeds the multi-lane Chrome trace exporter.
    lane_spans: list = field(default_factory=list)
    #: database epoch of the snapshot the request was pinned to.
    snapshot_epoch: int = 0
    #: live delta rows overlaid on the base results (0 = clean base).
    delta_segments: int = 0
    #: modeled seconds of the brute-force delta-overlay scan.
    delta_scan_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "engine": self.engine,
            "queue_wait_s": float(self.queue_wait_s),
            "cache_hit": bool(self.cache_hit),
            "engine_build_s": float(self.engine_build_s),
            "invocations": int(self.invocations),
            "modeled_seconds": float(self.modeled_seconds),
            "wall_seconds": float(self.wall_seconds),
            "degraded": bool(self.degraded),
            "degradation_reason": self.degradation_reason,
            "attempts": int(self.attempts),
            "backoff_s": float(self.backoff_s),
            "failovers": int(self.failovers),
            "arrival_s": float(self.arrival_s),
            "lane_spans": [dict(s) for s in self.lane_spans],
            "snapshot_epoch": int(self.snapshot_epoch),
            "delta_segments": int(self.delta_segments),
            "delta_scan_s": float(self.delta_scan_s),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RequestMetrics":
        """Inverse of :meth:`to_dict` (the lane fields are optional so
        pre-telemetry payloads still load)."""
        return cls(
            **{k: payload[k] for k in (
                "engine", "queue_wait_s", "cache_hit", "engine_build_s",
                "invocations", "modeled_seconds", "wall_seconds",
                "degraded", "degradation_reason")},
            attempts=int(payload.get("attempts", 1)),
            backoff_s=float(payload.get("backoff_s", 0.0)),
            failovers=int(payload.get("failovers", 0)),
            arrival_s=float(payload.get("arrival_s", 0.0)),
            lane_spans=[dict(s)
                        for s in payload.get("lane_spans", [])],
            snapshot_epoch=int(payload.get("snapshot_epoch", 0)),
            delta_segments=int(payload.get("delta_segments", 0)),
            delta_scan_s=float(payload.get("delta_scan_s", 0.0)),
        )
