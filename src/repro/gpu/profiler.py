"""Search profiles: the measured-counts record of one engine run.

Every engine returns, next to its :class:`~repro.core.result.ResultSet`, a
:class:`SearchProfile` holding exactly what happened: kernel invocations
with per-thread work, PCIe traffic, atomic counts, buffer events, and
host-side schedule size.  The profile is the single source the cost model
reads, and it is also what the experiment harness prints so that every
reproduced figure is traceable to raw counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .costmodel import CostBreakdown, CpuCostModel, GpuCostModel
from .device import VirtualGPU
from .kernel import KernelStats

__all__ = ["SearchProfile", "CpuSearchProfile"]


@dataclass
class SearchProfile:
    """Execution record of one GPU-engine search."""

    engine: str
    num_queries: int
    kernel_stats: list[KernelStats] = field(default_factory=list)
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    num_transfers: int = 0
    schedule_items: int = 0
    #: queries that had to be re-processed (buffer overflow / result-buffer
    #: pressure), summed over all re-invocations.
    redo_queries: int = 0
    #: GPUSpatioTemporal only: queries that fell back to the temporal scheme.
    defaulted_queries: int = 0
    #: result items before host-side deduplication.
    raw_result_items: int = 0
    #: result items after deduplication.
    result_items: int = 0
    #: device bytes held by the index (offline, for reporting).
    index_bytes: int = 0
    #: wall-clock seconds spent simulating (not modeled time).
    wall_seconds: float = 0.0

    @classmethod
    def capture(cls, engine: str, gpu: VirtualGPU, num_queries: int,
                **kw) -> "SearchProfile":
        return cls(
            engine=engine,
            num_queries=num_queries,
            kernel_stats=list(gpu.kernel_stats),
            h2d_bytes=gpu.transfers.h2d_bytes,
            d2h_bytes=gpu.transfers.d2h_bytes,
            num_transfers=gpu.transfers.num_transfers,
            **kw,
        )

    # -- aggregates -------------------------------------------------------------

    @property
    def num_kernel_invocations(self) -> int:
        return len(self.kernel_stats)

    @property
    def total_comparisons(self) -> int:
        return sum(s.total_comparisons for s in self.kernel_stats)

    @property
    def total_gathers(self) -> int:
        return sum(s.total_gathers for s in self.kernel_stats)

    @property
    def total_atomics(self) -> int:
        return sum(s.atomic_ops for s in self.kernel_stats)

    def divergence_factor(self, warp_size: int = 32) -> float:
        """Grid-wide SIMT divergence (1.0 = converged)."""
        num = 0.0
        den = 0.0
        for s in self.kernel_stats:
            from .kernel import warp_work
            num += warp_work(s.thread_work, warp_size) * warp_size
            den += s.thread_work.sum()
        return float(num / den) if den else 1.0

    # -- modeled time -------------------------------------------------------------

    def modeled_time(self, model: GpuCostModel,
                     *, discount_reinvocations: bool = False
                     ) -> CostBreakdown:
        """Convert this profile's counts to modeled seconds."""
        total = CostBreakdown()
        for i, stats in enumerate(self.kernel_stats):
            include_launch = not (discount_reinvocations and i > 0)
            total = total + model.kernel_time(
                stats, include_launch=include_launch)
        xfer_payload = ((self.h2d_bytes + self.d2h_bytes)
                        / model.spec.pcie_bandwidth)
        n_lat = 2 if (discount_reinvocations
                      and self.num_kernel_invocations > 1) \
            else self.num_transfers
        total = total + CostBreakdown(
            transfers=xfer_payload + n_lat * model.spec.pcie_latency_s)
        total = total + model.host_time(self.schedule_items)
        return total


@dataclass
class CpuSearchProfile:
    """Execution record of one CPU-RTree search."""

    engine: str
    num_queries: int
    node_visits: int = 0
    comparisons: int = 0
    result_items: int = 0
    index_bytes: int = 0
    wall_seconds: float = 0.0

    def modeled_time(self, model: CpuCostModel) -> CostBreakdown:
        return model.search_time(
            node_visits=self.node_visits,
            comparisons=self.comparisons,
            num_queries=self.num_queries,
            result_items=self.result_items,
        )
