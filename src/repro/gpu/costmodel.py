"""Analytic response-time model for the virtual GPU and the host CPU.

Why a model?  The paper's evaluation ran OpenCL on a Tesla C2075 and C++
/OpenMP on a 6-core Xeon W3690.  Neither device is available here, but the
paper's conclusions are driven by *operation counts* — how many candidate
segments each scheme touches, how many comparisons each thread performs,
how many bytes cross PCIe, how many times a kernel must be re-invoked —
interacting with a handful of machine constants.  The engines in this
repository execute the real algorithms and measure those counts exactly;
this module converts the counts into modeled seconds.

The constants below were calibrated in two steps:

1. Architectural numbers (core counts, clocks, PCIe bandwidth, warp width)
   are taken directly from the hardware the paper names.
2. Per-operation cycle costs were fit so the model reproduces the response
   times the paper quotes (§V-D: Merger at d=0.001 — CPU 9.70 s vs
   GPUTemporal 41.75 s; at d=5 — 184.4 s vs 116.09 s; §V-C: +12.4 %
   indirection overhead at d=50).  A global-memory-bound segment
   comparison on Fermi costs a few thousand cycles per lane (two 64-byte
   uncoalesced segment loads dominate); a cache-resident vectorized
   comparison on the Xeon costs a couple hundred.

Timing equations
----------------
GPU, per kernel invocation ``k`` (stats from :mod:`repro.gpu.kernel`)::

    T_compute(k) = [ W_cmp(k) * c_cmp + W_gth(k) * c_gather ]
                   / (concurrent_warps * f_gpu)
    W_*          = sum over warps of max lane work   (SIMT lockstep)
    T_atomic(k)  = atomic_ops(k) * c_atomic / (num_sms * f_gpu)
    T_launch(k)  = kernel_launch_s

Transfers: ``sum(bytes)/pcie_bandwidth + num_transfers * pcie_latency``.

CPU (R-tree baseline)::

    T = [ node_visits * c_node + comparisons * c_cmp_cpu
          + queries * c_query ] / (cores * efficiency * f_cpu)
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec, TESLA_C2075, VirtualGPU
from .kernel import KernelStats, warp_work
from .transfers import TransferLedger

__all__ = [
    "GpuCostModel",
    "CpuSpec",
    "CpuCostModel",
    "CostBreakdown",
    "XEON_W3690",
]


@dataclass(frozen=True)
class CostBreakdown:
    """Modeled response-time components, in seconds."""

    compute: float = 0.0
    atomics: float = 0.0
    launches: float = 0.0
    transfers: float = 0.0
    host: float = 0.0

    @property
    def total(self) -> float:
        return (self.compute + self.atomics + self.launches
                + self.transfers + self.host)

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.compute + other.compute,
            self.atomics + other.atomics,
            self.launches + other.launches,
            self.transfers + other.transfers,
            self.host + other.host,
        )

    def to_dict(self) -> dict:
        """JSON-friendly representation (``total`` included for readers)."""
        return {
            "compute": self.compute,
            "atomics": self.atomics,
            "launches": self.launches,
            "transfers": self.transfers,
            "host": self.host,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostBreakdown":
        """Inverse of :meth:`to_dict` (``total`` is derived, not stored)."""
        return cls(
            compute=float(payload["compute"]),
            atomics=float(payload["atomics"]),
            launches=float(payload["launches"]),
            transfers=float(payload["transfers"]),
            host=float(payload["host"]),
        )


@dataclass(frozen=True)
class GpuCostModel:
    """Per-operation cycle costs on the device (see module docstring)."""

    spec: DeviceSpec = TESLA_C2075
    cycles_per_comparison: float = 3000.0   # global-memory-bound refine
    cycles_per_gather: float = 500.0        # cell probe / U_k buffer write
    cycles_per_atomic: float = 600.0        # serialized tail-counter update
    host_cycles_per_schedule_item: float = 60.0
    host_clock_hz: float = 3.46e9

    # -- per-piece costs -----------------------------------------------------------

    def kernel_time(self, stats: KernelStats,
                    *, include_launch: bool = True) -> CostBreakdown:
        ws = self.spec.warp_size
        w_cmp = warp_work(stats.thread_work, ws)
        w_gth = warp_work(stats.gather_work, ws)
        # Tail underutilization: a grid with fewer warps than the device
        # executes concurrently cannot use every SM.
        grid_warps = max(1, -(-stats.num_threads // ws))
        concurrency = min(self.spec.concurrent_warps, grid_warps)
        compute = ((w_cmp * self.cycles_per_comparison
                    + w_gth * self.cycles_per_gather)
                   / (concurrency * self.spec.clock_hz))
        atomics = (stats.atomic_ops * self.cycles_per_atomic
                   / (self.spec.num_sms * self.spec.clock_hz))
        launches = self.spec.kernel_launch_s if include_launch else 0.0
        return CostBreakdown(compute=compute, atomics=atomics,
                             launches=launches)

    def transfer_time(self, ledger: TransferLedger) -> CostBreakdown:
        t = (ledger.total_bytes / self.spec.pcie_bandwidth
             + ledger.num_transfers * self.spec.pcie_latency_s)
        return CostBreakdown(transfers=t)

    def host_time(self, schedule_items: int) -> CostBreakdown:
        """Host-side schedule computation (sorting Q, computing E_k...).

        The paper reports this is a negligible fraction of response time;
        the model keeps it non-zero so that claim is checkable."""
        return CostBreakdown(host=schedule_items
                             * self.host_cycles_per_schedule_item
                             / self.host_clock_hz)

    # -- whole-search roll-up ---------------------------------------------------------

    def search_time(self, gpu: VirtualGPU, *, schedule_items: int = 0,
                    discount_reinvocations: bool = False) -> CostBreakdown:
        """Total modeled response time for everything recorded on ``gpu``.

        ``discount_reinvocations=True`` reproduces the paper's "optimistic"
        GPUSpatial curve (Fig. 4): kernel-launch overhead and transfer
        latency for re-invocations are discounted, keeping only the first
        launch — isolating algorithmic cost from re-invocation overhead.
        """
        total = CostBreakdown()
        for i, stats in enumerate(gpu.kernel_stats):
            include_launch = not (discount_reinvocations and i > 0)
            total = total + self.kernel_time(stats,
                                             include_launch=include_launch)
        xfer = self.transfer_time(gpu.transfers)
        if discount_reinvocations and gpu.num_kernel_invocations > 1:
            # Keep payload time (bytes/BW) but charge latency only once
            # per direction — the optimistic bound of Fig. 4.
            latency = gpu.transfers.num_transfers * self.spec.pcie_latency_s
            xfer = CostBreakdown(
                transfers=max(xfer.transfers - latency, 0.0)
                + 2 * self.spec.pcie_latency_s)
        total = total + xfer
        total = total + self.host_time(schedule_items)
        return total


#: The paper's host CPU (§V-B): 3.46 GHz Intel Xeon W3690, 6 cores,
#: 12 MiB L3.  Parallel efficiency ~80 % on 6 threads per [22].
@dataclass(frozen=True)
class CpuSpec:
    name: str
    cores: int
    clock_hz: float
    parallel_efficiency: float


XEON_W3690 = CpuSpec(name="Xeon W3690", cores=6, clock_hz=3.46e9,
                     parallel_efficiency=0.80)


@dataclass(frozen=True)
class CpuCostModel:
    """Cost model for the CPU-RTree baseline.

    The R-tree search is cache-friendlier than the GPU's scattered global
    loads, and gcc -O3 vectorizes the refinement, so the per-comparison
    cycle cost is much lower than the GPU lane cost — but only
    ``cores * efficiency`` comparisons proceed at once instead of 448.
    """

    spec: CpuSpec = XEON_W3690
    cycles_per_node_visit: float = 600.0   # fanout MBB tests + pointer chase
    cycles_per_comparison: float = 600.0   # branchy 4-D moving-point refine
    cycles_per_query_overhead: float = 1500.0  # per-query setup, output

    def search_time(self, *, node_visits: int, comparisons: int,
                    num_queries: int, result_items: int = 0) -> CostBreakdown:
        cycles = (node_visits * self.cycles_per_node_visit
                  + comparisons * self.cycles_per_comparison
                  + num_queries * self.cycles_per_query_overhead
                  + result_items * 40.0)  # result write-out
        throughput = (self.spec.cores * self.spec.parallel_efficiency
                      * self.spec.clock_hz)
        return CostBreakdown(compute=cycles / throughput)
