"""SIMT kernel-execution model.

All three search kernels follow the paper's load-balancing rule: *one
query segment per GPU thread* (§IV).  A kernel launch therefore creates
``|Q|`` logical threads; the hardware executes them in warps of 32 in
thread-id order, and a warp retires only when its slowest lane finishes —
SIMT lockstep.  Thread *divergence* (lanes of one warp doing different
amounts of work) is consequently the GPU's main inefficiency, and it is
exactly what GPUSpatioTemporal's schedule sort is designed to reduce.

The model executes each thread's real work (vectorized NumPy inside the
engines) and records, per thread, how many *work units* it performed —
candidate-gathering steps, index probes and segment comparisons.  The cost
model then reconstructs warp timing: a warp's duration is the maximum of
its lanes' work, and the device retires ``concurrent_warps`` warps at a
time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..obs.telemetry import current as _current_telemetry
from .device import VirtualGPU

__all__ = ["KernelStats", "KernelLauncher", "LaunchSpec", "BatchResult",
           "warp_work"]


@dataclass
class KernelStats:
    """Execution record of one kernel invocation.

    ``thread_work`` holds, per logical thread in thread-id order, the
    number of work units (dominated by segment comparisons) the thread
    executed.  ``atomic_ops`` counts global atomic operations issued by
    the whole grid.  ``gather_ops`` counts index-probe/buffer-fill steps
    (GPUSpatial's cell lookups and ``U_k`` writes), which are charged at a
    different rate than full segment comparisons.
    """

    name: str
    num_threads: int
    thread_work: np.ndarray
    gather_work: np.ndarray
    atomic_ops: int = 0

    def __post_init__(self) -> None:
        if self.thread_work.shape != (self.num_threads,):
            raise ValueError("thread_work must have one slot per thread")
        if self.gather_work.shape != (self.num_threads,):
            raise ValueError("gather_work must have one slot per thread")

    @property
    def total_comparisons(self) -> int:
        return int(self.thread_work.sum())

    @property
    def total_gathers(self) -> int:
        return int(self.gather_work.sum())

    def divergence_factor(self, warp_size: int) -> float:
        """How much SIMT lockstep inflates compute: (warp-max work summed)
        / (mean work summed).  1.0 = perfectly converged warps."""
        eff = warp_work(self.thread_work, warp_size)
        total = self.thread_work.sum()
        if total == 0:
            return 1.0
        return float(eff * warp_size / total)

    def to_dict(self) -> dict:
        """JSON-friendly representation (work arrays as plain lists)."""
        return {
            "name": self.name,
            "num_threads": int(self.num_threads),
            "thread_work": self.thread_work.tolist(),
            "gather_work": self.gather_work.tolist(),
            "atomic_ops": int(self.atomic_ops),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "KernelStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            num_threads=int(payload["num_threads"]),
            thread_work=np.asarray(payload["thread_work"],
                                   dtype=np.int64),
            gather_work=np.asarray(payload["gather_work"],
                                   dtype=np.int64),
            atomic_ops=int(payload["atomic_ops"]),
        )


def warp_work(thread_work: np.ndarray, warp_size: int) -> int:
    """Sum over warps of the per-warp maximum lane work.

    This is the number of lockstep issue slots the grid needs: each warp
    occupies its 32 lanes for as long as its busiest lane.
    """
    n = thread_work.shape[0]
    if n == 0:
        return 0
    pad = (-n) % warp_size
    padded = np.pad(thread_work, (0, pad))
    return int(padded.reshape(-1, warp_size).max(axis=1).sum())


@dataclass(frozen=True)
class LaunchSpec:
    """Declarative description of one kernel invocation.

    Replaces the imperative per-block ``launcher.launch(...)`` context
    dance: an engine states *what* is launched — grid size, named device
    inputs to ship, and the fault-hook point — and hands the launcher a
    kernel callable executed once for the whole batch of logical
    threads.

    Attributes
    ----------
    name:
        Kernel name; tags the recorded :class:`KernelStats`, the
        telemetry span and (by default) the fault-injection label.
    num_threads:
        Grid size — one logical thread per live query segment (§IV).
    inputs:
        ``(label, nbytes)`` pairs charged as host-to-device transfers
        immediately before the launch (e.g. the redo-query id list).
        Transfer faults therefore fire *before* the kernel fault hook,
        exactly like the historical explicit ``transfers.h2d`` calls.
    fault_point:
        Fault-injection channel consulted at launch; an injected abort
        kills the invocation before it runs, an injected stall inflates
        the recorded per-thread work on completion.
    """

    name: str
    num_threads: int
    inputs: tuple[tuple[str, int], ...] = ()
    fault_point: str = "kernel"

    def __post_init__(self) -> None:
        if self.num_threads < 0:
            raise ValueError("num_threads must be non-negative")


@dataclass(frozen=True)
class BatchResult:
    """What one whole-batch kernel invocation produced.

    ``stats`` is the same object appended to ``gpu.kernel_stats`` (the
    per-thread op counts the cost model charges); ``value`` is whatever
    the kernel callable returned to the host.
    """

    stats: "KernelStats"
    value: Any = None

    @property
    def thread_work(self) -> np.ndarray:
        return self.stats.thread_work

    @property
    def gather_work(self) -> np.ndarray:
        return self.stats.gather_work

    @property
    def atomic_ops(self) -> int:
        return self.stats.atomic_ops


class KernelLauncher:
    """Creates kernel invocations against a :class:`VirtualGPU`.

    Whole-batch usage (the production path)::

        launcher = KernelLauncher(gpu)

        def kernel(k):                    # runs once for all threads
            ...vectorized passes over every live thread...
            k.thread_work[:] = comparisons_per_thread
            k.add_atomics(results_appended)
            return host_visible_outputs

        out = launcher.run(LaunchSpec(name="gpu_temporal",
                                      num_threads=len(Q)), kernel)
        out.value          # what `kernel` returned
        out.thread_work    # per-thread op counts, post stall inflation

    The legacy context-manager form (``with launcher.launch(...) as k:``)
    is kept as a thin compatibility shim over the same machinery.

    Either way the stats are validated on completion and appended to
    ``gpu.kernel_stats``; the cost model later charges one
    ``kernel_launch_s`` per entry plus the modeled execution time.
    """

    def __init__(self, gpu: VirtualGPU) -> None:
        self.gpu = gpu

    def run(self, spec: LaunchSpec,
            kernel: Callable[["_LaunchContext"], Any]) -> BatchResult:
        """Execute ``kernel`` once for the whole batch described by
        ``spec``; returns the recorded stats plus the kernel's return
        value.  Failed launches (fault aborts, kernel errors) propagate
        and record nothing, as before."""
        for label, nbytes in spec.inputs:
            self.gpu.transfers.h2d(label, nbytes)
        ctx = _LaunchContext(self.gpu, spec.name, spec.num_threads,
                             fault_point=spec.fault_point)
        with ctx:
            value = kernel(ctx)
        return BatchResult(stats=ctx.stats, value=value)

    def launch(self, name: str, num_threads: int) -> "_LaunchContext":
        """Compatibility shim: the pre-:class:`LaunchSpec` imperative
        form.  Equivalent to ``run`` with no declared inputs."""
        if num_threads < 0:
            raise ValueError("num_threads must be non-negative")
        return _LaunchContext(self.gpu, name, num_threads)


class _LaunchContext:
    def __init__(self, gpu: VirtualGPU, name: str, num_threads: int,
                 fault_point: str = "kernel") -> None:
        self.gpu = gpu
        self.name = name
        self.num_threads = num_threads
        self.fault_point = fault_point
        self.thread_work = np.zeros(num_threads, dtype=np.int64)
        self.gather_work = np.zeros(num_threads, dtype=np.int64)
        self._atomics = 0
        self.stats: KernelStats | None = None

    def add_atomics(self, n: int) -> None:
        if n < 0:
            raise ValueError("atomic count must be non-negative")
        self._atomics += int(n)

    def __enter__(self) -> "_LaunchContext":
        # Fault check happens at launch: an injected abort kills the
        # invocation before it runs (nothing recorded, nothing
        # published); an injected stall lets it run but inflates the
        # per-thread work on exit, modeling a slow lane.
        self._stall = 1.0
        if self.gpu.faults is not None:
            self._stall = self.gpu.faults.check(
                self.fault_point, lane=self.gpu.lane, label=self.name)
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return  # don't record failed launches
        thread_work = self.thread_work
        if self._stall > 1.0:
            thread_work = np.ceil(
                thread_work * self._stall).astype(np.int64)
        stats = KernelStats(
            name=self.name,
            num_threads=self.num_threads,
            thread_work=thread_work,
            gather_work=self.gather_work,
            atomic_ops=self._atomics,
        )
        self.stats = stats
        self.gpu.kernel_stats.append(stats)
        # One span per invocation under the engine's search span (a
        # no-op when no telemetry is active).
        telemetry = _current_telemetry()
        if telemetry.enabled:
            telemetry.tracer.record(
                f"kernel:{self.name}",
                self._wall0, time.perf_counter() - self._wall0,
                invocation=len(self.gpu.kernel_stats) - 1,
                num_threads=self.num_threads,
                comparisons=stats.total_comparisons,
                atomics=stats.atomic_ops)
