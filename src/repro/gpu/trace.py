"""Execution-trace export: profiles -> Chrome trace-event JSON.

Converts a :class:`~repro.gpu.profiler.SearchProfile` into the Trace
Event Format consumed by ``chrome://tracing`` / Perfetto, laying out the
modeled timeline: kernel invocations on a GPU track, host<->device
transfers on a PCIe track, host scheduling on a CPU track.  Durations are
the cost model's — the tool visualizes where modeled time goes, which is
how the response-time breakdowns in EXPERIMENTS.md were sanity-checked.
"""

from __future__ import annotations

import json
from pathlib import Path

from .costmodel import GpuCostModel
from .profiler import SearchProfile

__all__ = ["profile_to_trace", "write_trace"]

_US = 1e6  # trace event timestamps are microseconds

_TRACKS = {"gpu": 1, "pcie": 2, "host": 3}


def profile_to_trace(profile: SearchProfile,
                     model: GpuCostModel | None = None) -> list[dict]:
    """Build the trace event list for one search profile.

    Events are complete-events (``ph: "X"``) with modeled durations; the
    timeline serializes phases in execution order: host schedule, query
    upload, then per-invocation kernel + result download (+ redo
    round-trips, approximated as evenly split transfer time).
    """
    model = model or GpuCostModel()
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": f"{track} (modeled)"}}
        for track, tid in _TRACKS.items()
    ]
    t = 0.0

    def emit(name: str, track: str, dur_s: float, **args) -> None:
        nonlocal t
        events.append({
            "name": name, "ph": "X", "pid": 0, "tid": _TRACKS[track],
            "ts": round(t * _US, 3), "dur": round(dur_s * _US, 3),
            "args": args,
        })
        t += dur_s

    host = model.host_time(profile.schedule_items).host
    if host > 0:
        emit("compute schedule", "host", host,
             items=profile.schedule_items)

    n_inv = max(profile.num_kernel_invocations, 1)
    xfer_total = ((profile.h2d_bytes + profile.d2h_bytes)
                  / model.spec.pcie_bandwidth
                  + profile.num_transfers * model.spec.pcie_latency_s)
    xfer_share = xfer_total / (n_inv + 1)

    emit("upload Q + schedule", "pcie", xfer_share,
         h2d_bytes=profile.h2d_bytes)
    for i, stats in enumerate(profile.kernel_stats):
        cost = model.kernel_time(stats)
        emit(f"kernel #{i} launch", "host", cost.launches)
        emit(f"{stats.name} #{i}", "gpu", cost.compute + cost.atomics,
             threads=stats.num_threads,
             comparisons=stats.total_comparisons,
             atomics=stats.atomic_ops,
             divergence=round(stats.divergence_factor(
                 model.spec.warp_size), 3))
        emit(f"drain results #{i}", "pcie", xfer_share)
    return events


def write_trace(profile: SearchProfile, path: str | Path,
                model: GpuCostModel | None = None) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": profile_to_trace(profile, model),
               "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path
