"""Execution-trace export: profiles -> Chrome trace-event JSON.

Converts a :class:`~repro.gpu.profiler.SearchProfile` into the Trace
Event Format consumed by ``chrome://tracing`` / Perfetto, laying out the
modeled timeline: kernel invocations on a GPU track, host<->device
transfers on a PCIe track, host scheduling on a CPU track.  Durations are
the cost model's — the tool visualizes where modeled time goes, which is
how the response-time breakdowns in EXPERIMENTS.md were sanity-checked.

Redo round-trips are rendered explicitly: every re-invocation gets its
own redo-upload + kernel + drain event triple, sized from that
invocation's :class:`~repro.gpu.kernel.KernelStats` (thread count for
the redo id upload, atomic appends for the result drain), instead of an
even split of the total transfer time.  ``defaulted_queries`` appears
as a counter event on the GPU track.

:mod:`repro.obs.chrome` builds on :func:`profile_events` to render a
whole service batch across device lanes.
"""

from __future__ import annotations

import json
from pathlib import Path

from .costmodel import GpuCostModel
from .profiler import SearchProfile

__all__ = ["profile_to_trace", "profile_events", "write_trace"]

_US = 1e6  # trace event timestamps are microseconds

_TRACKS = {"gpu": 1, "pcie": 2, "host": 3}


def profile_events(profile: SearchProfile,
                   model: GpuCostModel | None = None, *,
                   t0: float = 0.0,
                   tids: dict[str, int] | None = None,
                   label: str = "") -> list[dict]:
    """Trace events (no track metadata) for one search profile.

    ``t0`` offsets the timeline (seconds) and ``tids`` remaps the three
    logical tracks (``gpu``/``pcie``/``host``) onto thread ids, which is
    how the service exporter lays several requests onto shared lanes.
    The sum of the emitted ``X`` durations equals the profile's modeled
    total exactly.
    """
    model = model or GpuCostModel()
    tids = tids or _TRACKS
    prefix = f"{label} " if label else ""
    events: list[dict] = []
    t = t0

    def emit(name: str, track: str, dur_s: float, **args) -> None:
        nonlocal t
        events.append({
            "name": prefix + name, "ph": "X", "pid": 0,
            "tid": tids[track],
            "ts": round(t * _US, 3), "dur": round(dur_s * _US, 3),
            "args": args,
        })
        t += dur_s

    host = model.host_time(profile.schedule_items).host
    if host > 0:
        emit("compute schedule", "host", host,
             items=profile.schedule_items)

    n_inv = max(profile.num_kernel_invocations, 1)
    bw = model.spec.pcie_bandwidth

    # Per-invocation transfer payloads, reconstructed from the per-
    # invocation KernelStats: a re-invocation uploads one 8-byte id per
    # live (redo) thread, and an invocation's share of the result drain
    # is proportional to its atomic appends.
    stats = profile.kernel_stats
    redo_bytes = [8 * s.num_threads for s in stats[1:]]
    redo_total = min(sum(redo_bytes), profile.h2d_bytes)
    if sum(redo_bytes) > 0 and redo_total < sum(redo_bytes):
        scale = redo_total / sum(redo_bytes)
        redo_bytes = [b * scale for b in redo_bytes]
    initial_h2d = profile.h2d_bytes - redo_total

    total_atomics = sum(s.atomic_ops for s in stats)
    if total_atomics > 0:
        d2h_bytes = [profile.d2h_bytes * s.atomic_ops / total_atomics
                     for s in stats]
    else:
        d2h_bytes = [profile.d2h_bytes / n_inv] * max(len(stats), 1)

    # One upload + one drain per invocation, plus a redo upload before
    # each re-invocation; spread the PCIe latency budget evenly across
    # the emitted transfer events so track totals match the model.
    n_xfer_events = 1 + len(redo_bytes) + max(len(stats), 1)
    lat_share = (profile.num_transfers * model.spec.pcie_latency_s
                 / n_xfer_events)

    emit("upload Q + schedule", "pcie", initial_h2d / bw + lat_share,
         h2d_bytes=int(initial_h2d))
    if not stats:
        emit("drain results", "pcie",
             d2h_bytes[0] / bw + lat_share,
             d2h_bytes=int(d2h_bytes[0]))
    for i, s in enumerate(stats):
        if i > 0:
            emit(f"redo upload #{i}", "pcie",
                 redo_bytes[i - 1] / bw + lat_share,
                 h2d_bytes=int(redo_bytes[i - 1]),
                 redo_queries=s.num_threads)
        cost = model.kernel_time(s)
        emit(f"kernel #{i} launch", "host", cost.launches)
        emit(f"{s.name} #{i}", "gpu", cost.compute + cost.atomics,
             threads=s.num_threads,
             comparisons=s.total_comparisons,
             atomics=s.atomic_ops,
             divergence=round(s.divergence_factor(
                 model.spec.warp_size), 3))
        emit(f"drain results #{i}", "pcie",
             d2h_bytes[i] / bw + lat_share,
             d2h_bytes=int(d2h_bytes[i]))

    # Counter event: queries the spatiotemporal scheme handed back to
    # the temporal one (always emitted so the track shows the zero).
    events.append({
        "name": prefix + "defaulted_queries", "ph": "C", "pid": 0,
        "tid": tids["gpu"], "ts": round(t * _US, 3),
        "args": {"queries": int(profile.defaulted_queries)},
    })
    return events


def profile_to_trace(profile: SearchProfile,
                     model: GpuCostModel | None = None) -> list[dict]:
    """Build the full trace event list (with track names) for one
    search profile."""
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": f"{track} (modeled)"}}
        for track, tid in _TRACKS.items()
    ]
    events.extend(profile_events(profile, model))
    return events


def write_trace(profile: SearchProfile, path: str | Path,
                model: GpuCostModel | None = None) -> Path:
    """Write a ``chrome://tracing``-loadable JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": profile_to_trace(profile, model),
               "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload))
    return path
