"""The virtual GPU: machine description and top-level device object.

The paper runs its OpenCL kernels on an NVIDIA Tesla C2075 (448 CUDA
cores, 14 SMs, 6 GiB of global memory) attached to the host over PCI
Express.  This module models that machine:

* :class:`DeviceSpec` captures the architectural constants that drive the
  paper's performance behaviour — core count, warp width, clock, memory
  capacity, PCIe bandwidth/latency, kernel-launch overhead.
* :class:`VirtualGPU` owns the device-side state: a global-memory manager
  (allocations must fit in ``global_mem_bytes``), a host<->device transfer
  ledger, and the per-kernel execution statistics that the cost model
  converts to modeled seconds.

The kernels themselves execute *for real* (see :mod:`repro.gpu.kernel`):
every candidate gathered, comparison refined and result appended is
actually computed, so correctness is independent of the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memory import MemoryManager
from .transfers import TransferLedger

__all__ = ["DeviceSpec", "VirtualGPU", "TESLA_C2075"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural constants of the modeled accelerator."""

    name: str
    num_cores: int          # total scalar cores (C2075: 448)
    num_sms: int            # streaming multiprocessors (C2075: 14)
    warp_size: int          # SIMT width; divergence granularity
    clock_hz: float         # core clock
    global_mem_bytes: int   # device global memory capacity
    pcie_bandwidth: float   # host<->device bandwidth, bytes/s
    pcie_latency_s: float   # per-transfer fixed latency
    kernel_launch_s: float  # per-kernel-invocation host overhead

    def __post_init__(self) -> None:
        if self.num_cores % self.warp_size != 0:
            raise ValueError("num_cores must be a multiple of warp_size")
        if self.num_cores <= 0 or self.clock_hz <= 0:
            raise ValueError("device spec must be positive")

    @property
    def concurrent_warps(self) -> int:
        """Warps the device can execute simultaneously (one per warp-wide
        group of cores).  The C2075 executes 448/32 = 14 warps at a time,
        one per SM, which is exactly its architecture."""
        return self.num_cores // self.warp_size


#: The paper's GPU (§V-B): Tesla C2075 — 448 cores across 14 SMs,
#: 1.15 GHz, 6 GiB GDDR5, PCIe 2.0 x16 (~6 GB/s effective).
TESLA_C2075 = DeviceSpec(
    name="Tesla C2075",
    num_cores=448,
    num_sms=14,
    warp_size=32,
    clock_hz=1.15e9,
    global_mem_bytes=6 * (1 << 30),
    pcie_bandwidth=6.0e9,
    pcie_latency_s=10e-6,
    kernel_launch_s=15e-6,
)


class VirtualGPU:
    """A software C2075: global memory + transfer ledger + kernel stats.

    One instance represents one physical device.  Engines allocate the
    database, the index and all working buffers through
    :meth:`VirtualGPU.memory`, move data through :meth:`transfers`, and
    launch kernels through :class:`repro.gpu.kernel.KernelLauncher`; all
    three record the operation counts the cost model consumes.
    """

    def __init__(self, spec: DeviceSpec = TESLA_C2075, *,
                 faults=None, lane: int | None = None) -> None:
        self.spec = spec
        #: fault injector shared by memory, transfers and the kernel
        #: launcher (duck-typed, see :mod:`repro.faults`); None = off.
        self.faults = faults
        #: device-pool lane identity (None until homed by the pool).
        self.lane = lane
        self.memory = MemoryManager(capacity_bytes=spec.global_mem_bytes,
                                    device_name=spec.name,
                                    faults=faults, lane=lane)
        self.transfers = TransferLedger(faults=faults, lane=lane)
        self.kernel_stats: list["KernelStats"] = []  # filled by launcher

    def set_lane(self, lane: int | None) -> None:
        """Record the pool lane this device is homed on (the pool calls
        this after placement so fault checks and OOM messages carry the
        lane identity)."""
        self.lane = lane
        self.memory.lane = lane
        self.transfers.lane = lane

    # -- bookkeeping ----------------------------------------------------------

    def reset_counters(self) -> None:
        """Clear transfer and kernel statistics (keeps allocations).

        Used between the offline index-build phase and the timed search,
        because the paper's response times exclude index construction and
        the initial placement of ``D`` on the device (§V-B).
        """
        self.transfers = TransferLedger(faults=self.faults,
                                        lane=self.lane)
        self.kernel_stats = []

    @property
    def num_kernel_invocations(self) -> int:
        return len(self.kernel_stats)

    @property
    def free_bytes(self) -> int:
        """Unallocated device global memory (service placement uses it)."""
        return self.memory.free_bytes

    def __repr__(self) -> str:
        return (f"VirtualGPU({self.spec.name}, "
                f"{self.memory.allocated_bytes / (1 << 20):.1f} MiB "
                f"allocated, {self.num_kernel_invocations} kernels)")
