"""Atomically-appended device buffers.

GPU threads in all three kernels publish results with
``atomic: resultSet <- resultSet U result`` (Algorithms 1-3).  On real
hardware this is an ``atomicAdd`` on a tail counter followed by a global
memory write; hundreds of threads contend on the counter.  The model keeps
an exact count of atomic operations (the cost model charges serialization
per op) and enforces the fixed capacity that makes the paper process large
query sets incrementally (§V-D, §V-E).
"""

from __future__ import annotations

import numpy as np

__all__ = ["AtomicResultBuffer", "AtomicIntList"]


class AtomicResultBuffer:
    """Fixed-capacity device buffer of ``(q_id, e_id, t_lo, t_hi)`` items.

    ``capacity_items`` corresponds to the paper's result-set buffer — e.g.
    5.0e7 items for the Merger experiments, 9.2e7 for Random-dense.  Appends
    beyond capacity are *rejected* and flagged; the engine must stop
    assigning new queries and let the host drain the buffer (kernel
    re-invocation on the unprocessed remainder).
    """

    #: Device bytes per item: 2 x int64 ids + 2 x float64 interval bounds.
    ITEM_BYTES = 32

    def __init__(self, capacity_items: int) -> None:
        if capacity_items <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_items = int(capacity_items)
        self._q = np.empty(capacity_items, dtype=np.int64)
        self._e = np.empty(capacity_items, dtype=np.int64)
        self._lo = np.empty(capacity_items)
        self._hi = np.empty(capacity_items)
        self.size = 0
        self.atomic_ops = 0
        self.overflowed = False

    @property
    def nbytes(self) -> int:
        return self.capacity_items * self.ITEM_BYTES

    @property
    def free_items(self) -> int:
        return self.capacity_items - self.size

    def try_append(self, q: np.ndarray, e: np.ndarray,
                   lo: np.ndarray, hi: np.ndarray) -> bool:
        """Append a batch of items produced by one thread.

        Each item costs one atomic operation (the tail-counter increment).
        Returns True if the whole batch fit; False (appending nothing) if
        capacity would be exceeded — the all-or-nothing semantics keep a
        query's results from being split across kernel invocations, which
        is how the engines guarantee the host never double-counts a query.
        """
        n = int(q.shape[0])
        if n == 0:
            return True
        if n > self.free_items:
            self.overflowed = True
            return False
        s = self.size
        self._q[s:s + n] = q
        self._e[s:s + n] = e
        self._lo[s:s + n] = lo
        self._hi[s:s + n] = hi
        self.size += n
        self.atomic_ops += n
        return True

    def drain(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Host-side read-out; empties the buffer for the next invocation.

        The caller is responsible for logging the d2h transfer
        (``size * ITEM_BYTES`` bytes).
        """
        s = self.size
        out = (self._q[:s].copy(), self._e[:s].copy(),
               self._lo[:s].copy(), self._hi[:s].copy())
        self.size = 0
        self.overflowed = False
        return out


class AtomicIntList:
    """Fixed-capacity append-only integer list (the ``redo`` array of
    Algorithm 1: "atomic: redo <- redo U {queryID}")."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._buf = np.empty(capacity, dtype=np.int64)
        self.size = 0
        self.atomic_ops = 0

    @property
    def nbytes(self) -> int:
        return int(self._buf.nbytes)

    def append(self, value: int) -> None:
        if self.size >= self._buf.shape[0]:
            raise OverflowError("redo list capacity exceeded")
        self._buf[self.size] = value
        self.size += 1
        self.atomic_ops += 1

    def extend(self, values: np.ndarray) -> None:
        n = int(values.shape[0])
        if self.size + n > self._buf.shape[0]:
            raise OverflowError("redo list capacity exceeded")
        self._buf[self.size:self.size + n] = values
        self.size += n
        self.atomic_ops += n

    def drain(self) -> np.ndarray:
        out = self._buf[:self.size].copy()
        self.size = 0
        return out
