"""Database partitioning for multi-node search.

The paper's intended deployment (§III): "D is partitioned across multiple
GPU-equipped compute nodes in a cluster so that aggregate GPU memory is
large", with each node searching its shard in-memory and the results
merged.  Distance-threshold searches make this trivial in principle —
every (query, entry) pair is independent — but the partitioning strategy
still matters for *balance* (shards should hold equal work) and for
per-node index quality.  Three strategies are provided:

* ``round_robin`` — trajectory k goes to node k mod N.  Near-perfect
  segment balance for homogeneous trajectories; every node's shard spans
  the full space and time, so per-node indexes look like shrunken copies
  of the global one.
* ``temporal`` — contiguous time slices (by segment t_start).  Gives each
  node a narrow temporal window (great bin selectivity) but queries route
  to few nodes, serializing a temporally clustered query workload.
* ``spatial`` — slabs along the longest spatial axis (by segment center).
  Gives spatial locality, but dense regions (the merger core) make shards
  uneven.

All strategies partition whole *segments*; trajectories may straddle
spatial/temporal shard boundaries, which is fine: the search semantics
are per-segment, and the merged result set is provably identical to the
single-node result because every entry segment lands on exactly one node.
"""

from __future__ import annotations

import numpy as np

from ..core.types import SegmentArray

__all__ = ["partition_database", "partition_indices",
           "PARTITION_STRATEGIES"]


def _round_robin(database: SegmentArray, num_nodes: int) -> list[np.ndarray]:
    # Deal whole trajectories so per-node tries keep trajectory
    # contiguity (the R-tree and result semantics prefer it).
    traj_ids = np.unique(database.traj_ids)
    assignment = {int(t): i % num_nodes for i, t in enumerate(traj_ids)}
    node_of_seg = np.array([assignment[int(t)]
                            for t in database.traj_ids])
    return [np.flatnonzero(node_of_seg == n) for n in range(num_nodes)]


def _temporal(database: SegmentArray, num_nodes: int) -> list[np.ndarray]:
    order = np.argsort(database.ts, kind="stable")
    return [np.sort(chunk) for chunk in np.array_split(order, num_nodes)]


def _spatial(database: SegmentArray, num_nodes: int) -> list[np.ndarray]:
    mins, maxs = database.spatial_bounds()
    axis = int(np.argmax(maxs - mins))
    centers = 0.5 * (database.starts[:, axis] + database.ends[:, axis])
    order = np.argsort(centers, kind="stable")
    return [np.sort(chunk) for chunk in np.array_split(order, num_nodes)]


PARTITION_STRATEGIES = {
    "round_robin": _round_robin,
    "temporal": _temporal,
    "spatial": _spatial,
}


def partition_indices(database: SegmentArray, num_nodes: int,
                      strategy: str = "round_robin"
                      ) -> list[np.ndarray]:
    """Row indices of each shard: ``num_nodes`` disjoint, covering
    index arrays (the raw form of :func:`partition_database`, used by
    the sharded router to keep a row→shard ownership map)."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    if strategy not in PARTITION_STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; available: "
                         f"{sorted(PARTITION_STRATEGIES)}")
    if len(database) == 0:
        raise ValueError("cannot partition an empty database")
    idx_lists = PARTITION_STRATEGIES[strategy](database, num_nodes)
    total = sum(ix.shape[0] for ix in idx_lists)
    if total != len(database):
        raise AssertionError("partition lost or duplicated segments")
    return idx_lists


def partition_database(database: SegmentArray, num_nodes: int,
                       strategy: str = "round_robin"
                       ) -> list[SegmentArray]:
    """Split ``database`` into ``num_nodes`` disjoint, covering shards."""
    return [database.take(ix) for ix in
            partition_indices(database, num_nodes, strategy)]
