"""Communicator abstraction for distributed search drivers.

The cluster the paper envisions (§III) would realistically be driven by
MPI — each rank owning one GPU node's shard.  To keep the repository
runnable without an MPI installation while still providing the real
driver, the driver is written against a minimal communicator protocol
(the mpi4py surface it needs: ``rank``/``size``/``bcast``/``gather``):

* :class:`LoopbackComm` — in-process, single- or multi-"rank" (ranks
  executed sequentially); used by the tests and by default.
* :class:`Mpi4pyComm` — a thin adapter over ``mpi4py.MPI.COMM_WORLD``;
  importable only where mpi4py exists, letting the same driver run
  under ``mpiexec -n <nodes> python script.py`` unchanged.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

__all__ = ["Communicator", "LoopbackComm", "Mpi4pyComm",
           "MpiUnavailableError", "world"]


class MpiUnavailableError(ImportError):
    """mpi4py is not importable in this environment.

    Raised lazily — at :class:`Mpi4pyComm` *construction*, never at
    module import — so ``repro.distributed`` always imports cleanly on
    machines without an MPI stack.  Subclasses :class:`ImportError` so
    ``except ImportError`` fallbacks (see :func:`world`) keep working.
    """

    def __init__(self) -> None:
        super().__init__(
            "mpi4py is not installed, so Mpi4pyComm cannot drive a "
            "real MPI world.  Fixes: (a) use LoopbackComm (the "
            "in-process default returned by repro.distributed.world()) "
            "— tests and single-node runs need nothing else; or "
            "(b) install an MPI stack plus mpi4py and launch under "
            "'mpiexec -n <nodes> python <script>'.")


@runtime_checkable
class Communicator(Protocol):
    """The subset of the mpi4py communicator surface the driver uses."""

    @property
    def rank(self) -> int: ...

    @property
    def size(self) -> int: ...

    def bcast(self, obj: Any, root: int = 0) -> Any: ...

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None: ...


class LoopbackComm:
    """An in-process communicator.

    A single instance behaves as one rank of an N-rank world; create the
    full world with :meth:`make_world`, which returns one communicator
    per rank sharing a mailbox, so sequential execution of the ranks
    produces exactly the collective semantics the MPI driver relies on.
    """

    def __init__(self, rank: int = 0, size: int = 1,
                 _shared: dict | None = None) -> None:
        if not 0 <= rank < size:
            raise ValueError("rank must be in [0, size)")
        self._rank = rank
        self._size = size
        self._shared = _shared if _shared is not None else {}

    @classmethod
    def make_world(cls, size: int) -> list["LoopbackComm"]:
        shared: dict = {}
        return [cls(rank, size, shared) for rank in range(size)]

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def bcast(self, obj: Any, root: int = 0) -> Any:
        key = ("bcast", root)
        if self._rank == root:
            self._shared[key] = obj
        if key not in self._shared:
            raise RuntimeError(
                "loopback bcast read before the root seeded it; run "
                "the root's bcast first (see run_spmd_search)")
        return self._shared[key]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        key = ("gather", root)
        box = self._shared.setdefault(key, {})
        box[self._rank] = obj
        if self._rank == root:
            # Root reads after all ranks ran (sequential execution
            # guarantees this in tests; misuse raises loudly).
            if len(box) != self._size:
                raise RuntimeError(
                    "gather at root before all ranks contributed "
                    f"({len(box)}/{self._size})")
            out = [box[r] for r in range(self._size)]
            del self._shared[key]
            return out
        return None


class Mpi4pyComm:
    """Adapter over ``mpi4py.MPI.COMM_WORLD`` (requires mpi4py)."""

    def __init__(self, comm=None) -> None:
        if comm is None:
            try:
                from mpi4py import MPI
            except ImportError as exc:
                raise MpiUnavailableError() from exc
            comm = MPI.COMM_WORLD  # pragma: no cover - no MPI here
        self._comm = comm

    @property
    def rank(self) -> int:
        return self._comm.Get_rank()

    @property
    def size(self) -> int:
        return self._comm.Get_size()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._comm.bcast(obj, root=root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        return self._comm.gather(obj, root=root)


def world() -> Communicator:
    """The best available world communicator: MPI when present,
    single-rank loopback otherwise."""
    try:
        return Mpi4pyComm()
    except ImportError:
        return LoopbackComm()
