"""SPMD search driver over a communicator (the mpi4py deployment shape).

Each rank owns one shard of the database (and, in a real deployment, one
GPU).  The root broadcasts the query workload; every rank searches its
shard locally; the root gathers and merges.  Written against the
:class:`~repro.distributed.comm.Communicator` protocol, so the same code
runs in-process for tests (:class:`LoopbackComm`) and under
``mpiexec`` with mpi4py (:class:`Mpi4pyComm`)::

    # driver_script.py — run as: mpiexec -n 4 python driver_script.py
    comm = Mpi4pyComm()
    shard = load_segments(f"shard_{comm.rank}.npz")
    driver = SpmdSearchDriver(comm, GpuTemporalEngine(shard,
                                                      num_bins=1000))
    results = driver.search(queries if comm.rank == 0 else None, d=1.5)
    if comm.rank == 0:
        ...  # results is the merged ResultSet

Shards are produced by :func:`repro.distributed.partition_database`; the
merged result equals the single-node search because shards are disjoint
and covering (same invariant the simulated :class:`GpuCluster` asserts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..engines.base import SearchEngine
from .comm import Communicator

__all__ = ["SpmdSearchDriver", "run_spmd_search"]


@dataclass
class SpmdSearchDriver:
    """One rank's view of the distributed search."""

    comm: Communicator
    engine: SearchEngine

    def search(self, queries: SegmentArray | None, d: float, *,
               exclude_same_trajectory: bool = False,
               root: int = 0) -> ResultSet | None:
        """Collective: every rank must call this.

        ``queries`` is only read on the root (others may pass None, as
        with mpi4py collectives).  Returns the merged result set on the
        root and None elsewhere.
        """
        if self.comm.rank == root and queries is None:
            raise ValueError("root rank must provide the query set")
        queries = self.comm.bcast(queries, root=root)
        local, _profile = self.engine.search(
            queries, d, exclude_same_trajectory=exclude_same_trajectory)
        gathered = self.comm.gather(local, root=root)
        if self.comm.rank != root:
            return None
        assert gathered is not None
        return ResultSet.from_parts(gathered).deduplicated()


def run_spmd_search(comms: list[Communicator],
                    engines: list[SearchEngine],
                    queries: SegmentArray, d: float, *,
                    exclude_same_trajectory: bool = False
                    ) -> ResultSet:
    """Execute the collective across an in-process world.

    Test/driver helper for :class:`LoopbackComm` worlds: runs every
    rank's side of the collective sequentially (non-root ranks first so
    the root's gather sees all contributions) and returns the root's
    merged result.
    """
    if len(comms) != len(engines):
        raise ValueError("one engine per rank required")
    # Sequential execution of a collective: seed the broadcast from the
    # root's side so non-root ranks (which run first, letting the root's
    # gather complete last) can read it.
    root_idx = next(i for i, c in enumerate(comms) if c.rank == 0)
    comms[root_idx].bcast(queries, root=0)
    result: ResultSet | None = None
    order = sorted(range(len(comms)), key=lambda r: comms[r].rank == 0)
    for r in order:
        driver = SpmdSearchDriver(comms[r], engines[r])
        out = driver.search(
            queries if comms[r].rank == 0 else None, d,
            exclude_same_trajectory=exclude_same_trajectory)
        if comms[r].rank == 0:
            result = out
    assert result is not None
    return result
