"""Multi-node search: database partitioning, a simulated GPU cluster
(the deployment §III motivates), and an MPI-style SPMD driver."""

from .cluster import ClusterProfile, GpuCluster
from .comm import Communicator, LoopbackComm, Mpi4pyComm, world
from .driver import SpmdSearchDriver, run_spmd_search
from .partition import PARTITION_STRATEGIES, partition_database

__all__ = ["ClusterProfile", "Communicator", "GpuCluster",
           "LoopbackComm", "Mpi4pyComm", "PARTITION_STRATEGIES",
           "SpmdSearchDriver", "partition_database", "run_spmd_search",
           "world"]
