"""Multi-node search: database partitioning, a simulated GPU cluster
(the deployment §III motivates), and an MPI-style SPMD driver."""

from .cluster import ClusterProfile, GpuCluster
from .comm import (Communicator, LoopbackComm, Mpi4pyComm,
                   MpiUnavailableError, world)
from .driver import SpmdSearchDriver, run_spmd_search
from .partition import (PARTITION_STRATEGIES, partition_database,
                        partition_indices)

__all__ = ["ClusterProfile", "Communicator", "GpuCluster",
           "LoopbackComm", "Mpi4pyComm", "MpiUnavailableError",
           "PARTITION_STRATEGIES", "SpmdSearchDriver",
           "partition_database", "partition_indices",
           "run_spmd_search", "world"]
