"""Simulated GPU cluster: one virtual GPU per node, broadcast queries,
merge results.

Executes the paper's multi-node vision (§III): each node holds a shard of
``D`` in its own device memory with its own index; the query set (which
fits in any single GPU's memory) is broadcast; every node runs the search
locally; the host union of the per-node result sets is the answer.
Because shards are disjoint and covering, the merged result set equals a
single-node search of the whole database — a property the integration
tests assert.

Response time under the model is ``max`` over nodes (nodes run
concurrently) plus a broadcast term, so the cluster report exposes load
imbalance directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..engines.base import GpuEngineBase
from ..gpu.costmodel import CostBreakdown, GpuCostModel
from ..gpu.profiler import SearchProfile
from .partition import partition_database

__all__ = ["GpuCluster", "ClusterProfile"]


@dataclass
class ClusterProfile:
    """Per-node profiles plus cluster-level roll-ups."""

    num_nodes: int
    node_profiles: list[SearchProfile]
    strategy: str
    wall_seconds: float = 0.0

    def modeled_time(self, model: GpuCostModel) -> CostBreakdown:
        """Concurrent nodes: the slowest shard defines response time.

        The query broadcast is charged once (nodes receive in parallel on
        independent PCIe links; the interconnect fan-out is assumed to
        overlap with the slowest node's compute).
        """
        slowest = CostBreakdown()
        for prof in self.node_profiles:
            t = prof.modeled_time(model)
            if t.total > slowest.total:
                slowest = t
        return slowest

    def imbalance(self) -> float:
        """max/mean of per-node comparison counts (1.0 = perfect)."""
        work = np.array([p.total_comparisons for p in self.node_profiles],
                        dtype=np.float64)
        if work.sum() == 0:
            return 1.0
        return float(work.max() / work.mean())


class GpuCluster:
    """A set of simulated GPU nodes over a partitioned database.

    ``engine_factory(shard)`` builds the per-node engine — e.g.
    ``lambda shard: GpuTemporalEngine(shard, num_bins=1000)``.  Each
    factory call gets its own :class:`VirtualGPU` unless the factory
    shares one deliberately (don't: real nodes don't share memory).
    """

    def __init__(self, database: SegmentArray, num_nodes: int,
                 engine_factory: Callable[[SegmentArray], GpuEngineBase],
                 *, strategy: str = "round_robin") -> None:
        self.strategy = strategy
        self.shards = partition_database(database, num_nodes, strategy)
        self.nodes = [engine_factory(shard) for shard in self.shards]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def search(self, queries: SegmentArray, d: float, *,
               exclude_same_trajectory: bool = False
               ) -> tuple[ResultSet, ClusterProfile]:
        """Broadcast ``queries`` to all nodes and merge the results."""
        wall0 = time.perf_counter()
        parts: list[ResultSet] = []
        profiles: list[SearchProfile] = []
        for node in self.nodes:
            res, prof = node.search(
                queries, d,
                exclude_same_trajectory=exclude_same_trajectory)
            parts.append(res)
            profiles.append(prof)
        merged = ResultSet.from_parts(parts).deduplicated()
        profile = ClusterProfile(
            num_nodes=self.num_nodes,
            node_profiles=profiles,
            strategy=self.strategy,
            wall_seconds=time.perf_counter() - wall0,
        )
        return merged, profile
