"""The durability manager: WAL + checkpoints + recovery for one service.

:class:`DurabilityManager` owns one on-disk directory:

.. code-block:: text

    <dir>/
        wal.jsonl           # CRC-framed mutation log (the tail)
        checkpoints/        # atomic snapshots (see checkpoint.py)
        events.jsonl        # telemetry event log, flushed at shutdown
        slow_queries.jsonl  # slow-query log, flushed at shutdown

The write path follows classic WAL discipline: every mutation is framed,
written, and synced *before* it is applied to the in-memory
:class:`~repro.ingest.VersionedDatabase`; periodic checkpoints bound
replay time; the WAL is truncated through each checkpoint's epoch.

:meth:`DurabilityManager.recover` inverts it: load the newest valid
checkpoint (skipping crash debris and corrupt directories), replay the
WAL tail (dropping a CRC-torn final record), and hand back a database
at the exact pre-crash logical epoch plus the warm-engine recipes the
service uses to prewarm its cache.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.types import SegmentArray
from ..ingest import VersionedDatabase
from ..obs import current as current_telemetry
from .checkpoint import (CheckpointError, EngineRecipe, clean_tmp_dirs,
                         list_checkpoints, load_checkpoint,
                         write_checkpoint)
from .wal import SYNC_MODES, WalCorruptionError, WriteAheadLog

__all__ = ["DurabilityError", "DurabilityManager", "DurabilityPolicy",
           "RecoveryResult"]


class DurabilityError(RuntimeError):
    """The durability directory cannot be attached or recovered."""


@dataclass(frozen=True)
class DurabilityPolicy:
    """Knobs of the durability layer.

    Parameters
    ----------
    sync:
        WAL sync mode (see :mod:`repro.durability.wal`).
    checkpoint_every:
        Mutations between periodic checkpoints (0 = only at
        compactions and explicit :meth:`DurabilityManager.checkpoint`
        calls).
    checkpoint_on_compact:
        Checkpoint right after every compaction — replaying a
        compaction from the WAL is the most expensive replay step, so
        fold it into a snapshot immediately.
    truncate_wal:
        Drop WAL records covered by each new checkpoint (atomic
        rewrite); False keeps the full history.
    keep_checkpoints:
        Committed checkpoints retained; older ones are pruned after
        each successful checkpoint.
    persist_engines:
        Pickle warm engines into checkpoints as prewarm artifacts
        (best-effort; recipes are always persisted).
    """

    sync: str = "fsync"
    checkpoint_every: int = 16
    checkpoint_on_compact: bool = True
    truncate_wal: bool = True
    keep_checkpoints: int = 2
    persist_engines: bool = True

    def __post_init__(self) -> None:
        if self.sync not in SYNC_MODES:
            raise ValueError(f"unknown sync mode {self.sync!r}; "
                             f"expected one of {SYNC_MODES}")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.keep_checkpoints < 1:
            raise ValueError("keep_checkpoints must be >= 1")

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"sync": self.sync,
                "checkpoint_every": self.checkpoint_every,
                "checkpoint_on_compact": self.checkpoint_on_compact,
                "truncate_wal": self.truncate_wal,
                "keep_checkpoints": self.keep_checkpoints,
                "persist_engines": self.persist_engines}


@dataclass
class RecoveryResult:
    """What one :meth:`DurabilityManager.recover` reconstructed."""

    database: VersionedDatabase
    #: epoch of the checkpoint recovery started from.
    checkpoint_epoch: int
    #: logical epoch after WAL replay — the pre-crash epoch.
    epoch: int
    #: WAL records applied on top of the checkpoint.
    replayed: int
    #: WAL records skipped as already covered by the checkpoint.
    skipped: int
    #: CRC-torn final records dropped (0 or 1).
    torn_dropped: int
    #: corrupt/incomplete checkpoint directories skipped over.
    invalid_checkpoints: int
    #: crashed-checkpoint tmp directories swept.
    tmp_dirs_removed: int
    #: warm-engine recipes persisted with the checkpoint.
    engines: list[EngineRecipe] = field(default_factory=list)
    #: the loaded checkpoint (artifact access for prewarm).
    checkpoint: object | None = None

    def to_dict(self) -> dict:
        """JSON-friendly summary (the database itself is omitted)."""
        return {"checkpoint_epoch": self.checkpoint_epoch,
                "epoch": self.epoch, "replayed": self.replayed,
                "skipped": self.skipped,
                "torn_dropped": self.torn_dropped,
                "invalid_checkpoints": self.invalid_checkpoints,
                "tmp_dirs_removed": self.tmp_dirs_removed,
                "engines": [r.to_dict() for r in self.engines]}


class DurabilityManager:
    """WAL + checkpoint lifecycle for one durability directory.

    Parameters
    ----------
    directory:
        Root of the durable state (created if missing).
    policy:
        :class:`DurabilityPolicy` (default policy when None).
    kill:
        Optional :class:`~repro.durability.crashpoints.KillSwitch`
        threaded into the WAL and checkpoint writer (crash campaign).
    """

    WAL_NAME = "wal.jsonl"
    CHECKPOINTS_NAME = "checkpoints"

    def __init__(self, directory: str | Path, *,
                 policy: DurabilityPolicy | None = None,
                 kill=None) -> None:
        self.directory = Path(directory)
        self.policy = policy or DurabilityPolicy()
        self.kill = kill
        self.wal = WriteAheadLog(self.directory / self.WAL_NAME,
                                 sync=self.policy.sync, kill=kill)
        self.checkpoints_dir = self.directory / self.CHECKPOINTS_NAME
        self._ops_since_checkpoint = 0
        #: lifetime counters (exposed through service stats).
        self.checkpoints_written = 0
        self.wal_truncated_records = 0
        self.last_checkpoint_epoch: int | None = None

    # -- introspection -----------------------------------------------------------

    @property
    def has_state(self) -> bool:
        """Does the directory already hold a durable database?"""
        return bool(list_checkpoints(self.checkpoints_dir)) \
            or (self.directory / self.WAL_NAME).exists()

    def stats(self) -> dict:
        """JSON-friendly counters for service stats and the CLI."""
        return {
            "directory": str(self.directory),
            "policy": self.policy.to_dict(),
            "wal_appends": self.wal.appends,
            "wal_bytes": self.wal.bytes_written,
            "wal_truncated_records": self.wal_truncated_records,
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint_epoch": self.last_checkpoint_epoch,
            "ops_since_checkpoint": self._ops_since_checkpoint,
        }

    # -- write path --------------------------------------------------------------

    def attach(self, database: VersionedDatabase,
               warm_engines=()) -> Path:
        """Bootstrap a fresh directory around an existing database.

        Writes the initial checkpoint (epoch 0 for a new database) so
        recovery always has a floor to replay from.  Refuses a
        directory that already holds durable state — that state must
        be :meth:`recover`\\ ed, not silently overwritten.
        """
        if self.has_state:
            raise DurabilityError(
                f"{self.directory} already holds a durable database; "
                f"recover it (QueryService.recover) instead of "
                f"attaching a new one")
        return self.checkpoint(database, warm_engines=warm_engines)

    def log_append(self, database: VersionedDatabase,
                   segments: SegmentArray, *,
                   keep_seg_ids: bool = False,
                   idempotency_key: str | None = None) -> None:
        """WAL one append *before* it is applied.  The payload is the
        caller's (pre-stamping) segments: replay re-runs
        :meth:`~repro.ingest.VersionedDatabase.append`, which assigns
        the identical seg_ids because ``next_seg_id`` is restored.
        ``keep_seg_ids`` appends (router-stamped global ids) persist the
        flag so replay preserves the caller's ids the same way; an
        ``idempotency_key`` rides in the record so replay re-registers
        it in the dedup table — a client retry stays exactly-once even
        when the crash landed between the WAL write and a checkpoint."""
        payload = {"segments": segments.to_dict()}
        if keep_seg_ids:
            payload["keep_seg_ids"] = True
        if idempotency_key is not None:
            payload["idempotency_key"] = str(idempotency_key)
        self._log("append", database.epoch + 1, payload)

    def log_delete(self, database: VersionedDatabase,
                   traj_id: int, *,
                   idempotency_key: str | None = None) -> None:
        """WAL one tombstone before it is applied."""
        payload: dict = {"traj_id": int(traj_id)}
        if idempotency_key is not None:
            payload["idempotency_key"] = str(idempotency_key)
        self._log("delete", database.epoch + 1, payload)

    def log_compact(self, database: VersionedDatabase) -> None:
        """WAL one compaction before it is applied (replay re-runs the
        deterministic fold)."""
        self._log("compact", database.epoch + 1, {})

    def _log(self, op: str, epoch: int, payload: dict) -> None:
        before = self.wal.bytes_written
        self.wal.append(op, epoch, payload)
        self._ops_since_checkpoint += 1
        reg = current_telemetry().metrics
        reg.counter("repro_wal_appends_total",
                    "mutations framed into the WAL").inc(op=op)
        reg.counter("repro_wal_bytes_total",
                    "framed WAL bytes written").inc(
            self.wal.bytes_written - before)
        if self.kill is not None:
            # The record is durable; the in-memory apply has not run.
            self.kill.check("wal_post_append")

    def checkpoint_due(self) -> bool:
        """Has the periodic cadence elapsed?"""
        return (self.policy.checkpoint_every > 0
                and self._ops_since_checkpoint
                >= self.policy.checkpoint_every)

    def checkpoint(self, database: VersionedDatabase,
                   warm_engines=(), *,
                   kill_point: str = "checkpoint_mid") -> Path:
        """Write one checkpoint now, truncate the WAL through it, and
        prune old checkpoints.

        ``warm_engines`` is an iterable of ``(method, params, engine)``
        triples describing the service's warm cache; engines are
        pickled as prewarm artifacts when the policy allows.
        """
        snap = database.snapshot()
        triples = [(method, params,
                    engine if self.policy.persist_engines else None)
                   for method, params, engine in warm_engines]
        wall0 = time.perf_counter()
        path = write_checkpoint(
            self.checkpoints_dir,
            {
                "epoch": database.epoch,
                "delta_epoch": database.delta_epoch,
                "base_version": database.base_version,
                "next_seg_id": database.next_seg_id,
                "base": snap.base,
                "delta": snap.delta,
                "tombstones": snap.tombstones,
                "counters": {
                    "total_appends": database.total_appends,
                    "total_appended_segments":
                        database.total_appended_segments,
                    "total_deletes": database.total_deletes,
                    "total_compactions": database.total_compactions,
                },
                "applied_keys": database.applied_keys,
            },
            engines=triples, kill=self.kill, kill_point=kill_point)
        wall_s = time.perf_counter() - wall0
        self.checkpoints_written += 1
        self.last_checkpoint_epoch = database.epoch
        self._ops_since_checkpoint = 0
        if self.policy.truncate_wal:
            self.wal_truncated_records += self.wal.truncate_through(
                database.epoch)
        self._prune()
        reg = current_telemetry().metrics
        reg.counter("repro_checkpoints_total",
                    "checkpoints committed").inc()
        reg.histogram("repro_checkpoint_seconds",
                      "checkpoint write wall seconds").observe(wall_s)
        current_telemetry().events.emit(
            "checkpoint", epoch=database.epoch, path=str(path),
            wall_seconds=wall_s, engines=len(triples))
        return path

    def _prune(self) -> None:
        for stale in list_checkpoints(
                self.checkpoints_dir)[self.policy.keep_checkpoints:]:
            shutil.rmtree(stale)

    def close(self) -> None:
        self.wal.close()

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> RecoveryResult:
        """Rebuild the database from disk (see module docstring)."""
        swept = clean_tmp_dirs(self.checkpoints_dir)
        candidates = list_checkpoints(self.checkpoints_dir)
        if not candidates:
            raise DurabilityError(
                f"{self.directory}: no checkpoints to recover from "
                f"(was the directory ever attached to a service?)")
        checkpoint = None
        invalid = 0
        for candidate in candidates:
            try:
                checkpoint = load_checkpoint(candidate)
                break
            except CheckpointError:
                invalid += 1
        if checkpoint is None:
            raise DurabilityError(
                f"{self.directory}: all {len(candidates)} checkpoints "
                f"are corrupt; the WAL alone cannot seed a database")
        db = VersionedDatabase.restore(
            base=checkpoint.base, delta=checkpoint.delta,
            tombstones=checkpoint.tombstones,
            epoch=checkpoint.epoch,
            delta_epoch=checkpoint.delta_epoch,
            base_version=checkpoint.base_version,
            next_seg_id=checkpoint.next_seg_id,
            counters=checkpoint.counters,
            applied_keys=checkpoint.applied_keys)
        scan = self.wal.read()
        if scan.torn_records:
            # Tolerating the torn final record means removing its
            # half-written bytes too — future appends must start at a
            # clean frame boundary.
            self.wal.drop_torn_tail(scan.valid_bytes)
        replayed = skipped = 0
        for record in scan.records:
            if record.epoch <= checkpoint.epoch:
                skipped += 1
                continue
            if record.epoch != db.epoch + 1:
                raise WalCorruptionError(
                    f"{self.wal.path}: record lsn={record.lsn} produces "
                    f"epoch {record.epoch} but the database is at "
                    f"epoch {db.epoch} — the log has a gap")
            if record.op == "append":
                db.append(
                    SegmentArray.from_dict(record.payload["segments"]),
                    keep_seg_ids=bool(
                        record.payload.get("keep_seg_ids", False)),
                    idempotency_key=record.payload.get(
                        "idempotency_key"))
            elif record.op == "delete":
                db.delete_trajectory(
                    record.payload["traj_id"],
                    idempotency_key=record.payload.get(
                        "idempotency_key"))
            else:
                db.compact()
            replayed += 1
        self.wal._next_lsn = (scan.records[-1].lsn + 1
                              if scan.records else 1)
        result = RecoveryResult(
            database=db, checkpoint_epoch=checkpoint.epoch,
            epoch=db.epoch, replayed=replayed, skipped=skipped,
            torn_dropped=scan.torn_records,
            invalid_checkpoints=invalid, tmp_dirs_removed=swept,
            engines=list(checkpoint.engines), checkpoint=checkpoint)
        reg = current_telemetry().metrics
        reg.counter("repro_recoveries_total",
                    "recover() invocations").inc()
        reg.counter("repro_wal_replayed_total",
                    "WAL records replayed during recovery").inc(
            replayed)
        if scan.torn_records:
            reg.counter("repro_wal_torn_records_total",
                        "CRC-torn WAL tail records dropped").inc(
                scan.torn_records)
        current_telemetry().events.emit("recovery", **result.to_dict())
        return result
