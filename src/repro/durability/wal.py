"""The write-ahead log: CRC32-framed JSONL mutation records.

Every mutation of the versioned database (append / delete / compact) is
written here *before* it is applied in memory, so a crash at any instant
loses at most the record being written — and that torn tail is detected
by its CRC frame and dropped during recovery, never half-applied.

Record framing
--------------
One record per line::

    {"lsn": 12, "op": "append", "epoch": 13, "payload": {...}, "crc": 391842}

``crc`` is the CRC32 of the canonical JSON encoding of the record
*without* the ``crc`` key (sorted keys, compact separators).  A record
whose line is incomplete, whose JSON does not parse, or whose CRC does
not match its body is invalid.  During :func:`WriteAheadLog.read` an
invalid *final* record is tolerated (a torn write: the process died
mid-``write``) — it is dropped and counted.  An invalid record with
valid records *after* it is real corruption and raises
:class:`WalCorruptionError`: replaying past a hole would silently skip
a mutation.

Sync modes
----------
``"fsync"`` (default) flushes and ``os.fsync``\\ s after every append —
the durability the recovery guarantees assume.  ``"flush"`` flushes to
the OS but skips the fsync (crash-consistent against process death, not
power loss).  ``"none"`` leaves buffering to the runtime (fastest; for
tests and bulk loads).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SYNC_MODES", "WalCorruptionError", "WalRecord",
           "WriteAheadLog", "encode_record", "decode_line"]

SYNC_MODES = ("fsync", "flush", "none")

#: mutation kinds a WAL record may carry.
WAL_OPS = ("append", "delete", "compact")


class WalCorruptionError(RuntimeError):
    """A WAL record *before* the tail failed its CRC frame."""


@dataclass(frozen=True)
class WalRecord:
    """One framed mutation record.

    ``lsn`` is the log sequence number (monotonic, starts at 1);
    ``epoch`` is the database epoch the mutation *produced*, which is
    what replay checks against the restored checkpoint.
    """

    lsn: int
    op: str
    epoch: int
    payload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in WAL_OPS:
            raise ValueError(f"unknown WAL op {self.op!r}; expected "
                             f"one of {WAL_OPS}")

    def to_dict(self) -> dict:
        """JSON-friendly representation (no CRC frame)."""
        return {"lsn": int(self.lsn), "op": self.op,
                "epoch": int(self.epoch),
                "payload": dict(self.payload)}

    @classmethod
    def from_dict(cls, payload: dict) -> "WalRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(lsn=int(payload["lsn"]), op=payload["op"],
                   epoch=int(payload["epoch"]),
                   payload=dict(payload.get("payload", {})))


def _body_bytes(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def encode_record(record: WalRecord) -> bytes:
    """Frame one record as a CRC'd JSON line (trailing newline)."""
    body = record.to_dict()
    body["crc"] = zlib.crc32(_body_bytes(record.to_dict()))
    return _body_bytes(body) + b"\n"


def decode_line(line: bytes) -> WalRecord | None:
    """Decode one framed line; ``None`` when the frame is invalid
    (torn write, truncated JSON, or CRC mismatch)."""
    try:
        body = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(body, dict) or "crc" not in body:
        return None
    crc = body.pop("crc")
    try:
        record = WalRecord.from_dict(body)
    except (KeyError, TypeError, ValueError):
        return None
    if zlib.crc32(_body_bytes(record.to_dict())) != crc:
        return None
    return record


@dataclass
class WalReadResult:
    """What one WAL scan produced."""

    records: list[WalRecord]
    #: invalid final records dropped (0 or 1 — a torn tail).
    torn_records: int = 0
    #: bytes of valid framed records (torn tail excluded).
    valid_bytes: int = 0


class WriteAheadLog:
    """Append-only CRC-framed JSONL log at a fixed path.

    Parameters
    ----------
    path:
        The log file; created (with parents) on first append.
    sync:
        One of :data:`SYNC_MODES` (see module docstring).
    kill:
        Optional :class:`~repro.durability.crashpoints.KillSwitch`
        consulted mid-append — the crash-campaign hook that leaves a
        physically torn record on disk.
    """

    def __init__(self, path: str | Path, *, sync: str = "fsync",
                 kill=None) -> None:
        if sync not in SYNC_MODES:
            raise ValueError(f"unknown sync mode {sync!r}; expected "
                             f"one of {SYNC_MODES}")
        self.path = Path(path)
        self.sync = sync
        self.kill = kill
        self._fh = None
        self._next_lsn = 1
        #: lifetime counters (exposed through durability stats).
        self.appends = 0
        self.bytes_written = 0

    # -- writing -----------------------------------------------------------------

    def _handle(self):
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def _sync(self, fh) -> None:
        if self.sync == "none":
            return
        fh.flush()
        if self.sync == "fsync":
            os.fsync(fh.fileno())

    def append(self, op: str, epoch: int, payload: dict) -> WalRecord:
        """Frame, write, and sync one mutation record; returns it.

        The record is durable (per the sync mode) when this returns —
        the caller applies the mutation in memory only afterwards
        (write-ahead discipline).
        """
        record = WalRecord(lsn=self._next_lsn, op=op, epoch=epoch,
                           payload=payload)
        line = encode_record(record)
        fh = self._handle()
        if self.kill is not None and self.kill.matches("wal_mid_append"):
            # Simulated crash mid-write: leave a physically torn record
            # (a prefix of the framed line) on disk, then die.
            fh.write(line[:max(1, len(line) // 2)])
            self._sync(fh)
            self.kill.fire("wal_mid_append")
        fh.write(line)
        self._sync(fh)
        self._next_lsn += 1
        self.appends += 1
        self.bytes_written += len(line)
        return record

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._sync(self._fh)
            self._fh.close()

    # -- reading -----------------------------------------------------------------

    def read(self) -> WalReadResult:
        """Scan the log, validating every frame (see module docstring
        for the torn-tail rule)."""
        return read_wal(self.path)

    # -- truncation --------------------------------------------------------------

    def drop_torn_tail(self, valid_bytes: int) -> None:
        """Physically truncate the log to its valid prefix.

        Recovery tolerates a CRC-torn final record by *dropping* it;
        the half-written bytes must also leave the file, or the next
        append would glue onto them and turn the tolerated torn tail
        into a mid-log hole.
        """
        self.close()
        with open(self.path, "r+b") as fh:
            fh.truncate(valid_bytes)
            fh.flush()
            os.fsync(fh.fileno())

    def truncate_through(self, epoch: int) -> int:
        """Atomically drop records with ``record.epoch <= epoch`` (they
        are covered by a checkpoint).  Returns the number dropped.

        The surviving tail is rewritten to a tmp file and swapped in
        with ``os.replace`` so a crash mid-truncation leaves either the
        old or the new log, never a half-written one.
        """
        self.close()
        result = read_wal(self.path)
        keep = [r for r in result.records if r.epoch > epoch]
        dropped = len(result.records) - len(keep)
        tmp = self.path.with_name(self.path.name + f".tmp-{os.getpid()}")
        with open(tmp, "wb") as fh:
            for record in keep:
                fh.write(encode_record(record))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._next_lsn = (keep[-1].lsn + 1 if keep
                          else result.records[-1].lsn + 1
                          if result.records else self._next_lsn)
        return dropped


def read_wal(path: str | Path) -> WalReadResult:
    """Read and validate a WAL file (missing file = empty log)."""
    path = Path(path)
    if not path.exists():
        return WalReadResult(records=[])
    raw = path.read_bytes()
    records: list[WalRecord] = []
    invalid_at: int | None = None
    valid_bytes = 0
    lines = raw.split(b"\n")
    # A trailing newline leaves one empty chunk; drop it (it is not a
    # record, torn or otherwise).
    if lines and lines[-1] == b"":
        lines.pop()
    for i, line in enumerate(lines):
        record = decode_line(line)
        if record is None:
            if invalid_at is None:
                invalid_at = i
            continue
        if invalid_at is not None:
            raise WalCorruptionError(
                f"{path}: record {invalid_at + 1} failed its CRC frame "
                f"but valid records follow — the log has a hole, not a "
                f"torn tail")
        if records and record.lsn != records[-1].lsn + 1:
            raise WalCorruptionError(
                f"{path}: LSN jumped from {records[-1].lsn} to "
                f"{record.lsn} — records are missing")
        records.append(record)
        valid_bytes += len(line) + 1
    return WalReadResult(records=records,
                         torn_records=0 if invalid_at is None else 1,
                         valid_bytes=valid_bytes)
