"""Seeded kill-points: simulated crashes inside the durability path.

A real crash test would ``kill -9`` the process; the campaign gets the
same on-disk effect deterministically by raising
:class:`SimulatedCrash` at named points in the apply path and then
*abandoning* the service instance — whatever bytes had reached the
filesystem at that instant are exactly what recovery sees.

Kill-point classes
------------------
``wal_mid_append``
    The process died halfway through writing a WAL record: a torn
    (CRC-invalid) partial line is physically left on disk.  The
    mutation was never durable — recovery must drop it.
``wal_post_append``
    The record is fully written and synced but the in-memory apply
    never ran.  The mutation *is* durable — recovery must replay it.
``checkpoint_mid``
    Died inside a periodic checkpoint: data files written into the tmp
    directory, the atomic rename never happened.  Recovery must ignore
    the tmp debris and use the previous checkpoint plus the WAL.
``compact_mid``
    Died inside the post-compaction checkpoint: the compact record is
    durable in the WAL, the compacted checkpoint is not.  Recovery
    replays the compaction from the previous checkpoint.

A :class:`KillSwitch` is armed with one ``(point, occurrence)`` pair;
the Nth time that point is reached, it fires.  Durability code consults
it via :meth:`KillSwitch.check`; the WAL additionally uses
:meth:`matches` + :meth:`fire` so it can leave the torn bytes *before*
raising.
"""

from __future__ import annotations

__all__ = ["KILL_POINTS", "KillSwitch", "SimulatedCrash"]

KILL_POINTS = ("wal_mid_append", "wal_post_append", "checkpoint_mid",
               "compact_mid")


class SimulatedCrash(BaseException):
    """The process 'died' at a kill-point.

    Deliberately *not* an :class:`Exception`: nothing in the serving
    stack may catch and absorb a crash (breakers, failover ladders and
    prewarm guards all catch ``Exception``) — it must unwind to the
    campaign harness like a real ``SIGKILL`` unwinds to the OS.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at kill-point {point!r}")
        self.point = point


class KillSwitch:
    """Fires a :class:`SimulatedCrash` at the Nth visit of one point."""

    def __init__(self, point: str, *, occurrence: int = 1) -> None:
        if point not in KILL_POINTS:
            raise ValueError(f"unknown kill-point {point!r}; expected "
                             f"one of {KILL_POINTS}")
        if occurrence < 1:
            raise ValueError("occurrence must be >= 1")
        self.point = point
        self.occurrence = occurrence
        #: visits per point (all points counted, for reporting).
        self.visits: dict[str, int] = {}
        self.fired = False

    def matches(self, point: str) -> bool:
        """Count one visit; True when this visit is the armed one.

        The caller is then expected to do its torn-state damage and
        call :meth:`fire`.
        """
        if point not in KILL_POINTS:
            raise ValueError(f"unknown kill-point {point!r}")
        self.visits[point] = self.visits.get(point, 0) + 1
        return (not self.fired and point == self.point
                and self.visits[point] == self.occurrence)

    def fire(self, point: str) -> None:
        """Raise the crash (records that it happened)."""
        self.fired = True
        raise SimulatedCrash(point)

    def check(self, point: str) -> None:
        """Count a visit and crash if this is the armed one."""
        if self.matches(point):
            self.fire(point)
