"""On-disk checkpoints of the versioned database, written atomically.

A checkpoint is one directory under ``<dir>/checkpoints/`` holding the
full physical state of the :class:`~repro.ingest.VersionedDatabase` at
one epoch, plus serialized artifacts of the engines that were warm in
the service cache when it was taken:

.. code-block:: text

    checkpoints/ckpt-000000000013/
        base.npz        # the immutable base SegmentArray
        delta.npz       # delta rows pending compaction (may be empty)
        engines/        # pickled warm engines (best-effort)
            0.pickle
        MANIFEST.json   # epochs, counters, recipes, SHA-1 per file

Atomicity is tmp-directory + ``os.replace``: every file is written and
fsync'd into ``.tmp-ckpt-<epoch>``, the manifest last, then the
directory is renamed into place.  A crash mid-checkpoint leaves a tmp
directory that :func:`list_checkpoints` ignores (and
:func:`clean_tmp_dirs` sweeps), so recovery falls back to the previous
checkpoint + the WAL.  A checkpoint whose manifest is missing or whose
file checksums mismatch is invalid and skipped the same way.

Engine artifacts are best-effort by design: they are a restart-latency
optimization (recovered services prewarm the cache from them instead of
rebuilding indexes), never a correctness dependency — an artifact that
fails to pickle, unpickle, or fingerprint-match is simply rebuilt from
its recipe.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.types import SegmentArray

__all__ = ["CHECKPOINT_PREFIX", "Checkpoint", "CheckpointError",
           "EngineRecipe", "clean_tmp_dirs", "list_checkpoints",
           "load_checkpoint", "write_checkpoint"]

CHECKPOINT_PREFIX = "ckpt-"
_TMP_PREFIX = ".tmp-" + CHECKPOINT_PREFIX
_FIELDS = ("xs", "ys", "zs", "ts", "xe", "ye", "ze", "te",
           "traj_ids", "seg_ids")
#: manifest schema version (bump on incompatible layout changes).
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint directory that cannot be loaded."""


@dataclass(frozen=True)
class EngineRecipe:
    """What it takes to rebuild one warm engine: method + parameters.

    ``params`` is the canonical parameter dict (JSON-friendly); the
    optional pickled artifact referenced by ``artifact`` short-cuts the
    rebuild when it loads and matches.
    """

    method: str
    params: dict
    #: relative path of the pickled engine inside the checkpoint dir
    #: (None = recipe only, always rebuild).
    artifact: str | None = None

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"method": self.method, "params": dict(self.params),
                "artifact": self.artifact}

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineRecipe":
        """Inverse of :meth:`to_dict`."""
        return cls(method=payload["method"],
                   params=dict(payload.get("params", {})),
                   artifact=payload.get("artifact"))


@dataclass
class Checkpoint:
    """One loaded (and validated) checkpoint."""

    path: Path
    epoch: int
    delta_epoch: int
    base_version: int
    next_seg_id: int
    base: SegmentArray
    delta: SegmentArray
    tombstones: frozenset[int]
    #: lifetime VersionedDatabase counters at checkpoint time.
    counters: dict = field(default_factory=dict)
    #: warm engines at checkpoint time, for recovery prewarm.
    engines: list[EngineRecipe] = field(default_factory=list)
    #: idempotency dedup table at checkpoint time (key -> summary);
    #: absent in pre-gateway checkpoints, which load as empty.
    applied_keys: dict = field(default_factory=dict)

    def load_engine_artifact(self, recipe: EngineRecipe):
        """Unpickle one engine artifact (None when absent or broken)."""
        if recipe.artifact is None:
            return None
        artifact = self.path / recipe.artifact
        try:
            with open(artifact, "rb") as fh:
                return pickle.load(fh)
        except Exception:  # noqa: BLE001 - artifacts are best-effort
            return None


def _npz_bytes(segments: SegmentArray) -> bytes:
    buf = io.BytesIO()
    np.savez_compressed(buf, **{f: getattr(segments, f)
                                for f in _FIELDS})
    return buf.getvalue()


def _npz_load(path: Path) -> SegmentArray:
    with np.load(path) as data:
        return SegmentArray(*(data[f] for f in _FIELDS))


def _write_file(path: Path, data: bytes) -> str:
    """Write + fsync one file; returns its SHA-1 for the manifest."""
    with open(path, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    return hashlib.sha1(data).hexdigest()


def checkpoint_name(epoch: int) -> str:
    return f"{CHECKPOINT_PREFIX}{epoch:012d}"


def write_checkpoint(directory: str | Path, state: dict, *,
                     engines: list[tuple[str, dict, object | None]] = (),
                     kill=None, kill_point: str = "checkpoint_mid"
                     ) -> Path:
    """Atomically write one checkpoint; returns its final path.

    Parameters
    ----------
    directory:
        The ``checkpoints/`` directory (created if missing).
    state:
        Dict with keys ``epoch``, ``delta_epoch``, ``base_version``,
        ``next_seg_id``, ``base`` (SegmentArray), ``delta``
        (SegmentArray), ``tombstones`` (iterable of int), ``counters``
        (dict).
    engines:
        ``(method, params, engine_or_None)`` triples for the warm
        engines; an engine object is pickled best-effort as the
        prewarm artifact.
    kill, kill_point:
        Crash-campaign hook: the named kill-point is checked after the
        data files are written but *before* the atomic rename — a
        crash there must leave the checkpoint invisible.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    epoch = int(state["epoch"])
    final = directory / checkpoint_name(epoch)
    tmp = directory / f"{_TMP_PREFIX}{epoch:012d}-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir(parents=True)
    files: dict[str, str] = {}
    files["base.npz"] = _write_file(tmp / "base.npz",
                                    _npz_bytes(state["base"]))
    files["delta.npz"] = _write_file(tmp / "delta.npz",
                                     _npz_bytes(state["delta"]))
    recipes: list[dict] = []
    if engines:
        (tmp / "engines").mkdir()
    for i, (method, params, engine) in enumerate(engines):
        artifact = None
        if engine is not None:
            rel = f"engines/{i}.pickle"
            try:
                blob = pickle.dumps(engine)
            except Exception:  # noqa: BLE001 - artifacts are best-effort
                blob = None
            if blob is not None:
                files[rel] = _write_file(tmp / rel, blob)
                artifact = rel
        recipes.append(EngineRecipe(method=method, params=params,
                                    artifact=artifact).to_dict())
    manifest = {
        "format": FORMAT_VERSION,
        "epoch": epoch,
        "delta_epoch": int(state["delta_epoch"]),
        "base_version": int(state["base_version"]),
        "next_seg_id": int(state["next_seg_id"]),
        "tombstones": sorted(int(t) for t in state["tombstones"]),
        "counters": dict(state.get("counters", {})),
        "applied_keys": dict(state.get("applied_keys", {})),
        "engines": recipes,
        "files": files,
    }
    _write_file(tmp / "MANIFEST.json",
                json.dumps(manifest, indent=2).encode("utf-8"))
    if kill is not None:
        # Everything is on disk in the tmp dir; the rename below is
        # the commit point.  Crash here = checkpoint never happened.
        kill.check(kill_point)
    if final.exists():
        shutil.rmtree(final)
    os.replace(tmp, final)
    _fsync_dir(directory)
    return final


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so the rename itself is durable (best-effort
    on platforms whose directories cannot be opened)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load and validate one checkpoint directory.

    Raises :class:`CheckpointError` when the manifest is missing or
    malformed, a referenced file is absent, or any checksum mismatches.
    """
    path = Path(path)
    manifest_path = path / "MANIFEST.json"
    if not manifest_path.exists():
        raise CheckpointError(f"{path}: no MANIFEST.json")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: manifest is not valid JSON: "
                              f"{exc}") from exc
    if manifest.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format "
            f"{manifest.get('format')!r} (expected {FORMAT_VERSION})")
    for rel, digest in manifest.get("files", {}).items():
        fpath = path / rel
        if not fpath.exists():
            raise CheckpointError(f"{path}: missing file {rel}")
        if hashlib.sha1(fpath.read_bytes()).hexdigest() != digest:
            raise CheckpointError(f"{path}: checksum mismatch on {rel}")
    return Checkpoint(
        path=path,
        epoch=int(manifest["epoch"]),
        delta_epoch=int(manifest["delta_epoch"]),
        base_version=int(manifest["base_version"]),
        next_seg_id=int(manifest["next_seg_id"]),
        base=_npz_load(path / "base.npz"),
        delta=_npz_load(path / "delta.npz"),
        tombstones=frozenset(int(t)
                             for t in manifest.get("tombstones", [])),
        counters=dict(manifest.get("counters", {})),
        engines=[EngineRecipe.from_dict(r)
                 for r in manifest.get("engines", [])],
        applied_keys=dict(manifest.get("applied_keys", {})),
    )


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Committed checkpoint directories, newest epoch first (tmp
    debris from crashed checkpoints is excluded, not validated)."""
    directory = Path(directory)
    if not directory.exists():
        return []
    found = [p for p in directory.iterdir()
             if p.is_dir() and p.name.startswith(CHECKPOINT_PREFIX)]
    return sorted(found, key=lambda p: p.name, reverse=True)


def clean_tmp_dirs(directory: str | Path) -> int:
    """Sweep tmp debris left by crashed checkpoints; returns the
    number of directories removed."""
    directory = Path(directory)
    if not directory.exists():
        return 0
    victims = [p for p in directory.iterdir()
               if p.is_dir() and p.name.startswith(_TMP_PREFIX)]
    for victim in victims:
        shutil.rmtree(victim)
    return len(victims)
