"""Durability: write-ahead logging, checkpoints, and crash recovery.

Everything the serving stack mutates in memory — ingests, tombstones,
compactions — is made restartable here:

* :mod:`repro.durability.wal` frames every mutation as a CRC32'd,
  fsync'd JSONL record *before* it is applied (write-ahead
  discipline), so a torn final record is detected and dropped, never
  half-applied;
* :mod:`repro.durability.checkpoint` writes atomic (tmp-dir +
  ``os.replace``) snapshots of the versioned database, including
  pickled warm-engine artifacts for restart prewarm;
* :mod:`repro.durability.manager` composes both:
  :class:`DurabilityPolicy` controls sync mode, checkpoint cadence and
  WAL truncation; :meth:`DurabilityManager.recover` restores the exact
  pre-crash logical epoch from the newest valid checkpoint plus the
  WAL tail;
* :mod:`repro.durability.crashpoints` supplies the seeded
  :class:`KillSwitch` the crash campaign
  (:func:`repro.faults.run_crash_campaign`) uses to die at exact
  points in the apply path.

Entry points::

    svc = QueryService(db, durability_dir="state/")   # durable writes
    svc = QueryService.recover("state/")              # after a crash
"""

from .checkpoint import (Checkpoint, CheckpointError, EngineRecipe,
                         list_checkpoints, load_checkpoint,
                         write_checkpoint)
from .crashpoints import KILL_POINTS, KillSwitch, SimulatedCrash
from .manager import (DurabilityError, DurabilityManager,
                      DurabilityPolicy, RecoveryResult)
from .wal import (SYNC_MODES, WalCorruptionError, WalRecord,
                  WriteAheadLog, read_wal)

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "DurabilityError",
    "DurabilityManager",
    "DurabilityPolicy",
    "EngineRecipe",
    "KILL_POINTS",
    "KillSwitch",
    "RecoveryResult",
    "SYNC_MODES",
    "SimulatedCrash",
    "WalCorruptionError",
    "WalRecord",
    "WriteAheadLog",
    "list_checkpoints",
    "load_checkpoint",
    "read_wal",
    "write_checkpoint",
]
