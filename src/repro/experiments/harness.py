"""Experiment runner: sweep engines over query distances and record rows.

One :class:`ExperimentRunner` per scenario: the database and query set are
generated once, each engine is built once (index construction is the
offline phase), and response time is the cost model applied to each
search's measured operation counts.  Every figure/table benchmark in
``benchmarks/`` is a thin wrapper over this module, so the rows printed
there are exactly the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.result import ResultSet
from ..engines.registry import get_engine
from ..engines.base import GpuEngineBase, SearchEngine
from ..gpu.costmodel import CpuCostModel, GpuCostModel
from ..gpu.profiler import CpuSearchProfile, SearchProfile
from .scenarios import Scenario

__all__ = ["ExperimentRunner", "RunRecord"]


@dataclass(frozen=True)
class RunRecord:
    """One (engine, d) measurement."""

    scenario: str
    engine: str
    d: float
    modeled_seconds: float
    #: modeled seconds with kernel re-invocation overhead discounted —
    #: Fig. 4's "optimistic" curve (GPU engines only; equals
    #: modeled_seconds when a single invocation sufficed).
    optimistic_seconds: float
    result_items: int
    comparisons: int
    kernel_invocations: int
    redo_queries: int
    defaulted_queries: int
    transfers_bytes: int
    divergence: float
    wall_seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


class ExperimentRunner:
    """Runs a scenario's sweep; caches the database and built engines."""

    def __init__(self, scenario: Scenario, *,
                 gpu_model: GpuCostModel | None = None,
                 cpu_model: CpuCostModel | None = None) -> None:
        self.scenario = scenario
        self.gpu_model = gpu_model or GpuCostModel()
        self.cpu_model = cpu_model or CpuCostModel()
        self.database = scenario.make_database()
        self.queries = scenario.make_queries(self.database)
        self._engines: dict[str, SearchEngine] = {}

    # -- engine management -------------------------------------------------------

    def engine(self, name: str, **overrides: Any) -> SearchEngine:
        """Build (or fetch) an engine with the scenario's configuration.

        ``overrides`` adjust the config (used by the ablation sweeps); an
        overridden engine is cached under a derived key so repeated calls
        don't rebuild the index.
        """
        config = dict(self.scenario.engine_configs.get(name, {}))
        config.update(overrides)
        cls = get_engine(name)
        if issubclass(cls, GpuEngineBase):
            config.setdefault("result_buffer_items",
                              self.scenario.result_buffer_items)
        key = name + repr(sorted(config.items()))
        if key not in self._engines:
            self._engines[key] = cls(self.database, **config)
        return self._engines[key]

    # -- measurement ---------------------------------------------------------------

    def run_one(self, engine_name: str, d: float, **overrides: Any
                ) -> tuple[RunRecord, ResultSet]:
        engine = self.engine(engine_name, **overrides)
        results, profile = engine.search(self.queries, d)
        return self._record(engine_name, d, profile, results), results

    def _record(self, engine_name: str, d: float,
                profile: SearchProfile | CpuSearchProfile,
                results: ResultSet) -> RunRecord:
        if isinstance(profile, CpuSearchProfile):
            modeled = profile.modeled_time(self.cpu_model).total
            return RunRecord(
                scenario=self.scenario.name, engine=engine_name, d=d,
                modeled_seconds=modeled, optimistic_seconds=modeled,
                result_items=len(results),
                comparisons=profile.comparisons,
                kernel_invocations=0, redo_queries=0, defaulted_queries=0,
                transfers_bytes=0, divergence=1.0,
                wall_seconds=profile.wall_seconds)
        modeled = profile.modeled_time(self.gpu_model).total
        optimistic = profile.modeled_time(
            self.gpu_model, discount_reinvocations=True).total
        return RunRecord(
            scenario=self.scenario.name, engine=engine_name, d=d,
            modeled_seconds=modeled, optimistic_seconds=optimistic,
            result_items=len(results),
            comparisons=profile.total_comparisons,
            kernel_invocations=profile.num_kernel_invocations,
            redo_queries=profile.redo_queries,
            defaulted_queries=profile.defaulted_queries,
            transfers_bytes=profile.h2d_bytes + profile.d2h_bytes,
            divergence=profile.divergence_factor(),
            wall_seconds=profile.wall_seconds)

    def sweep(self, engine_names: list[str],
              d_values: tuple[float, ...] | None = None,
              **overrides: Any) -> list[RunRecord]:
        """The standard response-time-vs-d sweep for several engines."""
        d_values = d_values or self.scenario.d_values
        records: list[RunRecord] = []
        for name in engine_names:
            for d in d_values:
                rec, _ = self.run_one(name, d, **overrides)
                records.append(rec)
        return records
