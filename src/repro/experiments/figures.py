"""Regeneration of every figure and quantified in-text result of §V.

Each ``figN_*`` function returns the data behind the corresponding paper
figure; each ``ablation_*`` function reproduces one of the in-text
parameter studies (see DESIGN.md §4 for the experiment index).  All of
them are deterministic given the scenario scale.
"""

from __future__ import annotations

from ..engines.cpu_rtree import tune_segments_per_mbb
from .harness import ExperimentRunner, RunRecord
from .scenarios import (Scenario, scenario_s1_random, scenario_s2_merger,
                        scenario_s3_random_dense)

__all__ = [
    "fig4_random", "fig5_merger", "fig6_random_dense", "fig7_ratios",
    "ablation_fsg_resolution", "ablation_temporal_bins",
    "ablation_subbins", "ablation_indirection", "ablation_result_buffer",
    "ablation_rtree_r",
]


# --------------------------------------------------------------------------
# Figures 4-6: response time vs query distance per engine
# --------------------------------------------------------------------------

def fig4_random(scale: float | None = None,
                runner: ExperimentRunner | None = None) -> list[RunRecord]:
    """Fig. 4 — S1 (Random): all four implementations plus GPUSpatial's
    "optimistic" curve (in each record's ``optimistic_seconds``)."""
    runner = runner or ExperimentRunner(scenario_s1_random(scale))
    return runner.sweep(["cpu_rtree", "gpu_spatial", "gpu_temporal",
                         "gpu_spatiotemporal"])


def fig5_merger(scale: float | None = None,
                runner: ExperimentRunner | None = None) -> list[RunRecord]:
    """Fig. 5 — S2 (Merger): CPU-RTree vs GPUTemporal vs
    GPUSpatioTemporal (GPUSpatial omitted, as in the paper)."""
    runner = runner or ExperimentRunner(scenario_s2_merger(scale))
    return runner.sweep(["cpu_rtree", "gpu_temporal",
                         "gpu_spatiotemporal"])


def fig6_random_dense(scale: float | None = None,
                      runner: ExperimentRunner | None = None
                      ) -> list[RunRecord]:
    """Fig. 6 — S3 (Random-dense): same three engines, enlarged result
    buffer (the scenario bakes the 9.2e7-item setting in)."""
    runner = runner or ExperimentRunner(scenario_s3_random_dense(scale))
    return runner.sweep(["cpu_rtree", "gpu_temporal",
                         "gpu_spatiotemporal"])


def fig7_ratios(scale: float | None = None
                ) -> dict[str, list[tuple[float, str, float]]]:
    """Fig. 7 — GPU/CPU response-time ratios for selected d per dataset.

    Returns ``{scenario: [(d, engine, ratio)]}`` with ratio < 1 meaning
    the GPU engine beats CPU-RTree.
    """
    out: dict[str, list[tuple[float, str, float]]] = {}
    for scenario, engines in [
        (scenario_s1_random(scale), ["gpu_spatial", "gpu_temporal",
                                     "gpu_spatiotemporal"]),
        (scenario_s2_merger(scale), ["gpu_temporal",
                                     "gpu_spatiotemporal"]),
        (scenario_s3_random_dense(scale), ["gpu_temporal",
                                           "gpu_spatiotemporal"]),
    ]:
        runner = ExperimentRunner(scenario)
        selected = scenario.application_d or scenario.d_values[:2]
        rows: list[tuple[float, str, float]] = []
        for d in selected:
            cpu_rec, _ = runner.run_one("cpu_rtree", d)
            for eng in engines:
                rec, _ = runner.run_one(eng, d)
                rows.append((d, eng,
                             rec.modeled_seconds / cpu_rec.modeled_seconds))
        out[scenario.name] = rows
    return out


# --------------------------------------------------------------------------
# In-text parameter studies (§V-C/V-D/V-E)
# --------------------------------------------------------------------------

def ablation_fsg_resolution(
    scale: float | None = None,
    resolutions: tuple[int, ...] = (10, 25, 50, 75, 100),
    d_values: tuple[float, ...] | None = None,
    runner: ExperimentRunner | None = None,
) -> list[RunRecord]:
    """T-FSG: GPUSpatial response time vs grid resolution on Random.

    Expected shape (§V-C): too coarse => overflow re-invocations and
    excess comparisons; too fine => duplicate transfers; ~50 cells/dim
    near-optimal; rapid growth with d at any resolution.
    """
    runner = runner or ExperimentRunner(scenario_s1_random(scale))
    d_values = d_values or runner.scenario.d_values[:4]
    records = []
    for res in resolutions:
        for d in d_values:
            rec, _ = runner.run_one("gpu_spatial", d, cells_per_dim=res)
            records.append(rec)
    return records


def ablation_temporal_bins(
    scale: float | None = None,
    bin_counts: tuple[int, ...] = (10, 100, 1_000, 10_000, 50_000),
    scenario: Scenario | None = None,
    d: float = 25.0,
) -> list[RunRecord]:
    """T-BINS: GPUTemporal response time vs number of temporal bins.

    Expected: response time falls with bin count, then saturates
    (>= 10,000 bins on Random, ~1,000 on Merger, §V-C/V-D); independent of
    d throughout.
    """
    runner = ExperimentRunner(scenario or scenario_s1_random(scale))
    records = []
    for m in bin_counts:
        rec, _ = runner.run_one("gpu_temporal", d, num_bins=m)
        records.append(rec)
    return records


def ablation_subbins(
    scale: float | None = None,
    subbin_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    scenario: Scenario | None = None,
    d_values: tuple[float, ...] | None = None,
) -> list[RunRecord]:
    """T-SUBB: GPUSpatioTemporal vs subbin count v.

    Expected (§V-C/V-D/V-E): more subbins help at small d; at large d
    queries straddle subbins and default to the temporal scheme
    (``defaulted_queries`` in the records), so fewer subbins win.
    """
    runner = ExperimentRunner(scenario or scenario_s1_random(scale))
    d_values = d_values or runner.scenario.d_values[::3]
    records = []
    for v in subbin_counts:
        for d in d_values:
            rec, _ = runner.run_one("gpu_spatiotemporal", d,
                                    num_subbins=v, strict_subbins=False)
            records.append(rec)
    return records


def ablation_indirection(scale: float | None = None,
                         d: float = 50.0) -> dict[str, float]:
    """T-IND: the cost of GPUSpatioTemporal's extra indirection.

    Paper §V-C: GPUSpatioTemporal with v = 1 subbin does the same
    comparisons as GPUTemporal plus one indirection per candidate; at
    d = 50 the paper measures +12.4 % response time.  Returns both
    modeled times and the overhead fraction.
    """
    runner = ExperimentRunner(scenario_s1_random(scale))
    rec_t, _ = runner.run_one("gpu_temporal", d)
    rec_st, _ = runner.run_one("gpu_spatiotemporal", d, num_subbins=1)
    overhead = (rec_st.modeled_seconds - rec_t.modeled_seconds) \
        / rec_t.modeled_seconds
    return {"gpu_temporal_s": rec_t.modeled_seconds,
            "gpu_spatiotemporal_v1_s": rec_st.modeled_seconds,
            "overhead_fraction": overhead}


def ablation_result_buffer(
    scale: float | None = None,
    d: float = 0.09,
    buffer_scales: tuple[float, ...] = (1.0, 9.2 / 5.0),
) -> list[RunRecord]:
    """T-BUF: effect of growing the result buffer on Random-dense.

    Paper §V-E: going from 5.0e7 to 9.2e7 items cuts response time by
    65.76 % at d = 0.09 because fewer kernel invocations are needed.
    ``buffer_scales`` multiply the scenario's 5e7-equivalent base.
    """
    scenario = scenario_s3_random_dense(scale)
    base_items = int(scenario.result_buffer_items * 5.0 / 9.2)
    runner = ExperimentRunner(scenario)
    records = []
    for bs in buffer_scales:
        rec, _ = runner.run_one("gpu_temporal", d,
                                result_buffer_items=max(
                                    1_000, int(base_items * bs)))
        records.append(rec)
    return records


def ablation_rtree_r(
    scale: float | None = None,
    scenario: Scenario | None = None,
    d: float | None = None,
    r_values: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> tuple[int, dict[int, float]]:
    """T-RTREE: sweep the R-tree's segments-per-MBB and report the best,
    reproducing the baseline protocol of §V-B."""
    scenario = scenario or scenario_s1_random(scale)
    runner = ExperimentRunner(scenario)
    d = d if d is not None else scenario.d_values[len(scenario.d_values)
                                                  // 2]
    return tune_segments_per_mbb(runner.database, runner.queries, d,
                                 r_values=r_values)
