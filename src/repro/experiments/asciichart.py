"""Terminal line charts for the regenerated figures.

The paper's figures are log-scale response-time-vs-d line charts; the
series tables in ``results/`` carry the numbers, and this module renders
the same data as a text plot so the *shape* (flat GPUTemporal, exploding
GPUSpatial, the CPU/GPU crossover) is visible at a glance in a terminal
or a markdown code block — no plotting dependency required.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["line_chart"]

_MARKS = "ox+*#@%&"


def _log_or_linear(values: list[float], log: bool) -> list[float]:
    if not log:
        return values
    return [math.log10(v) if v > 0 else float("-inf") for v in values]


def line_chart(
    d_values: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    height: int = 16,
    width: int = 64,
    log_y: bool = True,
) -> str:
    """Render series as an ASCII chart (one mark character per series).

    The x axis is the *index* of each d value (the paper's sweeps are
    near-log-spaced, so index spacing reads naturally); the y axis is
    log10 seconds by default, matching the figures.
    """
    if not series or not d_values:
        raise ValueError("need at least one series and one x value")
    if height < 4 or width < len(d_values):
        raise ValueError("chart too small for the data")

    names = sorted(series)
    flat = [v for name in names for v in series[name]
            if v == v and v > 0]
    if not flat:
        raise ValueError("no positive finite values to plot")
    ys = _log_or_linear(flat, log_y)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    xcol = [round(i * (width - 1) / max(len(d_values) - 1, 1))
            for i in range(len(d_values))]

    def yrow(value: float) -> int | None:
        v = _log_or_linear([value], log_y)[0]
        if v == float("-inf"):
            return None
        frac = (v - y_lo) / (y_hi - y_lo)
        return (height - 1) - round(frac * (height - 1))

    for si, name in enumerate(names):
        mark = _MARKS[si % len(_MARKS)]
        prev: tuple[int, int] | None = None
        for i, v in enumerate(series[name]):
            if v != v or v <= 0:
                prev = None
                continue
            r = yrow(v)
            if r is None:
                continue
            c = xcol[i]
            grid[r][c] = mark
            if prev is not None:
                # Sparse interpolation so the eye can follow the line.
                pr, pc = prev
                steps = max(abs(c - pc), abs(r - pr))
                for s in range(1, steps):
                    ir = pr + round(s * (r - pr) / steps)
                    ic = pc + round(s * (c - pc) / steps)
                    if grid[ir][ic] == " ":
                        grid[ir][ic] = "."
            prev = (r, c)

    unit = "log10(s)" if log_y else "s"
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    top = f"{y_hi:8.2f} ┤" if not log_y else f"{10 ** y_hi:8.2g} ┤"
    bot = f"{y_lo:8.2f} ┤" if not log_y else f"{10 ** y_lo:8.2g} ┤"
    pad = " " * 9 + "│"
    for r, row in enumerate(grid):
        prefix = top if r == 0 else bot if r == height - 1 else pad
        lines.append(prefix + "".join(row))
    axis = " " * 10 + "└" + "─" * width
    lines.append(axis)
    ticks = [f"{d_values[0]:g}", f"{d_values[len(d_values) // 2]:g}",
             f"{d_values[-1]:g}"]
    tick_line = (" " * 11 + ticks[0]
                 + ticks[1].rjust(width // 2 - len(ticks[0]))
                 + ticks[2].rjust(width - width // 2 - len(ticks[1])))
    lines.append(tick_line + "   [d]")
    legend = "   ".join(f"{_MARKS[i % len(_MARKS)]} {name}"
                        for i, name in enumerate(names))
    lines.append(f"          {legend}   [y: {unit}]")
    return "\n".join(lines)
