"""Experiment scenarios, runner, figure regeneration and reporting."""

from .asciichart import line_chart
from .calibration import (PAPER_ANCHORS, fit_cpu_cycles, fit_gpu_cycles,
                          verify_calibration)
from .figures import (ablation_fsg_resolution, ablation_indirection,
                      ablation_result_buffer, ablation_rtree_r,
                      ablation_subbins, ablation_temporal_bins,
                      fig4_random, fig5_merger, fig6_random_dense,
                      fig7_ratios)
from .harness import ExperimentRunner, RunRecord
from .report import (markdown_table, ratio_table, records_to_series,
                     series_table)
from .paper_report import build_report, write_report
from .sensitivity import (ProfileSet, SensitivityRow, collect_profiles,
                          sensitivity_analysis)
from .scenarios import (DEFAULT_SCALE, Scenario, all_scenarios,
                        default_scale, scenario_s1_random,
                        scenario_s2_merger, scenario_s3_random_dense)

__all__ = [
    "DEFAULT_SCALE", "ExperimentRunner", "PAPER_ANCHORS", "ProfileSet",
    "RunRecord", "Scenario", "SensitivityRow",
    "ablation_fsg_resolution", "ablation_indirection",
    "ablation_result_buffer", "ablation_rtree_r", "ablation_subbins",
    "ablation_temporal_bins", "all_scenarios", "default_scale",
    "build_report", "collect_profiles", "fig4_random", "fig5_merger",
    "fig6_random_dense", "fig7_ratios", "fit_cpu_cycles",
    "fit_gpu_cycles", "markdown_table", "ratio_table",
    "records_to_series", "sensitivity_analysis", "series_table",
    "line_chart", "verify_calibration", "write_report",
    "scenario_s1_random", "scenario_s2_merger",
    "scenario_s3_random_dense",
]
