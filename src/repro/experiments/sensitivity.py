"""Cost-model sensitivity analysis: are the conclusions calibration-proof?

The reproduction prices measured operation counts with calibrated cycle
constants (DESIGN.md §2).  A fair question is whether the paper-matching
conclusions — "GPUSpatioTemporal overtakes the CPU on Merger", "the GPU
wins on dense data at large d" — are artifacts of those constants.  This
module answers it by *re-pricing the same measured profiles* under
perturbed models (each constant scaled by, e.g., 0.5x and 2x) and
recording whether each qualitative conclusion survives.

Because profiles are pure operation counts, re-pricing is free: the
searches run once, the perturbation grid costs microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


from ..gpu.costmodel import CpuCostModel, GpuCostModel
from ..gpu.profiler import CpuSearchProfile, SearchProfile
from .harness import ExperimentRunner

__all__ = ["ProfileSet", "SensitivityRow", "collect_profiles",
           "crossover_distance", "sensitivity_analysis",
           "GPU_PARAMETERS", "CPU_PARAMETERS"]

#: perturbable GpuCostModel fields.
GPU_PARAMETERS = ("cycles_per_comparison", "cycles_per_gather",
                  "cycles_per_atomic")
#: perturbable CpuCostModel fields.
CPU_PARAMETERS = ("cycles_per_comparison", "cycles_per_node_visit",
                  "cycles_per_query_overhead")


@dataclass(frozen=True)
class ProfileSet:
    """Measured profiles for one scenario sweep, ready for re-pricing.

    ``profiles[engine][i]`` is the profile for ``d_values[i]``.
    """

    scenario: str
    d_values: tuple[float, ...]
    profiles: dict[str, list[SearchProfile | CpuSearchProfile]]

    def price(self, gpu_model: GpuCostModel, cpu_model: CpuCostModel
              ) -> dict[str, list[float]]:
        out: dict[str, list[float]] = {}
        for engine, profs in self.profiles.items():
            series = []
            for p in profs:
                if isinstance(p, CpuSearchProfile):
                    series.append(p.modeled_time(cpu_model).total)
                else:
                    series.append(p.modeled_time(gpu_model).total)
            out[engine] = series
        return out


def collect_profiles(runner: ExperimentRunner,
                     engines: list[str],
                     d_values: tuple[float, ...] | None = None
                     ) -> ProfileSet:
    """Run each engine across the sweep once, keeping raw profiles."""
    d_values = d_values or runner.scenario.d_values
    profiles: dict[str, list] = {e: [] for e in engines}
    for engine_name in engines:
        engine = runner.engine(engine_name)
        for d in d_values:
            _, prof = engine.search(runner.queries, d)
            profiles[engine_name].append(prof)
    return ProfileSet(scenario=runner.scenario.name,
                      d_values=tuple(d_values), profiles=profiles)


def crossover_distance(d_values: tuple[float, ...],
                       challenger: list[float],
                       incumbent: list[float]) -> float | None:
    """Smallest d at which ``challenger`` is at least as fast, or None."""
    for d, a, b in zip(d_values, challenger, incumbent):
        if a <= b:
            return d
    return None


@dataclass(frozen=True)
class SensitivityRow:
    """Outcome of one perturbation."""

    side: str            # "gpu" | "cpu" | "baseline"
    parameter: str
    factor: float
    crossover_d: float | None   # challenger-overtakes-incumbent point
    challenger_wins_at_dmax: bool

    def describe(self) -> str:
        cross = ("never" if self.crossover_d is None
                 else f"d={self.crossover_d:g}")
        return (f"{self.side:8s} {self.parameter:26s} x{self.factor:<4g} "
                f"crossover {cross:10s} "
                f"wins@dmax={'yes' if self.challenger_wins_at_dmax else 'no'}")


def sensitivity_analysis(
    profile_set: ProfileSet,
    *,
    challenger: str = "gpu_spatiotemporal",
    incumbent: str = "cpu_rtree",
    factors: tuple[float, ...] = (0.5, 2.0),
    gpu_model: GpuCostModel | None = None,
    cpu_model: CpuCostModel | None = None,
) -> list[SensitivityRow]:
    """Re-price the sweep under each single-parameter perturbation.

    Returns one row per (side, parameter, factor) plus the baseline row,
    each recording where the challenger overtakes the incumbent.
    """
    gpu_model = gpu_model or GpuCostModel()
    cpu_model = cpu_model or CpuCostModel()

    def evaluate(gm: GpuCostModel, cm: CpuCostModel,
                 side: str, parameter: str,
                 factor: float) -> SensitivityRow:
        series = profile_set.price(gm, cm)
        cross = crossover_distance(profile_set.d_values,
                                   series[challenger],
                                   series[incumbent])
        wins = series[challenger][-1] <= series[incumbent][-1]
        return SensitivityRow(side=side, parameter=parameter,
                              factor=factor, crossover_d=cross,
                              challenger_wins_at_dmax=wins)

    rows = [evaluate(gpu_model, cpu_model, "baseline", "-", 1.0)]
    for param in GPU_PARAMETERS:
        for f in factors:
            gm = replace(gpu_model,
                         **{param: getattr(gpu_model, param) * f})
            rows.append(evaluate(gm, cpu_model, "gpu", param, f))
    for param in CPU_PARAMETERS:
        for f in factors:
            cm = replace(cpu_model,
                         **{param: getattr(cpu_model, param) * f})
            rows.append(evaluate(gpu_model, cm, "cpu", param, f))
    return rows
