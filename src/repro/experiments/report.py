"""Plain-text rendering of experiment results.

The paper reports line charts (Figs. 4-7); without a plotting dependency
we print the same data as aligned series tables, one row per engine, one
column per query distance — the rows a plot would draw.  Helpers also
emit markdown for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from .harness import RunRecord

__all__ = ["series_table", "records_to_series", "ratio_table",
           "markdown_table"]


def records_to_series(records: Iterable[RunRecord],
                      value: str = "modeled_seconds"
                      ) -> tuple[list[float], dict[str, list[float]]]:
    """Pivot records into ``(d_values, {engine: series})``."""
    by_engine: dict[str, dict[float, float]] = defaultdict(dict)
    d_set: set[float] = set()
    for rec in records:
        by_engine[rec.engine][rec.d] = float(getattr(rec, value))
        d_set.add(rec.d)
    d_values = sorted(d_set)
    series = {eng: [vals.get(d, float("nan")) for d in d_values]
              for eng, vals in by_engine.items()}
    return d_values, series


def _fmt(x: float) -> str:
    if x != x:  # NaN
        return "-"
    if x == 0:
        return "0"
    if abs(x) >= 100:
        return f"{x:.0f}"
    if abs(x) >= 1:
        return f"{x:.2f}"
    return f"{x:.4f}"


def series_table(title: str, d_values: Sequence[float],
                 series: dict[str, Sequence[float]],
                 *, unit: str = "s") -> str:
    """Render a response-time-vs-d table (stand-in for a line chart)."""
    name_w = max([len(k) for k in series] + [8])
    col_w = max(max(len(_fmt(v)) for v in [*vals, d])
                for d, vals in zip(d_values,
                                   zip(*series.values()) if series
                                   else [[]] * len(d_values))) + 2 \
        if series else 8
    col_w = max(col_w, 8)
    lines = [title, "=" * len(title)]
    header = f"{'d':>{name_w}} |" + "".join(
        f"{_fmt(d):>{col_w}}" for d in d_values)
    lines.append(header)
    lines.append("-" * len(header))
    for eng in sorted(series):
        row = f"{eng:>{name_w}} |" + "".join(
            f"{_fmt(v):>{col_w}}" for v in series[eng])
        lines.append(row + f"  [{unit}]")
    return "\n".join(lines)


def ratio_table(title: str, d_values: Sequence[float],
                series: dict[str, Sequence[float]],
                baseline: str) -> str:
    """Per-engine ratio to a baseline engine (the Fig. 7 view)."""
    if baseline not in series:
        raise KeyError(f"baseline {baseline!r} not in series")
    base = series[baseline]
    ratios = {
        eng: [v / b if b else float("nan") for v, b in zip(vals, base)]
        for eng, vals in series.items() if eng != baseline
    }
    return series_table(title, d_values, ratios, unit=f"x {baseline}")


def markdown_table(d_values: Sequence[float],
                   series: dict[str, Sequence[float]],
                   *, value_name: str = "modeled s") -> str:
    """GitHub-markdown version for EXPERIMENTS.md."""
    header = "| engine | " + " | ".join(_fmt(d) for d in d_values) + " |"
    sep = "|---" * (len(d_values) + 1) + "|"
    rows = [header, sep]
    for eng in sorted(series):
        rows.append("| " + eng + " | "
                    + " | ".join(_fmt(v) for v in series[eng]) + " |")
    rows.append(f"\n*(columns: query distance d; cells: {value_name})*")
    return "\n".join(rows)
