"""The paper's three experimental scenarios, S1-S3 (§V-B), scale-aware.

Every scenario bundles a dataset generator, a query-set recipe, the query
distances the paper sweeps, and the per-engine configuration the paper
selected for that dataset.  A global ``scale`` knob shrinks the instance
sizes so the full figure suite runs on a laptop in minutes; scale = 1
reproduces the paper's sizes (25M-segment Merger included — bring RAM and
patience).  Scaling reduces counts, not structure: bin counts, subbin
counts, grid resolutions and the d sweeps are the paper's own values, and
buffer capacities shrink proportionally so the buffer-pressure phenomena
(§V-D/V-E) still occur at the same relative points.

The default scale is read from the ``REPRO_SCALE`` environment variable
(falling back to :data:`DEFAULT_SCALE`), so CI and benchmarks can dial the
whole suite without code changes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.types import SegmentArray
from ..data.merger import MergerConfig, merger_dataset
from ..data.queries import queries_from_database
from ..data.random_walk import random_dataset, random_dense_dataset

__all__ = ["Scenario", "DEFAULT_SCALE", "default_scale",
           "scenario_s1_random", "scenario_s2_merger",
           "scenario_s3_random_dense", "all_scenarios"]

#: Default instance scale; ~1-2 % of the paper's sizes keeps every
#: benchmark under a minute while preserving all qualitative behaviour.
DEFAULT_SCALE = 0.02


def default_scale() -> float:
    """The suite-wide scale: ``REPRO_SCALE`` env var or DEFAULT_SCALE."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return DEFAULT_SCALE
    value = float(raw)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"REPRO_SCALE must be in (0, 1], got {value}")
    return value


@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario: dataset + queries + sweep + engine configs."""

    name: str
    description: str
    make_database: Callable[[], SegmentArray]
    num_query_trajectories: int
    d_values: tuple[float, ...]
    #: engine name -> constructor kwargs, the paper's per-dataset choices.
    engine_configs: dict[str, dict] = field(default_factory=dict)
    #: device result-buffer capacity (items) for the GPU engines.
    result_buffer_items: int = 2_000_000
    #: d values the paper marks as application-relevant (vertical lines).
    application_d: tuple[float, ...] = ()
    #: optional override producing the query set; defaults to drawing
    #: whole trajectories from the database (the astrophysics use case).
    queries_fn: Callable[[SegmentArray], SegmentArray] | None = None

    def make_queries(self, database: SegmentArray) -> SegmentArray:
        """The scenario's query set."""
        if self.queries_fn is not None:
            return self.queries_fn(database)
        return queries_from_database(
            database, self.num_query_trajectories,
            rng=np.random.default_rng(1234))


def scenario_s1_random(scale: float | None = None) -> Scenario:
    """S1: the Random dataset, query set of 100 trajectories x 400 steps,
    d swept from 5 to 50 (Fig. 4)."""
    s = default_scale() if scale is None else scale
    nq = max(2, int(round(100 * s)))
    n_db = max(2, int(round(2500 * s)))
    side = 1000.0 * (n_db / 2500.0) ** (1.0 / 3.0)

    def fresh_queries(_db: SegmentArray) -> SegmentArray:
        # The paper's S1 query set is "a query with 100 trajectories each
        # with 400 timesteps" — fresh walks from the same process, not a
        # database subset.
        from ..core.types import SegmentArray as SA
        from ..data.random_walk import make_random_walks
        return SA.from_trajectories(make_random_walks(
            num_trajectories=nq, num_timesteps=400, box_side=side,
            step_sigma=1.0, start_time_range=(0.0, 100.0),
            rng=np.random.default_rng(77), first_traj_id=1_000_000))

    return Scenario(
        name="S1-random",
        description=("Random: 2,500 random walks x 400 steps (sparse); "
                     "Q = 100 trajectories; d in [5, 50]"),
        make_database=lambda: random_dataset(scale=s),
        num_query_trajectories=nq,
        queries_fn=fresh_queries,
        d_values=(5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0,
                  50.0),
        engine_configs={
            # §V-C: 50 cells/dim, 10,000 bins, v = 4 are the paper's picks.
            # Candidate buffer sized so per-thread slices |U_k| overflow
            # for the biggest-d queries, exercising the redo loop (§IV-A).
            "gpu_spatial": {"cells_per_dim": 50,
                            "candidate_buffer_items":
                                max(150_000, int(5.0e7 * s))},
            "gpu_temporal": {"num_bins": 10_000},
            "gpu_spatiotemporal": {"num_bins": 10_000, "num_subbins": 4},
            "cpu_rtree": {"segments_per_mbb": 4},
        },
        # Result volume scales with |D| x |Q| ~ scale^2; sizing the buffer
        # the same way keeps the paper's relative buffer pressure.
        result_buffer_items=max(50_000, int(5.0e7 * s * s)),
        application_d=(10.0,),
    )


def scenario_s2_merger(scale: float | None = None) -> Scenario:
    """S2: the Merger dataset, 265 query trajectories x 193 steps, d from
    0.001 to 5 (Fig. 5)."""
    s = default_scale() if scale is None else scale
    n_disk = max(64, int(round(65_536 * s)))
    nq = max(2, int(round(265 * s)))
    return Scenario(
        name="S2-merger",
        description=("Merger: 131,072-particle galaxy merger x 193 "
                     "snapshots; Q = 265 trajectories; d in [0.001, 5]"),
        make_database=lambda: merger_dataset(
            cfg=MergerConfig(particles_per_disk=n_disk)),
        num_query_trajectories=nq,
        d_values=(0.001, 0.01, 0.1, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0),
        engine_configs={
            # §V-D: 1,000 bins; v = 16 subbins best for most d.
            "gpu_temporal": {"num_bins": 1_000},
            "gpu_spatiotemporal": {"num_bins": 1_000, "num_subbins": 16},
            "cpu_rtree": {"segments_per_mbb": 4},
        },
        # Sized so the large-d searches need a handful of kernel
        # invocations, as the paper's 5.0e7-item buffer does at full scale
        # (result volume scales with scale^2, see S1).
        result_buffer_items=max(5_000, int(1.0e9 * s * s)),
        application_d=(1.0, 5.0),
    )


def scenario_s3_random_dense(scale: float | None = None) -> Scenario:
    """S3: the Random-dense dataset, 265 query trajectories, d from 0.01
    to 0.09, with the enlarged result buffer (Fig. 6)."""
    s = default_scale() if scale is None else scale
    nq = max(2, int(round(265 * s)))
    return Scenario(
        name="S3-random-dense",
        description=("Random-dense: 65,536 walkers at solar-neighbourhood "
                     "density x 193 steps; Q = 265 trajectories; "
                     "d in [0.01, 0.09]"),
        make_database=lambda: random_dense_dataset(scale=s),
        num_query_trajectories=nq,
        d_values=(0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09),
        engine_configs={
            # §V-E: 1,000 bins; v = 4 subbins; buffer grown 5e7 -> 9.2e7.
            "gpu_temporal": {"num_bins": 1_000},
            "gpu_spatiotemporal": {"num_bins": 1_000, "num_subbins": 4},
            # The paper's CPU-RTree measurably lacks joint spatiotemporal
            # selectivity on this uniform co-extensive dataset (it loses
            # to the GPU at d > 0.02, which a well-packed 4-D tree never
            # would); the 3-D spatial variant reproduces that measured
            # behaviour.  See EXPERIMENTS.md and the T-RTREE ablation,
            # which reports both variants.
            "cpu_rtree": {"segments_per_mbb": 4, "temporal_axis": False},
        },
        # The 9.2e7-item enlarged buffer of §V-E, scale^2-scaled so
        # d = 0.09 still needs the paper's several invocations.
        result_buffer_items=max(2_000, int(1.0e7 * s * s)),
        application_d=(0.02, 0.05),
    )


def all_scenarios(scale: float | None = None) -> list[Scenario]:
    """All three paper scenarios at the given (or default) scale."""
    return [scenario_s1_random(scale), scenario_s2_merger(scale),
            scenario_s3_random_dense(scale)]
