"""Cost-model calibration against the paper's anchor measurements.

The per-operation cycle constants in :mod:`repro.gpu.costmodel` were not
guessed — they are the solution of a small least-squares system anchored
on the response times the paper actually quotes (§V-C/§V-D).  This module
makes that fit reproducible: given anchor observations (a measured time
plus the operation counts the engines would have produced at the paper's
scale), it solves for the cycle costs and reports the residuals.

Anchors used for the shipped constants:

* GPUTemporal, Merger, d = 0.001: 41.75 s (~141k comparisons/thread x
  50,880 threads — pure comparison throughput).
* GPUTemporal vs GPUSpatioTemporal(v=1), Random, d = 50: +12.4 % —
  fixes the gather (indirection) cost relative to a comparison.
* CPU-RTree, Merger, d = 0.001: 9.70 s — fixes the CPU refinement cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.costmodel import CpuCostModel, GpuCostModel
from ..gpu.device import DeviceSpec, TESLA_C2075

__all__ = ["Anchor", "CalibrationResult", "fit_gpu_cycles",
           "fit_cpu_cycles", "verify_calibration", "PAPER_ANCHORS"]


@dataclass(frozen=True)
class Anchor:
    """One observed (time, operation counts) pair.

    Counts are *effective warp-serialized* operations for the GPU (sum
    over warps of max lane work x warp size / concurrent lanes is already
    folded in by using per-thread uniform workloads at paper scale) and
    plain totals for the CPU.
    """

    name: str
    seconds: float
    comparisons: float = 0.0
    gathers: float = 0.0
    atomics: float = 0.0
    node_visits: float = 0.0
    queries: float = 0.0


#: Anchor observations reconstructed from the paper's quoted numbers.
PAPER_ANCHORS: dict[str, Anchor] = {
    # 50,880 threads x ~141k candidates each (25.2M segments / 1,000
    # bins x ~5.6 bins overlapped): the 41.75 s point of §V-D.
    "gpu_temporal_merger_d0.001": Anchor(
        name="gpu_temporal_merger_d0.001", seconds=41.75,
        comparisons=50_880 * 141_000),
    # Same workload through one extra indirection: 41.75 s x 1.124.
    "gpu_st_v1_merger_equiv": Anchor(
        name="gpu_st_v1_merger_equiv", seconds=41.75 * 1.124,
        comparisons=50_880 * 141_000, gathers=50_880 * 141_000),
    # CPU-RTree at the same point: 9.70 s (§V-D), traversal+refinement.
    "cpu_rtree_merger_d0.001": Anchor(
        name="cpu_rtree_merger_d0.001", seconds=9.70,
        comparisons=50_880 * 4_200, node_visits=50_880 * 1_000,
        queries=50_880),
}


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted cycle costs plus per-anchor residuals."""

    cycles: dict[str, float]
    residuals: dict[str, float]  # (model - observed) / observed

    @property
    def max_abs_residual(self) -> float:
        return max((abs(r) for r in self.residuals.values()),
                   default=0.0)


def _gpu_throughput(spec: DeviceSpec) -> float:
    """Lane-seconds available per wall second with converged warps."""
    return spec.concurrent_warps * spec.warp_size * spec.clock_hz \
        / spec.warp_size  # warp-max work units retired per second x lanes


def fit_gpu_cycles(anchors: list[Anchor],
                   spec: DeviceSpec = TESLA_C2075) -> CalibrationResult:
    """Least-squares fit of (comparison, gather) cycle costs.

    With uniform per-thread work, modeled compute time is
    ``(N/warp) * per_thread * cycles / (concurrent_warps * clock)`` =
    ``total_ops * cycles / (concurrent_warps * warp * clock)`` — linear
    in the unknown cycle costs, so ordinary least squares applies.
    """
    denom = spec.concurrent_warps * spec.warp_size * spec.clock_hz
    rows, rhs = [], []
    for a in anchors:
        rows.append([a.comparisons / denom, a.gathers / denom])
        rhs.append(a.seconds)
    coef, *_ = np.linalg.lstsq(np.array(rows), np.array(rhs), rcond=None)
    cycles = {"cycles_per_comparison": float(coef[0]),
              "cycles_per_gather": float(coef[1])}
    model = GpuCostModel(spec=spec, **cycles)
    residuals = {}
    for a in anchors:
        t = (a.comparisons * coef[0] + a.gathers * coef[1]) / denom
        residuals[a.name] = (t - a.seconds) / a.seconds
    return CalibrationResult(cycles=cycles, residuals=residuals)


def fit_cpu_cycles(anchors: list[Anchor],
                   base: CpuCostModel | None = None) -> CalibrationResult:
    """Fit a single refinement/traversal cycle cost (the paper gives one
    usable CPU anchor, so both are tied to the same unknown)."""
    base = base or CpuCostModel()
    spec = base.spec
    throughput = spec.cores * spec.parallel_efficiency * spec.clock_hz
    rows, rhs = [], []
    for a in anchors:
        ops = a.comparisons + a.node_visits
        fixed = a.queries * base.cycles_per_query_overhead / throughput
        rows.append([ops / throughput])
        rhs.append(a.seconds - fixed)
    coef, *_ = np.linalg.lstsq(np.array(rows), np.array(rhs), rcond=None)
    c = float(coef[0])
    residuals = {}
    for a in anchors:
        t = ((a.comparisons + a.node_visits) * c
             + a.queries * base.cycles_per_query_overhead) / throughput
        residuals[a.name] = (t - a.seconds) / a.seconds
    return CalibrationResult(
        cycles={"cycles_per_comparison": c, "cycles_per_node_visit": c},
        residuals=residuals)


def verify_calibration(gpu_model: GpuCostModel | None = None,
                       cpu_model: CpuCostModel | None = None,
                       *, tolerance: float = 0.25) -> dict[str, float]:
    """Check the shipped constants against the paper anchors.

    Returns the per-anchor relative errors; raises if any exceeds
    ``tolerance``.  Run by the test suite so a drive-by constant tweak
    cannot silently break the calibration.
    """
    gpu_model = gpu_model or GpuCostModel()
    cpu_model = cpu_model or CpuCostModel()
    errors: dict[str, float] = {}

    a = PAPER_ANCHORS["gpu_temporal_merger_d0.001"]
    denom = (gpu_model.spec.concurrent_warps * gpu_model.spec.warp_size
             * gpu_model.spec.clock_hz)
    t = a.comparisons * gpu_model.cycles_per_comparison / denom
    errors[a.name] = (t - a.seconds) / a.seconds

    a = PAPER_ANCHORS["gpu_st_v1_merger_equiv"]
    t = (a.comparisons * gpu_model.cycles_per_comparison
         + a.gathers * gpu_model.cycles_per_gather) / denom
    errors[a.name] = (t - a.seconds) / a.seconds

    a = PAPER_ANCHORS["cpu_rtree_merger_d0.001"]
    spec = cpu_model.spec
    thr = spec.cores * spec.parallel_efficiency * spec.clock_hz
    t = (a.comparisons * cpu_model.cycles_per_comparison
         + a.node_visits * cpu_model.cycles_per_node_visit
         + a.queries * cpu_model.cycles_per_query_overhead) / thr
    errors[a.name] = (t - a.seconds) / a.seconds

    bad = {k: v for k, v in errors.items() if abs(v) > tolerance}
    if bad:
        raise AssertionError(f"calibration drift beyond "
                             f"{tolerance:.0%}: {bad}")
    return errors
