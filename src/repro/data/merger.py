"""Galaxy-merger trajectory dataset — substitute for the Barnes dataset.

The paper's *Merger* dataset is a real simulation output obtained from
Josh Barnes: "particle trajectories that simulate the merger of the disks
of two galaxies ... the positions of 131,072 particles over 193 timesteps"
(§V-A).  That file is not redistributable, so we generate an equivalent
with a self-contained **restricted N-body** simulation, the classic
Toomre & Toomre construction:

* each galaxy is a softened point-mass halo plus a rotating disk of
  massless test particles on initially circular orbits;
* the two halos move under their mutual gravity on a near-parabolic
  collision orbit (integrated as a two-body problem);
* every disk particle feels both halos' softened potentials;
* everything is leapfrog-integrated and sampled at 193 uniform snapshots.

Why the substitution preserves what matters (DESIGN.md §2): the indexing
experiments are sensitive to (a) two dense rotating clumps, (b) a close
passage that interpenetrates them and flings tidal tails — producing
strongly time-varying spatial density, heavy result-set skew and large
maximum segment extents near pericenter.  A restricted N-body run shows
all of these; self-gravity of the disks (absent here, present in Barnes'
run) changes the morphology's details, not the distributional properties
the indexes see.

Units are dimensionless with G = 1 (disk radius ~ 10, orbital speeds ~ 1),
matching the paper's Merger query distances of d = 0.001 ... 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import SegmentArray, Trajectory

__all__ = ["MergerConfig", "simulate_merger", "merger_dataset"]


@dataclass(frozen=True)
class MergerConfig:
    """Parameters of the restricted N-body merger run."""

    particles_per_disk: int = 2048
    num_snapshots: int = 193
    halo_mass: float = 100.0      # per galaxy, G = 1
    softening: float = 2.0        # Plummer softening of the halos
    disk_rmin: float = 2.0
    disk_rmax: float = 10.0
    initial_separation: float = 30.0
    impact_parameter: float = 8.0
    #: fraction of the parabolic closing speed; < 1 keeps the pair bound
    #: (standing in for the dynamical friction a full N-body run provides)
    orbit_energy: float = 0.3
    #: total integration time; ~1.5 orbital periods at the disk edge
    t_end: float = 60.0
    #: leapfrog substeps between recorded snapshots
    substeps: int = 8
    seed: int = 3

    def __post_init__(self) -> None:
        if self.particles_per_disk < 1 or self.num_snapshots < 2:
            raise ValueError("need >=1 particle and >=2 snapshots")
        if self.substeps < 1:
            raise ValueError("substeps must be >= 1")


def _plummer_accel(pos: np.ndarray, center: np.ndarray, mass: float,
                   eps: float) -> np.ndarray:
    """Acceleration of test particles at ``pos`` toward a softened point
    mass at ``center`` (Plummer potential, G = 1)."""
    delta = center - pos
    r2 = np.einsum("ij,ij->i", delta, delta) + eps * eps
    return mass * delta / r2[:, None] ** 1.5


def _make_disk(center: np.ndarray, vel: np.ndarray, mass: float,
               cfg: MergerConfig, rng: np.random.Generator,
               tilt: float) -> tuple[np.ndarray, np.ndarray]:
    """Test particles on circular orbits around one halo.

    Radii are drawn with surface density ~ 1/r (uniform in radius), the
    disk is given a small vertical thickness and tilted by ``tilt`` about
    the x axis so the two disks are not coplanar.
    """
    n = cfg.particles_per_disk
    r = rng.uniform(cfg.disk_rmin, cfg.disk_rmax, size=n)
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    z = rng.normal(0.0, 0.05 * r)
    pos = np.stack([r * np.cos(phi), r * np.sin(phi), z], axis=1)
    # Circular speed in the softened potential: v^2 = M r^2 / (r^2+e^2)^1.5
    vc = np.sqrt(mass * r * r / (r * r + cfg.softening ** 2) ** 1.5)
    vel_disk = np.stack([-vc * np.sin(phi), vc * np.cos(phi),
                         np.zeros(n)], axis=1)
    ct, st = np.cos(tilt), np.sin(tilt)
    rot = np.array([[1, 0, 0], [0, ct, -st], [0, st, ct]])
    return pos @ rot.T + center, vel_disk @ rot.T + vel


def simulate_merger(cfg: MergerConfig = MergerConfig()
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Run the merger; returns ``(times, positions)`` with ``positions``
    of shape ``(num_snapshots, 2 * particles_per_disk, 3)``."""
    rng = np.random.default_rng(cfg.seed)
    m, eps = cfg.halo_mass, cfg.softening

    # Two halos on a symmetric incoming orbit in the x-y plane: separated
    # along x, offset by the impact parameter along y, closing at roughly
    # the parabolic speed for the combined mass.
    half_sep = cfg.initial_separation / 2.0
    v_inf = cfg.orbit_energy * np.sqrt(
        2.0 * (2.0 * m) / cfg.initial_separation)
    halo_pos = np.array([[-half_sep, -cfg.impact_parameter / 2.0, 0.0],
                         [half_sep, cfg.impact_parameter / 2.0, 0.0]])
    halo_vel = np.array([[v_inf / 2.0, 0.0, 0.0],
                         [-v_inf / 2.0, 0.0, 0.0]])

    pos1, vel1 = _make_disk(halo_pos[0], halo_vel[0], m, cfg, rng,
                            tilt=0.0)
    pos2, vel2 = _make_disk(halo_pos[1], halo_vel[1], m, cfg, rng,
                            tilt=np.pi / 4.0)
    pos = np.vstack([pos1, pos2])
    vel = np.vstack([vel1, vel2])

    times = np.linspace(0.0, cfg.t_end, cfg.num_snapshots)
    dt = (times[1] - times[0]) / cfg.substeps
    out = np.empty((cfg.num_snapshots, pos.shape[0], 3))
    out[0] = pos

    def particle_accel(p: np.ndarray) -> np.ndarray:
        return (_plummer_accel(p, halo_pos[0], m, eps)
                + _plummer_accel(p, halo_pos[1], m, eps))

    def halo_accel() -> np.ndarray:
        delta = halo_pos[1] - halo_pos[0]
        r2 = delta @ delta + eps * eps
        a = m * delta / r2 ** 1.5
        return np.stack([a, -a])

    acc_p = particle_accel(pos)
    acc_h = halo_accel()
    for snap in range(1, cfg.num_snapshots):
        for _ in range(cfg.substeps):
            # Kick-drift-kick leapfrog for halos and test particles alike.
            vel += 0.5 * dt * acc_p
            halo_vel += 0.5 * dt * acc_h
            pos += dt * vel
            halo_pos += dt * halo_vel
            acc_p = particle_accel(pos)
            acc_h = halo_accel()
            vel += 0.5 * dt * acc_p
            halo_vel += 0.5 * dt * acc_h
        out[snap] = pos
    return times, out


def merger_dataset(*, scale: float = 1.0,
                   cfg: MergerConfig | None = None) -> SegmentArray:
    """The Merger-equivalent dataset as a segment database.

    At scale = 1 this produces 2 x 65,536 particles x 193 snapshots =
    25,165,824 segments, the paper's full size; the default benchmark
    scale is far smaller (see :mod:`repro.experiments.scenarios`).
    """
    if cfg is None:
        n = max(1, int(round(65536 * scale)))
        cfg = MergerConfig(particles_per_disk=n)
    times, positions = simulate_merger(cfg)
    num_particles = positions.shape[1]
    trajs = [Trajectory(pid, times, positions[:, pid, :])
             for pid in range(num_particles)]
    return SegmentArray.from_trajectories(trajs)
