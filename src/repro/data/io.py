"""Dataset persistence: SegmentArray <-> compressed ``.npz`` files.

Generating the Merger-equivalent dataset involves an N-body integration;
experiments cache the generated databases on disk so sweeps over query
distance re-load instead of re-simulating.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np

from ..core.types import SegmentArray

__all__ = ["save_segments", "load_segments", "cached_dataset"]

_FIELDS = ("xs", "ys", "zs", "ts", "xe", "ye", "ze", "te",
           "traj_ids", "seg_ids")


def save_segments(path: str | os.PathLike,
                  segments: SegmentArray) -> Path:
    """Write a segment database to ``path`` (npz, compressed).

    The write is atomic (tmp file + ``os.replace``): a reader — or a
    restart after a crash mid-save — sees either the previous complete
    file or the new complete file, never a truncated archive.  Returns
    the final path (numpy's ``.npz`` suffix appended if absent).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    final = (path if path.name.endswith(".npz")
             else path.with_name(path.name + ".npz"))
    buf = io.BytesIO()
    np.savez_compressed(buf, **{f: getattr(segments, f)
                                for f in _FIELDS})
    tmp = final.with_name(f".tmp-{os.getpid()}-{final.name}")
    with open(tmp, "wb") as fh:
        fh.write(buf.getvalue())
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    return final


def load_segments(path: str | os.PathLike) -> SegmentArray:
    """Load a segment database written by :func:`save_segments`.

    Accepts anything path-like, exactly like :func:`save_segments` —
    a ``save_segments`` return value round-trips unchanged.
    """
    path = Path(path)
    with np.load(path) as data:
        missing = [f for f in _FIELDS if f not in data]
        if missing:
            raise ValueError(f"{path}: not a segment database "
                             f"(missing {missing})")
        return SegmentArray(*(data[f] for f in _FIELDS))


def cached_dataset(path: str | os.PathLike, generate) -> SegmentArray:
    """Load ``path`` if present, else call ``generate()`` and cache it.

    ``generate`` is a zero-argument callable returning a SegmentArray.
    """
    path = Path(path)
    if path.exists():
        return load_segments(path)
    segments = generate()
    save_segments(path, segments)
    return segments
