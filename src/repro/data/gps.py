"""GPS-style urban vehicle trajectories on a grid road network.

The paper's introduction motivates trajectory databases with GPS and GIS
workloads alongside the astrophysics driver.  This generator produces
that flavour of data: vehicles on a Manhattan street grid, repeatedly
picking a random destination intersection and driving there along an
L-shaped (axis-aligned) route at constant speed, sampled at a fixed GPS
period.

The resulting databases stress the indexes differently from the random
walks: segments are axis-aligned (degenerate MBBs in two dimensions),
many vehicles share road geometry (heavy spatial duplication in the FSG
lookup array), and proximity events are long (vehicles following the
same street), exercising interval merging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import SegmentArray, Trajectory

__all__ = ["CityConfig", "gps_dataset"]


@dataclass(frozen=True)
class CityConfig:
    """Grid-city parameters."""

    num_vehicles: int = 200
    blocks: int = 10           # intersections per side = blocks + 1
    block_size: float = 100.0  # metres
    speed: float = 10.0        # metres / second
    duration: float = 600.0    # seconds of driving per vehicle
    sample_period: float = 5.0  # GPS fix interval, seconds
    seed: int = 11

    def __post_init__(self) -> None:
        if (self.num_vehicles < 1 or self.blocks < 1
                or self.block_size <= 0 or self.speed <= 0
                or self.duration <= self.sample_period
                or self.sample_period <= 0):
            raise ValueError("invalid city configuration")


def _drive(cfg: CityConfig, rng: np.random.Generator) -> np.ndarray:
    """One vehicle's position at every sample instant; shape (k, 3).

    The vehicle alternates x-leg-then-y-leg routes between random
    intersections; z is 0 (a flat city), making the data effectively 2-D
    — a property the paper notes real FSG work targeted.
    """
    times = np.arange(0.0, cfg.duration + 1e-9, cfg.sample_period)
    pos = np.empty((times.shape[0], 3))
    n_i = cfg.blocks + 1
    here = rng.integers(0, n_i, 2).astype(np.float64) * cfg.block_size
    target = here.copy()
    t_now = 0.0
    idx = 0
    cur = here.copy()
    for k, t in enumerate(times):
        while t_now < t:
            if np.allclose(cur, target):
                target = rng.integers(0, n_i, 2).astype(np.float64) \
                    * cfg.block_size
                continue
            # Drive the x leg first, then the y leg.
            axis = 0 if cur[0] != target[0] else 1
            leg = target[axis] - cur[axis]
            leg_time = abs(leg) / cfg.speed
            step = min(leg_time, t - t_now)
            cur[axis] += np.sign(leg) * cfg.speed * step
            t_now += step
            if step == 0.0:
                break
        pos[k, 0], pos[k, 1], pos[k, 2] = cur[0], cur[1], 0.0
        idx = k
    return pos[:idx + 1]


def gps_dataset(cfg: CityConfig = CityConfig()) -> SegmentArray:
    """The vehicle-trajectory database for the configured city."""
    rng = np.random.default_rng(cfg.seed)
    times = np.arange(0.0, cfg.duration + 1e-9, cfg.sample_period)
    trajs = []
    for vid in range(cfg.num_vehicles):
        pos = _drive(cfg, rng)
        trajs.append(Trajectory(vid, times[:pos.shape[0]], pos))
    return SegmentArray.from_trajectories(trajs)
