"""Query-set construction (paper §V-B).

The paper's query sets are trajectory subsets matching the dataset's
structure: "a query set with 265 trajectories each with 193 timesteps for
a total of 50,880 query segments".  We support both drawing query
trajectories from the database itself (the astrophysics use case — every
star is queried against the rest) and generating fresh ones from the same
distribution.
"""

from __future__ import annotations

import numpy as np

from ..core.types import SegmentArray

__all__ = ["queries_from_database", "query_trajectory_ids"]


def query_trajectory_ids(database: SegmentArray, num_trajectories: int,
                         rng: np.random.Generator | None = None
                         ) -> np.ndarray:
    """Pick ``num_trajectories`` distinct trajectory ids from the database."""
    ids = np.unique(database.traj_ids)
    if num_trajectories > ids.shape[0]:
        raise ValueError(
            f"requested {num_trajectories} query trajectories but the "
            f"database holds only {ids.shape[0]}")
    rng = rng or np.random.default_rng(17)
    return np.sort(rng.choice(ids, size=num_trajectories, replace=False))


def queries_from_database(database: SegmentArray, num_trajectories: int,
                          rng: np.random.Generator | None = None
                          ) -> SegmentArray:
    """Extract a query set of whole trajectories from the database.

    The returned SegmentArray keeps the original segment and trajectory
    ids, so ``exclude_same_trajectory=True`` searches behave correctly
    (a star is never reported near itself).
    """
    chosen = query_trajectory_ids(database, num_trajectories, rng)
    mask = np.isin(database.traj_ids, chosen)
    return database.take(np.flatnonzero(mask))
