"""Synthetic random-walk trajectory datasets (paper §V-A).

Two of the paper's three datasets are random walks:

* **Random** — "2,500 trajectories generated via random walks over 400
  timesteps ... trajectory start times are sampled from a uniform
  distribution over the [0,100] interval" — a small, *sparse* dataset.
* **Random-dense** — same construction, but sized to match the measured
  stellar number density of the solar neighbourhood (Reid et al.:
  n = 0.112 stars/pc^3): 65,536 particles over 193 timesteps inside a
  cubic volume of 65,536 / 0.112 = 585,142 pc^3 (a cube of ~83.6 pc),
  all trajectories temporally co-extensive.

Both generators take a ``scale`` factor so test/benchmark runs can use
proportionally smaller instances while preserving the *density* and the
temporal structure that drive index behaviour (see DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from ..core.types import SegmentArray, Trajectory

__all__ = ["make_random_walks", "random_dataset", "random_dense_dataset",
           "REID_STELLAR_DENSITY"]

#: Solar-neighbourhood stellar number density (stars per cubic parsec),
#: Reid et al., used by the paper to size Random-dense.
REID_STELLAR_DENSITY = 0.112


def make_random_walks(
    *,
    num_trajectories: int,
    num_timesteps: int,
    box_side: float,
    step_sigma: float,
    start_time_range: tuple[float, float] = (0.0, 0.0),
    dt: float = 1.0,
    rng: np.random.Generator | None = None,
    first_traj_id: int = 0,
) -> list[Trajectory]:
    """Generate Gaussian random-walk trajectories in a cubic box.

    Walks start uniformly inside the box and take ``num_timesteps - 1``
    steps of N(0, step_sigma) per axis; positions are *not* clipped (a few
    walkers drift out, as physical stars would leave any survey volume).
    Start times are uniform over ``start_time_range`` and observations are
    ``dt`` apart.
    """
    if num_trajectories <= 0 or num_timesteps < 2:
        raise ValueError("need at least one trajectory of two points")
    rng = rng or np.random.default_rng(0)
    t0_lo, t0_hi = start_time_range
    trajs: list[Trajectory] = []
    for k in range(num_trajectories):
        start = rng.uniform(0.0, box_side, size=3)
        steps = rng.normal(0.0, step_sigma, size=(num_timesteps - 1, 3))
        pos = np.vstack([start, start + np.cumsum(steps, axis=0)])
        t0 = rng.uniform(t0_lo, t0_hi) if t0_hi > t0_lo else t0_lo
        times = t0 + dt * np.arange(num_timesteps, dtype=np.float64)
        trajs.append(Trajectory(first_traj_id + k, times, pos))
    return trajs


def random_dataset(*, scale: float = 1.0,
                   rng: np.random.Generator | None = None
                   ) -> SegmentArray:
    """The paper's *Random* dataset (997,500 entry segments at scale=1).

    2,500 trajectories x 400 timesteps, start times ~ U[0, 100].  The
    paper does not state the box size or step length; we pick a 1,000-unit
    box with unit steps, which makes the dataset *sparse* relative to the
    query distances the paper sweeps (d from 5 to 50) — the property §V-C
    depends on.  ``scale`` shrinks the trajectory count and the box volume
    together, preserving the trajectory *density*: the expected number of
    neighbours within an absolute distance d of a query — the quantity the
    whole d sweep probes — is then scale-invariant.
    """
    n = max(2, int(round(2500 * scale)))
    side = 1000.0 * (n / 2500.0) ** (1.0 / 3.0)
    return SegmentArray.from_trajectories(make_random_walks(
        num_trajectories=n,
        num_timesteps=400,
        box_side=side,
        step_sigma=1.0,
        start_time_range=(0.0, 100.0),
        rng=rng or np.random.default_rng(1),
    ))


def random_dense_dataset(*, scale: float = 1.0,
                         rng: np.random.Generator | None = None
                         ) -> SegmentArray:
    """The paper's *Random-dense* dataset (12,582,912 segments at scale=1).

    65,536 particles x 193 timesteps at the Reid et al. density: the cube
    has physical volume N / 0.112 = 585,142 pc^3 (side ~83.6 pc), stored
    in *normalized coordinates* (unit cube).  The normalization is forced
    by the paper's own numbers: its Fig. 6 query distances (d = 0.01 to
    0.09) produce ~1e7-1e8 result items, which at 0.112 stars/pc^3 is
    only possible if d is a fraction of the box side, not of a parsec
    (0.09 box units ~ 7.5 pc).  All trajectories are temporally
    co-extensive (one snapshot grid, like Merger).

    ``scale`` shrinks the particle count with the box fixed at unit side,
    which scales per-query candidate and result counts proportionally and
    preserves every response-time *shape* versus d.
    """
    n = max(2, int(round(65536 * scale)))
    # Step length 2 % of the box (a walker crosses ~a quarter of the box
    # over the run).  Segment extents then bound the admissible subbin
    # count near the paper's v <= 4 for this dataset, and the d-expanded
    # query windows straddle subbin boundaries at the larger d values —
    # the mechanism behind §V-E's rising default-to-temporal rate.
    return SegmentArray.from_trajectories(make_random_walks(
        num_trajectories=n,
        num_timesteps=193,
        box_side=1.0,
        step_sigma=0.02,
        start_time_range=(0.0, 0.0),
        rng=rng or np.random.default_rng(2),
    ))
