"""Moving-objects workload: fleets of vehicles streamed epoch by epoch.

The standing-query harness needs the *streaming* shape the paper's
static datasets lack: objects that keep moving after ingestion, arrive,
and churn out.  :class:`MovingObjectsWorkload` models fleets of vehicles
in a box — fleet members share a slowly-wandering heading, so a fleet
moves as a loose convoy (spatial locality that exercises the candidate
envelopes) — and emits one :class:`EpochDelta` per call: the new
observation segments for every active vehicle, plus which trajectory
ids arrived and which departed.

Guarantees the tests pin:

* **Seed-determinism** — two workloads built with the same config and
  seed produce byte-identical epoch streams (`tests/test_moving.py`
  compares raw array bytes).  All randomness flows through one
  ``default_rng(seed)`` drawn in a fixed order (departures, arrivals,
  headings, then motion, vehicles sorted by id).
* **Continuity** — a vehicle's epoch chunk starts at its previous
  endpoint, so the concatenation of its per-epoch segments is one
  gap-free trajectory on a shared ``dt`` time grid.
* **Id hygiene** — trajectory ids are never reused, and a departed
  vehicle never emits again; a consumer can therefore
  ``delete_trajectory`` departures without ever tripping the
  tombstone-reuse rule.  Departures are suppressed while fewer than
  ``min_active`` vehicles remain, so a live database never empties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.types import SegmentArray, Trajectory

__all__ = ["EpochDelta", "FleetConfig", "MovingObjectsWorkload"]


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the streaming workload.

    ``arrival_rate`` is per fleet per epoch (expected new vehicles per
    epoch = ``num_fleets * arrival_rate``); ``departure_rate`` is per
    active vehicle per epoch.  ``epoch_steps`` observations are emitted
    per vehicle per epoch (``epoch_steps`` segments, since each chunk
    starts at the previous endpoint).
    """

    num_fleets: int = 3
    vehicles_per_fleet: int = 4
    epoch_steps: int = 4
    box_side: float = 40.0
    #: per-step displacement along the fleet heading.
    speed: float = 1.0
    #: per-step isotropic jitter around the fleet motion.
    jitter: float = 0.3
    #: how strongly a fleet keeps its heading between epochs (1 = rigid).
    heading_persistence: float = 0.85
    arrival_rate: float = 0.2
    departure_rate: float = 0.08
    dt: float = 1.0
    #: departures are suppressed below this many active vehicles.
    min_active: int = 2

    def __post_init__(self) -> None:
        if self.num_fleets < 1 or self.vehicles_per_fleet < 1:
            raise ValueError("need at least one fleet of one vehicle")
        if self.epoch_steps < 1:
            raise ValueError("epoch_steps must be >= 1")
        if not (0.0 <= self.arrival_rate <= 1.0) \
                or not (0.0 <= self.departure_rate <= 1.0):
            raise ValueError("churn rates are probabilities in [0, 1]")
        if self.min_active < 2:
            raise ValueError("min_active must be >= 2 (a live database "
                             "must keep a deletable margin)")


@dataclass(frozen=True)
class EpochDelta:
    """What one epoch of the stream contains.

    ``segments`` covers every vehicle active this epoch (arrivals
    included, departures excluded).  The consumer applies it as one
    append; ``departures`` are the trajectory ids to delete.
    """

    index: int
    arrivals: tuple[int, ...]
    departures: tuple[int, ...]
    segments: SegmentArray
    #: trajectory ids active (emitting) this epoch, sorted.
    active: tuple[int, ...]

    @property
    def t_range(self) -> tuple[float, float]:
        return (float(self.segments.ts.min()),
                float(self.segments.te.max()))


@dataclass
class _Vehicle:
    fleet: int
    pos: np.ndarray
    t: float


@dataclass
class MovingObjectsWorkload:
    """Seed-deterministic epoch stream (see module docstring).

    The initial population (``num_fleets * vehicles_per_fleet``
    vehicles) is created up front; the first :meth:`next_epoch` emits
    their first observations starting at t=0.
    """

    config: FleetConfig = field(default_factory=FleetConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        cfg = self.config
        self._rng = np.random.default_rng(self.seed)
        self._next_traj_id = 0
        self._epoch_index = 0
        self._headings = [self._unit(self._rng.normal(size=3))
                         for _ in range(cfg.num_fleets)]
        self._vehicles: dict[int, _Vehicle] = {}
        for f in range(cfg.num_fleets):
            for _ in range(cfg.vehicles_per_fleet):
                self._spawn(f)

    @staticmethod
    def _unit(v: np.ndarray) -> np.ndarray:
        n = float(np.linalg.norm(v))
        return v / n if n > 0 else np.array([1.0, 0.0, 0.0])

    def _spawn(self, fleet: int) -> int:
        tid = self._next_traj_id
        self._next_traj_id += 1
        pos = self._rng.uniform(0.0, self.config.box_side, size=3)
        self._vehicles[tid] = _Vehicle(
            fleet=fleet, pos=pos,
            t=self._epoch_index * self.config.epoch_steps
            * self.config.dt)
        return tid

    @property
    def active_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._vehicles))

    @property
    def epoch_index(self) -> int:
        return self._epoch_index

    def next_epoch(self) -> EpochDelta:
        """Advance every active vehicle by one epoch of observations.

        Draw order is fixed (departures → arrivals → headings → motion,
        vehicles by ascending id) so the stream is a pure function of
        ``(config, seed)``.
        """
        cfg = self.config
        rng = self._rng
        departures: list[int] = []
        for tid in sorted(self._vehicles):
            if len(self._vehicles) - len(departures) <= cfg.min_active:
                break
            if rng.random() < cfg.departure_rate:
                departures.append(tid)
        for tid in departures:
            del self._vehicles[tid]
        arrivals: list[int] = []
        for f in range(cfg.num_fleets):
            if rng.random() < cfg.arrival_rate:
                arrivals.append(self._spawn(f))
        for f in range(cfg.num_fleets):
            drift = self._unit(rng.normal(size=3))
            self._headings[f] = self._unit(
                cfg.heading_persistence * self._headings[f]
                + (1.0 - cfg.heading_persistence) * drift)
        trajs: list[Trajectory] = []
        for tid in sorted(self._vehicles):
            v = self._vehicles[tid]
            steps = (cfg.speed * self._headings[v.fleet]
                     + rng.normal(0.0, cfg.jitter,
                                  size=(cfg.epoch_steps, 3)))
            pts = np.vstack([v.pos, v.pos + np.cumsum(steps, axis=0)])
            times = v.t + cfg.dt * np.arange(cfg.epoch_steps + 1,
                                             dtype=np.float64)
            trajs.append(Trajectory(tid, times, pts))
            v.pos = pts[-1]
            v.t = float(times[-1])
        self._epoch_index += 1
        return EpochDelta(
            index=self._epoch_index - 1,
            arrivals=tuple(arrivals),
            departures=tuple(departures),
            segments=SegmentArray.from_trajectories(trajs),
            active=tuple(sorted(self._vehicles)))

    def epochs(self, n: int) -> list[EpochDelta]:
        """The next ``n`` epochs as a list."""
        return [self.next_epoch() for _ in range(n)]
