"""Dataset generators and IO: Random, Random-dense, the Merger-equivalent
restricted N-body simulation, and query-set construction."""

from .gps import CityConfig, gps_dataset
from .io import cached_dataset, load_segments, save_segments
from .merger import MergerConfig, merger_dataset, simulate_merger
from .moving import EpochDelta, FleetConfig, MovingObjectsWorkload
from .queries import queries_from_database, query_trajectory_ids
from .random_walk import (REID_STELLAR_DENSITY, make_random_walks,
                          random_dataset, random_dense_dataset)

__all__ = [
    "CityConfig", "EpochDelta", "FleetConfig", "MergerConfig",
    "MovingObjectsWorkload", "REID_STELLAR_DENSITY",
    "cached_dataset", "gps_dataset", "load_segments",
    "make_random_walks", "merger_dataset", "queries_from_database",
    "query_trajectory_ids", "random_dataset", "random_dense_dataset",
    "save_segments", "simulate_merger",
]
