"""The batched query service: device pool, engine cache, adaptive
selection, resilient serving.

:class:`QueryService` is the serving-layer composition of everything the
repository already knows how to do:

* **Index caching** — engines are built once per (database, method,
  parameters) and reused across batches (:mod:`repro.service.cache`);
  the index build is the paper's offline phase and is excluded from
  modeled response time, but its wall cost is reported per request.
* **Adaptive engine selection** — ``method="auto"`` asks the cost-based
  planner (:func:`repro.core.planner.plan_search`) to rank engines for
  the batch's workload and uses the winner.
* **Device pool** — a :class:`DevicePool` of virtual GPUs with modeled
  per-lane clocks: concurrent batches queue on the lane their engine is
  homed on, and a request's ``queue_wait_s`` is the modeled time it
  spent waiting for its device.  ``shards > 1`` partitions the database
  across lanes (reusing :mod:`repro.distributed.partition`) and runs the
  shards concurrently.

And the failure-handling layer (see ``docs/ARCHITECTURE.md``,
*Failure model & resilience*):

* **Failover ladder** — when the requested/planned engine fails (index
  build or search, including faults injected by
  :mod:`repro.faults`), the request is re-planned down a deterministic
  ladder: the other GPU engines, then ``cpu_rtree``, then the
  index-free ``cpu_scan``.  The response reports ``degraded=True``,
  the failing rung, and the hop count.
* **Circuit breakers** — consecutive failures of one engine open a
  per-engine :class:`~repro.service.resilience.CircuitBreaker`;
  while open, requests skip that rung instead of paying the failure
  again, and a half-open probe re-admits the engine once it recovers.
* **Lane health** — consecutive failures on one device lane quarantine
  it: its cached engines are invalidated (indexes on a dead card are
  gone), new builds avoid it, and after the quarantine window it is
  probationally re-admitted.
* **Deadlines** — ``request.deadline_s`` opens a
  :func:`~repro.engines.base.deadline_scope` so one wall-clock budget
  bounds the engine retry loop *and* the failover ladder; an exhausted
  budget yields a typed ``deadline_exceeded`` rejection.
* **Load shedding** — when every usable lane's modeled backlog exceeds
  ``max_queue_delay_s``, the request is rejected up front with a typed
  ``overloaded`` response instead of quietly queueing.
* **Verified failover** — a deterministic sample of failover responses
  is cross-checked against a fresh ``cpu_scan`` over the full database;
  mismatches are counted and logged (none are expected: degraded must
  mean *slower*, never *wrong*).

Scheduling uses the *modeled* clock, consistent with the rest of the
repository: wall time measures the simulator, modeled time measures the
machine the paper ran on.  Retry backoff and recovery windows live on
the same modeled clock — chaos tests run at full wall speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.planner import plan_search
from ..core.result import ResultSet
from ..core.search import SearchOutcome
from ..core.types import SegmentArray
from ..distributed.partition import partition_database
from ..durability import DurabilityManager, DurabilityPolicy
from ..engines.base import (Deadline, DeadlineExceededError, GpuEngineBase,
                            RetryPolicy, deadline_scope)
from ..engines.config import ConfigError
from ..engines.registry import available, get_engine
from ..engines.cpu_scan import CpuScanEngine
from ..gpu.costmodel import CostBreakdown, CpuCostModel, GpuCostModel
from ..gpu.device import DeviceSpec, TESLA_C2075, VirtualGPU
from ..gpu.profiler import CpuSearchProfile, RequestMetrics, SearchProfile
from ..ingest import (CompactionPolicy, CompactionResult, IngestError,
                      IngestReceipt, Snapshot, VersionedDatabase,
                      as_segments, overlay_search)
from ..obs import Telemetry
from ..standing import (StandingPolicy, StandingQueryManager,
                        StandingStore, Subscription)
from .cache import (CacheEntry, EngineCache, canonical_params,
                    database_fingerprint)
from .requests import SearchRequest, SearchResponse
from .resilience import CircuitBreaker, LaneHealth, NoUsableLaneError

__all__ = ["DeviceLane", "DevicePool", "QueryService"]

#: planner knobs a request may override through ``params`` hints.
_PLANNER_HINTS = ("num_bins", "num_subbins", "cells_per_dim",
                  "segments_per_mbb")


@dataclass
class DeviceLane:
    """One device's modeled timeline, residency, and health."""

    index: int
    #: modeled time at which the lane next becomes free.
    busy_until: float = 0.0
    #: device bytes held by engines homed on this lane.
    resident_bytes: int = 0
    #: quarantine/probation state machine (modeled clock).
    health: LaneHealth = field(default_factory=LaneHealth)


class DevicePool:
    """A pool of identical virtual GPUs plus one host lane.

    Engines are *homed* on the least-loaded usable lane when built and
    stay there (indexes are device-resident; migrating one would be a
    rebuild).  Each engine still owns a private :class:`VirtualGPU` —
    real devices isolate contexts, and sharing one memory manager would
    collide allocation names — so a lane models the *timeline and
    capacity* of a card, not a shared address space.

    Each lane also carries a
    :class:`~repro.service.resilience.LaneHealth`: consecutive failures
    quarantine the lane for ``quarantine_s`` modeled seconds (doubling
    on repeat offenses), after which it is probationally re-admitted.
    The host lane is never quarantined — CPU engines are the fallback
    of last resort and must stay reachable.
    """

    #: lane index used for CPU engines (host execution).
    HOST_LANE = -1

    def __init__(self, num_devices: int = 1,
                 spec: DeviceSpec = TESLA_C2075, *,
                 failure_threshold: int = 3,
                 quarantine_s: float = 60.0) -> None:
        if num_devices < 1:
            raise ValueError("pool needs at least one device")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if quarantine_s <= 0:
            raise ValueError("quarantine_s must be positive")
        self.spec = spec
        self.failure_threshold = failure_threshold
        self.quarantine_s = quarantine_s
        self.lanes = [DeviceLane(i) for i in range(num_devices)]
        self.host = DeviceLane(self.HOST_LANE)

    @property
    def num_devices(self) -> int:
        return len(self.lanes)

    @property
    def total_mem_bytes(self) -> int:
        return self.num_devices * self.spec.global_mem_bytes

    def lane(self, index: int) -> DeviceLane:
        return self.host if index == self.HOST_LANE else self.lanes[index]

    def usable_lanes(self) -> list[DeviceLane]:
        """GPU lanes currently accepting work (healthy or probation)."""
        return [lane for lane in self.lanes if lane.health.usable]

    def home_for(self, nbytes: int) -> DeviceLane:
        """Pick the usable lane with the most free memory for a new
        engine; raises :class:`NoUsableLaneError` when every GPU lane
        is quarantined (the failover ladder then moves on to CPU)."""
        usable = self.usable_lanes()
        if not usable:
            raise NoUsableLaneError(
                f"all {self.num_devices} GPU lanes are quarantined")
        return min(usable, key=lambda lane: lane.resident_bytes)

    def place(self, lane_index: int, nbytes: int) -> None:
        self.lane(lane_index).resident_bytes += nbytes

    def release(self, lane_index: int, nbytes: int) -> None:
        self.lane(lane_index).resident_bytes -= nbytes

    def busiest_until(self) -> float:
        """Latest modeled busy_until across all lanes (incl. host)."""
        return max(self.host.busy_until,
                   *(lane.busy_until for lane in self.lanes))

    # -- health ------------------------------------------------------------------

    def refresh_health(self, now: float) -> list[int]:
        """Expire quarantine windows; returns lanes that just entered
        probation."""
        return [lane.index for lane in self.lanes
                if lane.health.refresh(now)]

    def record_lane_failure(self, index: int, now: float) -> bool:
        """Charge one failure to a lane; True when it was quarantined.
        The host lane absorbs failures without ever quarantining."""
        if index == self.HOST_LANE:
            return False
        return self.lanes[index].health.record_failure(
            now, threshold=self.failure_threshold,
            quarantine_s=self.quarantine_s)

    def record_lane_success(self, index: int) -> bool:
        """Credit one served request to a lane; True when this
        re-admitted a probational lane."""
        if index == self.HOST_LANE:
            return False
        return self.lanes[index].health.record_success()


@dataclass
class _ShardRun:
    """One shard's contribution to a (possibly sharded) execution."""

    entry: CacheEntry
    results: ResultSet
    profile: SearchProfile | CpuSearchProfile
    modeled: CostBreakdown


class QueryService:
    """Batched distance-threshold query service over one database.

    Parameters
    ----------
    database:
        The entry-segment database all requests search against.
    num_devices:
        Size of the simulated GPU pool.
    spec:
        Device model for every pool GPU (default: the paper's C2075).
    gpu_model, cpu_model:
        Cost models used to price profiles.
    cache_bytes:
        Engine-cache budget; defaults to the pool's aggregate device
        memory.
    planner_sample:
        Query-sample size handed to the planner for ``method="auto"``.
    retry:
        Overflow retry policy installed into every GPU engine the
        service builds (None = the engines' default policy).
    telemetry:
        The :class:`~repro.obs.Telemetry` hub the service records
        into (None = a fresh enabled hub).  Pass
        ``Telemetry(enabled=False)`` to switch instrumentation off.
    faults:
        A :class:`~repro.faults.FaultInjector` wired into every
        :class:`VirtualGPU` the service builds (None = no injection).
        Chaos tests use this; production-shaped runs leave it unset.
    max_queue_delay_s:
        Load-shedding threshold: when every usable lane's modeled
        backlog exceeds this, reject with ``status="overloaded"``
        instead of queueing.  None (default) disables shedding.
    breaker_threshold, breaker_reset_s:
        Per-engine circuit breaker tuning (consecutive failures to
        open; modeled seconds before a half-open probe).
    lane_failure_threshold, lane_quarantine_s:
        Per-lane health tuning (consecutive failures to quarantine;
        base modeled quarantine window, doubling per repeat offense).
    crosscheck_every:
        Cross-check every Nth failover response against ``cpu_scan``
        ground truth (0 disables the sampling).
    """

    FALLBACK_METHOD = "cpu_scan"
    #: GPU rungs of the failover ladder, in preference order.
    GPU_LADDER = ("gpu_temporal", "gpu_spatiotemporal", "gpu_spatial")
    #: CPU rungs: the indexed host engine, then the index-free scan.
    CPU_LADDER = ("cpu_rtree", "cpu_scan")

    def __init__(self, database: SegmentArray | VersionedDatabase, *,
                 num_devices: int = 1,
                 spec: DeviceSpec = TESLA_C2075,
                 gpu_model: GpuCostModel | None = None,
                 cpu_model: CpuCostModel | None = None,
                 cache_bytes: int | None = None,
                 planner_sample: int = 32,
                 retry: RetryPolicy | None = None,
                 telemetry: Telemetry | None = None,
                 faults=None,
                 max_queue_delay_s: float | None = None,
                 breaker_threshold: int = 3,
                 breaker_reset_s: float = 30.0,
                 lane_failure_threshold: int = 3,
                 lane_quarantine_s: float = 60.0,
                 crosscheck_every: int = 8,
                 compaction: CompactionPolicy | None = None,
                 auto_compact: bool = True,
                 durability_dir=None,
                 durability: DurabilityPolicy | None = None,
                 durability_kill=None,
                 standing: StandingPolicy | None = None) -> None:
        if max_queue_delay_s is not None and max_queue_delay_s < 0:
            raise ValueError("max_queue_delay_s must be >= 0 (or None)")
        if crosscheck_every < 0:
            raise ValueError("crosscheck_every must be >= 0")
        if durability is not None and durability_dir is None:
            raise ValueError("a DurabilityPolicy needs a "
                             "durability_dir to apply to")
        #: the live, versioned database: appends/tombstones land in its
        #: delta; the engines index its (stable) base.
        if isinstance(database, VersionedDatabase):
            # Pre-built (typically by QueryService.recover); adopted
            # as-is so the recovered epoch/counters survive.
            self.versioned = database
            if compaction is not None:
                self.versioned.policy = compaction
        else:
            if len(database) == 0:
                raise ValueError("service needs a non-empty database")
            self.versioned = VersionedDatabase(database,
                                               policy=compaction)
        self.auto_compact = auto_compact
        self.pool = DevicePool(num_devices, spec,
                               failure_threshold=lane_failure_threshold,
                               quarantine_s=lane_quarantine_s)
        self.gpu_model = gpu_model or GpuCostModel(spec=spec)
        self.cpu_model = cpu_model or CpuCostModel()
        self.cache = EngineCache(
            cache_bytes if cache_bytes is not None
            else self.pool.total_mem_bytes,
            on_evict=self._on_evict)
        self.planner_sample = planner_sample
        self.retry = retry
        self.faults = faults
        self.max_queue_delay_s = max_queue_delay_s
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.crosscheck_every = crosscheck_every
        #: the unified telemetry hub: metrics registry, tracer,
        #: structured event log, slow-query log.
        self.telemetry = telemetry or Telemetry()
        self._clock = 0.0
        self._num_requests = 0
        self._degradations = 0
        self._shed = 0
        self._failover_serves = 0
        self._crosschecks = 0
        #: request ids whose failover response disagreed with cpu_scan
        #: ground truth (expected to stay empty).
        self.crosscheck_mismatches: list[str] = []
        self._breakers: dict[str, CircuitBreaker] = {}
        #: last gauged breaker/lane states, for transition counters.
        self._breaker_states: dict[str, str] = {}
        self._lane_states: dict[int, str] = {}
        self._truth_cache: tuple[int, CpuScanEngine] | None = None
        self._shard_cache: dict[tuple, list[SegmentArray]] = {}
        self._fp_version = -1
        self._fp = ""
        self._prewarm_failures = 0
        #: write-ahead logging + checkpoints (None = memory-only).
        self.durability: DurabilityManager | None = None
        #: the last RecoveryResult (set by :meth:`recover`).
        self.last_recovery = None
        self._shut_down = False
        if durability_dir is not None:
            manager = DurabilityManager(durability_dir,
                                        policy=durability,
                                        kill=durability_kill)
            with self.telemetry.activate():
                if isinstance(database, VersionedDatabase):
                    # A recovered database re-attaches to its own
                    # directory: the state on disk *is* this database,
                    # so no bootstrap checkpoint is needed.
                    if not manager.has_state:
                        manager.attach(self.versioned)
                else:
                    manager.attach(self.versioned)
            self.durability = manager
        #: continuous subscriptions maintained delta-aware per epoch
        #: (durable alongside the WAL when the service is durable).
        self.standing = StandingQueryManager(
            policy=standing,
            store=(StandingStore(self.durability.directory / "standing")
                   if self.durability is not None else None),
            telemetry=self.telemetry)

    @property
    def database(self) -> SegmentArray:
        """The current *base* — what the cached indexes are built over.

        Appends live in the delta until compaction folds them in; use
        ``current_snapshot().logical()`` for the full logical database.
        """
        return self.versioned.base

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the current base (cache-key root).

        Stable across appends and deletes — only a compaction, which
        physically rewrites the base, changes it.  That stability is
        what lets a warm base engine survive ingestion.
        """
        if self._fp_version != self.versioned.base_version:
            self._fp = database_fingerprint(self.versioned.base)
            self._fp_version = self.versioned.base_version
        return self._fp

    @property
    def events(self) -> list[dict]:
        """Degradation and eviction records, oldest first.

        Backed by the structured event log (each entry is a typed,
        timestamped :class:`~repro.obs.Event`); this view keeps the
        original ``{"type": ..., ...}`` dict shape.
        """
        return [{"type": e.kind, **e.fields}
                for e in self.telemetry.events
                if e.kind in ("degradation", "eviction")]

    # -- public API ---------------------------------------------------------------

    def submit(self, request: SearchRequest, *,
               snapshot: Snapshot | None = None) -> SearchResponse:
        """Serve one request (a batch of one)."""
        return self.submit_batch([request], snapshot=snapshot)[0]

    def submit_batch(self, requests: list[SearchRequest], *,
                     snapshot: Snapshot | None = None
                     ) -> list[SearchResponse]:
        """Serve a batch of requests arriving together.

        All requests share one modeled arrival instant (the current
        service clock); each queues on the lane of the engine serving
        it, so requests on different devices overlap while requests
        contending for one index serialize — that contention is exactly
        what ``queue_wait_s`` reports.

        The whole batch is served against one *pinned*
        :class:`~repro.ingest.Snapshot` — by default the database state
        at arrival, MVCC-style; a client that captured an earlier
        ``current_snapshot()`` may pass it to read that version even
        after later ingests or compactions.
        """
        arrival = self._clock
        snapshot = snapshot or self.versioned.snapshot()
        with self.telemetry.activate(), \
                self.telemetry.span("service.batch",
                                    batch_size=len(requests),
                                    epoch=snapshot.epoch) as span:
            responses = [self._serve(r, arrival, snapshot)
                         for r in requests]
            span.set_modeled(arrival,
                             self.pool.busiest_until() - arrival)
        self._clock = max(self._clock, self.pool.busiest_until())
        return responses

    def current_snapshot(self) -> Snapshot:
        """Pin the current database version (see
        :meth:`submit_batch`)."""
        return self.versioned.snapshot()

    # -- ingestion ---------------------------------------------------------------

    def ingest(self, segments, *,
               keep_seg_ids: bool = False,
               idempotency_key: str | None = None) -> IngestReceipt:
        """Append trajectory segments without rebuilding the base index.

        Accepts whatever :meth:`~repro.ingest.VersionedDatabase.append`
        accepts (a :class:`~repro.core.types.Trajectory`, a list of
        them, or a raw :class:`~repro.core.types.SegmentArray`).  The
        rows land in the delta; queries see them immediately through
        the delta-overlay scan while every warm base engine stays
        cached.  ``keep_seg_ids=True`` preserves caller-stamped segment
        ids (the sharded router's global stamping — see
        :meth:`~repro.ingest.VersionedDatabase.append`).  When the
        append pushes the delta over the compaction policy and
        ``auto_compact`` is on, compaction runs before returning (off
        the query hot path — no request is in flight between batches).

        ``idempotency_key`` makes the append exactly-once under client
        retries: a key already in the dedup table short-circuits —
        nothing is WAL-logged or applied, and the original receipt is
        returned with ``deduplicated=True``.  The table is carried in
        WAL records and checkpoints, so dedup survives a crash/recover.
        """
        with self.telemetry.activate(), \
                self.telemetry.span("service.ingest") as span:
            segments = as_segments(segments)
            if idempotency_key is not None:
                prior = self.versioned.applied_key(idempotency_key)
                if prior is not None:
                    return self._replay_receipt(idempotency_key, prior)
            if self.durability is not None:
                # WAL discipline: validate, log + sync, then apply.
                self.versioned.check_append(segments,
                                            keep_seg_ids=keep_seg_ids)
                self.durability.log_append(
                    self.versioned, segments,
                    keep_seg_ids=keep_seg_ids,
                    idempotency_key=idempotency_key)
            receipt = self.versioned.append(
                segments, keep_seg_ids=keep_seg_ids,
                idempotency_key=idempotency_key)
            span.set_attributes(epoch=receipt.epoch,
                                segments=receipt.num_segments)
            reg = self.telemetry.metrics
            reg.counter("repro_ingest_total",
                        "ingest (append) operations").inc()
            reg.counter("repro_ingest_segments_total",
                        "segments appended to the delta").inc(
                receipt.num_segments)
            self._gauge_ingest()
            self.telemetry.events.emit(
                "ingest", epoch=receipt.epoch,
                delta_epoch=receipt.delta_epoch,
                segments=receipt.num_segments,
                trajectories=list(receipt.trajectory_ids),
                compaction_due=receipt.compaction_due)
            self._standing_epoch("append", appended=segments)
            if receipt.compaction_due and self.auto_compact:
                self._compact(trigger="policy")
            self._maybe_checkpoint()
        return receipt

    def _replay_receipt(self, key: str, prior: dict) -> IngestReceipt:
        """Rebuild the receipt a deduplicated ingest retry gets."""
        if prior.get("op") != "append":
            raise IngestError(
                f"idempotency key {key!r} named a "
                f"{prior.get('op')!r} mutation, not an append")
        self.telemetry.metrics.counter(
            "repro_idempotent_dedups_total",
            "keyed mutation retries deduplicated").inc(op="append")
        self.telemetry.events.emit(
            "idempotent_dedup", op="append", key=str(key),
            epoch=int(prior["epoch"]))
        return IngestReceipt(
            epoch=int(prior["epoch"]),
            delta_epoch=int(prior["delta_epoch"]),
            num_segments=int(prior["num_segments"]),
            trajectory_ids=tuple(int(t)
                                 for t in prior["trajectory_ids"]),
            seg_ids=tuple(int(s) for s in prior["seg_ids"]),
            compaction_due=bool(prior["compaction_due"]),
            deduplicated=True)

    def delete_trajectory(self, traj_id: int, *,
                          idempotency_key: str | None = None) -> int:
        """Tombstone one trajectory; its segments disappear from query
        results at refinement time.  The base index is untouched — the
        rows are physically dropped at the next compaction.  Returns
        the number of segments hidden.  ``idempotency_key`` deduplicates
        client retries exactly like :meth:`ingest`."""
        with self.telemetry.activate(), \
                self.telemetry.span("service.delete",
                                    traj_id=int(traj_id)):
            if idempotency_key is not None:
                prior = self.versioned.applied_key(idempotency_key)
                if prior is not None:
                    if prior.get("op") != "delete":
                        raise IngestError(
                            f"idempotency key {idempotency_key!r} "
                            f"named a {prior.get('op')!r} mutation, "
                            f"not a delete")
                    self.telemetry.metrics.counter(
                        "repro_idempotent_dedups_total",
                        "keyed mutation retries deduplicated").inc(
                        op="delete")
                    self.telemetry.events.emit(
                        "idempotent_dedup", op="delete",
                        key=str(idempotency_key),
                        epoch=int(prior["epoch"]))
                    return int(prior["hidden"])
            if self.durability is not None \
                    and self.versioned.check_delete(traj_id):
                # Only a delete that actually mutates is logged: an
                # already-tombstoned id is a no-op that must not
                # consume an epoch in the WAL.
                self.durability.log_delete(
                    self.versioned, traj_id,
                    idempotency_key=idempotency_key)
            hidden = self.versioned.delete_trajectory(
                traj_id, idempotency_key=idempotency_key)
            reg = self.telemetry.metrics
            reg.counter("repro_tombstones_total",
                        "trajectories tombstoned").inc()
            self._gauge_ingest()
            self.telemetry.events.emit(
                "delete", traj_id=int(traj_id),
                epoch=self.versioned.epoch, hidden_segments=hidden)
            self._standing_epoch("delete", deleted_traj=int(traj_id))
            if self.auto_compact and self.versioned.should_compact():
                self._compact(trigger="policy")
            self._maybe_checkpoint()
        return hidden

    def compact(self) -> CompactionResult:
        """Force a compaction now (policy thresholds ignored)."""
        with self.telemetry.activate():
            return self._compact(trigger="manual")

    def _compact(self, *, trigger: str) -> CompactionResult:
        """Fold the delta into a fresh base and re-warm the cache.

        Engines cached for the outgoing base are remembered, the stale
        entries invalidated, and the same (method, params) engines are
        rebuilt over the new base *inside this call* — off the query
        hot path, but on the virtual GPU like any other build, so
        injected faults (chaos) can and do fire mid-compaction.  A
        failed prewarm build is logged and skipped: the next request
        simply pays a cache miss (or walks the failover ladder).
        """
        old_fp = self.fingerprint
        warm = [(e.key[1], e.key[2]) for e in self.cache.entries()
                if self._key_base(e.key) == old_fp]
        with self.telemetry.span("service.compaction",
                                 trigger=trigger) as span:
            if self.durability is not None:
                # Compaction is deterministic given the pre-state, so
                # the WAL record carries no payload: replay re-runs
                # the fold and lands on the identical base.
                self.durability.log_compact(self.versioned)
            result = self.versioned.compact()
            span.set_attributes(merged=result.merged_segments,
                                dropped=result.dropped_segments,
                                base_rows=result.new_base_rows)
            reg = self.telemetry.metrics
            reg.counter("repro_compactions_total",
                        "delta-into-base compactions").inc(
                trigger=trigger)
            reg.histogram("repro_compaction_seconds",
                          "compaction wall seconds").observe(
                result.wall_seconds)
            stale = self._invalidate_stale_bases()
            self._shard_cache.clear()
            self._gauge_ingest()
            # Compaction cannot change any answer (it preserves
            # logical()), but the pass still settles carried-over
            # re-evaluations and stamps the epoch.
            self._standing_epoch("compact")
            self.telemetry.events.emit(
                "compaction", trigger=trigger, epoch=result.epoch,
                base_version=result.base_version,
                merged_segments=result.merged_segments,
                dropped_segments=result.dropped_segments,
                new_base_rows=result.new_base_rows,
                stale_entries=stale, prewarm=len(warm))
            snapshot = self.versioned.snapshot()
            for method, canon in warm:
                self._prewarm(snapshot, method, canon)
            if self.durability is not None \
                    and self.durability.policy.checkpoint_on_compact:
                # Checkpoint after the prewarm so the rebuilt engines
                # land in the snapshot as restart artifacts.  The
                # crash campaign kills here: the compact WAL record is
                # durable, the checkpoint rename has not happened.
                self._checkpoint(kill_point="compact_mid")
        return result

    def _prewarm(self, snapshot: Snapshot, method: str,
                 canon: tuple) -> None:
        """Rebuild one previously-warm engine over the new base."""
        try:
            params = dict(canon)
            self._engine_entry(snapshot.base, method, params,
                               self.fingerprint, RequestMetrics())
        except Exception as exc:  # noqa: BLE001 - prewarm is best-effort
            self._prewarm_failures += 1
            self.telemetry.metrics.counter(
                "repro_prewarm_failures_total",
                "post-compaction engine rebuilds that failed").inc(
                engine=method)
            self.telemetry.events.emit(
                "compaction_prewarm_failed", engine=method,
                error=f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _key_base(key: tuple):
        """The base fingerprint a cache key is rooted at (shard keys
        nest it as the first element of a tuple)."""
        db_key = key[0]
        return db_key[0] if isinstance(db_key, tuple) else db_key

    def _invalidate_stale_bases(self) -> int:
        """Drop cached engines whose base was compacted away."""
        current = self.fingerprint
        return self.cache.invalidate_where(
            lambda e: self._key_base(e.key) != current)

    def _gauge_ingest(self) -> None:
        reg = self.telemetry.metrics
        v = self.versioned
        reg.gauge("repro_snapshot_epoch",
                  "current database epoch").set(v.epoch)
        reg.gauge("repro_delta_segments",
                  "segments pending in the delta").set(v.delta_rows)
        reg.gauge("repro_delta_ratio",
                  "delta rows over base rows").set(
            v.delta_rows / len(v.base) if len(v.base) else 0.0)
        reg.gauge("repro_tombstoned_trajectories",
                  "live tombstones").set(v.num_tombstones)

    # -- standing queries --------------------------------------------------------

    def register_subscription(self, sub: Subscription) -> dict:
        """Register a continuous query; its initial answer settles
        against the current snapshot and subsequent epochs stream
        ``match_added``/``match_removed`` delta events.  Durable
        services persist the subscription (it survives
        :meth:`recover`)."""
        with self.telemetry.activate():
            return self.standing.register(sub, self.current_snapshot())

    def unregister_subscription(self, sub_id: str) -> dict:
        """Drop a subscription and its maintained match set."""
        with self.telemetry.activate():
            return self.standing.unregister(
                sub_id, epoch=self.versioned.epoch)

    def poll_subscription(self, sub_id: str, *,
                          since_seq: int = -1) -> dict:
        """One subscription's current matches + delta events after
        ``since_seq`` (the client-facing incremental read)."""
        return self.standing.poll(sub_id, since_seq=since_seq)

    def flush_standing(self):
        """Settle every deferred standing re-evaluation now (see
        :class:`~repro.standing.StandingPolicy`)."""
        with self.telemetry.activate():
            return self.standing.flush(self.current_snapshot())

    def _standing_epoch(self, kind: str, *, appended=None,
                        deleted_traj: int | None = None) -> None:
        """Run the standing maintenance pass for the epoch just
        applied.  Skipped entirely while nothing is registered."""
        if not self.standing.subscriptions \
                and not self.standing.pending:
            return
        self.standing.process_epoch(
            self.versioned.snapshot(), kind, appended=appended,
            deleted_traj=deleted_traj,
            pressure=self._queue_pressure())

    def _queue_pressure(self) -> bool:
        """The same backlog signal request shedding uses: every usable
        executor is modeled-busy past ``max_queue_delay_s``."""
        if self.max_queue_delay_s is None:
            return False
        waits = [max(0.0, lane.busy_until - self._clock)
                 for lane in self.pool.usable_lanes()]
        waits.append(max(0.0, self.pool.host.busy_until - self._clock))
        return min(waits) > self.max_queue_delay_s

    # -- durability --------------------------------------------------------------

    def checkpoint(self):
        """Write a durable checkpoint now; returns its path.  The WAL
        is truncated through the checkpointed epoch and warm engines
        are persisted as restart artifacts."""
        if self.durability is None:
            raise ValueError("service has no durability_dir; there is "
                             "nothing to checkpoint to")
        with self.telemetry.activate():
            return self._checkpoint()

    def _checkpoint(self, *, kill_point: str = "checkpoint_mid"):
        path = self.durability.checkpoint(
            self.versioned, warm_engines=self._warm_engines(),
            kill_point=kill_point)
        # Fold the standing event log into its state file alongside the
        # database checkpoint (after it: a kill inside the database
        # checkpoint must leave the standing tail replayable).
        self.standing.checkpoint(self.versioned.epoch)
        return path

    def _maybe_checkpoint(self) -> None:
        if self.durability is not None \
                and self.durability.checkpoint_due():
            self._checkpoint()

    def _warm_engines(self) -> list[tuple[str, dict, object]]:
        """``(method, params, engine)`` triples worth persisting in a
        checkpoint: whole-database engines over the current base.
        Shard engines are skipped — their keys embed the partition
        layout and they rebuild quickly relative to artifact size."""
        current = self.fingerprint
        triples = []
        for entry in self.cache.entries():
            db_key = entry.key[0]
            if isinstance(db_key, tuple) or db_key != current:
                continue
            triples.append((entry.key[1], dict(entry.key[2]),
                            entry.engine))
        return triples

    @classmethod
    def recover(cls, durability_dir, *,
                policy: DurabilityPolicy | None = None,
                kill=None, telemetry: Telemetry | None = None,
                **kwargs) -> "QueryService":
        """Rebuild a service from its durability directory.

        Loads the newest valid checkpoint, replays the WAL tail
        (dropping a CRC-torn final record), and returns a service at
        the exact pre-crash logical epoch.  Persisted engine artifacts
        are installed into the cache (or rebuilt from their recipes)
        so the first post-restart request is a cache hit.  Extra
        keyword arguments are forwarded to the constructor.
        """
        telemetry = telemetry or Telemetry()
        manager = DurabilityManager(durability_dir, policy=policy,
                                    kill=kill)
        with telemetry.activate(), \
                telemetry.span("service.recovery",
                               directory=str(manager.directory)) as sp:
            result = manager.recover()
            service = cls(result.database, telemetry=telemetry,
                          **kwargs)
            service.durability = manager
            service.last_recovery = result
            prewarmed = service._prewarm_recovered(result)
            service.standing.store = StandingStore(
                manager.directory / "standing")
            standing = service.standing.recover(
                service.versioned.snapshot())
            sp.set_attributes(
                checkpoint_epoch=result.checkpoint_epoch,
                epoch=result.epoch, replayed=result.replayed,
                torn_dropped=result.torn_dropped,
                prewarmed=prewarmed,
                standing_subscriptions=standing["subscriptions"],
                standing_replayed=standing["replayed_events"],
                standing_caught_up=standing["caught_up_events"])
        return service

    def _prewarm_recovered(self, result) -> int:
        """Warm the engine cache from a recovery's recipes; returns
        the number of engines installed or rebuilt."""
        prewarmed = 0
        snapshot = self.versioned.snapshot()
        reg = self.telemetry.metrics
        for recipe in result.engines:
            if recipe.method not in available():
                continue
            source = "artifact"
            try:
                if not self._install_artifact(result, recipe):
                    source = "rebuild"
                    self._engine_entry(
                        snapshot.base, recipe.method,
                        dict(recipe.params),
                        self._base_fingerprint(snapshot),
                        RequestMetrics())
            except Exception as exc:  # noqa: BLE001 - prewarm is best-effort
                self._prewarm_failures += 1
                reg.counter(
                    "repro_prewarm_failures_total",
                    "post-compaction engine rebuilds that failed").inc(
                    engine=recipe.method)
                self.telemetry.events.emit(
                    "recovery_prewarm_failed", engine=recipe.method,
                    error=f"{type(exc).__name__}: {exc}")
                continue
            prewarmed += 1
            reg.counter("repro_recovery_prewarmed_total",
                        "engines prewarmed during recovery").inc(
                engine=recipe.method, source=source)
        return prewarmed

    def _install_artifact(self, result, recipe) -> bool:
        """Install one pickled engine artifact under its cache key;
        False means the caller must rebuild from the recipe (missing
        or unloadable artifact, or the WAL replay compacted past the
        base the artifact indexes)."""
        checkpoint = result.checkpoint
        if checkpoint is None or recipe.artifact is None:
            return False
        if checkpoint.base_version != self.versioned.base_version:
            return False
        engine = checkpoint.load_engine_artifact(recipe)
        if engine is None:
            return False
        cls_ = get_engine(recipe.method)
        params = dict(recipe.params)
        if cls_.config_type is not None:
            canon = canonical_params(
                cls_.config_type.from_params(**params).to_dict())
        else:
            canon = canonical_params(params)
        key = (self.fingerprint, recipe.method, canon)
        if key in self.cache:
            return True
        gpu = getattr(engine, "gpu", None)
        nbytes = (gpu.memory.allocated_bytes if gpu is not None
                  else 0)
        lane = (self.pool.home_for(nbytes).index if gpu is not None
                else DevicePool.HOST_LANE)
        if gpu is not None:
            # Re-home on a live lane and swap the pickled (dead) fault
            # injector for this service's.
            gpu.faults = self.faults
            gpu.memory.faults = self.faults
            gpu.transfers.faults = self.faults
            gpu.set_lane(lane)
            if self.retry is not None:
                engine.retry = self.retry
        entry = CacheEntry(key=key, engine=engine, gpu=gpu, lane=lane,
                           nbytes=nbytes, build_wall_s=0.0)
        self.pool.place(lane, nbytes)
        self.cache.put(entry)
        return True

    def shutdown(self) -> None:
        """Flush the observability logs next to the durable state and
        close the WAL.  Idempotent; non-durable services no-op."""
        if self._shut_down:
            return
        self._shut_down = True
        if self.standing.pending:
            # Deferred re-evaluations must not outlive the process:
            # settle them so the durable match sets are exact.
            with self.telemetry.activate():
                self.standing.flush(self.versioned.snapshot())
        if self.durability is None:
            return
        self.standing.checkpoint(self.versioned.epoch)
        directory = self.durability.directory
        try:
            self.telemetry.events.write_jsonl(
                directory / "events.jsonl")
            self.telemetry.slow_log.write_jsonl(
                directory / "slow_queries.jsonl")
        finally:
            self.durability.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    def stats(self) -> dict:
        """Service-level counters for dashboards and tests.

        With telemetry enabled the request/degradation numbers are read
        from the metrics registry — the same series the Prometheus
        exposition and the experiment harness see; plain instance
        counters are the fallback when telemetry is off.
        """
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            num_requests = int(
                m.counter("repro_requests_total").total())
            degradations = int(
                m.counter("repro_degradations_total").total())
        else:
            num_requests = self._num_requests
            degradations = self._degradations
        return {
            "num_requests": num_requests,
            "cache": self.cache.stats.to_dict(),
            "cached_engines": len(self.cache),
            "cache_resident_bytes": self.cache.resident_bytes,
            "num_devices": self.pool.num_devices,
            "clock_s": self._clock,
            "lane_busy_until_s": [lane.busy_until
                                  for lane in self.pool.lanes],
            "degradations": degradations,
            "slow_queries": len(self.telemetry.slow_log),
            "shed": self._shed,
            "failover_serves": self._failover_serves,
            "crosschecks": self._crosschecks,
            "crosscheck_mismatches": list(self.crosscheck_mismatches),
            "lane_health": {str(lane.index): lane.health.to_dict()
                            for lane in self.pool.lanes},
            "breakers": {m_: b.to_dict()
                         for m_, b in sorted(self._breakers.items())},
            "ingest": {**self.versioned.stats(),
                       "prewarm_failures": self._prewarm_failures},
            "standing": self.standing.stats(),
            "durability": (self.durability.stats()
                           if self.durability is not None else None),
        }

    # -- request execution ----------------------------------------------------------

    def _serve(self, request: SearchRequest, arrival: float,
               snapshot: Snapshot) -> SearchResponse:
        self._num_requests += 1
        metrics = RequestMetrics()
        metrics.arrival_s = arrival
        metrics.snapshot_epoch = snapshot.epoch
        metrics.delta_segments = len(snapshot.live_delta())
        deadline = (Deadline.after(request.deadline_s)
                    if request.deadline_s is not None else None)
        with self.telemetry.span(
                "service.request", request_id=request.request_id,
                method=request.method, epoch=snapshot.epoch) as span:
            for lane_idx in self.pool.refresh_health(arrival):
                self._note_lane_probation(lane_idx)
            response = self._shed_check(request, arrival, metrics)
            if response is None:
                with deadline_scope(deadline):
                    response = self._serve_ladder(request, arrival,
                                                  metrics, deadline,
                                                  snapshot)
            span.set_attributes(engine=metrics.engine,
                                cache_hit=metrics.cache_hit,
                                degraded=metrics.degraded,
                                status=response.status)
            span.set_modeled(arrival, metrics.queue_wait_s
                             + metrics.modeled_seconds)
        self._finish_request(request, response)
        return response

    def _serve_ladder(self, request: SearchRequest, arrival: float,
                      metrics: RequestMetrics,
                      deadline: Deadline | None,
                      snapshot: Snapshot) -> SearchResponse:
        """Walk the failover ladder until a rung serves the request."""
        method, params = self._resolve_method(request, metrics,
                                              snapshot)
        ladder = self._failover_ladder(method)
        first_failure: str | None = None
        last_exc: Exception | None = None
        for hop, rung in enumerate(ladder):
            if deadline is not None and deadline.expired:
                return self._reject(
                    request, metrics, "deadline_exceeded",
                    f"budget of {request.deadline_s}s exhausted after "
                    f"{hop} ladder rungs"
                    + (f"; first failure: {first_failure}"
                       if first_failure else ""))
            breaker = self._breaker(rung)
            if not breaker.allow(arrival):
                self._note_breaker_skip(request, rung)
                if first_failure is None:
                    first_failure = f"{rung}: circuit breaker open"
                continue
            try:
                response = self._attempt(request, rung,
                                         params if hop == 0 else {},
                                         hop, arrival, metrics,
                                         snapshot)
            except ConfigError:
                raise  # caller error: bad parameters, not degradation
            except DeadlineExceededError as exc:
                return self._reject(request, metrics,
                                    "deadline_exceeded", str(exc))
            except NoUsableLaneError as exc:
                # Not the engine's fault — no breaker penalty; move to
                # a rung that does not need a GPU lane.
                first_failure = first_failure or \
                    f"{rung}: {type(exc).__name__}: {exc}"
                self._note_engine_failure(request, rung, hop, exc)
                continue
            except Exception as exc:  # noqa: BLE001 - any rung failure fails over
                if breaker.record_failure(arrival):
                    self.telemetry.events.emit(
                        "breaker_open", engine=rung,
                        trips=breaker.trips)
                self._gauge_breaker(rung, breaker)
                first_failure = first_failure or \
                    f"{rung}: {type(exc).__name__}: {exc}"
                last_exc = exc
                self._note_engine_failure(request, rung, hop, exc)
                continue
            if breaker.record_success():
                self.telemetry.events.emit("breaker_closed",
                                           engine=rung)
            self._gauge_breaker(rung, breaker)
            if hop > 0:
                metrics.failovers = hop
                self._failover_serves += 1
                self._record_degradation(request, method,
                                         first_failure, metrics,
                                         fallback=rung)
                self._maybe_crosscheck(request, response, snapshot)
            return response
        if last_exc is not None:
            raise last_exc  # every rung failed; surface the last error
        # Nothing even ran: every rung's breaker is open.
        return self._reject(request, metrics, "overloaded",
                            "circuit breakers open for every engine "
                            f"in the ladder {ladder}")

    def _attempt(self, request: SearchRequest, method: str,
                 params: dict, hop: int, arrival: float,
                 metrics: RequestMetrics,
                 snapshot: Snapshot) -> SearchResponse:
        """Build (or fetch) the engines for one rung and execute."""
        if hop == 0:
            runs = self._engines_for(request, method, params, metrics,
                                     snapshot)
            return self._execute(request, method, runs, arrival,
                                 metrics, snapshot)
        with self.telemetry.span("service.failover",
                                 request_id=request.request_id,
                                 engine=method, hop=hop):
            runs = self._engines_for(request, method, params, metrics,
                                     snapshot)
            return self._execute(request, method, runs, arrival,
                                 metrics, snapshot)

    def _failover_ladder(self, method: str) -> list[str]:
        """The rung sequence for a request that asked for ``method``.

        GPU methods fail over to the other GPU schemes first (a fault
        may be engine- or index-specific), then to the CPU rungs.  CPU
        methods never fail *up* to a GPU: ``cpu_rtree`` falls back to
        ``cpu_scan``; ``cpu_scan`` has no rung below it.
        """
        ladder = [method]
        cls = (get_engine(method)
               if method in available() else None)
        if cls is not None and issubclass(cls, GpuEngineBase):
            ladder += [m for m in self.GPU_LADDER
                       if m != method and m in available()]
        ladder += [m for m in self.CPU_LADDER
                   if m not in ladder and m in available()]
        return ladder

    def _shed_check(self, request: SearchRequest, arrival: float,
                    metrics: RequestMetrics) -> SearchResponse | None:
        """Queue-pressure load shedding: reject up front when every
        possible executor is backlogged past ``max_queue_delay_s``."""
        if self.max_queue_delay_s is None:
            return None
        waits = [max(0.0, lane.busy_until - arrival)
                 for lane in self.pool.usable_lanes()]
        waits.append(max(0.0, self.pool.host.busy_until - arrival))
        pressure = min(waits)
        if pressure <= self.max_queue_delay_s:
            return None
        self._shed += 1
        self.telemetry.metrics.counter(
            "repro_shed_total",
            "requests rejected by queue-pressure load shedding").inc()
        self.telemetry.events.emit(
            "overloaded", request_id=request.request_id,
            queue_delay_s=pressure, limit_s=self.max_queue_delay_s)
        return self._reject(
            request, metrics, "overloaded",
            f"modeled queue delay {pressure:.6f}s exceeds the "
            f"{self.max_queue_delay_s}s shedding limit")

    def _reject(self, request: SearchRequest, metrics: RequestMetrics,
                status: str, reason: str) -> SearchResponse:
        return SearchResponse(request_id=request.request_id,
                              outcome=None, metrics=metrics,
                              status=status, reason=reason)

    def _finish_request(self, request: SearchRequest,
                        response: SearchResponse) -> None:
        """Record the per-request metrics, event, and slow-query entry."""
        m = response.metrics
        reg = self.telemetry.metrics
        if not response.ok:
            reg.counter("repro_requests_total",
                        "requests served").inc(
                engine=m.engine or "none", status=response.status)
            reg.counter("repro_rejections_total",
                        "typed request rejections").inc(
                status=response.status)
            self.telemetry.events.emit(
                "rejected", request_id=request.request_id,
                status=response.status, reason=response.reason)
            return
        reg.counter("repro_requests_total",
                    "requests served").inc(
            engine=m.engine,
            status="degraded" if m.degraded else "ok")
        reg.histogram("repro_request_latency_seconds",
                      "modeled response time per request").observe(
            m.modeled_seconds, engine=m.engine)
        reg.histogram("repro_request_wall_seconds",
                      "simulator wall time per request").observe(
            m.wall_seconds, engine=m.engine)
        reg.histogram("repro_queue_wait_seconds",
                      "modeled wait for a free device lane").observe(
            m.queue_wait_s, engine=m.engine)
        self.telemetry.events.emit(
            "request", request_id=request.request_id,
            engine=m.engine, modeled_seconds=m.modeled_seconds,
            wall_seconds=m.wall_seconds, queue_wait_s=m.queue_wait_s,
            cache_hit=m.cache_hit, degraded=m.degraded,
            results=len(response.outcome.results))
        slow = self.telemetry.slow_log.observe(
            request_id=request.request_id, engine=m.engine,
            modeled_seconds=m.modeled_seconds,
            queue_wait_s=m.queue_wait_s, cache_hit=m.cache_hit,
            degraded=m.degraded)
        if slow is not None:
            self.telemetry.events.emit("slow_query", **slow.to_dict())

    def _resolve_method(self, request: SearchRequest,
                        metrics: RequestMetrics,
                        snapshot: Snapshot) -> tuple[str, dict]:
        """Turn ``request.method`` into a concrete engine + parameters."""
        if request.method != "auto":
            if request.method not in available():
                raise ValueError(
                    f"unknown method {request.method!r}; available: "
                    f"{sorted(available())} or 'auto'")
            return request.method, dict(request.params)
        hints = {k: v for k, v in request.params.items()
                 if k in _PLANNER_HINTS}
        try:
            with self.telemetry.span("service.plan",
                                     sample=self.planner_sample) as sp:
                # Plan over the snapshot's base: that is what the index
                # serves; the delta overlay costs the same regardless
                # of which engine wins.
                plans = plan_search(snapshot.base, request.queries,
                                    request.d,
                                    sample=self.planner_sample,
                                    gpu_model=self.gpu_model,
                                    cpu_model=self.cpu_model, **hints)
                sp.set_attribute("winner", plans[0].engine)
        except Exception as exc:  # noqa: BLE001 - degrade, don't fail
            self._record_degradation(request, "auto", exc, metrics,
                                     fallback=self.FALLBACK_METHOD)
            return self.FALLBACK_METHOD, {}
        best = plans[0]
        params = dict(best.params)
        # Overlay the caller's hints the chosen engine understands
        # (e.g. a result_buffer_items override).
        cfg_type = get_engine(best.engine).config_type
        if cfg_type is not None:
            valid = cfg_type.valid_keys()
            params.update({k: v for k, v in request.params.items()
                           if k in valid})
        return best.engine, params

    def _engines_for(self, request: SearchRequest, method: str,
                     params: dict, metrics: RequestMetrics,
                     snapshot: Snapshot) -> list[CacheEntry]:
        """Cached engines serving this request — one per shard.

        Keys are rooted at the snapshot's *base* fingerprint, which
        ingestion does not change: a warm engine keeps hitting across
        appends/deletes, and only a compaction (new base) misses.
        """
        base_fp = self._base_fingerprint(snapshot)
        if request.shards == 1:
            shard_dbs = [(snapshot.base, base_fp)]
        else:
            shard_dbs = [
                (shard, (base_fp, request.partition_strategy,
                         request.shards, i))
                for i, shard in enumerate(
                    self._shards(snapshot, request.partition_strategy,
                                 request.shards))
            ]
        entries = []
        all_hit = True
        for shard, db_key in shard_dbs:
            entry, hit = self._engine_entry(shard, method, params,
                                            db_key, metrics)
            entries.append(entry)
            all_hit = all_hit and hit
        metrics.cache_hit = all_hit
        return entries

    def _base_fingerprint(self, snapshot: Snapshot) -> str:
        """Fingerprint of a snapshot's base (fast path: the current
        one is cached on the service)."""
        if snapshot.base_version == self.versioned.base_version:
            return self.fingerprint
        return database_fingerprint(snapshot.base)

    def _shards(self, snapshot: Snapshot, strategy: str, n: int
                ) -> list[SegmentArray]:
        key = (snapshot.base_version, strategy, n)
        if key not in self._shard_cache:
            self._shard_cache[key] = partition_database(
                snapshot.base, n, strategy)
        return self._shard_cache[key]

    def _engine_entry(self, database: SegmentArray, method: str,
                      params: dict, db_key, metrics: RequestMetrics
                      ) -> tuple[CacheEntry, bool]:
        cls = get_engine(method)
        if cls.config_type is not None:
            cfg = cls.config_type.from_params(**params)
            key = (db_key, method, canonical_params(cfg.to_dict()))
        else:
            cfg = None
            key = (db_key, method, canonical_params(params))
        reg = self.telemetry.metrics
        entry = self.cache.get(key)
        if entry is not None:
            reg.counter("repro_cache_hits_total",
                        "engine-cache hits").inc(engine=method)
            return entry, True
        reg.counter("repro_cache_misses_total",
                    "engine-cache misses").inc(engine=method)

        is_gpu = issubclass(cls, GpuEngineBase)
        # Pick the home lane *before* building so a build failure (real
        # or injected) is attributable to the card it happened on.
        lane = (self.pool.home_for(0).index if is_gpu
                else DevicePool.HOST_LANE)
        build0 = time.perf_counter()
        with self.telemetry.span("engine.build", engine=method,
                                 lane=lane) as sp:
            gpu = (VirtualGPU(self.pool.spec, faults=self.faults,
                              lane=lane)
                   if is_gpu else None)
            try:
                if cfg is not None:
                    engine = cls.from_config(database, cfg, gpu=gpu)
                else:
                    engine = cls.from_config(database, gpu=gpu,
                                             **params)
            except Exception as exc:
                self.cache.record_failed_build()
                self._note_lane_failure(lane, exc)
                raise
            if is_gpu and self.retry is not None:
                engine.retry = self.retry
            nbytes = (gpu.memory.allocated_bytes if gpu is not None
                      else 0)
            sp.set_attribute("nbytes", nbytes)
        build_s = time.perf_counter() - build0

        entry = CacheEntry(key=key, engine=engine, gpu=gpu, lane=lane,
                           nbytes=nbytes, build_wall_s=build_s)
        self.pool.place(lane, nbytes)
        self.cache.put(entry)
        metrics.engine_build_s += build_s
        reg.histogram("repro_engine_build_seconds",
                      "engine+index build wall seconds").observe(
            build_s, engine=method)
        self.telemetry.events.emit(
            "engine_build", engine=method, lane=lane, nbytes=nbytes,
            build_wall_s=build_s)
        return entry, False

    def _execute(self, request: SearchRequest, method: str,
                 entries: list[CacheEntry], arrival: float,
                 metrics: RequestMetrics,
                 snapshot: Snapshot) -> SearchResponse:
        runs: list[_ShardRun] = []
        with self.telemetry.span("service.execute",
                                 shards=len(entries)) as exec_span:
            for entry in entries:
                try:
                    results, profile = entry.engine.search(
                        request.queries, request.d,
                        exclude_same_trajectory=request
                        .exclude_same_trajectory)
                except DeadlineExceededError:
                    raise  # budget ran out: not the lane's fault
                except Exception as exc:
                    self._note_lane_failure(entry.lane, exc)
                    raise
                self._note_lane_success(entry.lane)
                if isinstance(profile, CpuSearchProfile):
                    modeled = profile.modeled_time(self.cpu_model)
                else:
                    modeled = profile.modeled_time(self.gpu_model)
                    if profile.backoff_s:
                        # Retry backoff is host-side modeled waiting;
                        # charge it so lane occupancy reflects it.
                        modeled = modeled + CostBreakdown(
                            host=profile.backoff_s)
                runs.append(_ShardRun(entry, results, profile, modeled))

        # Lane occupancy: each shard queues on its engine's home lane;
        # shards on distinct lanes overlap in modeled time.
        latest_start = arrival
        for i, run in enumerate(runs):
            lane = self.pool.lane(run.entry.lane)
            start = max(arrival, lane.busy_until)
            lane.busy_until = start + run.modeled.total
            latest_start = max(latest_start, start)
            metrics.lane_spans.append({
                "lane": run.entry.lane, "start_s": start,
                "dur_s": run.modeled.total, "shard": i,
            })
            # Each shard's search produced one engine.search child
            # span; now that the lane schedule priced it, pin it to
            # the modeled timeline.
            if i < len(exec_span.children):
                exec_span.children[i].set_modeled(
                    start, run.modeled.total)

        outcome = self._merge_outcome(method, runs)
        if not snapshot.clean:
            # Delta overlay: filter tombstones out of the base results
            # and union in a brute-force scan of the live delta.  The
            # scan is host work — it queues on the host lane and its
            # modeled cost lands in the response (that's the latency
            # gap compaction exists to bound).
            with self.telemetry.span(
                    "service.delta_scan",
                    delta_rows=len(snapshot.live_delta()),
                    tombstones=len(snapshot.tombstones)) as dsp:
                outcome, delta_profile = overlay_search(
                    outcome, snapshot, request.queries, request.d,
                    exclude_same_trajectory=request
                    .exclude_same_trajectory,
                    cpu_model=self.cpu_model)
                if delta_profile is not None:
                    delta_cost = delta_profile.modeled_time(
                        self.cpu_model)
                    host = self.pool.host
                    start = max(arrival, host.busy_until)
                    host.busy_until = start + delta_cost.total
                    metrics.delta_scan_s = delta_cost.total
                    metrics.lane_spans.append({
                        "lane": DevicePool.HOST_LANE,
                        "start_s": start,
                        "dur_s": delta_cost.total, "shard": "delta",
                    })
                    dsp.set_modeled(start, delta_cost.total)
        metrics.engine = method
        metrics.queue_wait_s = latest_start - arrival
        metrics.invocations = sum(
            len(r.profile.kernel_stats)
            for r in runs if isinstance(r.profile, SearchProfile))
        metrics.modeled_seconds = outcome.modeled_seconds
        metrics.wall_seconds = sum(r.profile.wall_seconds for r in runs)
        gpu_profiles = [r.profile for r in runs
                        if isinstance(r.profile, SearchProfile)]
        if gpu_profiles:
            metrics.attempts = max(p.attempts for p in gpu_profiles)
            metrics.backoff_s = sum(p.backoff_s for p in gpu_profiles)
        return SearchResponse(request_id=request.request_id,
                              outcome=outcome, metrics=metrics)

    def _merge_outcome(self, method: str,
                       runs: list[_ShardRun]) -> SearchOutcome:
        if len(runs) == 1:
            run = runs[0]
            return SearchOutcome(results=run.results,
                                 profile=run.profile,
                                 modeled=run.modeled)
        # Sharded execution: shards are disjoint and covering, so the
        # union of the per-shard result sets is the whole answer; the
        # modeled response time is the slowest shard (shards run
        # concurrently, as in the cluster model).
        results = ResultSet.from_parts(
            [r.results for r in runs]).deduplicated()
        slowest = max(runs, key=lambda r: r.modeled.total)
        profiles = [r.profile for r in runs]
        if all(isinstance(p, SearchProfile) for p in profiles):
            merged: SearchProfile | CpuSearchProfile = SearchProfile(
                engine=method,
                num_queries=profiles[0].num_queries,
                kernel_stats=[s for p in profiles for s in p.kernel_stats],
                h2d_bytes=sum(p.h2d_bytes for p in profiles),
                d2h_bytes=sum(p.d2h_bytes for p in profiles),
                num_transfers=sum(p.num_transfers for p in profiles),
                schedule_items=sum(p.schedule_items for p in profiles),
                redo_queries=sum(p.redo_queries for p in profiles),
                defaulted_queries=sum(p.defaulted_queries
                                      for p in profiles),
                raw_result_items=sum(p.raw_result_items
                                     for p in profiles),
                result_items=len(results),
                index_bytes=sum(p.index_bytes for p in profiles),
                wall_seconds=sum(p.wall_seconds for p in profiles),
                attempts=max(p.attempts for p in profiles),
                backoff_s=sum(p.backoff_s for p in profiles),
            )
        else:
            merged = CpuSearchProfile(
                engine=method,
                num_queries=profiles[0].num_queries,
                node_visits=sum(getattr(p, "node_visits", 0)
                                for p in profiles),
                comparisons=sum(getattr(p, "comparisons", 0)
                                for p in profiles),
                result_items=len(results),
                index_bytes=sum(p.index_bytes for p in profiles),
                wall_seconds=sum(p.wall_seconds for p in profiles),
            )
        return SearchOutcome(results=results, profile=merged,
                             modeled=slowest.modeled)

    # -- resilience bookkeeping ---------------------------------------------------

    def _breaker(self, method: str) -> CircuitBreaker:
        breaker = self._breakers.get(method)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                reset_after_s=self.breaker_reset_s)
            self._breakers[method] = breaker
        return breaker

    def _gauge_breaker(self, method: str,
                       breaker: CircuitBreaker) -> None:
        self.telemetry.metrics.gauge(
            "repro_breaker_state",
            "per-engine breaker: 0 closed / 1 half-open / 2 open").set(
            breaker.state_code, engine=method)
        prev = self._breaker_states.get(method, "closed")
        if breaker.state != prev:
            self._breaker_states[method] = breaker.state
            self.telemetry.metrics.counter(
                "repro_breaker_transitions_total",
                "breaker state transitions (labeled from/to)").inc(
                engine=method, from_state=prev,
                to_state=breaker.state)
            self.telemetry.events.emit(
                "breaker_transition", engine=method,
                from_state=prev, to_state=breaker.state)

    def _note_breaker_skip(self, request: SearchRequest,
                           method: str) -> None:
        self.telemetry.metrics.counter(
            "repro_breaker_skips_total",
            "ladder rungs skipped on an open breaker").inc(
            engine=method)
        self.telemetry.events.emit(
            "breaker_skip", request_id=request.request_id,
            engine=method)

    def _note_engine_failure(self, request: SearchRequest, method: str,
                             hop: int, exc: Exception) -> None:
        self.telemetry.metrics.counter(
            "repro_engine_failures_total",
            "engine failures observed by the service").inc(
            engine=method, error=type(exc).__name__)
        self.telemetry.events.emit(
            "failover", request_id=request.request_id,
            from_method=method, hop=hop,
            error=f"{type(exc).__name__}: {exc}")

    def _gauge_lane(self, lane_idx: int) -> None:
        health = self.pool.lanes[lane_idx].health
        self.telemetry.metrics.gauge(
            "repro_lane_state",
            "lane health: 0 healthy / 1 probation / 2 quarantined").set(
            health.state_code, lane=str(lane_idx))
        prev = self._lane_states.get(lane_idx, "healthy")
        if health.state != prev:
            self._lane_states[lane_idx] = health.state
            self.telemetry.metrics.counter(
                "repro_lane_transitions_total",
                "lane health transitions (labeled from/to)").inc(
                lane=str(lane_idx), from_state=prev,
                to_state=health.state)
            self.telemetry.events.emit(
                "lane_transition", lane=lane_idx,
                from_state=prev, to_state=health.state)

    def _note_lane_failure(self, lane_idx: int, exc: Exception) -> None:
        if lane_idx == DevicePool.HOST_LANE:
            return
        quarantined = self.pool.record_lane_failure(lane_idx,
                                                    self._clock)
        self._gauge_lane(lane_idx)
        if not quarantined:
            return
        # The lane's device-resident indexes are unreachable now;
        # invalidate them so later requests rebuild on healthy lanes.
        dropped = self.cache.invalidate_lane(lane_idx)
        health = self.pool.lanes[lane_idx].health
        self.telemetry.metrics.counter(
            "repro_lane_quarantines_total",
            "lane quarantine transitions").inc(lane=str(lane_idx))
        self.telemetry.events.emit(
            "lane_quarantined", lane=lane_idx,
            dropped_entries=dropped,
            until_s=health.quarantined_until,
            error=f"{type(exc).__name__}: {exc}")

    def _note_lane_success(self, lane_idx: int) -> None:
        if lane_idx == DevicePool.HOST_LANE:
            return
        if self.pool.record_lane_success(lane_idx):
            self.telemetry.events.emit("lane_readmitted",
                                       lane=lane_idx)
        self._gauge_lane(lane_idx)

    def _note_lane_probation(self, lane_idx: int) -> None:
        self._gauge_lane(lane_idx)
        self.telemetry.events.emit("lane_probation", lane=lane_idx)

    def _maybe_crosscheck(self, request: SearchRequest,
                          response: SearchResponse,
                          snapshot: Snapshot) -> None:
        """Deterministically sampled verification of failover results
        against ``cpu_scan`` ground truth over the pinned snapshot's
        *logical* database (base minus tombstones plus delta).  The
        check runs off the serving clock (verification overhead is not
        charged to lanes); a degraded answer must be slower, never
        wrong."""
        if self.crosscheck_every <= 0:
            return
        if (self._failover_serves - 1) % self.crosscheck_every:
            return
        if response.metrics.engine == self.FALLBACK_METHOD:
            return  # served by the truth engine itself
        with self.telemetry.span(
                "service.crosscheck", request_id=request.request_id,
                engine=response.metrics.engine):
            truth, _ = self._truth(snapshot).search(
                request.queries, request.d,
                exclude_same_trajectory=request.exclude_same_trajectory)
            match = response.outcome.results.equivalent_to(truth)
        self._crosschecks += 1
        self.telemetry.metrics.counter(
            "repro_crosschecks_total",
            "failover responses verified against cpu_scan").inc(
            result="match" if match else "mismatch")
        self.telemetry.events.emit(
            "crosscheck", request_id=request.request_id,
            engine=response.metrics.engine, match=match)
        if not match:
            self.crosscheck_mismatches.append(request.request_id)

    def _truth(self, snapshot: Snapshot) -> CpuScanEngine:
        """Ground-truth scan engine over the snapshot's logical view,
        cached per epoch (every mutation bumps the epoch)."""
        cached = self._truth_cache
        if cached is not None and cached[0] == snapshot.epoch:
            return cached[1]
        engine = CpuScanEngine(snapshot.logical())
        self._truth_cache = (snapshot.epoch, engine)
        return engine

    # -- bookkeeping -------------------------------------------------------------

    def _record_degradation(self, request: SearchRequest, method: str,
                            reason: Exception | str | None,
                            metrics: RequestMetrics, *,
                            fallback: str) -> None:
        if isinstance(reason, BaseException):
            reason = f"{method}: {type(reason).__name__}: {reason}"
        reason = reason or f"{method}: failed"
        metrics.degraded = True
        metrics.degradation_reason = reason
        self._degradations += 1
        self.telemetry.metrics.counter(
            "repro_degradations_total",
            "requests degraded to a fallback engine").inc(
            from_method=method)
        self.telemetry.events.emit(
            "degradation",
            request_id=request.request_id,
            method=method,
            fallback=fallback,
            reason=reason,
        )

    def _on_evict(self, entry: CacheEntry) -> None:
        self.pool.release(entry.lane, entry.nbytes)
        self.telemetry.metrics.counter(
            "repro_cache_evictions_total",
            "engine-cache evictions").inc(engine=entry.key[1])
        self.telemetry.events.emit(
            "eviction",
            method=entry.key[1],
            nbytes=entry.nbytes,
            lane=entry.lane,
        )
